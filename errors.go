package gengc

import (
	"gengc/internal/gc"
	"gengc/internal/heap"
)

// Sentinel errors. They are the targets for errors.Is on every error
// this package returns; the concrete error still carries the detail
// (the offending configuration field, the requesting mutator, the
// number of collections attempted).
var (
	// ErrInvalidConfig is wrapped by New and NewManual when the
	// configuration assembled from the options cannot be run: an
	// out-of-range field or an option combination the selected mode
	// does not support.
	ErrInvalidConfig = gc.ErrInvalidConfig

	// ErrOutOfMemory is wrapped by Alloc (and panicked by MustAlloc)
	// when the heap cannot satisfy an allocation even after repeated
	// full collections — the live set plus the request exceed the
	// configured heap.
	ErrOutOfMemory = heap.ErrOutOfMemory

	// ErrClosed is wrapped by allocation (and other mutator entry
	// points) when the runtime has been Closed: the collector no
	// longer runs, so an allocation that would need a collection can
	// never succeed.
	ErrClosed = gc.ErrClosed

	// ErrStalled is wrapped by AllocCtx when the context expires while
	// the mutator is waiting for a full collection to make room. The
	// returned error also wraps the context's error, so both
	// errors.Is(err, ErrStalled) and errors.Is(err,
	// context.DeadlineExceeded) hold.
	ErrStalled = gc.ErrStalled

	// ErrShed is wrapped by admission rejections (Runtime.Admission's
	// Admit, and internal consumers like the server engine) when the
	// admission controller armed with WithAdmission turns a request
	// away: queue full, queue wait timed out or outlived the caller's
	// deadline, degraded mode rejecting a low-priority request, or a
	// draining runtime. Sheds are backpressure, not failures — the
	// caller should drop the request or retry elsewhere, never spin.
	ErrShed = gc.ErrShed
)

// OOMPanic is the panic value of MustAlloc: a typed wrapper so that a
// recover site can distinguish heap exhaustion from an unrelated panic
// and still reach the underlying error chain (Err wraps
// ErrOutOfMemory, or ErrClosed when the runtime was shut down).
type OOMPanic struct {
	// Err is the allocation error MustAlloc would have returned.
	Err error
}

// Error makes the panic value readable when it escapes to a crash
// report.
func (p *OOMPanic) Error() string { return "gengc: MustAlloc: " + p.Err.Error() }

// Unwrap exposes the allocation error to errors.Is/errors.As.
func (p *OOMPanic) Unwrap() error { return p.Err }
