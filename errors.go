package gengc

import (
	"gengc/internal/gc"
	"gengc/internal/heap"
)

// Sentinel errors. They are the targets for errors.Is on every error
// this package returns; the concrete error still carries the detail
// (the offending configuration field, the requesting mutator, the
// number of collections attempted).
var (
	// ErrInvalidConfig is wrapped by New and NewManual when the
	// configuration assembled from the options cannot be run: an
	// out-of-range field or an option combination the selected mode
	// does not support.
	ErrInvalidConfig = gc.ErrInvalidConfig

	// ErrOutOfMemory is wrapped by Alloc (and panicked by MustAlloc)
	// when the heap cannot satisfy an allocation even after repeated
	// full collections — the live set plus the request exceed the
	// configured heap.
	ErrOutOfMemory = heap.ErrOutOfMemory
)
