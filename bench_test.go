package gengc_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gengc"
	"gengc/internal/workload"
)

// The benchmarks below regenerate the measurement behind every table and
// figure of the paper's evaluation (§8) at a reduced scale — cmd/gcbench
// runs the full-size versions and prints the paper-format tables. Each
// figure benchmark reports the headline quantity as a custom metric
// (improvement percentage, pages touched, ...), so `go test -bench=.`
// doubles as a compact reproduction run.

// benchScale keeps a single benchmark iteration around 50–300 ms.
const benchScale = 0.06

// benchPageCost is the simulated memory cost used by the harness.
const benchPageCost = 4000

func benchConfig(mode gengc.Mode, young, card int) gengc.Config {
	return gengc.Config{Mode: mode, YoungBytes: young, CardBytes: card, PageCostSpins: benchPageCost}
}

// runPair measures a gen/non-gen pair once and returns elapsed times.
func runPair(b *testing.B, p workload.Profile, genCfg gengc.Config, seed int64) (gen, non time.Duration) {
	b.Helper()
	nonCfg := genCfg
	nonCfg.Mode = gengc.NonGenerational
	rg, err := workload.Run(p, genCfg, seed)
	if err != nil {
		b.Fatal(err)
	}
	rn, err := workload.Run(p, nonCfg, seed)
	if err != nil {
		b.Fatal(err)
	}
	return rg.Elapsed, rn.Elapsed
}

// reportImprovement accumulates pair timings across b.N and reports the
// aggregate improvement percentage.
func benchImprovement(b *testing.B, p workload.Profile, genCfg gengc.Config) {
	p = p.Scale(benchScale)
	var gen, non time.Duration
	for i := 0; i < b.N; i++ {
		g, n := runPair(b, p, genCfg, int64(42+i*1000))
		gen += g
		non += n
	}
	if non > 0 {
		b.ReportMetric(100*float64(non-gen)/float64(non), "improvement_%")
	}
}

// BenchmarkFig07 regenerates Figure 7: the multithreaded Ray Tracer
// improvement by thread count.
func BenchmarkFig07(b *testing.B) {
	for _, threads := range []int{2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchImprovement(b, workload.MTRayTracer(threads),
				benchConfig(gengc.Generational, 4<<20, 16))
		})
	}
}

// BenchmarkFig08 regenerates Figure 8: the Anagram improvement.
func BenchmarkFig08(b *testing.B) {
	benchImprovement(b, workload.Anagram(), benchConfig(gengc.Generational, 4<<20, 16))
}

// BenchmarkFig09 regenerates Figure 9: SPECjvm improvements.
func BenchmarkFig09(b *testing.B) {
	for _, p := range workload.SPEC() {
		b.Run(p.Name, func(b *testing.B) {
			benchImprovement(b, p, benchConfig(gengc.Generational, 4<<20, 16))
		})
	}
}

// BenchmarkFig10to15 regenerates the characterization runs behind
// Figures 10–15, reporting the per-partial pages touched (Figure 15's
// quantity) and the GC-active share (Figure 10's).
func BenchmarkFig10to15(b *testing.B) {
	for _, p := range append(workload.SPEC(), workload.Anagram()) {
		b.Run(p.Name, func(b *testing.B) {
			cfg := benchConfig(gengc.Generational, 4<<20, 16)
			cfg.TrackPages = true
			var pages, gcPct float64
			pp := p.Scale(benchScale)
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(pp, cfg, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				pages += res.Summary.AvgPagesPartial
				gcPct += res.Summary.GCActivePct
			}
			b.ReportMetric(pages/float64(b.N), "pages/partial")
			b.ReportMetric(gcPct/float64(b.N), "gc_%")
		})
	}
}

// BenchmarkFig16 regenerates Figure 16: young-size tuning for the Ray
// Tracer (corner points of the sweep; gcbench runs the full grid).
func BenchmarkFig16(b *testing.B) {
	for _, card := range []int{4096, 16} {
		for _, young := range []int{1 << 20, 8 << 20} {
			b.Run(fmt.Sprintf("card=%d/young=%dm", card, young>>20), func(b *testing.B) {
				benchImprovement(b, workload.MTRayTracer(4),
					benchConfig(gengc.Generational, young, card))
			})
		}
	}
}

// BenchmarkFig17 regenerates Figure 17: young-size tuning for SPECjvm
// (javac shown; gcbench runs all benchmarks).
func BenchmarkFig17(b *testing.B) {
	for _, young := range []int{1 << 20, 2 << 20, 4 << 20, 8 << 20} {
		b.Run(fmt.Sprintf("javac/young=%dm", young>>20), func(b *testing.B) {
			benchImprovement(b, workload.Javac(), benchConfig(gengc.Generational, young, 16))
		})
	}
}

// BenchmarkFig18and19 regenerates Figures 18–19: the aging mechanism at
// the paper's tenure thresholds.
func BenchmarkFig18and19(b *testing.B) {
	for _, age := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("jess/age=%d", age), func(b *testing.B) {
			cfg := benchConfig(gengc.GenerationalAging, 4<<20, 16)
			cfg.OldAge = age - 1 // paper counts ages from 1
			benchImprovement(b, workload.Jess(), cfg)
		})
	}
}

// BenchmarkFig20 regenerates Figure 20: the overhead of aging with two
// ages over simple promotion (positive = aging faster).
func BenchmarkFig20(b *testing.B) {
	for _, p := range []workload.Profile{workload.Jess(), workload.Javac()} {
		b.Run(p.Name, func(b *testing.B) {
			pp := p.Scale(benchScale)
			agingCfg := benchConfig(gengc.GenerationalAging, 4<<20, 16)
			agingCfg.OldAge = 1
			simpleCfg := benchConfig(gengc.Generational, 4<<20, 16)
			var aging, simple time.Duration
			for i := 0; i < b.N; i++ {
				ra, err := workload.Run(pp, agingCfg, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				rs, err := workload.Run(pp, simpleCfg, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				aging += ra.Elapsed
				simple += rs.Elapsed
			}
			b.ReportMetric(100*float64(simple-aging)/float64(simple), "aging_vs_simple_%")
		})
	}
}

// BenchmarkFig21to23 regenerates the card-size sweep behind Figures
// 21–23, reporting dirty-card percentage (Fig 22) and scanned area
// (Fig 23) alongside the timing.
func BenchmarkFig21to23(b *testing.B) {
	for _, card := range []int{16, 64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("jess/card=%d", card), func(b *testing.B) {
			cfg := benchConfig(gengc.Generational, 4<<20, card)
			pp := workload.Jess().Scale(benchScale)
			var dirty, area float64
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(pp, cfg, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				dirty += res.Summary.AvgDirtyCardPct
				area += res.Summary.AvgAreaScanned
			}
			b.ReportMetric(dirty/float64(b.N), "dirty_%")
			b.ReportMetric(area/float64(b.N)/1024, "areaKB")
		})
	}
}

// BenchmarkAblationRememberedSet compares the remembered-set extension
// (§3.1's alternative) against card marking on the inter-generational
// heavy jess profile.
func BenchmarkAblationRememberedSet(b *testing.B) {
	for _, rem := range []bool{false, true} {
		name := "cards"
		if rem {
			name = "remset"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(gengc.Generational, 4<<20, 16)
			cfg.UseRememberedSet = rem
			pp := workload.Jess().Scale(benchScale)
			for i := 0; i < b.N; i++ {
				if _, err := workload.Run(pp, cfg, int64(42+i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDynamicTenure compares fixed and dynamic tenuring.
func BenchmarkAblationDynamicTenure(b *testing.B) {
	for _, dyn := range []bool{false, true} {
		name := "fixed"
		if dyn {
			name = "dynamic"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(gengc.GenerationalAging, 4<<20, 16)
			cfg.DynamicTenure = dyn
			pp := workload.Jack().Scale(benchScale)
			for i := 0; i < b.N; i++ {
				if _, err := workload.Run(pp, cfg, int64(42+i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks of the collector's hot paths ---

// BenchmarkWriteBarrier measures the mutator-visible Update cost per
// mode during the idle (async, not tracing) phase — the common case.
func BenchmarkWriteBarrier(b *testing.B) {
	for _, mode := range []gengc.Mode{gengc.NonGenerational, gengc.Generational, gengc.GenerationalAging} {
		b.Run(mode.String(), func(b *testing.B) {
			rt, err := gengc.NewManual(gengc.WithConfig(gengc.Config{Mode: mode, HeapBytes: 8 << 20}))
			if err != nil {
				b.Fatal(err)
			}
			m := rt.NewMutator()
			x := m.MustAlloc(2, 0)
			y := m.MustAlloc(0, 32)
			m.PushRoot(x)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Write(x, i&1, y)
			}
		})
	}
}

// BenchmarkAlloc measures the allocation fast path.
func BenchmarkAlloc(b *testing.B) {
	rt, err := gengc.NewManual(gengc.WithConfig(gengc.Config{Mode: gengc.Generational, HeapBytes: 64 << 20, YoungBytes: 32 << 20}))
	if err != nil {
		b.Fatal(err)
	}
	m := rt.NewMutator()
	r := m.PushRoot(gengc.Nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := m.Alloc(1, 48)
		if err != nil {
			// Heap full of garbage: reclaim synchronously and go on.
			b.StopTimer()
			m.Collect(true)
			b.StartTimer()
			continue
		}
		m.SetRoot(r, a)
	}
}

// BenchmarkSafepoint measures the no-op Cooperate fast path.
func BenchmarkSafepoint(b *testing.B) {
	rt, err := gengc.NewManual(gengc.WithConfig(gengc.Config{Mode: gengc.Generational}))
	if err != nil {
		b.Fatal(err)
	}
	m := rt.NewMutator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Safepoint()
	}
}

// BenchmarkPartialCollection measures a partial cycle over a live list
// plus fresh garbage.
func BenchmarkPartialCollection(b *testing.B) {
	benchCollection(b, false)
}

// BenchmarkFullCollection measures a full cycle on the same setup.
func BenchmarkFullCollection(b *testing.B) {
	benchCollection(b, true)
}

func benchCollection(b *testing.B, full bool) {
	rt, err := gengc.NewManual(gengc.WithConfig(gengc.Config{Mode: gengc.Generational, HeapBytes: 32 << 20}))
	if err != nil {
		b.Fatal(err)
	}
	m := rt.NewMutator()
	head := m.MustAlloc(1, 0)
	m.PushRoot(head)
	for i := 0; i < 5000; i++ {
		n := m.MustAlloc(1, 48)
		m.Write(n, 0, m.Read(head, 0))
		m.Write(head, 0, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 2000; j++ {
			m.MustAlloc(0, 48) // garbage for this cycle
		}
		b.StartTimer()
		m.Collect(full)
	}
}

// BenchmarkAblationColorToggle reproduces the motivation for Remark 5.1:
// the baseline with the §5 color toggle versus the original §2 create
// protocol (sweep-position-dependent creation colors plus an extra
// recoloring duty during sweep).
func BenchmarkAblationColorToggle(b *testing.B) {
	for _, noToggle := range []bool{false, true} {
		name := "toggle"
		if noToggle {
			name = "original"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(gengc.NonGenerational, 4<<20, 16)
			cfg.DisableColorToggle = noToggle
			pp := workload.Anagram().Scale(benchScale)
			for i := 0; i < b.N; i++ {
				if _, err := workload.Run(pp, cfg, int64(42+i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCollection measures the elapsed time of on-the-fly
// collection cycles while four mutator threads churn out garbage over a
// large live graph — the workload that motivates the parallel trace and
// sharded sweep. Non-generational mode makes every cycle trace the full
// live set, so the collector's share of the machine is what bounds the
// cycle length: a pool of N workers claims N goroutines' worth of
// scheduler time against the churning mutators, finishing each cycle —
// and therefore bounding floating garbage — sooner than the paper's
// single collector thread. Each b.N counts one completed background
// cycle; avg_cycle_ms and max_cycle_ms report the collector's
// clear-to-sweep-end elapsed time.
func BenchmarkParallelCollection(b *testing.B) {
	const (
		liveChains = 256
		chainNodes = 3000
	)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rt, err := gengc.New(
				gengc.WithMode(gengc.NonGenerational),
				gengc.WithHeapBytes(128<<20),
				gengc.WithGlobalRootSlots(liveChains),
				gengc.WithWorkers(workers),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()

			// A wide long-lived graph (~35 MB) published to global
			// roots: every cycle has a substantial trace, as in a
			// program with a real live set. The builder detaches before
			// measuring so only the churning mutators handshake.
			builder := rt.NewMutator()
			heads := make([]int, liveChains)
			for i := range heads {
				heads[i] = builder.PushRoot(builder.MustAlloc(1, 16))
			}
			for i := 0; i < liveChains*chainNodes; i++ {
				c := i % liveChains
				n := builder.MustAlloc(1, 32)
				builder.Write(n, 0, builder.Root(heads[c]))
				builder.SetRoot(heads[c], n)
				builder.Safepoint()
			}
			for i, h := range heads {
				rt.SetGlobal(builder, i, builder.Root(h))
			}
			builder.Detach()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for t := 0; t < 4; t++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					m := rt.NewMutator()
					defer m.Detach()
					rng := rand.New(rand.NewSource(seed))
					const window = 64
					slots := make([]int, window)
					for i := range slots {
						slots[i] = m.PushRoot(gengc.Nil)
					}
					// A private long-lived chain gives the mutator compute
					// work between heap updates: programs read far more than
					// they allocate, and an alloc-only mutator parks on the
					// allocation wall mid-cycle, handing the whole processor
					// to the collector. Chasing pointers keeps the mutators
					// runnable — competing with the collector for scheduler
					// time throughout the cycle — which is the regime the
					// worker pool exists for.
					const chainLen = 4096
					priv := m.PushRoot(m.MustAlloc(1, 16))
					for i := 1; i < chainLen; i++ {
						n := m.MustAlloc(1, 16)
						m.Write(n, 0, m.Root(priv))
						m.SetRoot(priv, n)
					}
					for {
						select {
						case <-stop:
							return
						default:
						}
						m.Safepoint()
						i := slots[rng.Intn(window)]
						switch rng.Intn(8) {
						case 0, 1, 2, 3, 4: // churn: replace a rooted chain head
							n := m.MustAlloc(1, 16+rng.Intn(64))
							m.Write(n, 0, m.Root(i))
							m.SetRoot(i, n)
						case 5: // drop a chain
							m.SetRoot(i, gengc.Nil)
						default: // pure garbage
							m.MustAlloc(0, 32)
						}
						for x, s := m.Root(priv), 0; s < 512 && x != gengc.Nil; s++ {
							x = m.Read(x, 0)
						}
					}
				}(int64(t))
			}

			base := int(rt.Stats().NumCycles)
			b.ResetTimer()
			for int(rt.Stats().NumCycles)-base < b.N {
				time.Sleep(500 * time.Microsecond)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()

			cycles := rt.Cycles()
			if len(cycles) > base {
				cycles = cycles[base:]
			}
			if len(cycles) > b.N {
				cycles = cycles[:b.N]
			}
			var total, max, sync, trace, sweep time.Duration
			scanned := 0
			for _, c := range cycles {
				total += c.Duration
				if c.Duration > max {
					max = c.Duration
				}
				sync += c.HandshakeTime
				trace += c.TraceTime
				sweep += c.SweepTime
				scanned += c.ObjectsScanned
			}
			if n := len(cycles); n > 0 {
				b.ReportMetric(float64(scanned)/float64(n), "objs/cycle")
			}
			if n := len(cycles); n > 0 {
				b.ReportMetric(total.Seconds()*1000/float64(n), "avg_cycle_ms")
				b.ReportMetric(max.Seconds()*1000, "max_cycle_ms")
				b.ReportMetric(sync.Seconds()*1000/float64(n), "avg_sync_ms")
				b.ReportMetric(trace.Seconds()*1000/float64(n), "avg_trace_ms")
				b.ReportMetric(sweep.Seconds()*1000/float64(n), "avg_sweep_ms")
			}
		})
	}
}
