package gengc_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"gengc"
)

// Example shows the minimal lifecycle: attach a mutator, allocate and
// link objects through the write barrier, drop them, and collect.
func Example() {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	m := rt.NewMutator()
	defer m.Detach()

	parent := m.MustAlloc(1, 0) // one pointer slot
	child := m.MustAlloc(0, 64) // a 64-byte leaf
	root := m.PushRoot(parent)  // keep the parent reachable
	m.Write(parent, 0, child)   // barriered store
	fmt.Println("child reachable:", m.Read(parent, 0) == child)

	m.SetRoot(root, gengc.Nil) // drop everything
	m.Collect(false)           // partial collection
	fmt.Println("objects freed:", rt.Stats().ObjectsFreed >= 2)
	// Output:
	// child reachable: true
	// objects freed: true
}

// ExampleNewManual shows the paper's parameter space expressed as
// functional options: collector variant, young generation size, card
// size, tenure threshold, and the parallel-collector worker count.
func ExampleNewManual() {
	rt, err := gengc.NewManual(
		gengc.WithMode(gengc.GenerationalAging),
		gengc.WithYoungBytes(2<<20), // 2 MB young generation
		gengc.WithCardBytes(4096),   // "block marking"
		gengc.WithOldAge(5),         // tenure after six survived collections
		gengc.WithWorkers(2),        // parallel trace & sweep
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	fmt.Println(rt.Collector().Config().Mode)
	// Output:
	// generational+aging
}

// ExampleWithConfig shows applying a prepared Config — the bridge from
// the previous struct-literal construction API.
func ExampleWithConfig() {
	cfg := gengc.Config{Mode: gengc.Generational, CardBytes: 16}
	rt, err := gengc.NewManual(gengc.WithConfig(cfg))
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	fmt.Println(cfg.Mode)
	// Output:
	// generational
}

// ExampleRuntime_OnCycle streams every collection's record as it
// completes — the push-based alternative to polling Cycles, used by
// cmd/gctrace's live event log.
func ExampleRuntime_OnCycle() {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	// The callback runs on the collector goroutine: it must not block
	// or trigger collections. Here it feeds a channel the test drains.
	kinds := make(chan string, 8)
	rt.OnCycle(func(c gengc.CycleRecord) { kinds <- c.Kind.String() })

	m := rt.NewMutator()
	defer m.Detach()
	m.PushRoot(m.MustAlloc(1, 0))
	m.Collect(false)
	m.Collect(true)
	fmt.Println(<-kinds, <-kinds)
	// Output:
	// partial full
}

// ExampleRuntime_Snapshot polls the runtime's observability surface:
// collection counts, heap occupancy, and the per-mutator pause
// statistics that quantify the paper's "mutators are never stopped"
// property.
func ExampleRuntime_Snapshot() {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational))
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()
	root := m.PushRoot(gengc.Nil)
	for i := 0; i < 1000; i++ {
		m.SetRoot(root, m.MustAlloc(1, 64))
	}
	m.Collect(true) // cooperating with the handshakes records pauses

	snap := rt.Snapshot()
	fmt.Println("cycles:", snap.Cycles)
	fmt.Println("pauses recorded:", snap.Fleet.Count > 0)
	fmt.Println("max pause under a second:", snap.Fleet.Max < time.Second)
	// Output:
	// cycles: 1
	// pauses recorded: true
	// max pause under a second: true
}

// ExampleWithTraceSink streams the collector's structured events to a
// JSONL file that cmd/gcreport renders into pause and phase figures.
func ExampleWithTraceSink() {
	var buf bytes.Buffer
	sink := gengc.NewJSONLTraceSink(&buf)
	rt, err := gengc.NewManual(
		gengc.WithMode(gengc.Generational),
		gengc.WithTraceSink(sink),
	)
	if err != nil {
		panic(err)
	}
	m := rt.NewMutator()
	m.PushRoot(m.MustAlloc(1, 0))
	m.Collect(false)
	m.Detach()
	rt.Close() // flushes the final events into the sink

	var first gengc.TraceEvent
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &first); err != nil {
		panic(err)
	}
	fmt.Println("first event:", first.Ev)
	fmt.Println("wrote events:", strings.Count(buf.String(), "\n") > 5)
	// Output:
	// first event: start
	// wrote events: true
}

// ExampleRuntime_Verify shows the built-in heap audit used throughout
// the test suite.
func ExampleRuntime_Verify() {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational))
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()
	m.PushRoot(m.MustAlloc(2, 0))
	m.Collect(true)
	fmt.Println("verified:", rt.Verify() == nil)
	// Output:
	// verified: true
}
