package gengc_test

import (
	"fmt"

	"gengc"
)

// Example shows the minimal lifecycle: attach a mutator, allocate and
// link objects through the write barrier, drop them, and collect.
func Example() {
	rt, err := gengc.NewManual(gengc.Config{Mode: gengc.Generational})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	m := rt.NewMutator()
	defer m.Detach()

	parent := m.MustAlloc(1, 0) // one pointer slot
	child := m.MustAlloc(0, 64) // a 64-byte leaf
	root := m.PushRoot(parent)  // keep the parent reachable
	m.Write(parent, 0, child)   // barriered store
	fmt.Println("child reachable:", m.Read(parent, 0) == child)

	m.SetRoot(root, gengc.Nil) // drop everything
	m.Collect(false)           // partial collection
	fmt.Println("objects freed:", rt.Stats().ObjectsFreed >= 2)
	// Output:
	// child reachable: true
	// objects freed: true
}

// ExampleConfig shows the paper's parameter space: collector variant,
// young generation size, and card size.
func ExampleConfig() {
	cfg := gengc.Config{
		Mode:       gengc.GenerationalAging,
		YoungBytes: 2 << 20, // 2 MB young generation
		CardBytes:  4096,    // "block marking"
		OldAge:     5,       // tenure after six survived collections
	}
	rt, err := gengc.NewManual(cfg)
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	fmt.Println(cfg.Mode)
	// Output:
	// generational+aging
}

// ExampleRuntime_Verify shows the built-in heap audit used throughout
// the test suite.
func ExampleRuntime_Verify() {
	rt, err := gengc.NewManual(gengc.Config{Mode: gengc.Generational})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()
	m.PushRoot(m.MustAlloc(2, 0))
	m.Collect(true)
	fmt.Println("verified:", rt.Verify() == nil)
	// Output:
	// verified: true
}
