package gengc_test

import (
	"fmt"

	"gengc"
)

// Example shows the minimal lifecycle: attach a mutator, allocate and
// link objects through the write barrier, drop them, and collect.
func Example() {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	m := rt.NewMutator()
	defer m.Detach()

	parent := m.MustAlloc(1, 0) // one pointer slot
	child := m.MustAlloc(0, 64) // a 64-byte leaf
	root := m.PushRoot(parent)  // keep the parent reachable
	m.Write(parent, 0, child)   // barriered store
	fmt.Println("child reachable:", m.Read(parent, 0) == child)

	m.SetRoot(root, gengc.Nil) // drop everything
	m.Collect(false)           // partial collection
	fmt.Println("objects freed:", rt.Stats().ObjectsFreed >= 2)
	// Output:
	// child reachable: true
	// objects freed: true
}

// ExampleNewManual shows the paper's parameter space expressed as
// functional options: collector variant, young generation size, card
// size, tenure threshold, and the parallel-collector worker count.
func ExampleNewManual() {
	rt, err := gengc.NewManual(
		gengc.WithMode(gengc.GenerationalAging),
		gengc.WithYoungBytes(2<<20), // 2 MB young generation
		gengc.WithCardBytes(4096),   // "block marking"
		gengc.WithOldAge(5),         // tenure after six survived collections
		gengc.WithWorkers(2),        // parallel trace & sweep
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	fmt.Println(rt.Collector().Config().Mode)
	// Output:
	// generational+aging
}

// ExampleWithConfig shows applying a prepared Config — the bridge from
// the previous struct-literal construction API.
func ExampleWithConfig() {
	cfg := gengc.Config{Mode: gengc.Generational, CardBytes: 16}
	rt, err := gengc.NewManual(gengc.WithConfig(cfg))
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	fmt.Println(cfg.Mode)
	// Output:
	// generational
}

// ExampleRuntime_Verify shows the built-in heap audit used throughout
// the test suite.
func ExampleRuntime_Verify() {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational))
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()
	m.PushRoot(m.MustAlloc(2, 0))
	m.Collect(true)
	fmt.Println("verified:", rt.Verify() == nil)
	// Output:
	// verified: true
}
