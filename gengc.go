// Package gengc is a from-scratch reproduction of "A Generational
// On-the-fly Garbage Collector for Java" (Domani, Kolodner, Petrank;
// PLDI 2000) as a standalone, embeddable heap and collector.
//
// The package manages a simulated, non-moving, byte-addressed heap.
// Program threads attach as mutators, allocate objects made of pointer
// slots, and read and write those slots through the paper's write
// barrier; a collector goroutine reclaims garbage on the fly — the
// mutators are never stopped. Three collectors are provided:
//
//   - the DLG-style non-generational mark-and-sweep baseline with a
//     black/white color toggle (Remark 5.1);
//   - the simple generational collector (§3–§5): logical generations
//     with black as the old color, promotion after one collection, the
//     yellow allocation color, and card marking;
//   - the aging generational collector (§6): per-object ages and a
//     configurable tenure threshold.
//
// # Quick start
//
//	rt, err := gengc.New(gengc.WithMode(gengc.Generational))
//	if err != nil { ... }
//	defer rt.Close()
//
//	m := rt.NewMutator()          // one per goroutine
//	defer m.Detach()
//
//	obj, err := m.Alloc(2, 0)     // two pointer slots
//	root := m.PushRoot(obj)       // keep it reachable
//	child, err := m.Alloc(0, 64)  // 64-byte leaf object
//	m.Write(obj, 0, child)        // barriered pointer store
//	_ = m.Read(obj, 1)            // pointer load
//	m.Safepoint()                 // call regularly!
//	m.SetRoot(root, gengc.Nil)    // drop the structure
//
// Mutators must call Safepoint regularly (the paper's "cooperate",
// checked at backward branches and calls in the JVM): the collector's
// handshakes wait for every attached mutator, so a mutator that stops
// calling Safepoint stalls collections. Allocation and the Collect
// helper also act as safe points.
//
// # Observability
//
// The runtime measures itself at three granularities: per-collection
// records (Cycles, or streamed with OnCycle), per-mutator pause
// histograms behind Snapshot (the quantified version of the paper's
// "mutators are never stopped" property, also exportable with
// PublishExpvar), and a structured event trace behind WithTraceSink —
// timestamped spans for every cycle phase and every mutator pause,
// rendered into paper-style figures by cmd/gcreport. OBSERVABILITY.md
// maps each surface onto the paper's Figures 10–23.
package gengc

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"time"

	"gengc/internal/gc"
	"gengc/internal/heap"
	"gengc/internal/metrics"
	"gengc/internal/telemetry"
	"gengc/internal/trace"
)

// Ref is a reference to a heap object. The zero value Nil refers to no
// object.
type Ref = heap.Addr

// Nil is the null reference.
const Nil Ref = 0

// Mode selects the collector variant.
type Mode = gc.Mode

const (
	// NonGenerational is the baseline on-the-fly collector.
	NonGenerational = gc.NonGenerational
	// Generational promotes objects after one collection (§3–§5).
	Generational = gc.Generational
	// GenerationalAging uses per-object ages and a tenure threshold.
	GenerationalAging = gc.GenerationalAging
)

// BarrierMode selects the write-barrier implementation (see
// WithBarrier): eager per-store shading and card marking, or
// per-mutator buffers drained at safe points.
type BarrierMode = gc.BarrierMode

const (
	// BarrierEager is the paper's write barrier: every pointer store
	// shades and card-marks immediately. The default.
	BarrierEager = gc.BarrierEager
	// BarrierBatched defers the barrier's shared-memory work into
	// per-mutator buffers flushed at safe points, full buffers and
	// detach. Semantically equivalent (see DESIGN.md, "Barrier
	// modes"); faster on pointer-write-heavy workloads.
	BarrierBatched = gc.BarrierBatched
)

// BarrierStats is the write barrier's counter snapshot (see
// Snapshot.Barrier): buffer flushes, stores that went through the
// deferred path, and card entries elided by same-card deduplication.
// The counters advance only under BarrierBatched.
type BarrierStats = gc.BarrierStats

// Config parameterizes a Runtime; zero fields assume the paper's
// defaults: a 32 MB heap, a 4 MB young generation, 16-byte cards
// ("object marking"), tenure threshold 4 (in the paper's age counting),
// a full collection once the heap is 75% allocated, and one collector
// worker. Runtimes are built from functional options (WithMode,
// WithHeapBytes, ...); a prepared Config is applied with WithConfig.
type Config = gc.Config

// CycleRecord is the per-collection record passed to OnCycle observers
// and returned by Cycles.
type CycleRecord = metrics.Cycle

// TraceEvent is one structured collector event: a timestamped span
// (cycle, handshake round, trace drain, sweep shard, card scan) or a
// mutator pause, as delivered to a TraceSink. See the trace package's
// Event documentation for the kind table, and OBSERVABILITY.md for the
// event ↔ paper-figure map.
type TraceEvent = trace.Event

// TraceSink receives the collector's structured event stream (see
// WithTraceSink). The collector serializes all Emit and Flush calls, so
// implementations need no locking unless shared between runtimes.
type TraceSink = trace.Sink

// JSONLTraceSink is a TraceSink that writes one JSON object per event —
// the interchange format consumed by cmd/gcreport.
type JSONLTraceSink = trace.JSONLSink

// NewJSONLTraceSink returns a buffered TraceSink writing JSON Lines to
// w. Close the runtime before reading the output: the final events are
// flushed by Runtime.Close. Check the sink's Err method after the run.
func NewJSONLTraceSink(w io.Writer) *JSONLTraceSink { return trace.NewJSONLSink(w) }

// AllocStats aggregates the tiered allocator's contention and
// throughput counters: refills and flushes served by the central
// free-list shards, contended lock acquisitions per tier, and the
// free/cached cell census, plus a per-shard breakdown. Reported by
// Snapshot; see OBSERVABILITY.md.
type AllocStats = heap.AllocStats

// ShardStats is one central shard's row in AllocStats.PerShard.
type ShardStats = heap.ShardStats

// Demographics is the run-cumulative heap-demographics aggregate
// reported in Snapshot.Demographics: promotion and survival totals,
// the aging survival histogram, per-size-class death counts, and
// inter-generational pointer traffic. See OBSERVABILITY.md §7.
type Demographics = metrics.Demographics

// FlightRecorder is the anomaly flight recorder armed with
// WithFlightRecorder: a bounded ring of the last N trace events frozen
// into dumps when the runtime hits trouble. See OBSERVABILITY.md §7 for
// the trigger matrix.
type FlightRecorder = telemetry.Recorder

// FlightDump is one frozen flight-recorder capture: the trigger reason,
// the preceding trace events, and a Snapshot taken at the trigger.
type FlightDump = telemetry.Dump

// PauseStats summarizes one pause histogram: the count, total and the
// p50/p90/p99/p99.9/max quantiles of the mutator-visible delays the
// on-the-fly collector imposes (handshake responses, root marking,
// acknowledgement rounds, allocation stalls). Mutator is the mutator id,
// or -1 for the fleet-wide aggregate.
type PauseStats = metrics.PauseStats

// AdmissionConfig parameterizes the admission controller armed with
// WithAdmission; zero fields assume the defaults.
type AdmissionConfig = gc.AdmissionConfig

// AdmissionStats is the admission controller's counter snapshot
// (Snapshot.Admission): admitted/shed totals broken down by shed cause,
// caller-reported retries, degraded-mode transitions and the live
// queue/in-flight gauges. Enabled is false — and everything else zero —
// without WithAdmission.
type AdmissionStats = gc.AdmissionStats

// Admission is the runtime's admission controller handle (see
// Runtime.Admission): Admit/Release bracket one unit of work, NoteRetry
// reports a transient-failure retry, BeginDrain stops admission for
// shutdown.
type Admission = gc.Admission

// Priority classifies a request for the admission controller's degraded
// mode: PriorityLow requests are shed while the runtime is degraded,
// PriorityHigh requests still queue.
type Priority = gc.Priority

const (
	// PriorityLow marks best-effort requests — the first to go when
	// the runtime degrades.
	PriorityLow = gc.PriorityLow
	// PriorityHigh marks requests that must be served while the
	// runtime has any capacity at all.
	PriorityHigh = gc.PriorityHigh
)

// Runtime owns one heap and its collector — the analogue of one JVM
// instance in the paper's experiments.
type Runtime struct {
	c *gc.Collector
}

// New creates a runtime from the given options and starts its collector
// goroutine. A configuration error wraps ErrInvalidConfig.
func New(opts ...Option) (*Runtime, error) {
	c, err := gc.New(buildConfig(opts))
	if err != nil {
		return nil, err
	}
	c.Start()
	return newRuntime(c), nil
}

// NewManual creates a runtime whose collections run only when Collect is
// called — no background collector goroutine. Intended for tests and
// deterministic experiments.
func NewManual(opts ...Option) (*Runtime, error) {
	c, err := gc.New(buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return newRuntime(c), nil
}

// newRuntime wraps the collector and completes the wiring the collector
// cannot do itself: the flight recorder's snapshot function captures
// the facade-level Snapshot, not the collector's internals.
func newRuntime(c *gc.Collector) *Runtime {
	rt := &Runtime{c: c}
	if fr := c.FlightRecorder(); fr != nil {
		fr.SetSnapshotFn(func() any { return rt.Snapshot() })
	}
	return rt
}

// Close stops the collector goroutine and flushes the trace sink. It
// is idempotent and safe to call concurrently with running mutators:
// further allocations fail with an error wrapping ErrClosed, a
// collection in flight is given one stall-timeout of grace to finish
// its handshakes and otherwise abandoned without sweeping (no object is
// ever freed on the strength of an incomplete trace), and concurrent
// Close calls all wait for the shutdown to complete.
func (r *Runtime) Close() { r.c.Stop() }

// StallEvent is one handshake-watchdog report: a mutator that had not
// passed a safe point within the configured stall timeout
// (WithStallTimeout) while the collector was waiting on it.
type StallEvent = gc.Stall

// OnStall registers fn to receive every watchdog report (at most one
// observer; nil removes it). fn runs on the collector goroutine and
// must not block. The same reports also raise Snapshot.Stalls and emit
// "stall" trace events, so polling and tracing work without a callback.
func (r *Runtime) OnStall(fn func(StallEvent)) { r.c.OnStall(fn) }

// NewMutator attaches a mutator. Each mutator must be used by a single
// goroutine.
func (r *Runtime) NewMutator() *Mutator {
	return &Mutator{m: r.c.NewMutator(), rt: r}
}

// Collect runs one synchronous collection cycle (full or partial). It
// must not be called from a mutator goroutine — use (*Mutator).Collect
// there instead.
func (r *Runtime) Collect(full bool) { r.c.CollectNow(full) }

// Stats returns the aggregate collection statistics so far.
func (r *Runtime) Stats() metrics.Summary { return r.c.Metrics().Summarize(0) }

// Cycles returns the per-collection records (one entry per cycle).
func (r *Runtime) Cycles() []CycleRecord { return r.c.Metrics().Cycles() }

// OnCycle registers fn to receive every collection's record as the
// cycle completes, so embedders can stream per-collection telemetry
// instead of polling Cycles. fn runs on the collector goroutine — it
// must not block (the next cycle waits for it) and must not trigger
// collections. A nil fn removes the observer; there is at most one.
func (r *Runtime) OnCycle(fn func(CycleRecord)) { r.c.Metrics().OnRecord(fn) }

// Snapshot is a point-in-time view of the runtime's progress and pause
// behavior, cheap enough to poll: collection counts, heap occupancy,
// and the pause statistics of every attached mutator plus the
// fleet-wide aggregate (which also covers detached mutators).
type Snapshot struct {
	Cycles      int64 // completed collection cycles (partial + full)
	Fulls       int64 // completed full collections
	HeapBytes   int64 // allocated bytes (live + floating garbage)
	HeapObjects int64 // allocated objects

	// Stalls counts handshake-watchdog reports: mutators that missed
	// the stall deadline while the collector waited on them (see
	// WithStallTimeout and OnStall).
	Stalls int64

	// AbortedCycles counts collections abandoned at Close because a
	// handshake stayed wedged past the grace period.
	AbortedCycles int64

	// TraceDrops counts trace events lost so far — ring overflow plus
	// events discarded after sink degradation. TraceDegraded reports
	// whether the trace sink has been cut off after repeated failures
	// (the runtime keeps running; events become counted drops). Both
	// are zero without WithTraceSink.
	TraceDrops    int64
	TraceDegraded bool

	// Alloc is the tiered allocator's counter snapshot: shard and
	// page-lock contention, refill/flush traffic, free and cached
	// cells, with a per-shard breakdown (see WithAllocShards).
	Alloc AllocStats

	// Barrier is the write barrier's counter snapshot: the configured
	// mode plus — under BarrierBatched — buffer flushes, buffered
	// stores and same-card dedup hits (see WithBarrier).
	Barrier BarrierStats

	// Fleet aggregates every pause ever recorded (Mutator == -1);
	// Mutators holds one entry per currently attached mutator. Both are
	// zero-valued when pause accounting is off (WithPauseHistograms).
	Fleet    PauseStats
	Mutators []PauseStats

	// Demographics is the run-cumulative heap-demographics aggregate:
	// objects/bytes promoted into the old generation, the young
	// survival totals and aging survival histogram, per-size-class
	// death counts, and inter-generational card/remset traffic.
	// Populated by generational partial collections; the online signal
	// the adaptive-pacer work reads.
	Demographics Demographics

	// PromotionRate is the pacer's smoothed promoted-bytes-per-young-
	// byte estimate (0 until a generational partial completes).
	PromotionRate float64

	// SLOBreaches counts recorded pauses that exceeded WithPauseSLO
	// (always zero without one).
	SLOBreaches int64

	// Admission is the admission controller's counter snapshot:
	// admitted/shed totals by cause, degraded-mode state and the live
	// queue/in-flight gauges. Enabled is false without WithAdmission.
	Admission AdmissionStats

	// RequestLatency summarizes the end-to-end request-latency
	// histogram fed by ObserveRequest (Mutator == -1): per-request
	// latency as the client saw it — queue wait, allocation work and
	// retries included — distinct from the per-pause histograms above.
	// Zero-valued unless WithRequestSLO or WithAdmission is set.
	RequestLatency PauseStats

	// RequestSLOBreaches counts ObserveRequest observations that
	// exceeded WithRequestSLO (always zero without one).
	RequestSLOBreaches int64

	// FlightRecorderDumps counts anomaly captures the flight recorder
	// has taken (zero without WithFlightRecorder).
	FlightRecorderDumps int64
}

// Snapshot captures the current Snapshot. Safe to call at any time,
// from any goroutine, including while mutators and the collector run.
func (r *Runtime) Snapshot() Snapshot {
	fleet, per := r.c.PauseStats()
	s := Snapshot{
		Cycles:        r.c.CyclesDone(),
		Fulls:         r.c.FullsDone(),
		HeapBytes:     r.c.HeapBytes(),
		HeapObjects:   r.c.HeapObjects(),
		Stalls:        r.c.Stalls(),
		AbortedCycles: r.c.AbortedCycles(),
		TraceDrops:    r.c.TraceDrops(),
		TraceDegraded: r.c.TraceDegraded(),
		Alloc:         r.c.H.AllocStats(),
		Barrier:       r.c.BarrierStats(),
		Fleet:         fleet,
		Mutators:      per,
		Demographics:  r.c.DemographicStats(),
		PromotionRate: r.c.Pacer().PromotionRate(),
		SLOBreaches:   r.c.SLOBreaches(),

		Admission:          r.c.AdmissionStats(),
		RequestLatency:     r.c.RequestStats(),
		RequestSLOBreaches: r.c.RequestSLOBreaches(),
	}
	if fr := r.c.FlightRecorder(); fr != nil {
		s.FlightRecorderDumps = fr.DumpCount()
	}
	return s
}

// FlightRecorder returns the anomaly flight recorder armed with
// WithFlightRecorder, or nil. Its Dumps/LastDump methods return the
// frozen captures; Trigger forces a manual capture.
func (r *Runtime) FlightRecorder() *FlightRecorder { return r.c.FlightRecorder() }

// Admission returns the admission controller armed with WithAdmission,
// or nil. Embedders bracket each unit of work with Admit (which may
// return an error wrapping ErrShed) and Release; internal/server does
// this for its request engine.
func (r *Runtime) Admission() *Admission { return r.c.Admission() }

// ObserveRequest records one end-to-end request latency into the
// request-latency histogram (Snapshot.RequestLatency) and enforces
// WithRequestSLO: a breach is counted and triggers a flight-recorder
// dump when one is armed. A no-op unless WithRequestSLO or
// WithAdmission enabled request accounting. Safe from any goroutine.
func (r *Runtime) ObserveRequest(d time.Duration) { r.c.ObserveRequest(d) }

// PublishExpvar exposes the runtime's Snapshot under name in the
// process-wide expvar registry (so it shows up on /debug/vars). It
// fails if name is already published — expvar registrations cannot be
// removed, so each runtime needs its own name and the variable outlives
// the runtime (it keeps reporting the final state after Close).
func (r *Runtime) PublishExpvar(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("gengc: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}

// HeapBytes returns the currently allocated bytes (live plus floating
// garbage).
func (r *Runtime) HeapBytes() int64 { return r.c.HeapBytes() }

// HeapObjects returns the currently allocated object count.
func (r *Runtime) HeapObjects() int64 { return r.c.HeapObjects() }

// SetGlobal stores v in global root slot i. Global roots live in an
// ordinary heap object, so the store goes through the write barrier of
// the given mutator.
func (r *Runtime) SetGlobal(m *Mutator, i int, v Ref) {
	m.m.Update(r.c.Globals(), i, v)
}

// Global reads global root slot i.
func (r *Runtime) Global(i int) Ref { return r.c.H.LoadSlot(r.c.Globals(), i) }

// Verify audits heap and collector invariants; mutators must be
// quiescent. See gc.Collector.Verify.
func (r *Runtime) Verify() error { return r.c.Verify() }

// VerifyCardInvariant checks that every inter-generational pointer lies
// on a dirty card; mutators must be quiescent.
func (r *Runtime) VerifyCardInvariant() error { return r.c.VerifyCardInvariant() }

// Collector exposes the underlying collector for the experiment harness
// and tests inside this module.
func (r *Runtime) Collector() *gc.Collector { return r.c }

// Mutator is a program thread's handle: its allocation cache, root
// stack and write barrier. All methods must be called from the owning
// goroutine.
type Mutator struct {
	m  *gc.Mutator
	rt *Runtime
}

// Alloc creates an object with the given number of pointer slots and a
// total size of at least size bytes (pass 0 for the minimal size). The
// new object is colored with the current allocation color, per the
// paper's create routine. On heap exhaustion the mutator transparently
// waits for a full collection and retries, up to WithAllocRetries
// rounds; the returned error then satisfies errors.Is(err,
// ErrOutOfMemory). On a Closed runtime the error wraps ErrClosed.
func (m *Mutator) Alloc(slots, size int) (Ref, error) {
	return m.m.Alloc(slots, size)
}

// AllocCtx is Alloc with a deadline: the wait for a full collection to
// make room observes ctx, so a cancellation or deadline bounds how long
// an allocation may stall instead of blocking for as many collection
// rounds as the retry budget allows. When ctx expires mid-wait the
// error wraps both ErrStalled and ctx.Err(). The non-blocking fast path
// costs one extra ctx.Err check over Alloc.
func (m *Mutator) AllocCtx(ctx context.Context, slots, size int) (Ref, error) {
	return m.m.AllocCtx(ctx, slots, size)
}

// MustAlloc is Alloc that panics on failure; convenient in examples and
// workloads where exhausting the heap indicates a configuration error.
// The panic value is an *OOMPanic wrapping the allocation error, so a
// recover site can match it with errors.As and reach ErrOutOfMemory
// (or ErrClosed) through its chain.
func (m *Mutator) MustAlloc(slots, size int) Ref {
	r, err := m.Alloc(slots, size)
	if err != nil {
		panic(&OOMPanic{Err: err})
	}
	return r
}

// Write stores pointer y into slot i of object x through the write
// barrier (the update routine of Figures 1 and 4).
func (m *Mutator) Write(x Ref, i int, y Ref) { m.m.Update(x, i, y) }

// WriteBatch stores vals into slots 0..len(vals)-1 of object x through
// the write barrier, with the per-object bookkeeping (phase sampling,
// the card mark or remembered-set record) done once for the whole batch
// rather than per slot. It is equivalent to calling Write(x, j,
// vals[j]) for each j at a single program point; use it for bulk object
// initialization and dense slot rewrites. Stores that scatter across
// objects or slots gain nothing — keep those on Write.
func (m *Mutator) WriteBatch(x Ref, vals []Ref) { m.m.UpdateBatch(x, vals) }

// Read loads pointer slot i of object x (no read barrier, per DLG).
func (m *Mutator) Read(x Ref, i int) Ref { return m.m.Read(x, i) }

// Slots returns the slot count of object x.
func (m *Mutator) Slots(x Ref) int { return m.rt.c.H.Slots(x) }

// PushRoot appends v to the mutator's root stack and returns the slot
// index. Root slots model the thread stack: no write barrier applies.
func (m *Mutator) PushRoot(v Ref) int { return m.m.PushRoot(v) }

// SetRoot overwrites root slot i.
func (m *Mutator) SetRoot(i int, v Ref) { m.m.SetRoot(i, v) }

// Root returns root slot i.
func (m *Mutator) Root(i int) Ref { return m.m.Root(i) }

// NumRoots returns the root stack depth.
func (m *Mutator) NumRoots() int { return m.m.NumRoots() }

// PopRoots drops the top n root slots.
func (m *Mutator) PopRoots(n int) { m.m.PopRoots(n) }

// Safepoint responds to pending handshakes (the cooperate routine).
func (m *Mutator) Safepoint() { m.m.Cooperate() }

// Collect requests a collection and cooperates until it completes.
func (m *Mutator) Collect(full bool) { m.m.Collect(full) }

// Detach unregisters the mutator; it must not be used afterwards.
func (m *Mutator) Detach() { m.m.Detach() }
