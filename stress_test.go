package gengc

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// stressMutator hammers the heap from one goroutine: it keeps a window
// of live structures in its roots, continuously allocates, links,
// unlinks and publishes objects, while the background collector runs
// on the fly.
func stressMutator(t *testing.T, rt *Runtime, seed int64, ops int) {
	t.Helper()
	m := rt.NewMutator()
	defer m.Detach()
	rng := rand.New(rand.NewSource(seed))

	const window = 64
	slots := make([]int, 0, window)
	for i := 0; i < window; i++ {
		slots = append(slots, m.PushRoot(Nil))
	}
	for op := 0; op < ops; op++ {
		m.Safepoint()
		i := slots[rng.Intn(window)]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // allocate a small node and root it
			n, err := m.Alloc(rng.Intn(4), 16+rng.Intn(100))
			if err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			m.SetRoot(i, n)
		case 4, 5: // link: x.slot = y for two rooted objects
			x, y := m.Root(i), m.Root(slots[rng.Intn(window)])
			if x != Nil && m.Slots(x) > 0 {
				m.Write(x, rng.Intn(m.Slots(x)), y)
			}
		case 6: // drop a root
			m.SetRoot(i, Nil)
		case 7: // chase pointers from a root, re-rooting what we find
			x := m.Root(i)
			for d := 0; d < 4 && x != Nil && m.Slots(x) > 0; d++ {
				x = m.Read(x, rng.Intn(m.Slots(x)))
			}
			if x != Nil {
				m.SetRoot(slots[rng.Intn(window)], x)
			}
		case 8: // unlink: clear a slot
			x := m.Root(i)
			if x != Nil && m.Slots(x) > 0 {
				m.Write(x, rng.Intn(m.Slots(x)), Nil)
			}
		case 9: // publish to a global root, or read one back
			g := rng.Intn(16)
			if rng.Intn(2) == 0 {
				rt.SetGlobal(m, g, m.Root(i))
			} else {
				m.SetRoot(i, rt.Global(g))
			}
		}
	}
	// Validate everything reachable from our roots is alive and
	// consistent before detaching.
	for _, i := range slots {
		x := m.Root(i)
		for d := 0; d < 8 && x != Nil; d++ {
			ns := m.Slots(x)
			if ns < 0 || ns > 64 {
				t.Errorf("reachable object %#x has bogus slot count %d", x, ns)
				return
			}
			if ns == 0 {
				break
			}
			x = m.Read(x, rng.Intn(ns))
		}
	}
}

// TestStressConcurrent runs several mutators against the background
// collector in every mode and verifies the heap afterwards.
func TestStressConcurrent(t *testing.T) {
	ops := 40000
	if testing.Short() {
		ops = 8000
	}
	for _, mode := range []Mode{NonGenerational, Generational, GenerationalAging} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rt, err := New(WithConfig(Config{
				Mode:       mode,
				HeapBytes:  8 << 20,
				YoungBytes: 1 << 20,
				OldAge:     2,
				// Low enough that the workload's ~5 MB allocation
				// volume crosses it even in non-generational mode.
				FullThreshold: 0.3,
			}))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			// A fixed worker count: goroutines interleave even on a
			// single CPU, which is what exercises the on-the-fly
			// protocol.
			workers := 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					stressMutator(t, rt, seed, ops)
				}(int64(mode)*1000 + int64(w))
			}
			wg.Wait()
			if err := rt.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := rt.VerifyCardInvariant(); err != nil {
				t.Fatal(err)
			}
			// The allocation volume far exceeds the young threshold,
			// so the background trigger must have fired; a requested
			// cycle may still be in flight, so poll briefly.
			deadline := time.Now().Add(5 * time.Second)
			for rt.Stats().NumCycles == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if rt.Stats().NumCycles == 0 {
				t.Error("stress run triggered no collections; trigger is broken")
			}
		})
	}
}

// TestStressManyCollections forces frequent cycles with a tiny young
// generation so promotion, card clearing and the color toggle churn.
func TestStressManyCollections(t *testing.T) {
	for _, mode := range []Mode{Generational, GenerationalAging} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rt, err := New(WithMode(mode), WithHeapBytes(8<<20),
				WithYoungBytes(64<<10), WithOldAge(3))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					stressMutator(t, rt, seed, 30000)
				}(int64(w))
			}
			wg.Wait()
			if err := rt.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := rt.VerifyCardInvariant(); err != nil {
				t.Fatal(err)
			}
			st := rt.Stats()
			if st.NumCycles < 3 {
				t.Errorf("only %d cycles ran; expected frequent collections", st.NumCycles)
			}
		})
	}
}
