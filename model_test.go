package gengc

import (
	"math/rand"
	"testing"
)

// modelObject mirrors one simulated-heap object in a plain Go reference
// model: same slots, same links. The model is the oracle — after
// quiescent collections, everything reachable in the model must be
// alive in the simulated heap, and (after two full collections, which
// bound floating garbage under the color toggle) everything
// unreachable in the model must be gone.
type modelObject struct {
	ref   Ref
	slots []*modelObject
}

type model struct {
	rt    *Runtime
	m     *Mutator
	roots []*modelObject // parallel to mutator root slots
	all   []*modelObject // every object ever created (for death checks)
}

func newModel(t *testing.T, mode Mode) *model {
	t.Helper()
	rt, err := NewManual(WithMode(mode), WithHeapBytes(16<<20), WithYoungBytes(1<<20), WithOldAge(2))
	if err != nil {
		t.Fatal(err)
	}
	md := &model{rt: rt, m: rt.NewMutator()}
	for i := 0; i < 32; i++ {
		md.m.PushRoot(Nil)
		md.roots = append(md.roots, nil)
	}
	return md
}

func (md *model) alloc(t *testing.T, nslots int) *modelObject {
	t.Helper()
	ref, err := md.m.Alloc(nslots, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := &modelObject{ref: ref, slots: make([]*modelObject, nslots)}
	md.all = append(md.all, o)
	return o
}

func (md *model) setRoot(i int, o *modelObject) {
	md.roots[i] = o
	if o == nil {
		md.m.SetRoot(i, Nil)
	} else {
		md.m.SetRoot(i, o.ref)
	}
}

func (md *model) link(parent *modelObject, slot int, child *modelObject) {
	parent.slots[slot] = child
	if child == nil {
		md.m.Write(parent.ref, slot, Nil)
	} else {
		md.m.Write(parent.ref, slot, child.ref)
	}
}

// reachable computes the model's reachable set.
func (md *model) reachable() map[*modelObject]bool {
	seen := map[*modelObject]bool{}
	var stack []*modelObject
	for _, r := range md.roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range o.slots {
			if c != nil && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// check audits the simulated heap against the model: every
// model-reachable object must be alive with intact links; every
// model-dead object must be reclaimed (checked only when strict, i.e.
// after two back-to-back full collections with no mutation in between).
func (md *model) check(t *testing.T, strict bool) map[*modelObject]bool {
	t.Helper()
	live := md.reachable()
	h := md.rt.Collector().H
	for o := range live {
		if !h.ValidObject(o.ref) {
			t.Fatalf("model-reachable object %#x was reclaimed (color %v, age %d)",
				o.ref, h.Color(o.ref), h.Age(o.ref))
		}
		for i, c := range o.slots {
			got := md.m.Read(o.ref, i)
			want := Nil
			if c != nil {
				want = c.ref
			}
			if got != want {
				t.Fatalf("object %#x slot %d = %#x, model says %#x", o.ref, i, got, want)
			}
		}
	}
	if !strict {
		return live
	}
	// Death auditing cannot be per-object: a reclaimed cell may have
	// been reallocated to a new object, so the old address looking
	// "valid" proves nothing. Counting is identity-free and exact: at
	// a quiescent point after two back-to-back full collections (which
	// bound floating garbage under the color toggle), the heap must
	// hold exactly the model-reachable objects plus the runtime's own
	// global-roots object.
	if got, want := md.rt.HeapObjects(), int64(len(live)+1); got != want {
		t.Fatalf("heap holds %d objects after two full collections, model expects %d", got, want)
	}
	kept := md.all[:0]
	for _, o := range md.all {
		if live[o] {
			kept = append(kept, o)
		}
	}
	md.all = kept
	return live
}

// prune drops pool entries whose objects the model no longer reaches:
// a real mutator cannot hold a reference to a reclaimed object, so the
// test must not either (linking a collected ref would be a dangling
// store, something the type system prevents in a real runtime).
func prune(pool []*modelObject, live map[*modelObject]bool) []*modelObject {
	kept := pool[:0]
	for _, o := range pool {
		if live[o] {
			kept = append(kept, o)
		}
	}
	return kept
}

// TestModelOracle drives random graph mutations against each collector
// mode and audits against the reference model at collection boundaries.
func TestModelOracle(t *testing.T) {
	steps := 6000
	if testing.Short() {
		steps = 1500
	}
	for _, mode := range []Mode{NonGenerational, Generational, GenerationalAging} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			md := newModel(t, mode)
			defer md.rt.Close()
			rng := rand.New(rand.NewSource(int64(mode) + 1))
			var pool []*modelObject // objects we still hold Go references to
			for step := 0; step < steps; step++ {
				md.m.Safepoint()
				switch rng.Intn(10) {
				case 0, 1, 2:
					o := md.alloc(t, rng.Intn(4))
					md.setRoot(rng.Intn(len(md.roots)), o)
					pool = append(pool, o)
				case 3, 4:
					if len(pool) > 0 {
						p := pool[rng.Intn(len(pool))]
						if len(p.slots) > 0 {
							var c *modelObject
							if rng.Intn(4) > 0 && len(pool) > 1 {
								c = pool[rng.Intn(len(pool))]
							}
							md.link(p, rng.Intn(len(p.slots)), c)
						}
					}
				case 5:
					md.setRoot(rng.Intn(len(md.roots)), nil)
				case 6:
					if len(pool) > 512 {
						pool = pool[len(pool)/2:] // forget Go-side handles
					}
				case 7:
					if step%7 == 0 {
						md.m.Collect(false)
						pool = prune(pool, md.check(t, false))
					}
				case 8:
					if step%13 == 0 {
						md.m.Collect(true)
						pool = prune(pool, md.check(t, false))
					}
				default:
					// read probe
					if len(pool) > 0 {
						p := pool[rng.Intn(len(pool))]
						for i, c := range p.slots {
							want := Nil
							if c != nil {
								want = c.ref
							}
							if md.m.Read(p.ref, i) != want {
								t.Fatalf("read mismatch at %#x slot %d", p.ref, i)
							}
						}
					}
				}
			}
			// Quiescent strict audit: two fulls bound floating garbage.
			md.m.Collect(true)
			md.m.Collect(true)
			md.check(t, true)
			if err := md.rt.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := md.rt.VerifyCardInvariant(); err != nil {
				t.Fatal(err)
			}
			md.m.Detach()
		})
	}
}

// TestModelOracleToggleFree runs the oracle against the original-DLG
// baseline as well.
func TestModelOracleToggleFree(t *testing.T) {
	rtCfg := Config{Mode: NonGenerational, HeapBytes: 16 << 20,
		YoungBytes: 1 << 20, DisableColorToggle: true}
	rt, err := NewManual(WithConfig(rtCfg))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	md := &model{rt: rt, m: rt.NewMutator()}
	for i := 0; i < 16; i++ {
		md.m.PushRoot(Nil)
		md.roots = append(md.roots, nil)
	}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 3000; step++ {
		md.m.Safepoint()
		switch rng.Intn(6) {
		case 0, 1, 2:
			o := md.alloc(t, rng.Intn(3))
			md.setRoot(rng.Intn(len(md.roots)), o)
		case 3:
			md.setRoot(rng.Intn(len(md.roots)), nil)
		case 4:
			if step%11 == 0 {
				md.m.Collect(true)
				md.check(t, false)
			}
		default:
		}
	}
	md.m.Collect(true)
	md.m.Collect(true)
	md.check(t, true)
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	md.m.Detach()
}
