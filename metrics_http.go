package gengc

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"gengc/internal/heap"
)

// Prometheus text exposition (version 0.0.4) for the runtime's
// observability surface. MetricsHandler renders the same facts as
// Snapshot — collection counters, heap occupancy, allocator and barrier
// counters, the heap demographics, and the fleet pause histogram — as
// scrapeable metrics, so a runtime embedded in a service plugs into an
// existing Prometheus/Grafana stack without bespoke glue. cmd/gcmon
// mounts this handler on /metrics.

// pauseBucketBounds are the gengc_pause_seconds bucket upper bounds in
// nanoseconds: half-decade steps from 1µs to 1s. The internal log-linear
// histogram is far finer (~6% relative error); CumulativeLE collapses it
// onto these fixed edges so the exposition stays a readable size and
// every scrape sees identical bucket boundaries.
var pauseBucketBounds = []int64{
	1_000, 5_000, // 1µs, 5µs
	10_000, 50_000, // 10µs, 50µs
	100_000, 500_000, // 100µs, 500µs
	1_000_000, 5_000_000, // 1ms, 5ms
	10_000_000, 50_000_000, // 10ms, 50ms
	100_000_000, 500_000_000, // 100ms, 500ms
	1_000_000_000, // 1s
}

// MetricsHandler returns an http.Handler serving the runtime's metrics
// in the Prometheus text format. Every scrape takes fresh snapshots (the
// counters are atomics; the demographics a short mutex hold), so the
// handler is safe to serve while mutators allocate and cycles run.
func (r *Runtime) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		r.writeMetrics(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// writeMetrics renders the full exposition into b.
func (r *Runtime) writeMetrics(b *strings.Builder) {
	s := r.Snapshot()

	writeInfo(b, r.c.RunMeta())

	counter(b, "gengc_cycles_total", "Completed collection cycles (partial and full).", s.Cycles)
	counter(b, "gengc_full_cycles_total", "Completed full (whole-heap) collections.", s.Fulls)
	gauge(b, "gengc_heap_bytes", "Live heap bytes after the last collection.", s.HeapBytes)
	gauge(b, "gengc_heap_objects", "Live heap objects after the last collection.", s.HeapObjects)
	counter(b, "gengc_stalls_total", "Handshake watchdog stall reports.", s.Stalls)
	counter(b, "gengc_aborted_cycles_total", "Collection cycles abandoned mid-protocol.", s.AbortedCycles)
	counter(b, "gengc_trace_drops_total", "Trace events dropped by saturated rings.", s.TraceDrops)
	gauge(b, "gengc_trace_degraded", "1 when the tracer has entered degraded mode.", boolGauge(s.TraceDegraded))

	d := s.Demographics
	counter(b, "gengc_promoted_objects_total", "Objects promoted into the old generation.", d.PromotedObjects)
	counter(b, "gengc_promoted_bytes_total", "Bytes promoted into the old generation.", d.PromotedBytes)
	counter(b, "gengc_survived_objects_total", "Young objects surviving a partial collection (aging objects count once per survival).", d.SurvivedObjects)
	counter(b, "gengc_trace_bytes_total", "Bytes blackened by all traces.", d.TraceBytes)
	counter(b, "gengc_intergen_scanned_total", "Old objects re-scanned for old-to-young pointers.", d.InterGenScanned)
	counter(b, "gengc_intergen_bytes_total", "Byte volume of inter-generational re-scans.", d.InterGenBytes)
	counter(b, "gengc_dirty_cards_total", "Cards found dirty at card-scan time.", d.DirtyCards)
	counter(b, "gengc_cards_scanned_total", "Cards examined by card scans.", d.CardsScanned)
	counter(b, "gengc_area_scanned_bytes_total", "Heap bytes examined while scanning dirty cards.", d.AreaScanned)
	gaugeF(b, "gengc_promotion_rate", "Smoothed promoted-bytes-per-young-byte estimate (EWMA).", s.PromotionRate)

	if len(d.DeathsByClass) > 0 {
		help(b, "gengc_deaths_total", "Objects swept dead, by allocator size class in bytes (class=\"large\" for whole-block objects).", "counter")
		for i, n := range d.DeathsByClass {
			if n == 0 {
				continue
			}
			label := "large"
			if i < heap.NumClasses {
				label = fmt.Sprintf("%d", heap.ClassSize(i))
			}
			fmt.Fprintf(b, "gengc_deaths_total{class=%q} %d\n", label, n)
		}
	}
	if len(d.SurvivalByAge) > 0 {
		help(b, "gengc_survival_total", "Aging-mode survivals by object age at the time of survival.", "counter")
		for age, n := range d.SurvivalByAge {
			if n == 0 {
				continue
			}
			fmt.Fprintf(b, "gengc_survival_total{age=\"%d\"} %d\n", age, n)
		}
	}

	a := s.Alloc
	counter(b, "gengc_alloc_refills_total", "Mutator cache refills from the central shards.", a.Refills)
	counter(b, "gengc_alloc_flushes_total", "Mutator cache flushes back to the central shards.", a.Flushes)
	counter(b, "gengc_alloc_shard_locks_total", "Central shard lock acquisitions.", a.ShardLocks)
	counter(b, "gengc_alloc_shard_contended_total", "Central shard lock acquisitions that contended.", a.ShardContended)
	counter(b, "gengc_alloc_page_locks_total", "Page allocator lock acquisitions.", a.PageLocks)
	counter(b, "gengc_alloc_page_contended_total", "Page allocator lock acquisitions that contended.", a.PageContended)
	gauge(b, "gengc_alloc_free_cells", "Free cells on the central free lists.", a.FreeCells)
	gauge(b, "gengc_alloc_cached_cells", "Cells held in mutator caches (approximate).", a.CachedCells)

	bar := s.Barrier
	counter(b, "gengc_barrier_flushes_total", "Batched-barrier buffer drains.", bar.Flushes)
	counter(b, "gengc_barrier_buffered_stores_total", "Pointer stores deferred through the batched barrier.", bar.BufferedStores)
	counter(b, "gengc_barrier_card_dedup_hits_total", "Card entries elided by same-card deduplication.", bar.CardDedupHits)

	writePauseHistogram(b, r)

	if s.Admission.Enabled {
		adm := s.Admission
		counter(b, "gengc_admission_admitted_total", "Requests granted an in-flight token by the admission controller.", adm.Admitted)
		help(b, "gengc_admission_shed_total", "Requests shed by the admission controller, by cause.", "counter")
		fmt.Fprintf(b, "gengc_admission_shed_total{cause=\"queuefull\"} %d\n", adm.ShedQueueFull)
		fmt.Fprintf(b, "gengc_admission_shed_total{cause=\"timeout\"} %d\n", adm.ShedTimeout)
		fmt.Fprintf(b, "gengc_admission_shed_total{cause=\"degraded\"} %d\n", adm.ShedDegraded)
		fmt.Fprintf(b, "gengc_admission_shed_total{cause=\"draining\"} %d\n", adm.ShedDraining)
		counter(b, "gengc_admission_retries_total", "Transient-failure retries reported by admitted requests.", adm.Retries)
		counter(b, "gengc_admission_degraded_entries_total", "Transitions into degraded mode.", adm.DegradedEnters)
		gauge(b, "gengc_admission_degraded", "1 while the admission controller is in degraded mode.", boolGauge(adm.Degraded))
		gauge(b, "gengc_admission_queued", "Requests currently waiting for an in-flight token.", adm.Queued)
		gauge(b, "gengc_admission_inflight", "Requests currently holding an in-flight token.", adm.InFlight)
	}
	if h := r.c.RequestHistogram(); h != nil {
		help(b, "gengc_request_seconds", "End-to-end request latencies observed via ObserveRequest (queue wait + allocation + retries).", "histogram")
		cum := h.CumulativeLE(pauseBucketBounds)
		for i, bound := range pauseBucketBounds {
			fmt.Fprintf(b, "gengc_request_seconds_bucket{le=%q} %d\n",
				formatSeconds(bound), cum[i])
		}
		fmt.Fprintf(b, "gengc_request_seconds_bucket{le=\"+Inf\"} %d\n", cum[len(pauseBucketBounds)])
		fmt.Fprintf(b, "gengc_request_seconds_sum %s\n", formatSeconds(int64(h.Total())))
		fmt.Fprintf(b, "gengc_request_seconds_count %d\n", h.Count())
		help(b, "gengc_request_quantile_seconds", "Bucketed request-latency quantiles (upper bucket edge, <=6% relative error).", "gauge")
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(b, "gengc_request_quantile_seconds{q=%q} %s\n",
				q.label, formatSeconds(int64(h.Quantile(q.q))))
		}
		counter(b, "gengc_request_slo_breaches_total", "Observed request latencies exceeding the configured request SLO.", s.RequestSLOBreaches)
	}

	counter(b, "gengc_pause_slo_breaches_total", "Recorded pauses exceeding the configured pause SLO.", s.SLOBreaches)
	if fr := r.c.FlightRecorder(); fr != nil {
		counter(b, "gengc_flight_recorder_dumps_total", "Flight-recorder dumps captured.", fr.DumpCount())
		counter(b, "gengc_flight_recorder_triggers_total", "Flight-recorder trigger attempts (including rate-limited ones).", fr.TriggerCount())
		gauge(b, "gengc_flight_recorder_events", "Trace events currently buffered in the flight-recorder ring.", fr.EventCount())
	}
}

// writePauseHistogram renders the fleet pause histogram as a native
// Prometheus histogram in seconds, plus bucketed quantile gauges for
// dashboards that do not compute histogram_quantile.
func writePauseHistogram(b *strings.Builder, r *Runtime) {
	h := r.c.PauseHistogram()
	help(b, "gengc_pause_seconds", "Mutator-visible pause durations (handshake and ack responses, allocation stalls).", "histogram")
	cum := h.CumulativeLE(pauseBucketBounds)
	for i, bound := range pauseBucketBounds {
		fmt.Fprintf(b, "gengc_pause_seconds_bucket{le=%q} %d\n",
			formatSeconds(bound), cum[i])
	}
	fmt.Fprintf(b, "gengc_pause_seconds_bucket{le=\"+Inf\"} %d\n", cum[len(pauseBucketBounds)])
	fmt.Fprintf(b, "gengc_pause_seconds_sum %s\n", formatSeconds(int64(h.Total())))
	fmt.Fprintf(b, "gengc_pause_seconds_count %d\n", h.Count())

	help(b, "gengc_pause_quantile_seconds", "Bucketed pause quantiles (upper bucket edge, <=6% relative error).", "gauge")
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
		fmt.Fprintf(b, "gengc_pause_quantile_seconds{q=%q} %s\n",
			q.label, formatSeconds(int64(h.Quantile(q.q))))
	}
}

// writeInfo renders the run metadata stamped into the trace start event
// as a gengc_info gauge with one label per key=value pair.
func writeInfo(b *strings.Builder, meta string) {
	help(b, "gengc_info", "Run metadata: configuration and environment of this runtime.", "gauge")
	var labels []string
	for _, kv := range strings.Fields(meta) {
		if k, v, ok := strings.Cut(kv, "="); ok {
			labels = append(labels, fmt.Sprintf("%s=%q", k, v))
		}
	}
	fmt.Fprintf(b, "gengc_info{%s} 1\n", strings.Join(labels, ","))
}

func help(b *strings.Builder, name, doc, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, doc, name, typ)
}

func counter(b *strings.Builder, name, doc string, v int64) {
	help(b, name, doc, "counter")
	fmt.Fprintf(b, "%s %d\n", name, v)
}

func gauge(b *strings.Builder, name, doc string, v int64) {
	help(b, name, doc, "gauge")
	fmt.Fprintf(b, "%s %d\n", name, v)
}

func gaugeF(b *strings.Builder, name, doc string, v float64) {
	help(b, name, doc, "gauge")
	fmt.Fprintf(b, "%s %g\n", name, v)
}

func boolGauge(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// formatSeconds renders a nanosecond count as seconds with enough
// precision to round-trip (1µs = 1e-06).
func formatSeconds(ns int64) string {
	return fmt.Sprintf("%g", time.Duration(ns).Seconds())
}
