package gengc_test

// Round-trip tests for the live exposition surface: the Prometheus
// text handler and the expvar snapshot must be serveable while cycles
// run, and once the runtime quiesces both must agree exactly with
// Runtime.Snapshot().

import (
	"bufio"
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gengc"
	"gengc/internal/workload"
)

// scrapeValue extracts one sample (exact name, or the name{...} labeled
// form when name carries the label set) from a Prometheus exposition.
func scrapeValue(t *testing.T, body, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("sample %s: %v", name, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestMetricsExpvarRoundTrip churns mutators against a background
// collector while scraping /metrics and the expvar snapshot, then
// quiesces and checks both exposition paths against Snapshot() value
// for value.
func TestMetricsExpvarRoundTrip(t *testing.T) {
	rt, err := gengc.New(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(16<<20),
		gengc.WithYoungBytes(1<<20),
		gengc.WithFlightRecorder(64),
		gengc.WithPauseSLO(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	const expvarName = "gengc_test_roundtrip"
	if err := rt.PublishExpvar(expvarName); err != nil {
		t.Fatal(err)
	}
	if err := rt.PublishExpvar(expvarName); err == nil {
		t.Fatal("PublishExpvar accepted a duplicate name")
	}
	handler := rt.MetricsHandler()
	scrape := func() (string, string) {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String(), rec.Header().Get("Content-Type")
	}

	const muts, ops = 4, 20_000
	churn := workload.BarrierChurn{}
	var wg sync.WaitGroup
	errs := make(chan error, muts)
	for id := 0; id < muts; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := rt.NewMutator()
			defer m.Detach()
			if err := churn.RunThread(m, ops); err != nil {
				errs <- err
			}
		}()
	}
	// Scrape both paths mid-flight: the values race the workload and are
	// discarded, but serving must not wedge a cycle or trip -race.
	for i := 0; i < 8; i++ {
		body, ctype := scrape()
		if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
			t.Fatalf("content type = %q, want Prometheus text 0.0.4", ctype)
		}
		if !strings.Contains(body, "gengc_cycles_total") {
			t.Fatal("mid-flight scrape lacks gengc_cycles_total")
		}
		_ = expvar.Get(expvarName).String()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent: no mutators, one settling full collection, no pacing
	// pressure left to start another cycle. Exposition and snapshot must
	// now agree exactly.
	rt.Collect(true)
	body, _ := scrape()
	var fromVar gengc.Snapshot
	if err := json.Unmarshal([]byte(expvar.Get(expvarName).String()), &fromVar); err != nil {
		t.Fatalf("expvar snapshot does not unmarshal: %v", err)
	}
	s := rt.Snapshot()

	if s.Cycles < 2 || s.Demographics.PromotedBytes == 0 {
		t.Fatalf("workload too quiet to validate: cycles=%d promoted=%d",
			s.Cycles, s.Demographics.PromotedBytes)
	}
	checks := []struct {
		metric string
		want   int64
	}{
		{"gengc_cycles_total", s.Cycles},
		{"gengc_full_cycles_total", s.Fulls},
		{"gengc_heap_objects", s.HeapObjects},
		{"gengc_promoted_objects_total", s.Demographics.PromotedObjects},
		{"gengc_promoted_bytes_total", s.Demographics.PromotedBytes},
		{"gengc_survived_objects_total", s.Demographics.SurvivedObjects},
		{"gengc_dirty_cards_total", s.Demographics.DirtyCards},
		{"gengc_pause_slo_breaches_total", s.SLOBreaches},
	}
	for _, c := range checks {
		if got := scrapeValue(t, body, c.metric); int64(got) != c.want {
			t.Errorf("%s scraped %v, snapshot %d", c.metric, got, c.want)
		}
	}
	if got := scrapeValue(t, body, `gengc_pause_quantile_seconds{q="0.99"}`); got != s.Fleet.P99.Seconds() {
		t.Errorf("p99 scraped %v, snapshot %v", got, s.Fleet.P99.Seconds())
	}

	if fromVar.Cycles != s.Cycles || fromVar.Fulls != s.Fulls {
		t.Errorf("expvar cycles/fulls = %d/%d, snapshot %d/%d",
			fromVar.Cycles, fromVar.Fulls, s.Cycles, s.Fulls)
	}
	if fromVar.Demographics.PromotedBytes != s.Demographics.PromotedBytes {
		t.Errorf("expvar promoted bytes = %d, snapshot %d",
			fromVar.Demographics.PromotedBytes, s.Demographics.PromotedBytes)
	}
	if fromVar.FlightRecorderDumps != s.FlightRecorderDumps {
		t.Errorf("expvar flight dumps = %d, snapshot %d",
			fromVar.FlightRecorderDumps, s.FlightRecorderDumps)
	}
}
