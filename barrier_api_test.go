package gengc

import (
	"errors"
	"testing"
)

func TestWithBarrierValidation(t *testing.T) {
	if _, err := NewManual(WithBarrier(BarrierMode(9))); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("invalid barrier mode: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := NewManual(WithMode(NonGenerational), WithBarrier(BarrierBatched),
		WithDisableColorToggle(true)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("batched + toggle-free: err = %v, want ErrInvalidConfig", err)
	}
	rt, err := NewManual(WithMode(Generational), WithBarrier(BarrierBatched))
	if err != nil {
		t.Fatalf("WithBarrier(BarrierBatched) rejected: %v", err)
	}
	if got := rt.Snapshot().Barrier.Mode; got != BarrierBatched {
		t.Errorf("Snapshot().Barrier.Mode = %v, want batched", got)
	}
	rt.Close()
}

// TestWriteBatchAndSnapshotBarrier: WriteBatch stores land in the slots
// and, under the batched barrier, the flush counters surface through
// Snapshot.
func TestWriteBatchAndSnapshotBarrier(t *testing.T) {
	rt, err := New(WithMode(Generational), WithHeapBytes(8<<20),
		WithBarrier(BarrierBatched))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	x := m.MustAlloc(4, 0)
	m.PushRoot(x)
	vals := make([]Ref, 4)
	for i := range vals {
		vals[i] = m.MustAlloc(0, 16)
	}
	m.WriteBatch(x, vals)
	for i, want := range vals {
		if got := m.Read(x, i); got != want {
			t.Errorf("slot %d = %d, want %d", i, got, want)
		}
	}
	m.Detach() // detach forces the final flush
	b := rt.Snapshot().Barrier
	if b.Flushes == 0 {
		t.Errorf("Snapshot.Barrier.Flushes = 0 after batched stores")
	}
	if b.BufferedStores < int64(len(vals)) {
		t.Errorf("Snapshot.Barrier.BufferedStores = %d, want >= %d", b.BufferedStores, len(vals))
	}
}

// TestWriteBatchMatchesWrite: both write APIs leave the same slot
// contents under the default (eager) barrier.
func TestWriteBatchMatchesWrite(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()
	if got := rt.Snapshot().Barrier.Mode; got != BarrierEager {
		t.Fatalf("default barrier = %v, want eager", got)
	}
	a := m.MustAlloc(3, 0)
	b := m.MustAlloc(3, 0)
	m.PushRoot(a)
	m.PushRoot(b)
	vals := []Ref{m.MustAlloc(0, 16), m.MustAlloc(0, 16), Nil}
	m.WriteBatch(a, vals)
	for i, v := range vals {
		m.Write(b, i, v)
	}
	for i := range vals {
		if m.Read(a, i) != m.Read(b, i) {
			t.Errorf("slot %d: WriteBatch gave %d, Write gave %d", i, m.Read(a, i), m.Read(b, i))
		}
	}
	if s := rt.Snapshot().Barrier; s.Flushes != 0 || s.BufferedStores != 0 {
		t.Errorf("eager barrier advanced batched counters: %+v", s)
	}
}
