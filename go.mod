module gengc

go 1.23
