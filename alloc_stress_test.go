package gengc

import (
	"fmt"
	"sync"
	"testing"
)

// allocChurnMutator is an allocation-heavy mutator for the shard stress
// test: it cycles through mixed size classes (each mutator offset so
// concurrent mutators mostly hit different classes, the pattern the
// sharded central lists are built for), keeps a rolling window of live
// objects rooted, and drops the rest as garbage for the concurrent
// cycles to reclaim.
func allocChurnMutator(t *testing.T, rt *Runtime, id, ops int) {
	m := rt.NewMutator()
	defer m.Detach()
	sizes := []int{16, 40, 96, 224, 480, 992}
	const window = 128
	roots := make([]int, window)
	for i := range roots {
		roots[i] = m.PushRoot(Nil)
	}
	for op := 0; op < ops; op++ {
		n, err := m.Alloc(2, sizes[(op+id)%len(sizes)])
		if err != nil {
			t.Errorf("mutator %d: alloc: %v", id, err)
			return
		}
		m.SetRoot(roots[op%window], n)
		if op%64 == 0 {
			// Some structure, so the trace has pointers to chase.
			if x := m.Root(roots[(op/2)%window]); x != Nil {
				m.Write(x, 0, n)
			}
			m.Safepoint()
		}
	}
}

// TestAllocShardStressUnderCycles churns allocations from several
// mutators while partial and full collections run continuously, for
// both the degenerate single central lock and the per-class shards.
// Afterwards it requires Verify (allocator bookkeeping + exact shard
// counter reconciliation + reachability) to pass and the Stats totals
// to agree with the heap's allocation counters. Run under -race by
// `make race`.
func TestAllocShardStressUnderCycles(t *testing.T) {
	ops := 30000
	if testing.Short() {
		ops = 6000
	}
	for _, shards := range []int{1, 0} { // single lock vs per-class default
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rt, err := NewManual(
				WithMode(GenerationalAging),
				WithHeapBytes(16<<20),
				WithYoungBytes(256<<10),
				WithOldAge(2),
				WithAllocShards(shards),
				WithSelfCheck(true),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()

			// Cycle driver: alternate minor and full collections for
			// the whole run, so refills, flushes and sweep frees hit
			// the shards concurrently from both sides.
			stop := make(chan struct{})
			var driver sync.WaitGroup
			driver.Add(1)
			go func() {
				defer driver.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					rt.Collect(i%3 == 0)
				}
			}()

			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					allocChurnMutator(t, rt, id, ops)
				}(w)
			}
			wg.Wait()
			close(stop)
			driver.Wait()

			if err := rt.Verify(); err != nil {
				t.Fatal(err)
			}
			if err, n := rt.Collector().SelfCheckErr(); err != nil {
				t.Fatalf("%d self-check violations, first: %v", n, err)
			}
			// Stats totals must agree with the allocator's shard
			// counters once everything is quiescent.
			h := rt.Collector().H
			st := h.Census()
			if int64(st.ObjectBytes) != h.AllocatedBytes() {
				t.Errorf("census %d object bytes, counters say %d",
					st.ObjectBytes, h.AllocatedBytes())
			}
			if int64(st.Objects) != h.AllocatedObjects() {
				t.Errorf("census %d objects, counters say %d",
					st.Objects, h.AllocatedObjects())
			}
			if st.Alloc.CachedCells != 0 {
				t.Errorf("%d cells still marked cached after all mutators detached",
					st.Alloc.CachedCells)
			}
			if shards == 0 && st.Alloc.Shards != 13 {
				t.Errorf("default shard count = %d, want one per class (13)", st.Alloc.Shards)
			}
		})
	}
}
