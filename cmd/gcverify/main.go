// Command gcverify runs the deterministic protocol-verification
// harness (internal/modelcheck): each named scenario is a micro-heap
// workload whose collector/mutator interleavings are enumerated
// bounded-exhaustively — every schedule with at most -preempt
// preemptions, up to -depth steps — under a virtual scheduler, with
// the collector's shared invariants asserted after every step of every
// schedule and the scenario's needle object audited at the end.
//
//	gcverify -scenario all                 # verify every scenario
//	gcverify -scenario flush-vs-ack -v     # one scenario, per-run detail
//	gcverify -list                         # what exists, and why
//
// A violation writes a minimized, replayable schedule to -out and
// exits 1. Replaying it (here or on another machine — the run is a
// pure function of the choice sequence) re-executes the exact failing
// interleaving:
//
//	gcverify -replay gcverify-replay.json
//
// -break flush-before-ack re-introduces the historical "respond before
// flushing the batched barrier" ordering bug so the harness can
// demonstrate a catch; the verify-protocol make target runs that
// negative leg and requires the failure.
//
// Exit status: 0 all explored schedules clean, 1 violation found (or
// replay reproduced), 2 usage or internal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"gengc/internal/modelcheck"
)

func main() {
	var (
		scenario = flag.String("scenario", "all", "scenario name or \"all\"")
		list     = flag.Bool("list", false, "list scenarios and exit")
		depth    = flag.Int("depth", 400, "per-run step bound")
		preempt  = flag.Int("preempt", 1, "preemption bound (CHESS-style; forced switches are free)")
		maxRuns  = flag.Int("maxruns", 50000, "exploration run cap (reported as truncated when hit)")
		breakStr = flag.String("break", "", "re-introduce a historical bug: flush-before-ack")
		replay   = flag.String("replay", "", "replay a failing schedule from this file instead of exploring")
		out      = flag.String("out", "gcverify-replay.json", "where a violation's minimized schedule is written")
		verbose  = flag.Bool("v", false, "print the minimized schedule on failure")
	)
	flag.Parse()

	if *list {
		for _, sc := range modelcheck.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}

	if *replay != "" {
		os.Exit(runReplay(*replay, *verbose))
	}

	opts := modelcheck.Options{Depth: *depth, Preempt: *preempt, MaxRuns: *maxRuns}
	switch *breakStr {
	case "":
	case "flush-before-ack":
		opts.BreakFlushBeforeAck = true
	default:
		fmt.Fprintf(os.Stderr, "gcverify: unknown -break mode %q (want flush-before-ack)\n", *breakStr)
		os.Exit(2)
	}

	var scenarios []*modelcheck.Scenario
	if *scenario == "all" {
		scenarios = modelcheck.Scenarios()
	} else {
		sc, err := modelcheck.ByName(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcverify: %v (use -list)\n", err)
			os.Exit(2)
		}
		scenarios = []*modelcheck.Scenario{sc}
	}

	failed := false
	for _, sc := range scenarios {
		rep, err := modelcheck.Explore(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcverify: %s: %v\n", sc.Name, err)
			os.Exit(2)
		}
		status := "ok"
		if rep.Truncated {
			status = "TRUNCATED"
		}
		if rep.Violation != nil {
			status = "VIOLATION"
		}
		fmt.Printf("%-18s %-9s runs=%-6d pruned=%d(sleep)+%d(preempt) maxSteps=%d maxVTime=%v depth=%d preempt=%d\n",
			sc.Name, status, rep.Runs, rep.SleepPruned, rep.PreemptSkipped,
			rep.MaxSteps, rep.MaxVTime, opts.Depth, opts.Preempt)
		if rep.DepthCapped > 0 {
			fmt.Printf("%-18s           %d runs hit the depth bound\n", "", rep.DepthCapped)
		}
		if rep.PrefixMismatches > 0 {
			fmt.Printf("%-18s           %d prefix mismatches — determinism is broken\n", "", rep.PrefixMismatches)
			failed = true
		}
		if rep.Violation != nil {
			failed = true
			v := rep.Violation
			fmt.Printf("  violation: %s\n", v.Message)
			fmt.Printf("  minimized: prefix %d of %d choices (%d minimization runs)\n",
				v.PrefixLen, len(v.Schedule), v.MinRuns)
			if *verbose {
				for i, ch := range v.Schedule {
					marker := " "
					if i == v.PrefixLen-1 {
						marker = "<" // last controlled choice; the rest is the default policy
					}
					fmt.Printf("    %3d %s %v\n", i, marker, ch)
				}
			}
			r := modelcheck.NewReplay(rep, opts)
			if err := r.WriteFile(*out); err != nil {
				fmt.Fprintf(os.Stderr, "gcverify: writing %s: %v\n", *out, err)
				os.Exit(2)
			}
			fmt.Printf("  replay written to %s\n", *out)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runReplay re-executes a recorded failing schedule and reports
// whether it still reproduces. Exit codes mirror exploration: 1 means
// the violation reproduced (the expected outcome for a fresh replay
// file), 0 means it did not.
func runReplay(path string, verbose bool) int {
	r, err := modelcheck.LoadReplay(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcverify: %v\n", err)
		return 2
	}
	res, err := r.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcverify: replay: %v\n", err)
		return 2
	}
	if verbose {
		for i, ch := range res.Schedule() {
			fmt.Printf("  %3d %v\n", i, ch)
		}
	}
	if res.PrefixMismatch {
		fmt.Printf("%s: STALE replay — recorded choices no longer match the enabled sets\n", r.Scenario)
		return 2
	}
	if res.Violation != "" {
		fmt.Printf("%s: reproduced in %d steps: %s\n", r.Scenario, res.Steps, res.Violation)
		return 1
	}
	fmt.Printf("%s: violation did NOT reproduce (%d steps, clean)\n", r.Scenario, res.Steps)
	return 0
}
