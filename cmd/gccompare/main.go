// Command gccompare measures one profile's elapsed time under the
// generational and non-generational collectors (median of N repeats)
// and reports the improvement percentage — one cell of the paper's
// Figures 8, 9 and 16–21, runnable in isolation.
//
//	gccompare -profile Anagram -repeats 5 -scale 0.5
//	gccompare -profile all
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"gengc"
	"gengc/internal/workload"
)

func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func main() {
	var (
		profile  = flag.String("profile", "all", "profile name, or 'all'")
		scale    = flag.Float64("scale", 0.5, "run-length multiplier")
		repeats  = flag.Int("repeats", 5, "repeats per configuration (median reported)")
		cardSize = flag.Int("card", 16, "card size in bytes")
		youngMB  = flag.Int("young", 4, "young generation size in MB")
		pageCost = flag.Int("pagecost", 4000, "simulated memory cost per page touch")
		aging    = flag.Bool("aging", false, "compare the aging collector instead of simple promotion")
		oldAge   = flag.Int("age", 0, "aging tenure threshold (0 = default)")
		seed     = flag.Int64("seed", 42, "base workload seed")
	)
	flag.Parse()

	names := []string{*profile}
	if *profile == "all" {
		names = nil
		for _, p := range workload.All() {
			names = append(names, p.Name)
		}
	}
	genMode := gengc.Generational
	if *aging {
		genMode = gengc.GenerationalAging
	}
	for _, name := range names {
		p, ok := workload.ByName(name)
		if !ok {
			log.Fatalf("unknown profile %q", name)
		}
		p = p.Scale(*scale)
		var med [2]time.Duration
		var stats [2]string
		for mi, mode := range []gengc.Mode{genMode, gengc.NonGenerational} {
			var ds []time.Duration
			for r := 0; r < *repeats; r++ {
				res, err := workload.Run(p, gengc.Config{
					Mode:          mode,
					CardBytes:     *cardSize,
					YoungBytes:    *youngMB << 20,
					OldAge:        *oldAge,
					PageCostSpins: *pageCost,
				}, *seed+int64(r)*1000)
				if err != nil {
					log.Fatal(err)
				}
				ds = append(ds, res.Elapsed)
				if r == *repeats/2 {
					s := res.Summary
					stats[mi] = fmt.Sprintf("%dp/%df gc%%=%.0f maxpause=%v",
						s.NumPartial, s.NumFull, s.GCActivePct,
						res.Pauses.Max.Round(time.Microsecond))
				}
			}
			med[mi] = median(ds)
		}
		imp := 100 * float64(med[1]-med[0]) / float64(med[1])
		fmt.Printf("%-14s improvement %6.1f%%   %v=%-9v [%s]   baseline=%-9v [%s]\n",
			name, imp, genMode, med[0].Round(time.Millisecond), stats[0],
			med[1].Round(time.Millisecond), stats[1])
	}
}
