// Command gctrace runs one benchmark profile with a per-cycle GC event
// log and prints the final characterization — the single-run view behind
// the paper's Figures 10–15.
//
//	gctrace -profile _213_javac -mode gen -scale 0.5
//	gctrace -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gengc"
	"gengc/internal/metrics"
	"gengc/internal/workload"
)

func main() {
	var (
		profile  = flag.String("profile", "Anagram", "workload profile")
		modeStr  = flag.String("mode", "gen", "collector: non|gen|aging")
		barrStr  = flag.String("barrier", "eager", "write barrier: eager|batched")
		scale    = flag.Float64("scale", 0.5, "run-length multiplier")
		cardSize = flag.Int("card", 16, "card size in bytes")
		youngMB  = flag.Int("young", 4, "young generation size in MB")
		oldAge   = flag.Int("age", 0, "aging tenure threshold (0 = default)")
		pageCost = flag.Int("pagecost", 0, "simulated memory cost per page touch (spins)")
		workers  = flag.Int("workers", 1, "parallel collector workers")
		seed     = flag.Int64("seed", 42, "workload seed")
		traceOut = flag.String("trace", "", "write a JSONL event trace to this file (render with gcreport)")
		list     = flag.Bool("list", false, "list profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-14s threads=%d ops=%d alloc=%.0f%% survivors=%.1f%% oldupd=%.2f%%\n",
				p.Name, p.Threads, p.OpsPerThread, 100*p.AllocFrac,
				100*p.SurvivorFrac, 100*p.OldUpdateFrac)
		}
		return
	}

	var mode gengc.Mode
	switch *modeStr {
	case "non":
		mode = gengc.NonGenerational
	case "gen":
		mode = gengc.Generational
	case "aging":
		mode = gengc.GenerationalAging
	default:
		log.Fatalf("unknown mode %q", *modeStr)
	}

	var barrier gengc.BarrierMode
	switch *barrStr {
	case "eager":
		barrier = gengc.BarrierEager
	case "batched":
		barrier = gengc.BarrierBatched
	default:
		log.Fatalf("unknown barrier %q", *barrStr)
	}

	p, ok := workload.ByName(*profile)
	if !ok {
		log.Fatalf("unknown profile %q (use -list)", *profile)
	}
	p = p.Scale(*scale)

	// Stream each cycle's record to stderr as it completes: the live
	// event log behind the final characterization below. The callback
	// runs on the collector goroutine via Runtime.OnCycle.
	start := time.Now()
	streamCycle := func(c metrics.Cycle) {
		line := fmt.Sprintf("[%9.2fms] cycle %d (%v): scanned %d objects / %d slots, freed %d objects (%d KB), %d dirty cards",
			time.Since(start).Seconds()*1000, c.Seq, c.Kind,
			c.ObjectsScanned, c.SlotsScanned, c.ObjectsFreed, c.BytesFreed/1024, c.DirtyCards)
		if c.Workers > 1 {
			line += fmt.Sprintf(", %d workers (%d steals, trace efficiency %.2f)",
				c.Workers, c.Steals, c.TraceEfficiency())
		}
		fmt.Fprintln(os.Stderr, line)
	}

	ropts := []workload.RunOption{workload.OnCycle(streamCycle)}
	var sink *gengc.JSONLTraceSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = gengc.NewJSONLTraceSink(f)
		ropts = append(ropts, workload.TraceTo(sink))
	}

	res, err := workload.Run(p, gengc.Config{
		Mode:          mode,
		Barrier:       barrier,
		CardBytes:     *cardSize,
		YoungBytes:    *youngMB << 20,
		OldAge:        *oldAge,
		Workers:       *workers,
		TrackPages:    true,
		PageCostSpins: *pageCost,
	}, *seed, ropts...)
	if err != nil {
		log.Fatal(err)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (render with: gcreport %s)\n",
			*traceOut, *traceOut)
	}

	s := res.Summary
	fmt.Printf("\n%s under %v: elapsed %v, %d ops, %d allocations (%d KB)\n",
		res.Profile, res.Mode, res.Elapsed.Round(time.Millisecond), res.Ops, res.Allocs, res.AllocedB/1024)
	fmt.Printf("collections: %d partial + %d full, GC active %.1f%% of elapsed time\n",
		s.NumPartial, s.NumFull, s.GCActivePct)
	if s.NumPartial > 0 {
		fmt.Printf("per partial: %.0f objects scanned (%.0f inter-generational), %.0f freed, "+
			"%.1f%% dirty cards, %.0f KB card area, %.0f pages, %.1f ms\n",
			s.AvgScannedPartial, s.AvgInterGenScanned, s.AvgFreedObjsPartial,
			s.AvgDirtyCardPct, s.AvgAreaScanned/1024, s.AvgPagesPartial,
			s.AvgTimePartial.Seconds()*1000)
		fmt.Printf("young mortality: %.1f%% of objects, %.1f%% of bytes freed by partials\n",
			s.PctObjsFreedPartial, s.PctBytesFreedPartial)
	}
	if s.NumFull > 0 {
		fmt.Printf("per full: %.0f objects scanned, %.0f freed, %.0f pages, %.1f ms\n",
			s.AvgScannedFull, s.AvgFreedObjsFull, s.AvgPagesFull,
			s.AvgTimeFull.Seconds()*1000)
	}
	if pp := res.Pauses; pp.Count > 0 {
		fmt.Printf("mutator pauses: %d recorded, p50=%v p99=%v p99.9=%v max=%v\n",
			pp.Count, pp.P50, pp.P99, pp.P999, pp.Max)
	}
	// Final heap census (quiescent: the workload has completed; the
	// final in-flight collection usually empties the heap of all but
	// the runtime's global-roots object).
	cs := res.Census
	fmt.Printf("final heap: %d objects (%d KB), %d class blocks, %d large blocks, %.1f%% utilization\n",
		cs.Objects, cs.ObjectBytes/1024, cs.ClassBlocks, cs.LargeBlocks, 100*cs.Utilization())
}
