// Command gcsweep runs the contention-matrix experiment: one command
// sweeps mutator counts × collector Workers × AllocShards × barrier
// mode × workload contention level over the churn, Zipf and auction
// profiles and writes the versioned BENCH_matrix.json report
// (schema: BENCHMARKS.md; methodology: EXPERIMENTS.md).
//
// Usage:
//
//	gcsweep                          # the full default matrix -> BENCH_matrix.json
//	gcsweep -smoke                   # tiny CI matrix, seconds not minutes
//	gcsweep -muts 1,4,8 -ops 100000  # custom axes
//	gcsweep -printbaseline           # emit Go source for baseline.go
//
// Each cell runs the same total operation budget split across its
// mutators, measured over interleaved passes (medians), and records
// ns/op, fleet pause p50/p99/p99.9, collection-cycle elapsed times,
// and the contention counters from Runtime.Snapshot (contended
// allocator locks, batched-barrier flushes, same-card dedup hits).
//
// Exit codes: 0 = clean, 1 = error, 2 = the report flagged regressions
// (shape-normalized baseline exceedances on the baseline host, or
// failed sanity checks anywhere). The embedded baseline is only
// consulted when this host's fingerprint matches the baseline's —
// cross-host ns/op comparison is refused by design — and even on the
// matching host the gate compares the *shape* of the matrix (each
// cell's ns/op normalized by the run median, aggregated to
// profile/contention group medians), not absolute speed, because
// absolute ns/op on a shared host swings far more between runs than any
// real regression signal. See bench.CompareBaseline and BENCHMARKS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"gengc"
	"gengc/internal/bench"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseBarriers(s string) ([]gengc.BarrierMode, error) {
	var out []gengc.BarrierMode
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "eager":
			out = append(out, gengc.BarrierEager)
		case "batched":
			out = append(out, gengc.BarrierBatched)
		default:
			return nil, fmt.Errorf("bad barrier %q (want eager or batched)", f)
		}
	}
	return out, nil
}

func main() {
	var (
		out       = flag.String("o", "BENCH_matrix.json", "output path of the JSON report")
		smoke     = flag.Bool("smoke", false, "tiny CI matrix (seconds): 1,2 mutators, high-contention variants, one pass")
		muts      = flag.String("muts", "1,2,4", "mutator thread counts")
		workers   = flag.String("workers", "1,2", "collector worker counts")
		shards    = flag.String("shards", "1,0", "central shard counts (0 = per-class default)")
		barriers  = flag.String("barriers", "eager,batched", "barrier modes")
		profiles  = flag.String("profiles", "churn,zipf,auction", "workload profiles")
		ops       = flag.Int("ops", 0, "operations per run, split across mutators (0 = default)")
		passes    = flag.Int("passes", 0, "interleaved measurement passes per cell (0 = default)")
		seed      = flag.Int64("seed", 0, "workload random seed (0 = default)")
		tolerance = flag.Float64("tolerance", 50, "shape-regression tolerance vs baseline, percent (per profile/contention group, median-normalized)")
		quiet     = flag.Bool("q", false, "suppress per-run progress")
		printBase = flag.Bool("printbaseline", false, "after the sweep, print Go source for the embedded baseline (cmd/gcsweep/baseline.go)")
	)
	flag.Parse()

	if err := run(*out, *smoke, *muts, *workers, *shards, *barriers, *profiles,
		*ops, *passes, *seed, *tolerance, *quiet, *printBase); err != nil {
		fmt.Fprintln(os.Stderr, "gcsweep:", err)
		if err == errRegression {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errRegression marks a sweep that completed (and wrote its report) but
// flagged regressions; main exits 2 so CI can gate on it while still
// collecting the artifact.
var errRegression = fmt.Errorf("regressions flagged (see the JSON report)")

func run(out string, smoke bool, muts, workers, shards, barriers, profiles string,
	ops, passes int, seed int64, tolerance float64, quiet, printBase bool) error {
	if smoke {
		// The CI preset: every axis still has ≥2 values where the full
		// matrix has them, but only the high-contention variant of each
		// profile, one pass, and a small op budget. Completes in
		// seconds; the sanity checks (and, on the reference host, the
		// baseline) still gate.
		muts, workers, shards, barriers = "1,2", "1,2", "1,0", "eager,batched"
		if ops == 0 {
			ops = 12_000
		}
		if passes == 0 {
			passes = 1
		}
	}
	mutsL, err := parseInts(muts)
	if err != nil {
		return err
	}
	workersL, err := parseInts(workers)
	if err != nil {
		return err
	}
	shardsL, err := parseInts(shards)
	if err != nil {
		return err
	}
	barriersL, err := parseBarriers(barriers)
	if err != nil {
		return err
	}
	variants, err := bench.MatrixVariants(strings.Split(profiles, ","))
	if err != nil {
		return err
	}
	if smoke {
		var high []bench.MatrixVariant
		for _, v := range variants {
			if v.Contention == "high" || v.Contention == "s=1.2" {
				high = append(high, v)
			}
		}
		if len(high) > 0 {
			variants = high
		}
	}

	spec := bench.MatrixSpec{
		Mutators: mutsL,
		Workers:  workersL,
		Shards:   shardsL,
		Barriers: barriersL,
		Variants: variants,
		TotalOps: ops,
		Passes:   passes,
		Seed:     seed,
	}
	if smoke {
		spec.YoungBytes = 256 << 10
	}
	if !quiet {
		spec.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	// The host Go runtime's own collector would inject pauses into the
	// measurement, as in every other experiment here.
	prevGC := debug.SetGCPercent(-1)
	defer func() {
		debug.SetGCPercent(prevGC)
		runtime.GC()
	}()

	fmt.Printf("gcsweep: %d cells × %d passes, %d ops/run, host %s (%s)\n",
		len(mutsL)*len(workersL)*len(shardsL)*len(barriersL)*len(variants),
		orDefault(passes, 2), orDefault(ops, 60_000),
		bench.CurrentHost().Fingerprint(), bench.CurrentHost().GoVersion)
	start := time.Now()
	rep, err := bench.RunMatrix(spec)
	if err != nil {
		return err
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.CompareBaseline(embeddedBaseline, tolerance)
	rep.Sanity()

	printTable(rep)
	fmt.Printf("baseline comparison: %s\n", rep.BaselineComparison)
	for _, reg := range rep.Regressions {
		fmt.Printf("regression: %s\n", reg)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("matrix written to %s (%d cells, %v elapsed)\n", out, len(rep.Cells), time.Since(start).Round(time.Second))

	if printBase {
		printBaselineSource(rep)
	}
	if len(rep.Regressions) > 0 {
		return errRegression
	}
	return nil
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// printTable renders the cell medians as an aligned text table grouped
// by profile/contention.
func printTable(rep *bench.MatrixReport) {
	fmt.Printf("\n%-8s %-6s %4s %3s %3s %-7s %9s %9s %10s %9s %8s %8s %8s\n",
		"profile", "cont", "muts", "w", "sh", "barrier", "ns/op",
		"p99(us)", "p99.9(us)", "cycMax(ms)", "cycles", "contend", "dedup")
	for _, c := range rep.Cells {
		fmt.Printf("%-8s %-6s %4d %3d %3d %-7s %9.1f %9.1f %10.1f %9.1f %8d %8d %8d\n",
			c.Profile, c.Contention, c.Mutators, c.Workers, c.Shards, c.Barrier,
			c.NsPerOp,
			float64(c.PauseP99Ns)/1e3, float64(c.PauseP999Ns)/1e3,
			float64(c.CycleMaxNs)/1e6,
			c.Cycles, c.AllocContended, c.CardDedupHits)
	}
	fmt.Println()
}

// printBaselineSource emits the Go source of a baseline.go capturing
// this run, so refreshing the embedded baseline after an intentional
// perf change is one pipeline (the awk strips everything up to and
// including the "-- baseline.go --" marker):
//
//	go run ./cmd/gcsweep -printbaseline 2>/dev/null |
//	    awk 'f{print} /^-- baseline.go --$/{f=1}' | gofmt > cmd/gcsweep/baseline.go
func printBaselineSource(rep *bench.MatrixReport) {
	fmt.Println("-- baseline.go --")
	fmt.Println("// Code generated by gcsweep -printbaseline; see BENCHMARKS.md. DO NOT EDIT BY HAND.")
	fmt.Println()
	fmt.Println("package main")
	fmt.Println()
	fmt.Println("import \"gengc/internal/bench\"")
	fmt.Println()
	fmt.Println("// embeddedBaseline is the reference sweep the regression gate compares")
	fmt.Printf("// against, captured %s on the host below. The comparison\n", rep.Generated)
	fmt.Println("// only applies when the running host's fingerprint matches.")
	fmt.Println("var embeddedBaseline = bench.MatrixBaseline{")
	fmt.Printf("\tFingerprint: %q,\n", rep.Host.Fingerprint())
	fmt.Println("\tNsPerOp: map[string]float64{")
	keys := make([]string, 0, len(rep.Cells))
	ns := map[string]float64{}
	for _, c := range rep.Cells {
		keys = append(keys, c.Key())
		ns[c.Key()] = c.NsPerOp
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("\t\t%q: %.1f,\n", k, ns[k])
	}
	fmt.Println("\t},")
	fmt.Println("}")
}
