// Command gcserve runs the server-mode overload experiment: the
// request engine of internal/server under an open-loop Poisson load
// generator, swept across offered arrival rates (expressed as multiples
// of a capacity calibrated on this host) with the admission controller
// armed and then naive, writing the versioned BENCH_server.json report
// (schema: BENCHMARKS.md §server; methodology: EXPERIMENTS.md).
//
// Usage:
//
//	gcserve                      # the full sweep -> BENCH_server.json
//	gcserve -smoke               # tiny CI sweep, seconds not minutes
//	gcserve -mults 1,2,4 -dur 1s # custom overload multiples
//
// The point of the experiment is graceful degradation: at >= 2x the
// sustainable rate the admitted leg must keep goodput flowing while
// shedding the excess with a bounded completed-request p99.9 and zero
// OOM failures, and the naive leg must visibly misbehave (unbounded
// queueing breaches the request SLO, or the heap gives out). The
// regression gate compares the two legs' behavior classes rather than
// absolute latencies, so it holds on any host.
//
// Exit codes: 0 = clean, 1 = error, 2 = the report flagged regressions
// (the gate failed; the JSON artifact is still written for CI upload).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gengc/internal/bench"
)

func main() {
	var (
		out     = flag.String("o", "BENCH_server.json", "output path of the JSON report")
		smoke   = flag.Bool("smoke", false, "tiny CI sweep (seconds): short windows, fewer rates")
		mults   = flag.String("mults", "", "offered-rate multiples of calibrated capacity (default 0.5,1,2,4)")
		dur     = flag.Duration("dur", 0, "load window per cell (0 = default 2s)")
		workers = flag.Int("workers", 0, "request workers (0 = default 4)")
		slo     = flag.Duration("slo", 0, "request latency SLO (0 = default 50ms)")
		heap    = flag.Int("heap", 0, "heap bytes (0 = default 12MiB)")
		objects = flag.Int("objects", 0, "objects allocated per request (0 = default 96)")
		seed    = flag.Int64("seed", 0, "load schedule seed (0 = default 1)")
		quiet   = flag.Bool("q", false, "suppress per-cell progress")
	)
	flag.Parse()

	if err := run(*out, *smoke, *mults, *dur, *workers, *slo, *heap,
		*objects, *seed, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "gcserve:", err)
		if err == errRegression {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errRegression marks a sweep that completed (and wrote its report) but
// failed the gate; main exits 2 so CI can fail while still collecting
// the artifact.
var errRegression = fmt.Errorf("regressions flagged (see the JSON report)")

func run(out string, smoke bool, mults string, dur time.Duration,
	workers int, slo time.Duration, heap, objects int, seed int64, quiet bool) error {
	opts := bench.ServerOptions{
		Duration:  dur,
		Workers:   workers,
		SLO:       slo,
		HeapBytes: heap,
		Objects:   objects,
		Seed:      seed,
	}
	if smoke {
		// The CI preset: one underload and one overload pair, short
		// windows. The gate still applies in full — the overload
		// contrast shows up within a few hundred milliseconds.
		opts.Multipliers = []float64{0.5, 3}
		if opts.Duration == 0 {
			opts.Duration = 600 * time.Millisecond
		}
	}
	if mults != "" {
		var err error
		if opts.Multipliers, err = parseFloats(mults); err != nil {
			return err
		}
	}
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	rep, err := bench.RunServer(opts, logf)
	if err != nil {
		return err
	}

	printReport(rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	if len(rep.Regressions) > 0 {
		return errRegression
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var outs []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad multiplier %q: %w", f, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("multiplier %q must be positive", f)
		}
		outs = append(outs, v)
	}
	return outs, nil
}

func printReport(rep *bench.ServerReport) {
	fmt.Printf("\nserver overload sweep — %s — capacity %.0f req/s (SLO %v, %d workers, heap %d MiB)\n",
		rep.Host.Fingerprint(), rep.CapacityPerSec, time.Duration(rep.SLONs),
		rep.WorkersConf, rep.HeapBytes>>20)
	fmt.Printf("%-6s %-10s %-9s %-10s %-8s %-8s %-6s %-12s %-12s %-9s %s\n",
		"mult", "rate/s", "admission", "goodput/s", "offered", "done", "shed",
		"p99", "p99.9", "breaches", "oom")
	for _, c := range rep.Cells {
		fmt.Printf("%-6.2g %-10.0f %-9v %-10.0f %-8d %-8d %-6d %-12v %-12v %-9d %d\n",
			c.Multiplier, c.RatePerSec, c.Admission, c.GoodputPerSec,
			c.Offered, c.Completed, c.Shed,
			time.Duration(c.P99Ns).Round(time.Microsecond),
			time.Duration(c.P999Ns).Round(time.Microsecond),
			c.SLOBreaches, c.FailedOOM)
	}
	for _, f := range rep.Findings {
		fmt.Println("finding:", f)
	}
	for _, r := range rep.Regressions {
		fmt.Println("REGRESSION:", r)
	}
}
