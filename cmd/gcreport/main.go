// Command gcreport renders a JSONL collector trace (produced with the
// -trace flag of gcbench, gctrace or gcstress, or any
// gengc.NewJSONLTraceSink) into paper-style text figures: the
// mutator pause-time CDF, the per-phase collection-cycle breakdown,
// the dirty-card statistics, the promotion/survival demographics, and
// per-mutator pause tables. See OBSERVABILITY.md for how each output
// maps onto the paper's figures.
//
// Usage:
//
//	gcreport trace.jsonl            # summary + every figure
//	gcreport -cdf trace.jsonl       # pause CDF only
//	gcreport -phases -csv < trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gengc/internal/report"
)

func main() {
	var (
		cdf      = flag.Bool("cdf", false, "render the pause-time CDF")
		phases   = flag.Bool("phases", false, "render the cycle phase breakdown")
		cards    = flag.Bool("cards", false, "render dirty-card statistics")
		demo     = flag.Bool("demographics", false, "render promotion/survival demographics")
		mutators = flag.Bool("mutators", false, "render per-mutator pause tables")
		all      = flag.Bool("all", false, "render everything (default when no figure flag is given)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: gcreport [flags] [trace.jsonl]\n\nreads stdin when no file is given\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	default:
		flag.Usage()
		os.Exit(2)
	}

	t, err := report.Parse(in)
	if err != nil {
		fail(fmt.Errorf("parsing trace: %w", err))
	}
	if len(t.Events) == 0 {
		fail(fmt.Errorf("empty trace"))
	}

	none := !*cdf && !*phases && !*cards && !*demo && !*mutators
	everything := *all || none
	w := os.Stdout
	if !*csv {
		report.RenderSummary(w, t)
	}
	if everything || *cdf {
		report.RenderPauseCDF(w, t, *csv)
	}
	if everything || *phases {
		report.RenderBreakdown(w, t, *csv)
	}
	if everything || *cards {
		report.RenderCards(w, t, *csv)
	}
	if everything || *demo {
		report.RenderDemographics(w, t, *csv)
	}
	if everything || *mutators {
		report.RenderMutators(w, t, *csv)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gcreport:", err)
	os.Exit(1)
}
