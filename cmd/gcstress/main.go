// Command gcstress soak-tests the collector: several mutator goroutines
// randomly build, mutate, share and drop object graphs while the
// on-the-fly collector runs, with periodic full-heap verification
// (reachability audit, allocator integrity, card invariant).
//
//	gcstress -mode aging -threads 8 -ops 2000000 -verify-every 20
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"gengc"
)

func parseMode(s string) (gengc.Mode, error) {
	switch s {
	case "non", "nongen", "non-generational":
		return gengc.NonGenerational, nil
	case "gen", "generational", "simple":
		return gengc.Generational, nil
	case "aging":
		return gengc.GenerationalAging, nil
	}
	return 0, fmt.Errorf("unknown mode %q (non|gen|aging)", s)
}

func main() {
	var (
		modeStr     = flag.String("mode", "gen", "collector: non|gen|aging")
		threads     = flag.Int("threads", 4, "mutator goroutines")
		ops         = flag.Int("ops", 500000, "operations per mutator")
		heapMB      = flag.Int("heap", 16, "heap size in MB")
		youngKB     = flag.Int("young", 512, "young generation size in KB")
		cardBytes   = flag.Int("card", 16, "card size in bytes")
		oldAge      = flag.Int("age", 3, "aging tenure threshold")
		seed        = flag.Int64("seed", time.Now().UnixNano(), "random seed")
		rounds      = flag.Int("rounds", 4, "verification rounds (workload is split across them)")
		remset      = flag.Bool("remset", false, "use the remembered-set variant")
		dynTenure   = flag.Bool("dyntenure", false, "use the dynamic tenuring policy")
		globalSlots = flag.Int("globals", 64, "global root slots exercised")
		workers     = flag.Int("workers", 1, "parallel collector workers")
		traceOut    = flag.String("trace", "", "write a JSONL event trace to this file (render with gcreport)")
	)
	flag.Parse()

	mode, err := parseMode(*modeStr)
	if err != nil {
		log.Fatal(err)
	}
	opts := []gengc.Option{
		gengc.WithMode(mode),
		gengc.WithHeapBytes(*heapMB << 20),
		gengc.WithYoungBytes(*youngKB << 10),
		gengc.WithCardBytes(*cardBytes),
		gengc.WithOldAge(*oldAge),
		gengc.WithRememberedSet(*remset),
		gengc.WithDynamicTenure(*dynTenure),
		gengc.WithWorkers(*workers),
	}
	var sink *gengc.JSONLTraceSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close() // after rt.Close's final flush (defers run LIFO)
		sink = gengc.NewJSONLTraceSink(f)
		opts = append(opts, gengc.WithTraceSink(sink))
	}
	rt, err := gengc.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	fmt.Printf("gcstress: %v heap=%dMB young=%dKB card=%dB threads=%d ops=%d seed=%d\n",
		mode, *heapMB, *youngKB, *cardBytes, *threads, *ops, *seed)

	opsPerRound := *ops / *rounds
	start := time.Now()
	for round := 0; round < *rounds; round++ {
		var wg sync.WaitGroup
		fail := false
		var mu sync.Mutex
		for w := 0; w < *threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := stress(rt, *seed+int64(round*1000+w), opsPerRound, *globalSlots); err != nil {
					mu.Lock()
					fail = true
					fmt.Fprintf(os.Stderr, "worker %d: %v\n", w, err)
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if fail {
			os.Exit(1)
		}
		if err := rt.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED (round %d): %v\n", round, err)
			os.Exit(1)
		}
		if err := rt.VerifyCardInvariant(); err != nil {
			fmt.Fprintf(os.Stderr, "CARD INVARIANT FAILED (round %d): %v\n", round, err)
			os.Exit(1)
		}
		st := rt.Stats()
		fmt.Printf("round %d ok: %d cycles (%d full), %d objects freed, heap %d KB\n",
			round+1, st.NumCycles, st.NumFull, st.ObjectsFreed, rt.HeapBytes()/1024)
	}
	rt.Close() // idempotent; flushes the final trace events before the sink check
	if snap := rt.Snapshot(); snap.Fleet.Count > 0 {
		fmt.Printf("mutator pauses: %d recorded, p50=%v p99=%v p99.9=%v max=%v\n",
			snap.Fleet.Count, snap.Fleet.P50, snap.Fleet.P99,
			snap.Fleet.P999, snap.Fleet.Max)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (render with: gcreport %s)\n",
			*traceOut, *traceOut)
	}
	fmt.Printf("PASS in %v\n", time.Since(start).Round(time.Millisecond))
}

// stress is one worker's random workload for a round.
func stress(rt *gengc.Runtime, seed int64, ops, globalSlots int) error {
	m := rt.NewMutator()
	defer m.Detach()
	rng := rand.New(rand.NewSource(seed))

	const window = 128
	slots := make([]int, window)
	for i := range slots {
		slots[i] = m.PushRoot(gengc.Nil)
	}
	for op := 0; op < ops; op++ {
		m.Safepoint()
		i := slots[rng.Intn(window)]
		switch rng.Intn(12) {
		case 0, 1, 2, 3, 4: // allocate
			size := 16 + rng.Intn(240)
			if rng.Intn(400) == 0 {
				size = 4096 * (1 + rng.Intn(3)) // occasional large object
			}
			n, err := m.Alloc(rng.Intn(5), size)
			if err != nil {
				return fmt.Errorf("alloc: %w", err)
			}
			m.SetRoot(i, n)
		case 5, 6: // link
			x, y := m.Root(i), m.Root(slots[rng.Intn(window)])
			if x != gengc.Nil && m.Slots(x) > 0 {
				m.Write(x, rng.Intn(m.Slots(x)), y)
			}
		case 7: // unlink
			if x := m.Root(i); x != gengc.Nil && m.Slots(x) > 0 {
				m.Write(x, rng.Intn(m.Slots(x)), gengc.Nil)
			}
		case 8: // drop
			m.SetRoot(i, gengc.Nil)
		case 9: // chase and re-root
			x := m.Root(i)
			for d := 0; d < 6 && x != gengc.Nil && m.Slots(x) > 0; d++ {
				x = m.Read(x, rng.Intn(m.Slots(x)))
			}
			if x != gengc.Nil {
				m.SetRoot(slots[rng.Intn(window)], x)
			}
		case 10: // globals
			g := rng.Intn(globalSlots)
			if rng.Intn(2) == 0 {
				rt.SetGlobal(m, g, m.Root(i))
			} else {
				m.SetRoot(i, rt.Global(g))
			}
		case 11: // consistency probe on a reachable object
			if x := m.Root(i); x != gengc.Nil {
				if s := m.Slots(x); s < 0 || s > 64 {
					return fmt.Errorf("object %#x has implausible slot count %d", x, s)
				}
			}
		}
	}
	return nil
}
