// Command gcmon runs a continuous churn workload on the collector and
// serves its live observability surface over HTTP — the quickest way to
// watch the runtime breathe under a Prometheus/Grafana stack or plain
// curl:
//
//	gcmon -addr :8080 -mode gen -threads 4 &
//	curl localhost:8080/metrics              # Prometheus text exposition
//	curl localhost:8080/snapshot             # Runtime.Snapshot as JSON
//	curl localhost:8080/flightrecorder/dump  # force + serve a flight dump
//
// Endpoints:
//
//	/metrics             Prometheus text format (Runtime.MetricsHandler)
//	/snapshot            the full Snapshot, JSON-encoded
//	/flightrecorder/dump triggers a manual flight-recorder capture and
//	                     serves it as JSONL (the same format the anomaly
//	                     triggers write); 404 without -flightrecorder
//
// The workload is the deterministic pointer-churn loop of the barrier
// benchmark: each thread allocates into a rooted ring and fans stores
// into long-lived base objects, so partials, promotions and card traffic
// all advance continuously.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"gengc"
	"gengc/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		conns   = flag.Int("maxconns", 64, "maximum simultaneous HTTP connections")
		modeStr = flag.String("mode", "gen", "collector: non|gen|aging")
		threads = flag.Int("threads", 4, "churn mutator threads")
		workers = flag.Int("workers", 1, "parallel collector workers")
		youngMB = flag.Int("young", 4, "young generation size in MB")
		flight  = flag.Int("flightrecorder", 256, "flight-recorder ring size (0 disables)")
		slo     = flag.Duration("slo", 0, "pause SLO (0 disables; breaches trigger dumps)")
	)
	flag.Parse()

	var mode gengc.Mode
	switch *modeStr {
	case "non":
		mode = gengc.NonGenerational
	case "gen":
		mode = gengc.Generational
	case "aging":
		mode = gengc.GenerationalAging
	default:
		log.Fatalf("unknown mode %q", *modeStr)
	}

	rt, err := gengc.New(
		gengc.WithMode(mode),
		gengc.WithWorkers(*workers),
		gengc.WithYoungBytes(*youngMB<<20),
		gengc.WithFlightRecorder(*flight),
		gengc.WithPauseSLO(*slo),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// The churn threads run until the process dies; ops counts completed
	// operations for the periodic status line.
	var ops atomic.Int64
	churn := workload.BarrierChurn{}
	for i := 0; i < *threads; i++ {
		go func() {
			m := rt.NewMutator()
			defer m.Detach()
			for {
				n0 := m.NumRoots()
				if err := churn.RunThread(m, 10_000); err != nil {
					// ErrOutOfMemory/ErrStalled already triggered a
					// flight dump; drop this chunk's roots and retry.
					log.Printf("churn thread %d: %v", i, err)
					time.Sleep(100 * time.Millisecond)
				}
				ops.Add(10_000)
				m.PopRoots(m.NumRoots() - n0)
				m.Safepoint()
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", rt.MetricsHandler())
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rt.Snapshot())
	})
	mux.HandleFunc("/flightrecorder/dump", func(w http.ResponseWriter, _ *http.Request) {
		fr := rt.FlightRecorder()
		if fr == nil {
			http.Error(w, "flight recorder disabled (-flightrecorder 0)", http.StatusNotFound)
			return
		}
		fr.Trigger("manual")
		dump, ok := fr.LastDump()
		if !ok {
			http.Error(w, "no dump captured yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := dump.WriteJSONL(w); err != nil {
			log.Printf("writing dump: %v", err)
		}
	})

	go func() {
		for range time.Tick(10 * time.Second) {
			s := rt.Snapshot()
			fmt.Fprintf(os.Stderr,
				"gcmon: ops=%d cycles=%d (%d full) heap=%dKB promoted=%dKB p99=%v dumps=%d\n",
				ops.Load(), s.Cycles, s.Fulls, s.HeapBytes/1024,
				s.Demographics.PromotedBytes/1024, s.Fleet.P99, s.FlightRecorderDumps)
		}
	}()

	log.Printf("gcmon: serving /metrics, /snapshot, /flightrecorder/dump on %s (%d churn threads, mode %v, max %d conns)",
		*addr, *threads, mode, *conns)
	// Hardened serving: read/header/write timeouts plus a connection
	// cap, so a stalled scraper or connection flood cannot wedge the
	// observability path of the process it is meant to watch.
	log.Fatal(gengc.ListenAndServeHardened(*addr, mux, *conns))
}
