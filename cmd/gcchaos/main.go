// Command gcchaos runs seeded chaos campaigns against the runtime: a
// churning multi-mutator workload executes under a sequence of fault
// schedules — stalled safe points, slow trace workers and sweep shards,
// transient allocation failures, allocation storms against the tiered
// allocation path (at the default per-class shards and the degenerate
// single lock), a failing trace sink, a close racing live allocators,
// and a server-mode arrival storm against the admission controller
// (serverstorm: shed, don't panic) — with the full invariant battery (Verify,
// the card invariant, and the per-cycle self-check) auditing every
// round. The fault schedule is a pure function of -seed, so a failing
// campaign reruns identically.
//
//	gcchaos -seed 1 -mode gen -mutators 4 -rounds 2 -ops 3000
//
// Exit status 0 means every schedule completed with zero violations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gengc"
	"gengc/internal/server"
)

func parseMode(s string) (gengc.Mode, error) {
	switch s {
	case "non", "nongen", "non-generational":
		return gengc.NonGenerational, nil
	case "gen", "generational", "simple":
		return gengc.Generational, nil
	case "aging":
		return gengc.GenerationalAging, nil
	}
	return 0, fmt.Errorf("unknown mode %q (non|gen|aging)", s)
}

// schedule is one named fault configuration plus its post-run
// expectations.
type schedule struct {
	name    string
	rules   []gengc.FaultRule
	workers int  // collector workers (0 = the -workers flag)
	shards  int  // allocation shards (0 = the per-class default)
	flight  int  // flight-recorder ring size (0 = recorder off)
	storm   bool // run allocStorm instead of churn
	sink    bool
	// barrier selects the write barrier (zero = BarrierEager).
	barrier gengc.BarrierMode
	// expect audits the finished run; it appends violation strings.
	expect func(rt *gengc.Runtime, in *gengc.FaultInjector, v *[]string)
}

func schedules(workers int) []schedule {
	return []schedule{
		{
			name: "baseline",
		},
		{
			// Stalled mutators: injected safe-point delays longer than
			// the watchdog deadline. Every fired delay holds a mutator
			// the collector is actively waiting on, so the watchdog
			// must have reported at least one stall if any fired — and
			// each report must freeze a flight-recorder dump carrying
			// the stall event plus the ring that led up to it.
			name:   "stall",
			flight: 256,
			rules: []gengc.FaultRule{
				{Point: gengc.FaultCooperate, Kind: gengc.FaultDelay,
					P: 0.5, Delay: 25 * time.Millisecond, Count: 4},
			},
			expect: func(rt *gengc.Runtime, in *gengc.FaultInjector, v *[]string) {
				fired := in.Fired(gengc.FaultCooperate)
				stalls := rt.Snapshot().Stalls
				if fired == 0 {
					*v = append(*v, "stall: the Cooperate point never fired — campaign too short")
				}
				if fired > 0 && stalls == 0 {
					*v = append(*v, fmt.Sprintf(
						"stall: %d injected safe-point delays but zero watchdog reports", fired))
				}
				if stalls == 0 {
					return
				}
				fr := rt.FlightRecorder()
				if fr == nil || fr.DumpCount() == 0 {
					*v = append(*v, "stall: watchdog fired but the flight recorder captured no dump")
					return
				}
				dump, _ := fr.LastDump()
				var stallEvs, otherEvs int
				for _, e := range dump.Events {
					if e.Ev == "stall" {
						stallEvs++
					} else {
						otherEvs++
					}
				}
				if stallEvs == 0 {
					*v = append(*v, fmt.Sprintf(
						"stall: flight dump (reason %q, %d events) holds no stall event",
						dump.Reason, len(dump.Events)))
				}
				if otherEvs == 0 {
					*v = append(*v, "stall: flight dump holds no ring context besides the stall event")
				}
				if dump.Snapshot == nil {
					*v = append(*v, "stall: flight dump carries no snapshot")
				}
			},
		},
		{
			// Slow collector internals: delayed handshake posting and
			// ack rounds, dropped steal scans, slow sweep shards. All
			// latency, no lost work — the invariant battery is the
			// assertion.
			name:    "slowpool",
			workers: max(workers, 3),
			rules: []gengc.FaultRule{
				{Point: gengc.FaultHandshakePost, Kind: gengc.FaultDelay, P: 0.2, Delay: 500 * time.Microsecond},
				{Point: gengc.FaultHandshakeAck, Kind: gengc.FaultDelay, P: 0.2, Delay: 300 * time.Microsecond},
				{Point: gengc.FaultTraceSteal, Kind: gengc.FaultDrop, P: 0.2},
				{Point: gengc.FaultTraceSteal, Kind: gengc.FaultDelay, P: 0.2, Delay: 100 * time.Microsecond},
				{Point: gengc.FaultSweepShard, Kind: gengc.FaultDelay, P: 0.2, Delay: 50 * time.Microsecond},
			},
		},
		{
			// Transient allocation failures: every injected OOM must be
			// absorbed by the collect-and-retry path (the workload
			// treats any surfaced allocation error as a violation).
			name: "oomspike",
			rules: []gengc.FaultRule{
				{Point: gengc.FaultAlloc, Kind: gengc.FaultFail, P: 0.002},
			},
			expect: func(rt *gengc.Runtime, in *gengc.FaultInjector, v *[]string) {
				if in.Fired(gengc.FaultAlloc) == 0 {
					*v = append(*v, "oomspike: the Alloc point never fired — campaign too short")
				}
			},
		},
		{
			// Allocation storm: an allocation-dominated mixed-size-class
			// workload hammers the tiered allocation path (cache refills,
			// flushes, sweep frees through the class shards) while
			// transient allocation failures and slow sweep shards fire.
			// The audit reads back the shard counters the path exports.
			name:  "allocstorm",
			storm: true,
			rules: []gengc.FaultRule{
				{Point: gengc.FaultAlloc, Kind: gengc.FaultFail, P: 0.001},
				{Point: gengc.FaultSweepShard, Kind: gengc.FaultDelay,
					P: 0.2, Delay: 50 * time.Microsecond},
			},
			expect: func(rt *gengc.Runtime, in *gengc.FaultInjector, v *[]string) {
				a := rt.Snapshot().Alloc
				if a.Refills == 0 {
					*v = append(*v, "allocstorm: zero central-shard refills — allocation path not exercised")
				}
				if a.CachedCells != 0 {
					*v = append(*v, fmt.Sprintf(
						"allocstorm: %d cells still cached after every mutator detached", a.CachedCells))
				}
				if a.FreeCells < 0 {
					*v = append(*v, fmt.Sprintf(
						"allocstorm: negative shard free-cell total %d", a.FreeCells))
				}
			},
		},
		{
			// The same storm against a single central lock (the
			// pre-sharding degenerate configuration): the tiers must be
			// correct, not just fast, at every shard count.
			name:   "allocstorm1",
			storm:  true,
			shards: 1,
			rules: []gengc.FaultRule{
				{Point: gengc.FaultAlloc, Kind: gengc.FaultFail, P: 0.001},
			},
			expect: func(rt *gengc.Runtime, in *gengc.FaultInjector, v *[]string) {
				a := rt.Snapshot().Alloc
				if a.Shards != 1 {
					*v = append(*v, fmt.Sprintf("allocstorm1: %d shards, want 1", a.Shards))
				}
				if a.CachedCells != 0 {
					*v = append(*v, fmt.Sprintf(
						"allocstorm1: %d cells still cached after every mutator detached", a.CachedCells))
				}
			},
		},
		{
			// Batched-barrier flush seams: the churn runs under the
			// batched write barrier while delays land exactly at buffer
			// flushes (stretching the window between deferring a shade
			// and publishing it) and safe-point responses are randomly
			// dropped (so flushes shift to later safe points). The
			// invariant battery plus the card invariant audit are the
			// assertion that no deferred entry is ever lost.
			name:    "flushseam",
			barrier: gengc.BarrierBatched,
			rules: []gengc.FaultRule{
				{Point: gengc.FaultBarrierFlush, Kind: gengc.FaultDelay,
					P: 0.05, Delay: 200 * time.Microsecond},
				{Point: gengc.FaultCooperate, Kind: gengc.FaultDrop, P: 0.05},
			},
			expect: func(rt *gengc.Runtime, in *gengc.FaultInjector, v *[]string) {
				if in.Fired(gengc.FaultBarrierFlush) == 0 {
					*v = append(*v, "flushseam: the BarrierFlush point never fired — campaign too short")
				}
				b := rt.Snapshot().Barrier
				if b.Mode != gengc.BarrierBatched {
					*v = append(*v, "flushseam: runtime not in batched barrier mode")
				}
				if b.Flushes == 0 {
					*v = append(*v, "flushseam: zero barrier flushes — deferred path not exercised")
				}
			},
		},
		{
			// Failing trace sink: every write errors; the collector
			// must degrade tracing and keep collecting.
			name: "failsink",
			sink: true,
			rules: []gengc.FaultRule{
				{Point: gengc.FaultSinkWrite, Kind: gengc.FaultFail},
			},
			expect: func(rt *gengc.Runtime, in *gengc.FaultInjector, v *[]string) {
				snap := rt.Snapshot()
				if !snap.TraceDegraded {
					*v = append(*v, "failsink: tracer did not degrade under a 100% failing sink")
				}
				if snap.Cycles == 0 {
					*v = append(*v, "failsink: no collection completed")
				}
			},
		},
	}
}

// churn is one mutator's workload round: build linked structures, cross-
// link them, drop subsets, and cooperate — a deterministic PRNG stream
// per mutator keeps the workload reproducible modulo scheduling.
func churn(m *gengc.Mutator, rng *rand.Rand, ops int) error {
	var live int
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.6 || live == 0:
			ref, err := m.Alloc(2, 16+rng.Intn(48))
			if err != nil {
				return err
			}
			m.PushRoot(ref)
			live++
		case r < 0.8 && live >= 2:
			// Cross-link two rooted objects through the barrier.
			a := m.Root(rng.Intn(live))
			b := m.Root(rng.Intn(live))
			m.Write(a, rng.Intn(2), b)
		default:
			drop := 1 + rng.Intn(min(live, 8))
			m.PopRoots(drop)
			live -= drop
		}
		m.Safepoint()
	}
	return nil
}

// allocStorm is the allocation-dominated variant of churn: nearly every
// operation allocates, cycling mixed size classes through a fixed window
// of roots so the slot's previous occupant becomes garbage for the
// concurrent sweep to push back into the class shards.
func allocStorm(m *gengc.Mutator, rng *rand.Rand, ops int) error {
	sizes := []int{16, 40, 96, 224, 480, 992}
	const window = 96
	for i := 0; i < window; i++ {
		m.PushRoot(gengc.Nil)
	}
	for op := 0; op < ops; op++ {
		ref, err := m.Alloc(2, sizes[rng.Intn(len(sizes))])
		if err != nil {
			return err
		}
		slot := rng.Intn(window)
		if old := m.Root(slot); old != gengc.Nil && rng.Float64() < 0.25 {
			m.Write(ref, 0, old)
		}
		m.SetRoot(slot, ref)
		m.Safepoint()
	}
	return nil
}

// runSchedule executes rounds of churn under one schedule and audits
// between rounds. It returns the violations it found.
func runSchedule(s schedule, seed int64, mode gengc.Mode, mutators, rounds, ops, workers int, verbose bool) []string {
	in := gengc.NewFaultInjector(seed)
	for _, r := range s.rules {
		in.Install(r)
	}
	w := s.workers
	if w == 0 {
		w = workers
	}
	opts := []gengc.Option{
		gengc.WithMode(mode),
		gengc.WithHeapBytes(16 << 20),
		gengc.WithYoungBytes(256 << 10),
		gengc.WithWorkers(w),
		gengc.WithAllocShards(s.shards),
		gengc.WithBarrier(s.barrier),
		gengc.WithFlightRecorder(s.flight),
		gengc.WithSelfCheck(true),
		gengc.WithStallTimeout(8 * time.Millisecond),
		gengc.WithAllocRetries(8),
		gengc.WithFaultInjector(in),
	}
	if s.sink {
		opts = append(opts, gengc.WithTraceSink(gengc.NewJSONLTraceSink(io.Discard)))
	}
	rt, err := gengc.New(opts...)
	if err != nil {
		log.Fatalf("%s: %v", s.name, err)
	}
	work := churn
	if s.storm {
		work = allocStorm
	}
	var violations []string
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, mutators)
		for id := 0; id < mutators; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				m := rt.NewMutator()
				defer m.Detach()
				rng := rand.New(rand.NewSource(seed ^ int64(round*1000+id)))
				if err := work(m, rng, ops); err != nil {
					errs <- fmt.Errorf("mutator %d: %w", id, err)
				}
			}(id)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			violations = append(violations, fmt.Sprintf("%s round %d: %v", s.name, round, err))
		}
		// All mutators detached: the heap is quiescent. Settle with a
		// full collection, then audit everything.
		rt.Collect(true)
		if err := rt.Verify(); err != nil {
			violations = append(violations, fmt.Sprintf("%s round %d: Verify: %v", s.name, round, err))
		}
		if mode != gengc.NonGenerational {
			if err := rt.VerifyCardInvariant(); err != nil {
				violations = append(violations, fmt.Sprintf("%s round %d: card invariant: %v", s.name, round, err))
			}
		}
	}
	if err, n := rt.Collector().SelfCheckErr(); n > 0 {
		violations = append(violations, fmt.Sprintf("%s: %d self-check violations, first: %v", s.name, n, err))
	}
	if s.expect != nil {
		s.expect(rt, in, &violations)
	}
	snap := rt.Snapshot()
	rt.Close()
	fmt.Printf("%-9s cycles=%-4d fulls=%-3d stalls=%-3d aborted=%d degraded=%-5v drops=%d\n",
		s.name, snap.Cycles, snap.Fulls, snap.Stalls, snap.AbortedCycles,
		snap.TraceDegraded, snap.TraceDrops)
	if verbose {
		for _, ps := range in.Stats() {
			if ps.Hits > 0 {
				fmt.Printf("  %-15s hits=%-7d fired=%d\n", ps.Point, ps.Hits, ps.Fired)
			}
		}
	}
	return violations
}

// runCloseRace is the shutdown leg: concurrent Closes race allocating
// mutators and a mid-flight collection; every allocator must come to
// rest with ErrClosed and Close must return.
func runCloseRace(seed int64, mode gengc.Mode, mutators int) []string {
	in := gengc.NewFaultInjector(seed)
	in.Install(gengc.FaultRule{Point: gengc.FaultCooperate, Kind: gengc.FaultDelay,
		P: 0.01, Delay: 5 * time.Millisecond})
	rt, err := gengc.New(
		gengc.WithMode(mode),
		gengc.WithHeapBytes(16<<20),
		gengc.WithYoungBytes(256<<10),
		gengc.WithSelfCheck(true),
		gengc.WithStallTimeout(8*time.Millisecond),
		gengc.WithFaultInjector(in),
	)
	if err != nil {
		log.Fatalf("closerace: %v", err)
	}
	var violations []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	var settled atomic.Int64
	for id := 0; id < mutators; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.NewMutator()
			defer m.Detach()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			for {
				if err := churn(m, rng, 64); err != nil {
					if !errors.Is(err, gengc.ErrClosed) {
						mu.Lock()
						violations = append(violations,
							fmt.Sprintf("closerace: mutator %d: %v (want ErrClosed)", id, err))
						mu.Unlock()
					}
					settled.Add(1)
					return
				}
			}
		}(id)
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		var cwg sync.WaitGroup
		for i := 0; i < 3; i++ {
			cwg.Add(1)
			go func() { defer cwg.Done(); rt.Close() }()
		}
		cwg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		violations = append(violations, "closerace: Close did not return within 30s")
		return violations
	}
	wg.Wait()
	if got := settled.Load(); got != int64(mutators) {
		violations = append(violations,
			fmt.Sprintf("closerace: %d/%d allocators settled with ErrClosed", got, mutators))
	}
	snap := rt.Snapshot()
	fmt.Printf("%-9s cycles=%-4d fulls=%-3d stalls=%-3d aborted=%d\n",
		"closerace", snap.Cycles, snap.Fulls, snap.Stalls, snap.AbortedCycles)
	return violations
}

// runServerStorm is the overload leg: the admission-controlled request
// engine of internal/server runs an open-loop arrival storm well past
// the faulted runtime's capacity — injected safe-point stalls wedge
// collections while transient allocation failures and per-allocation
// delays slow every request. Graceful degradation is the assertion: the
// controller must shed the excess (never panic, never OOM), requests
// must still complete, and the flight recorder must have frozen at
// least one dump for the breach window.
func runServerStorm(seed int64, mode gengc.Mode, workers int) []string {
	in := gengc.NewFaultInjector(seed)
	in.Install(gengc.FaultRule{Point: gengc.FaultCooperate, Kind: gengc.FaultDelay,
		P: 0.02, Delay: 2 * time.Millisecond})
	in.Install(gengc.FaultRule{Point: gengc.FaultAlloc, Kind: gengc.FaultFail, P: 0.005})
	in.Install(gengc.FaultRule{Point: gengc.FaultAlloc, Kind: gengc.FaultDelay,
		P: 1, Delay: 20 * time.Microsecond})
	rt, err := gengc.New(
		gengc.WithMode(mode),
		gengc.WithHeapBytes(12<<20),
		gengc.WithYoungBytes(256<<10),
		gengc.WithWorkers(workers),
		gengc.WithSelfCheck(true),
		gengc.WithStallTimeout(8*time.Millisecond),
		gengc.WithAllocRetries(8),
		gengc.WithFlightRecorder(256),
		gengc.WithRequestSLO(25*time.Millisecond),
		gengc.WithAdmission(gengc.AdmissionConfig{
			MaxInFlight: 8, MaxQueue: 16, QueueTimeout: 5 * time.Millisecond}),
		gengc.WithFaultInjector(in),
	)
	if err != nil {
		log.Fatalf("serverstorm: %v", err)
	}
	srv := server.New(rt, server.Config{
		Workers: 4, MaxRetries: 2, RetryBackoff: time.Millisecond, Seed: seed})
	load := server.RunLoad(context.Background(), srv, server.LoadConfig{
		StartRate:   5000,
		Duration:    400 * time.Millisecond,
		BurstEvery:  100 * time.Millisecond,
		BurstLen:    25 * time.Millisecond,
		BurstFactor: 3,
		LowFraction: 0.3,
		// The deadline is generous relative to the 5ms queue timeout so
		// admitted requests survive race-detector slowdown: the storm's
		// assertion is "shed the excess, complete the admitted", and a
		// too-tight deadline would starve the second half on slow hosts.
		Template: server.Request{Objects: 64, Slots: 2, Size: 128,
			Deadline: 100 * time.Millisecond},
		Seed: seed,
	})
	var violations []string
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		violations = append(violations, fmt.Sprintf("serverstorm: drain: %v", err))
		return violations
	}
	st := srv.Stats()
	if st.Shed == 0 {
		violations = append(violations, fmt.Sprintf(
			"serverstorm: %d offered arrivals but nothing shed — the storm never saturated admission",
			load.Offered))
	}
	if st.Completed == 0 {
		violations = append(violations, "serverstorm: no request completed under the storm")
	}
	if st.FailedOOM > 0 {
		violations = append(violations, fmt.Sprintf(
			"serverstorm: %d OOM failures — admission must shed before the heap gives out", st.FailedOOM))
	}
	if fr := rt.FlightRecorder(); fr == nil || fr.DumpCount() == 0 {
		violations = append(violations,
			"serverstorm: sheds fired but the flight recorder froze no dump for the breach window")
	}
	snap := rt.Snapshot()
	fmt.Printf("%-9s cycles=%-4d fulls=%-3d stalls=%-3d offered=%-6d done=%-6d shed=%-6d degraded=%d\n",
		"serverstorm", snap.Cycles, snap.Fulls, snap.Stalls,
		load.Offered, st.Completed, st.Shed, snap.Admission.DegradedEnters)
	return violations
}

func main() {
	var (
		modeStr  = flag.String("mode", "gen", "collector: non|gen|aging")
		seed     = flag.Int64("seed", 1, "campaign seed (the whole fault schedule derives from it)")
		mutators = flag.Int("mutators", 4, "mutator goroutines per schedule")
		rounds   = flag.Int("rounds", 2, "churn+audit rounds per schedule")
		ops      = flag.Int("ops", 3000, "operations per mutator per round")
		workers  = flag.Int("workers", 1, "collector workers (slowpool raises this to >= 3)")
		verbose  = flag.Bool("v", false, "print per-point injection statistics")
	)
	flag.Parse()
	mode, err := parseMode(*modeStr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gcchaos: seed=%d mode=%s mutators=%d rounds=%d ops=%d\n",
		*seed, mode, *mutators, *rounds, *ops)
	var violations []string
	for i, s := range schedules(*workers) {
		// Each schedule gets its own deterministic sub-seed so adding a
		// schedule does not perturb the others.
		violations = append(violations,
			runSchedule(s, *seed*1000003+int64(i), mode, *mutators, *rounds, *ops, *workers, *verbose)...)
	}
	violations = append(violations, runCloseRace(*seed*1000003+997, mode, *mutators)...)
	violations = append(violations, runServerStorm(*seed*1000003+1009, mode, *workers)...)

	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "gcchaos: %d violation(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("gcchaos: OK")
}
