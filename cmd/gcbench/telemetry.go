package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gengc"
	"gengc/internal/workload"
)

// telemetryOverheadLimitPct is the acceptance bound on what arming the
// full telemetry surface (tracer + flight recorder + pause SLO) may cost
// the churn workload: the recorder taps the existing per-producer ring
// path, so the hot loops should pay almost nothing.
const telemetryOverheadLimitPct = 3.0

// telemetryRun is one measured configuration of the telemetry overhead
// comparison.
type telemetryRun struct {
	Mutators  int     `json:"mutators"`
	Telemetry string  `json:"telemetry"` // "off" or "on"
	NsPerOp   float64 `json:"ns_per_op"`
	Iters     int     `json:"iterations"`
}

// scrapeAgreement records the scrape-vs-snapshot cross-check: the same
// facts read through the Prometheus exposition and through Snapshot().
type scrapeAgreement struct {
	Cycles         int64   `json:"cycles"`
	ScrapedCycles  int64   `json:"scraped_cycles"`
	Promoted       int64   `json:"promoted_bytes"`
	ScrapedPromote int64   `json:"scraped_promoted_bytes"`
	P99Seconds     float64 `json:"p99_seconds"`
	ScrapedP99     float64 `json:"scraped_p99_seconds"`
	Agrees         bool    `json:"agrees"`
}

// telemetryReport is the BENCH_telemetry.json schema.
type telemetryReport struct {
	Generated   string             `json:"generated"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	NumCPU      int                `json:"numcpu"`
	Workload    string             `json:"workload"`
	Runs        []telemetryRun     `json:"runs"`
	OverheadPct map[string]float64 `json:"overhead_pct"`
	Scrape      scrapeAgreement    `json:"scrape_agreement"`
	Regressions []string           `json:"regressions"`
}

// runTelemetryChurn times one fixed-work churn run (total ops split
// across muts mutators) with the telemetry surface fully armed or
// fully off, returning ns/op. Both configurations keep pause
// histograms on (the production default) so the measured delta is the
// tracer + flight recorder + SLO check alone. Fixed work (rather than
// testing.Benchmark's duration-targeted calibration) keeps repeat runs
// directly comparable so the caller can pair them.
func runTelemetryChurn(muts, total int, armed bool) (float64, error) {
	churn := workload.BarrierChurn{}
	opts := []gengc.Option{
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(64 << 20),
		gengc.WithYoungBytes(2 << 20),
	}
	if armed {
		opts = append(opts,
			gengc.WithFlightRecorder(256),
			gengc.WithPauseSLO(time.Second))
	}
	rt, err := gengc.New(opts...)
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	per := total / muts
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, muts)
	for id := 0; id < muts; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := rt.NewMutator()
			defer m.Detach()
			if err := churn.RunThread(m, per); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return float64(elapsed.Nanoseconds()) / float64(per*muts), nil
}

// median returns the median of xs, which it sorts in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// scrapeMetric extracts the value of one sample line (exact name or
// name{q="0.99"} form) from a Prometheus text exposition.
func scrapeMetric(body, name string) (float64, bool) {
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if i := strings.IndexByte(rest, ' '); i >= 0 && (i == 0 || rest[0] == '{') {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest[i+1:]), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// checkScrapeAgreement runs a churn burst on a telemetry-armed runtime,
// scrapes /metrics mid-flight (the handler must be serveable while
// mutators allocate), then quiesces and compares the final scrape
// against Snapshot() value for value.
func checkScrapeAgreement(muts, ops int) (scrapeAgreement, error) {
	var ag scrapeAgreement
	rt, err := gengc.New(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(64<<20),
		gengc.WithYoungBytes(2<<20),
		gengc.WithFlightRecorder(256),
	)
	if err != nil {
		return ag, err
	}
	defer rt.Close()
	handler := rt.MetricsHandler()
	scrape := func() string {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}

	churn := workload.BarrierChurn{}
	var wg sync.WaitGroup
	errs := make(chan error, muts)
	for id := 0; id < muts; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := rt.NewMutator()
			defer m.Detach()
			if err := churn.RunThread(m, ops); err != nil {
				errs <- err
			}
		}()
	}
	// Scrape while the churn runs: the values race the workload and are
	// discarded, but the handler must not trip the race detector or
	// block a cycle.
	for i := 0; i < 8; i++ {
		_ = scrape()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return ag, err
	}

	// Quiescent: every mutator detached, no cycle in flight after a
	// final settling collection. Scrape and snapshot must now agree
	// exactly.
	rt.Collect(true)
	body := scrape()
	s := rt.Snapshot()
	cycles, _ := scrapeMetric(body, "gengc_cycles_total")
	promoted, _ := scrapeMetric(body, "gengc_promoted_bytes_total")
	p99, _ := scrapeMetric(body, `gengc_pause_quantile_seconds{q="0.99"}`)
	ag.Cycles, ag.ScrapedCycles = s.Cycles, int64(cycles)
	ag.Promoted, ag.ScrapedPromote = s.Demographics.PromotedBytes, int64(promoted)
	ag.P99Seconds, ag.ScrapedP99 = s.Fleet.P99.Seconds(), p99
	ag.Agrees = ag.Cycles == ag.ScrapedCycles &&
		ag.Promoted == ag.ScrapedPromote &&
		ag.P99Seconds == ag.ScrapedP99
	return ag, nil
}

// telemetryExperiment measures what the armed telemetry surface costs
// the churn workload, cross-checks the Prometheus exposition against
// Snapshot, and writes BENCH_telemetry.json. Overhead beyond the 3%
// acceptance bound or a scrape disagreement is flagged as a regression
// in the report and surfaces as the regression exit code.
func telemetryExperiment(w io.Writer, jsonPath string) error {
	prevGC := debug.SetGCPercent(-1)
	defer func() {
		debug.SetGCPercent(prevGC)
		runtime.GC()
	}()

	rep := telemetryReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload: "workload.BarrierChurn: 1 alloc + 8 pointer stores + 1 safepoint per op, " +
			"generational mode, 64MB heap, 2MB young; on = flight recorder(256) + pause SLO",
		OverheadPct: map[string]float64{},
	}
	fmt.Fprintf(w, "Telemetry overhead (ns/op, BarrierChurn; on = tracer + flight recorder + SLO)\n")
	fmt.Fprintf(w, "%-9s %12s %12s %10s\n", "mutators", "off", "on", "overhead")
	const totalOps = 2_000_000
	for _, muts := range []int{1, 4} {
		// Paired back-to-back runs with the order alternating pair to
		// pair, compared median to median: the armed surface adds no
		// per-operation work on this workload (events are
		// cycle-frequency), so the measured delta is dominated by
		// scheduler/page-cache drift — alternation keeps that drift
		// from systematically landing on one configuration, and the
		// medians shed the outlier runs. A warmup run absorbs the
		// first-touch cost.
		const pairs = 5
		if _, err := runTelemetryChurn(muts, totalOps, false); err != nil {
			return err
		}
		offs := make([]float64, 0, pairs)
		ons := make([]float64, 0, pairs)
		for i := 0; i < pairs; i++ {
			for _, armed := range []bool{i%2 == 0, i%2 != 0} {
				ns, err := runTelemetryChurn(muts, totalOps, armed)
				if err != nil {
					return err
				}
				if armed {
					ons = append(ons, ns)
				} else {
					offs = append(offs, ns)
				}
			}
		}
		offNs, onNs := median(offs), median(ons)
		pct := (onNs/offNs - 1) * 100
		rep.Runs = append(rep.Runs,
			telemetryRun{Mutators: muts, Telemetry: "off", NsPerOp: offNs, Iters: totalOps},
			telemetryRun{Mutators: muts, Telemetry: "on", NsPerOp: onNs, Iters: totalOps})
		rep.OverheadPct[fmt.Sprint(muts)] = pct
		fmt.Fprintf(w, "%-9d %12.1f %12.1f %9.1f%%\n", muts, offNs, onNs, pct)
		if pct > telemetryOverheadLimitPct {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"telemetry overhead at %d mutators: %.1f%% > %.1f%% bound (off %.1f ns/op, on %.1f)",
				muts, pct, telemetryOverheadLimitPct, offNs, onNs))
		}
	}

	ag, err := checkScrapeAgreement(4, 50_000)
	if err != nil {
		return err
	}
	rep.Scrape = ag
	fmt.Fprintf(w, "scrape agreement: cycles %d/%d promoted %d/%d p99 %gs/%gs -> %v\n",
		ag.ScrapedCycles, ag.Cycles, ag.ScrapedPromote, ag.Promoted,
		ag.ScrapedP99, ag.P99Seconds, ag.Agrees)
	if !ag.Agrees {
		rep.Regressions = append(rep.Regressions,
			"quiescent /metrics scrape disagrees with Runtime.Snapshot()")
	}

	fmt.Fprintln(w)
	for _, reg := range rep.Regressions {
		fmt.Fprintf(w, "regression: %s\n", reg)
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "telemetry sweep written to %s\n\n", jsonPath)
	if len(rep.Regressions) > 0 {
		return fmt.Errorf("telemetry sweep: %w", errRegression)
	}
	return nil
}
