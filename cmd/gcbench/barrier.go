package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"gengc"
	"gengc/internal/workload"
)

// preBatchingBaselineNs is the eager-barrier churn ns/op (Write loop,
// generational mode) measured immediately before the batched write
// barrier and the word-at-a-time card scan landed, on the reference
// container (1 CPU, GOMAXPROCS=1). Kept in the report so every future
// BENCH_barrier.json carries the before/after trajectory, exactly like
// BENCH_alloc.json's pre-sharding baseline.
var preBatchingBaselineNs = map[string]float64{
	"1": 307.6,
	"2": 376.2,
	"4": 333.2,
	"8": 311.3,
}

// barrierRun is one measured configuration of the barrier sweep.
type barrierRun struct {
	Mutators int     `json:"mutators"`
	Barrier  string  `json:"barrier"`
	API      string  `json:"api"`
	NsPerOp  float64 `json:"ns_per_op"`
	Iters    int     `json:"iterations"`
}

// barrierReport is the BENCH_barrier.json schema.
type barrierReport struct {
	Generated       string             `json:"generated"`
	GoMaxProcs      int                `json:"gomaxprocs"`
	NumCPU          int                `json:"numcpu"`
	Workload        string             `json:"workload"`
	BaselineNsPerOp map[string]float64 `json:"baseline_ns_per_op_eager_loop"`
	Runs            []barrierRun       `json:"runs"`
	Regressions     []string           `json:"regressions"`
}

// barrierMutCounts is the mutator sweep of the barrier experiment.
var barrierMutCounts = []int{1, 2, 4, 8}

// runBarrierChurn measures one (mutators, barrier, api) churn
// configuration and returns the benchmark result. One op = one
// allocation + Fanout(8) barriered pointer stores + one safe point.
func runBarrierChurn(muts int, barrier gengc.BarrierMode, useBatch bool) testing.BenchmarkResult {
	churn := workload.BarrierChurn{UseWriteBatch: useBatch}
	return testing.Benchmark(func(b *testing.B) {
		rt, err := gengc.New(
			gengc.WithMode(gengc.Generational),
			gengc.WithHeapBytes(64<<20),
			gengc.WithYoungBytes(2<<20),
			gengc.WithBarrier(barrier),
			gengc.WithPauseHistograms(false),
		)
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Close()
		per := b.N/muts + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		errs := make(chan error, muts)
		for id := 0; id < muts; id++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := rt.NewMutator()
				defer m.Detach()
				if err := churn.RunThread(m, per); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	})
}

// barrierExperiment sweeps the pointer-write-heavy churn workload over
// mutator counts for each barrier mode and write API, prints the table,
// and writes the machine-readable sweep (with the embedded pre-change
// baseline and any regressions flagged) to jsonPath.
func barrierExperiment(w io.Writer, jsonPath string) error {
	// The host runtime's own collector would inject pauses into the
	// measurement (workload.Run does the same for the profile runs).
	prevGC := debug.SetGCPercent(-1)
	defer func() {
		debug.SetGCPercent(prevGC)
		runtime.GC()
	}()

	rep := barrierReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload: "workload.BarrierChurn: 1 alloc + 8 pointer stores into an old base object " +
			"+ 1 safepoint per op, generational mode, 64MB heap, 2MB young",
		BaselineNsPerOp: preBatchingBaselineNs,
	}
	configs := []struct {
		barrier  gengc.BarrierMode
		useBatch bool
	}{
		{gengc.BarrierEager, false},
		{gengc.BarrierEager, true},
		{gengc.BarrierBatched, false},
		{gengc.BarrierBatched, true},
	}
	fmt.Fprintf(w, "Write-barrier sweep (ns/op, BarrierChurn; baseline = pre-batching eager Write loop)\n")
	fmt.Fprintf(w, "%-9s %-9s %-6s %12s %12s\n", "mutators", "barrier", "api", "ns/op", "baseline")
	eagerLoop := map[int]float64{}
	for _, muts := range barrierMutCounts {
		for _, cfg := range configs {
			api := "loop"
			if cfg.useBatch {
				api = "batch"
			}
			r := runBarrierChurn(muts, cfg.barrier, cfg.useBatch)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			rep.Runs = append(rep.Runs, barrierRun{
				Mutators: muts, Barrier: cfg.barrier.String(), API: api,
				NsPerOp: ns, Iters: r.N,
			})
			if cfg.barrier == gengc.BarrierEager && !cfg.useBatch {
				eagerLoop[muts] = ns
			}
			base := ""
			if b, ok := preBatchingBaselineNs[fmt.Sprint(muts)]; ok && cfg.barrier == gengc.BarrierEager && !cfg.useBatch {
				base = fmt.Sprintf("%12.1f", b)
			}
			fmt.Fprintf(w, "%-9d %-9s %-6s %12.1f %s\n", muts, cfg.barrier, api, ns, base)
		}
	}
	// Flag — never fail on — configurations where the redesign lost
	// ground: the batched Write loop slower than the eager one at the
	// same mutator count by more than 5%, or today's eager loop slower
	// than the embedded pre-change baseline by more than 10% (the
	// eager path was supposed to be untouched; noise margin is wider
	// because the baseline is from an earlier process).
	for _, run := range rep.Runs {
		if run.Barrier == "batched" && run.API == "loop" {
			if e, ok := eagerLoop[run.Mutators]; ok && run.NsPerOp > e*1.05 {
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"batched/loop at %d mutators: %.1f ns/op vs eager %.1f (+%.1f%%)",
					run.Mutators, run.NsPerOp, e, (run.NsPerOp/e-1)*100))
			}
		}
		if run.Barrier == "eager" && run.API == "loop" {
			if b, ok := preBatchingBaselineNs[fmt.Sprint(run.Mutators)]; ok && run.NsPerOp > b*1.10 {
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"eager/loop at %d mutators: %.1f ns/op vs pre-change baseline %.1f (+%.1f%%)",
					run.Mutators, run.NsPerOp, b, (run.NsPerOp/b-1)*100))
			}
		}
	}
	fmt.Fprintln(w)
	for _, reg := range rep.Regressions {
		fmt.Fprintf(w, "regression: %s\n", reg)
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "barrier sweep written to %s\n\n", jsonPath)
	if len(rep.Regressions) > 0 {
		return fmt.Errorf("barrier sweep: %w", errRegression)
	}
	return nil
}
