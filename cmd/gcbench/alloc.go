package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"gengc/internal/heap"
)

// preShardingBaselineNs is the BenchmarkAllocParallel ns/op measured on
// the global-heap-lock allocator (single mutex around every refill,
// flush and free) immediately before the tiered lock-sharded allocation
// path landed, on the reference container (1 CPU, GOMAXPROCS=1,
// go test -bench AllocParallel -count 3, means). Kept in the report so
// every future BENCH_alloc.json carries the before/after trajectory.
var preShardingBaselineNs = map[string]float64{
	"1": 88.8,
	"2": 87.2,
	"4": 85.1,
	"8": 86.8,
}

// allocRun is one measured configuration of the mutator-count sweep.
type allocRun struct {
	Mutators int     `json:"mutators"`
	Shards   int     `json:"shards"`
	NsPerOp  float64 `json:"ns_per_op"`
	Iters    int     `json:"iterations"`
}

// allocReport is the BENCH_alloc.json schema.
type allocReport struct {
	Generated       string             `json:"generated"`
	GoMaxProcs      int                `json:"gomaxprocs"`
	NumCPU          int                `json:"numcpu"`
	Workload        string             `json:"workload"`
	BaselineNsPerOp map[string]float64 `json:"baseline_ns_per_op_global_lock"`
	Runs            []allocRun         `json:"runs"`
}

// allocExperiment sweeps the AllocChurn workload over mutator counts
// (1/2/4/8) and shard counts (1 = the old single central lock, and the
// per-class default), prints the table, and writes the machine-readable
// sweep to jsonPath so successive changes leave a perf trajectory.
func allocExperiment(w io.Writer, jsonPath string) error {
	mutCounts := []int{1, 2, 4, 8}
	shardCounts := []int{1, heap.NumClasses}
	rep := allocReport{
		Generated:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Workload:        "heap.AllocChurn: mixed size classes, window=256, FreeBatch recycling",
		BaselineNsPerOp: preShardingBaselineNs,
	}
	fmt.Fprintf(w, "Allocation-path sweep (ns/op, AllocChurn; baseline = pre-sharding global lock)\n")
	fmt.Fprintf(w, "%-9s %-8s %12s %12s\n", "mutators", "shards", "ns/op", "baseline")
	for _, shards := range shardCounts {
		for _, muts := range mutCounts {
			r := testing.Benchmark(func(b *testing.B) {
				h, err := heap.NewSharded(64<<20, shards)
				if err != nil {
					b.Fatal(err)
				}
				per := b.N/muts + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				errs := make(chan error, muts)
				for id := 0; id < muts; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						if err := h.AllocChurn(id, per); err != nil {
							errs <- err
						}
					}(id)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			})
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			rep.Runs = append(rep.Runs, allocRun{
				Mutators: muts, Shards: shards, NsPerOp: ns, Iters: r.N,
			})
			base := ""
			if shards == heap.NumClasses {
				base = fmt.Sprintf("%12.1f", preShardingBaselineNs[fmt.Sprint(muts)])
			}
			fmt.Fprintf(w, "%-9d %-8d %12.1f %s\n", muts, shards, ns, base)
		}
	}
	fmt.Fprintln(w)
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "alloc sweep written to %s\n\n", jsonPath)
	return nil
}
