// Command gcbench regenerates the tables and figures of the paper's
// evaluation (§8, Figures 7–23). Each experiment runs the synthetic
// benchmark profiles under the collector configurations the paper
// compares and prints the same rows, with the paper's published numbers
// alongside where available.
//
// Usage:
//
//	gcbench -experiment all            # everything (slow)
//	gcbench -experiment fig9           # one experiment
//	gcbench -experiment char           # Figures 10-15 (characterization)
//	gcbench -experiment cards          # Figures 21-23 (card-size sweep)
//	gcbench -experiment aging          # Figures 18-19
//	gcbench -experiment alloc          # allocator mutator-count sweep -> BENCH_alloc.json
//	gcbench -scale 0.25 -repeats 1 ... # quicker, noisier
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"gengc"
	"gengc/internal/bench"
)

// errRegression marks a sweep that completed (and wrote its JSON
// report) but flagged performance regressions against its embedded
// baseline or acceptance bound. main exits with code 2 so CI can gate
// on it while still collecting the report artifact.
var errRegression = errors.New("regressions flagged (see the JSON report)")

func main() {
	var (
		experiment  = flag.String("experiment", "all", "fig7|fig8|fig9|char|fig16|fig17|aging|fig20|cards|alloc|barrier|telemetry|all")
		benchJSON   = flag.String("benchjson", "BENCH_alloc.json", "output path of the -experiment alloc sweep")
		barrierJSON = flag.String("barrierjson", "BENCH_barrier.json", "output path of the -experiment barrier sweep")
		telemJSON   = flag.String("telemetryjson", "BENCH_telemetry.json", "output path of the -experiment telemetry comparison")
		scale       = flag.Float64("scale", 1.0, "workload length multiplier")
		repeats     = flag.Int("repeats", 3, "runs to average per measurement")
		seed        = flag.Int64("seed", 0, "workload random seed (0 = default)")
		gcworkers   = flag.Int("gcworkers", 1, "parallel collector workers (1 = the paper's single collector thread)")
		out         = flag.String("o", "", "also write results to this file")
		traceOut    = flag.String("trace", "", "write a JSONL event trace of every run to this file (render with gcreport)")
		csv         = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		quiet       = flag.Bool("q", false, "suppress per-run progress")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := bench.Options{Scale: *scale, Repeats: *repeats, Seed: *seed, Workers: *gcworkers}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	var sink *gengc.JSONLTraceSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = gengc.NewJSONLTraceSink(f)
		opts.TraceSink = sink
	}

	fmt.Fprintf(w, "gcbench: scale=%v repeats=%d gcworkers=%d GOMAXPROCS=%d NumCPU=%d\n\n",
		*scale, *repeats, *gcworkers, runtime.GOMAXPROCS(0), runtime.NumCPU())
	start := time.Now()
	if err := run(w, opts, *experiment, *csv, *benchJSON, *barrierJSON, *telemJSON); err != nil {
		fmt.Fprintln(os.Stderr, "gcbench:", err)
		if errors.Is(err, errRegression) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: writing trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (render with: gcreport %s)\n",
			*traceOut, *traceOut)
	}
	fmt.Fprintf(w, "total experiment time: %v\n", time.Since(start).Round(time.Second))
}

func run(w io.Writer, opts bench.Options, experiment string, csv bool, benchJSON, barrierJSON, telemJSON string) error {
	render := func(t bench.Table) {
		if csv {
			t.FormatCSV(w)
			fmt.Fprintln(w)
		} else {
			t.Format(w)
		}
	}
	emit := func(t bench.Table, err error) error {
		if err != nil {
			return err
		}
		render(t)
		return nil
	}
	char := func() error {
		chs, err := opts.Characterize()
		if err != nil {
			return err
		}
		for _, t := range []bench.Table{
			bench.Fig10(chs), bench.Fig11(chs), bench.Fig12(chs),
			bench.Fig13(chs), bench.Fig14(chs), bench.Fig15(chs),
		} {
			render(t)
		}
		return nil
	}
	cards := func() error {
		sweeps, err := opts.SweepCards()
		if err != nil {
			return err
		}
		for _, t := range []bench.Table{bench.Fig21(sweeps), bench.Fig22(sweeps), bench.Fig23(sweeps)} {
			render(t)
		}
		return nil
	}

	switch experiment {
	case "fig7":
		return emit(opts.Fig7())
	case "fig8":
		return emit(opts.Fig8())
	case "fig9":
		return emit(opts.Fig9())
	case "char", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15":
		return char()
	case "fig16":
		return emit(opts.Fig16())
	case "fig17":
		return emit(opts.Fig17())
	case "aging", "fig18", "fig19":
		return emit(opts.FigAging())
	case "fig20":
		return emit(opts.Fig20())
	case "cards", "fig21", "fig22", "fig23":
		return cards()
	case "alloc":
		return allocExperiment(w, benchJSON)
	case "barrier":
		return barrierExperiment(w, barrierJSON)
	case "telemetry":
		return telemetryExperiment(w, telemJSON)
	case "all":
		for _, step := range []func() error{
			func() error { return emit(opts.Fig7()) },
			func() error { return emit(opts.Fig8()) },
			func() error { return emit(opts.Fig9()) },
			char,
			func() error { return emit(opts.Fig16()) },
			func() error { return emit(opts.Fig17()) },
			func() error { return emit(opts.FigAging()) },
			func() error { return emit(opts.Fig20()) },
			cards,
		} {
			if err := step(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}
