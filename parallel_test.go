package gengc

import (
	"sync"
	"testing"
	"time"
)

// buildChurn drives a deterministic single-mutator workload: a long
// chain of survivors plus batches of immediately-dropped garbage, with
// explicit partial and full collections. Identical calls produce an
// identical sequence of heap operations, so two runs differing only in
// collector configuration are directly comparable.
func buildChurn(t *testing.T, rt *Runtime) {
	t.Helper()
	m := rt.NewMutator()
	defer m.Detach()

	head := m.MustAlloc(2, 0)
	root := m.PushRoot(head)
	cur := head
	for round := 0; round < 8; round++ {
		for i := 0; i < 400; i++ {
			n := m.MustAlloc(2, 16)
			m.Write(cur, 0, n)
			cur = n
			// Two garbage leaves per live node.
			m.MustAlloc(0, 32)
			m.MustAlloc(1, 24)
		}
		m.Collect(round%3 == 2)
	}
	// Drop the back half of the chain and collect twice so the color
	// toggle clears the floating garbage deterministically.
	x := m.Root(root)
	for i := 0; i < 1600; i++ {
		x = m.Read(x, 0)
	}
	m.Write(x, 0, Nil)
	m.Collect(true)
	m.Collect(true)
}

// cycleEssence strips a cycle record down to the fields that must be
// reproducible across identical runs: timing and parallel-scheduling
// detail (Duration, HandshakeTime, Steals, per-worker splits) are
// explicitly excluded.
type cycleEssence struct {
	kind           string
	seq            int
	objectsScanned int
	slotsScanned   int
	objectsFreed   int
	bytesFreed     int
	survivors      int
}

func essence(cycles []CycleRecord) []cycleEssence {
	out := make([]cycleEssence, 0, len(cycles))
	for _, c := range cycles {
		out = append(out, cycleEssence{
			kind:           c.Kind.String(),
			seq:            c.Seq,
			objectsScanned: c.ObjectsScanned,
			slotsScanned:   c.SlotsScanned,
			objectsFreed:   c.ObjectsFreed,
			bytesFreed:     c.BytesFreed,
			survivors:      c.Survivors,
		})
	}
	return out
}

// TestParallelWorkersDeterministicSerial checks that Workers=1 is the
// exact pre-parallelism collector: two identical deterministic runs
// must produce identical cycle records (modulo timing).
func TestParallelWorkersDeterministicSerial(t *testing.T) {
	run := func() []cycleEssence {
		rt, err := NewManual(WithMode(Generational),
			WithHeapBytes(8<<20), WithYoungBytes(256<<10), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		buildChurn(t, rt)
		if err := rt.Verify(); err != nil {
			t.Fatal(err)
		}
		return essence(rt.Cycles())
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs produced %d vs %d cycles", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cycle %d differs between identical runs:\n  %+v\n  %+v", i+1, a[i], b[i])
		}
	}
}

// TestParallelWorkersSemanticEquivalence runs the same deterministic
// workload under Workers=1 and Workers=4. The trace interleaving
// differs, but with the mutator quiescent during each manual collection
// the reachable set — and therefore what is scanned and what is freed —
// must be identical.
func TestParallelWorkersSemanticEquivalence(t *testing.T) {
	run := func(workers int) (ce []cycleEssence, objects int64, steals int) {
		rt, err := NewManual(WithMode(Generational),
			WithHeapBytes(8<<20), WithYoungBytes(256<<10), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		buildChurn(t, rt)
		if err := rt.Verify(); err != nil {
			t.Fatal(err)
		}
		if err := rt.VerifyCardInvariant(); err != nil {
			t.Fatal(err)
		}
		for _, c := range rt.Cycles() {
			steals += c.Steals
		}
		return essence(rt.Cycles()), rt.HeapObjects(), steals
	}
	serial, serialObjects, _ := run(1)
	parallel, parallelObjects, steals := run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("serial ran %d cycles, parallel ran %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("cycle %d differs between Workers=1 and Workers=4:\n  serial:   %+v\n  parallel: %+v",
				i+1, serial[i], parallel[i])
		}
	}
	if serialObjects != parallelObjects {
		t.Errorf("final heap: %d objects serial, %d parallel", serialObjects, parallelObjects)
	}
	t.Logf("parallel run stole %d work batches over %d cycles", steals, len(parallel))
}

// TestParallelRaceStress is the Workers=4 counterpart of
// TestStressConcurrent: four mutator goroutines race the parallel
// on-the-fly collector in every mode, then the full heap audit and the
// card invariant must hold. Run under -race this exercises every
// cross-thread access path in the parallel trace and sharded sweep.
func TestParallelRaceStress(t *testing.T) {
	ops := 40000
	if testing.Short() {
		ops = 8000
	}
	for _, mode := range []Mode{NonGenerational, Generational, GenerationalAging} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rt, err := New(
				WithMode(mode),
				WithHeapBytes(8<<20),
				WithYoungBytes(512<<10),
				WithOldAge(2),
				WithFullThreshold(0.3),
				WithWorkers(4),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					stressMutator(t, rt, seed, ops)
				}(int64(mode)*100 + int64(w))
			}
			wg.Wait()
			if err := rt.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := rt.VerifyCardInvariant(); err != nil {
				t.Fatal(err)
			}
			// A requested cycle may still be in flight; poll briefly.
			deadline := time.Now().Add(5 * time.Second)
			for rt.Stats().NumCycles == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if rt.Stats().NumCycles == 0 {
				t.Error("stress run triggered no collections")
			}
		})
	}
}

// TestParallelManualAllModes drives the deterministic workload with
// Workers=4 across every mode, including the aging and page-tracking
// paths, and audits the heap after each run.
func TestParallelManualAllModes(t *testing.T) {
	for _, mode := range []Mode{NonGenerational, Generational, GenerationalAging} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rt, err := NewManual(WithMode(mode), WithHeapBytes(8<<20),
				WithYoungBytes(256<<10), WithOldAge(2), WithWorkers(4),
				WithPageTracking(true))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			buildChurn(t, rt)
			if err := rt.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := rt.VerifyCardInvariant(); err != nil {
				t.Fatal(err)
			}
			cycles := rt.Cycles()
			if len(cycles) == 0 {
				t.Fatal("no cycles recorded")
			}
			for _, c := range cycles {
				if c.Workers != 4 {
					t.Errorf("cycle %d recorded Workers=%d, want 4", c.Seq, c.Workers)
				}
				if got := len(c.WorkerScanned); got != 4 {
					t.Errorf("cycle %d has %d per-worker scan counters, want 4", c.Seq, got)
				}
				sum := 0
				for _, n := range c.WorkerScanned {
					sum += n
				}
				if sum != c.ObjectsScanned {
					t.Errorf("cycle %d: per-worker scans sum to %d, total says %d",
						c.Seq, sum, c.ObjectsScanned)
				}
				sum = 0
				for _, n := range c.WorkerFreed {
					sum += n
				}
				if sum != c.ObjectsFreed {
					t.Errorf("cycle %d: per-worker frees sum to %d, total says %d",
						c.Seq, sum, c.ObjectsFreed)
				}
			}
		})
	}
}
