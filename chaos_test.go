package gengc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gengc/internal/trace"
)

// drive runs fn on a helper goroutine while mutator m cooperates, so
// collector-side operations that handshake with m can complete.
func drive(m *Mutator, fn func()) {
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
			m.Safepoint()
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// TestMustAllocOOMPanic exhausts a small heap and checks that MustAlloc
// panics with the typed *OOMPanic whose chain reaches ErrOutOfMemory.
func TestMustAllocOOMPanic(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(256<<10),
		WithYoungBytes(128<<10), WithInitialTargetBytes(128<<10),
		WithHeadroomBytes(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()

	fill := func() (p any) {
		defer func() { p = recover() }()
		for i := 0; ; i++ {
			m.PushRoot(m.MustAlloc(0, 4096)) // rooted: nothing collectible
			m.Safepoint()
		}
	}
	p := fill()
	if p == nil {
		t.Fatal("MustAlloc never panicked on an exhausted heap")
	}
	oom, ok := p.(*OOMPanic)
	if !ok {
		t.Fatalf("panic value is %T, want *OOMPanic", p)
	}
	if !errors.Is(oom, ErrOutOfMemory) {
		t.Fatalf("panic chain does not reach ErrOutOfMemory: %v", oom)
	}
	var target *OOMPanic
	if err := error(oom); !errors.As(err, &target) {
		t.Fatalf("errors.As failed on %v", err)
	}
}

// TestClosedSentinel checks the ErrClosed surface: allocation on a
// closed runtime fails with the sentinel, and Close is idempotent.
func TestClosedSentinel(t *testing.T) {
	rt, err := New(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	if _, err := m.Alloc(1, 0); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close() // idempotent
	if _, err := m.Alloc(1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc after Close: err = %v, want ErrClosed in chain", err)
	}
	if _, err := m.AllocCtx(context.Background(), 1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("AllocCtx after Close: err = %v, want ErrClosed in chain", err)
	}
	m.Detach()
}

// TestStallWatchdog stalls a mutator past the configured deadline and
// checks all three report surfaces: the OnStall callback, the Stalls
// snapshot counter, and the "stall" trace event.
func TestStallWatchdog(t *testing.T) {
	sink := &trace.MemorySink{}
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20),
		WithStallTimeout(10*time.Millisecond), WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var reports []StallEvent
	rt.OnStall(func(s StallEvent) {
		mu.Lock()
		reports = append(reports, s)
		mu.Unlock()
	})
	m := rt.NewMutator()

	done := make(chan struct{})
	go func() { rt.Collect(false); close(done) }()
	time.Sleep(60 * time.Millisecond) // stall: no safepoints
	for {
		select {
		case <-done:
		default:
			m.Safepoint()
			continue
		}
		break
	}

	if got := rt.Snapshot().Stalls; got == 0 {
		t.Fatal("Snapshot.Stalls == 0 after a 60ms stall against a 10ms deadline")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("OnStall never fired")
	}
	r := reports[0]
	if r.Phase != "sync1" {
		t.Errorf("first stall phase = %q, want sync1 (the first wedged wait)", r.Phase)
	}
	if r.Waited < 10*time.Millisecond {
		t.Errorf("reported wait %v is below the deadline", r.Waited)
	}
	m.Detach()
	rt.Close()
	stalls := 0
	for _, e := range sink.Events() {
		if e.Ev == "stall" {
			stalls++
			if e.K != "sync1" && e.K != "sync2" && e.K != "sync3" && e.K != "ack" {
				t.Errorf("stall event with unknown phase %q", e.K)
			}
		}
	}
	if stalls != len(reports) {
		t.Errorf("%d stall trace events, %d OnStall reports — surfaces disagree", stalls, len(reports))
	}
}

// TestAllocCtxStalledCollection wedges a collection behind an
// uncooperative mutator and checks that AllocCtx's deadline converts
// the indefinite wait into ErrStalled, and that Close then aborts the
// wedged cycle instead of hanging.
func TestAllocCtxStalledCollection(t *testing.T) {
	in := NewFaultInjector(7)
	// Every allocation reports transient OOM, forcing the full-collection
	// wait; the collection can never finish because m2 never cooperates.
	in.Install(FaultRule{Point: FaultAlloc, Kind: FaultFail})
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20),
		WithFaultInjector(in), WithStallTimeout(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	m1 := rt.NewMutator()
	m2 := rt.NewMutator()
	_ = m2 // attached but silent: wedges every handshake

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = m1.AllocCtx(ctx, 1, 0)
	if err == nil {
		t.Fatal("AllocCtx succeeded although every allocation faults")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled in chain", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("AllocCtx blocked %v past its 50ms deadline", waited)
	}

	// Close must abort the wedged cycle after the grace period.
	closed := make(chan struct{})
	go func() { rt.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on the wedged handshake")
	}
	if rt.Snapshot().AbortedCycles == 0 {
		t.Error("no aborted cycle recorded although Close cut a wedged handshake")
	}
}

// TestAllocFaultRetries arms a bounded run of injected allocation
// failures and checks the retry path absorbs them: the allocation
// succeeds once the rule disarms, within the configured retry budget.
func TestAllocFaultRetries(t *testing.T) {
	in := NewFaultInjector(11)
	in.Install(FaultRule{Point: FaultAlloc, Kind: FaultFail, Count: 2})
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20),
		WithFaultInjector(in), WithAllocRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()

	addr, err := m.Alloc(1, 0)
	if err != nil {
		t.Fatalf("Alloc did not survive 2 injected faults with 3 retries: %v", err)
	}
	if addr == Nil {
		t.Fatal("nil ref from successful Alloc")
	}
	if fired := in.Fired(FaultAlloc); fired != 2 {
		t.Fatalf("Alloc point fired %d times, want 2", fired)
	}
	// The two failed attempts each waited out a full collection.
	if fulls := rt.Snapshot().Fulls; fulls < 2 {
		t.Errorf("only %d full collections ran during the retries, want >= 2", fulls)
	}
}

// TestAllocRetryBudgetExhausted checks that an unbounded fault stream
// surfaces as ErrOutOfMemory after exactly the configured retries
// rather than looping forever.
func TestAllocRetryBudgetExhausted(t *testing.T) {
	in := NewFaultInjector(13)
	in.Install(FaultRule{Point: FaultAlloc, Kind: FaultFail})
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20),
		WithFaultInjector(in), WithAllocRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()

	if _, err := m.Alloc(1, 0); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory after exhausted retries", err)
	}
	if fired := in.Fired(FaultAlloc); fired != 3 {
		t.Errorf("Alloc point fired %d times, want 3 (initial + 2 retries)", fired)
	}
}

// panickingSink explodes on every Emit; the runtime must degrade
// tracing instead of crashing the collector.
type panickingSink struct{ calls atomic.Int64 }

func (s *panickingSink) Emit(TraceEvent) {
	s.calls.Add(1)
	panic("bad sink")
}
func (s *panickingSink) Flush() error { return nil }

// TestTraceSinkDegradation runs collections against a sink that panics
// on every write and checks that the collector survives, degrades the
// sink, and counts the dropped events.
func TestTraceSinkDegradation(t *testing.T) {
	sink := &panickingSink{}
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20),
		WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	for i := 0; i < 100; i++ {
		m.PushRoot(m.MustAlloc(1, 0))
	}
	for i := 0; i < 3; i++ {
		drive(m, func() { rt.Collect(true) })
	}
	snap := rt.Snapshot()
	if snap.Fulls != 3 {
		t.Fatalf("collector stopped collecting under a panicking sink: %d fulls", snap.Fulls)
	}
	if !snap.TraceDegraded {
		t.Error("TraceDegraded false although every sink write panicked")
	}
	if snap.TraceDrops == 0 {
		t.Error("TraceDrops == 0 although the degraded sink dropped events")
	}
	m.Detach()
	rt.Close() // final drain must not panic either
}

// TestCloseAllocRace closes the runtime — twice, concurrently — while
// mutators allocate and the background collector cycles. Every
// allocator must come to rest with ErrClosed; nothing may deadlock or
// trip the race detector.
func TestCloseAllocRace(t *testing.T) {
	rt, err := New(WithMode(Generational), WithHeapBytes(8<<20),
		WithYoungBytes(256<<10), WithStallTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	var closedErrs atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := rt.NewMutator()
			defer m.Detach()
			var keep int
			for {
				ref, err := m.Alloc(2, 64)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("allocator got %v, want ErrClosed", err)
					}
					closedErrs.Add(1)
					return
				}
				if keep < 64 {
					m.PushRoot(ref)
					keep++
				} else {
					m.PopRoots(32)
					keep -= 32
				}
				m.Safepoint()
			}
		}()
	}
	time.Sleep(30 * time.Millisecond) // let cycles and allocation overlap
	var cwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			rt.Close()
		}()
	}
	cwg.Wait()
	rt.Close() // and once more, after the fact
	wg.Wait()
	if got := closedErrs.Load(); got != workers {
		t.Fatalf("%d allocators saw ErrClosed, want %d", got, workers)
	}
}

// TestDetachHandshakeRace detaches and re-attaches mutators while
// collections run, so detach keeps racing mid-flight handshakes. The
// handshake must neither wait on detached mutators nor miss their
// leftover gray buffers.
func TestDetachHandshakeRace(t *testing.T) {
	rt, err := New(WithMode(Generational), WithHeapBytes(8<<20),
		WithYoungBytes(128<<10))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := rt.NewMutator()
				prev := m.MustAlloc(2, 0)
				m.PushRoot(prev)
				for i := 0; i < 100; i++ {
					n := m.MustAlloc(2, 32)
					m.Write(n, 0, prev)
					m.SetRoot(0, n)
					prev = n
					m.Safepoint()
				}
				m.Detach() // mid-cycle more often than not
			}
		}()
	}
	deadline := time.After(300 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			rt.Collect(false)
		}
	}
	close(stop)
	wg.Wait()
	drainDone := make(chan struct{})
	go func() { rt.Collect(true); close(drainDone) }()
	<-drainDone
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	rt.Close()
}

// TestAllocCtxCancelledBetweenRetries cancels the context while the
// allocation slow path is part-way through its bounded OOM retry
// budget. The errors.go contract for ErrStalled must hold on this path
// too: the error wraps both ErrStalled and the context's error, the
// call returns promptly instead of burning the remaining retries, and
// it does not get misreported as ErrOutOfMemory.
func TestAllocCtxCancelledBetweenRetries(t *testing.T) {
	in := NewFaultInjector(13)
	// Every allocation reports transient OOM, so the slow path loops
	// collect-and-retry; the huge retry budget guarantees cancellation
	// lands mid-budget, not after ErrOutOfMemory gave up.
	in.Install(FaultRule{Point: FaultAlloc, Kind: FaultFail})
	rt, err := New(WithMode(Generational), WithHeapBytes(4<<20),
		WithFaultInjector(in), WithAllocRetries(1000),
		WithStallTimeout(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	_, err = m.AllocCtx(ctx, 1, 0)
	waited := time.Since(start)
	if err == nil {
		t.Fatal("AllocCtx succeeded although every allocation faults")
	}
	if errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v: cancellation burned the retry budget into ErrOutOfMemory", err)
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled in chain", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if waited > 5*time.Second {
		t.Fatalf("AllocCtx returned %v after a 20ms cancellation", waited)
	}
}
