package gengc

import (
	"io"
	"time"
)

// Option configures a Runtime under construction. Options apply in
// order over the paper's defaults (32 MB heap, 4 MB young generation,
// 16-byte cards, simple promotion, one collector worker), so later
// options override earlier ones and WithConfig can seed the whole
// configuration before per-field options refine it.
type Option func(*Config)

// WithConfig replaces the entire configuration with cfg. It is the
// bridge from the previous struct-literal API: New(WithConfig(cfg)) is
// equivalent to the old New(cfg). Options after it still apply.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithMode selects the collector variant (NonGenerational,
// Generational, GenerationalAging).
func WithMode(m Mode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithHeapBytes sets the heap size; the paper's maximum is 32 MB.
func WithHeapBytes(n int) Option {
	return func(c *Config) { c.HeapBytes = n }
}

// WithYoungBytes sets the young-generation size parameter (§3.3): a
// partial collection triggers once this many bytes have been allocated
// since the previous collection.
func WithYoungBytes(n int) Option {
	return func(c *Config) { c.YoungBytes = n }
}

// WithCardBytes sets the card size: 16 is the paper's "object marking",
// 4096 its "block marking".
func WithCardBytes(n int) Option {
	return func(c *Config) { c.CardBytes = n }
}

// WithWorkers sets the number of collector worker goroutines used for
// the trace and sweep phases. 1 (the default) is the paper's single
// collector thread; higher values parallelize the collector with
// work-stealing tracing and a sharded sweep while preserving the
// on-the-fly property.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithAllocShards sets the number of central free-list shards of the
// tiered allocator (per-mutator cache → per-class central shard → page
// allocator). 0 — the default — gives every size class its own shard
// and lock, so cache refills, flushes and sweep frees of different
// classes never contend; 1 degenerates to a single central lock (the
// pre-sharding behavior, useful for comparison). Values above the size
// class count are clamped to it. Snapshot.Alloc reports the per-shard
// contention counters.
func WithAllocShards(n int) Option {
	return func(c *Config) { c.AllocShards = n }
}

// WithBarrier selects the write-barrier implementation. BarrierEager
// (the default) is the paper's barrier: every pointer store pays its
// shade CAS and card-mark atomic immediately. BarrierBatched defers
// that shared-memory work into per-mutator buffers with plain appends
// and drains them at safe-point responses, full buffers and detach —
// semantically equivalent (the drains complete before the handshake
// responses the collector's phases wait on; DESIGN.md, "Barrier modes")
// and faster on pointer-write-heavy workloads. Snapshot.Barrier reports
// the flush counters. BarrierBatched cannot be combined with
// WithDisableColorToggle (ErrInvalidConfig).
func WithBarrier(b BarrierMode) Option {
	return func(c *Config) { c.Barrier = b }
}

// WithOldAge sets the aging tenure threshold (GenerationalAging only):
// the number of collections an object must survive before promotion.
func WithOldAge(n int) Option {
	return func(c *Config) { c.OldAge = n }
}

// WithFullThreshold caps the adaptive full-collection target at this
// fraction of the heap (§3.3's "heap is almost full").
func WithFullThreshold(f float64) Option {
	return func(c *Config) { c.FullThreshold = f }
}

// WithInitialTargetBytes sets the starting point of the adaptive
// full-collection target (the paper's heap grows from 1 MB on demand).
func WithInitialTargetBytes(n int) Option {
	return func(c *Config) { c.InitialTargetBytes = n }
}

// WithHeadroomBytes sets the allocation headroom above the live set at
// which the next full collection triggers.
func WithHeadroomBytes(n int) Option {
	return func(c *Config) { c.HeadroomBytes = n }
}

// WithGlobalRootSlots sets the number of global (class-static-like)
// root slots.
func WithGlobalRootSlots(n int) Option {
	return func(c *Config) { c.GlobalRootSlots = n }
}

// WithRememberedSet replaces card marking with a remembered set for
// inter-generational pointers (§3.1's alternative; Generational only).
func WithRememberedSet(on bool) Option {
	return func(c *Config) { c.UseRememberedSet = on }
}

// WithDynamicTenure makes the aging tenure threshold self-adjusting
// (GenerationalAging only).
func WithDynamicTenure(on bool) Option {
	return func(c *Config) { c.DynamicTenure = on }
}

// WithDisableColorToggle runs the baseline with the original §2 DLG
// create protocol instead of the Remark 5.1 color toggle
// (NonGenerational only; exists for the ablation).
func WithDisableColorToggle(on bool) Option {
	return func(c *Config) { c.DisableColorToggle = on }
}

// WithPageTracking enables the Figure 15 pages-touched instrumentation.
func WithPageTracking(on bool) Option {
	return func(c *Config) { c.TrackPages = on }
}

// WithPageCostSpins charges the collector a busy-spin per first-touched
// page per cycle, reintroducing the memory-hierarchy cost of the
// paper's hardware (implies page tracking).
func WithPageCostSpins(n int) Option {
	return func(c *Config) { c.PageCostSpins = n }
}

// WithLog directs one log line per collection cycle to w.
func WithLog(w io.Writer) Option {
	return func(c *Config) { c.Log = w }
}

// WithTraceSink streams the collector's structured events — cycle,
// handshake, drain, sweep and card-scan spans plus mutator pauses — to
// sink. Events are buffered in per-producer rings and drained at the
// end of every cycle and at Close, so emitting costs the hot paths one
// array store. Use NewJSONLTraceSink to produce the JSONL format that
// cmd/gcreport renders into the paper-style figures.
func WithTraceSink(sink TraceSink) Option {
	return func(c *Config) { c.TraceSink = sink }
}

// WithPauseHistograms enables or disables per-mutator pause accounting
// (log-linear histograms behind Snapshot and PauseStats). It is on by
// default — recording costs one timestamp pair and one atomic increment
// per responded handshake — so this option exists to switch it off for
// barrier microbenchmarks.
func WithPauseHistograms(on bool) Option {
	return func(c *Config) { c.DisablePauseHistograms = !on }
}

// WithFlightRecorder arms the anomaly flight recorder with a ring of
// the last n trace events. The ring records continuously at near-zero
// cost (it taps the same per-producer ring + cycle-drain path as
// WithTraceSink, tee'd behind it when both are set); when an anomaly
// fires — a stall report, an aborted cycle, an allocation giving up
// with ErrOutOfMemory or ErrStalled, a WithPauseSLO breach — the ring
// and a Snapshot freeze into a dump retrievable via
// Runtime.FlightRecorder (and servable by cmd/gcmon's
// /flightrecorder/dump). Zero (the default) disables the recorder.
func WithFlightRecorder(n int) Option {
	return func(c *Config) { c.FlightRecorderEvents = n }
}

// WithPauseSLO declares a mutator pause service-level objective: every
// recorded pause longer than d raises Snapshot.SLOBreaches and triggers
// a flight-recorder dump when one is armed (WithFlightRecorder).
// Requires pause histograms (the default); zero disables SLO
// accounting.
func WithPauseSLO(d time.Duration) Option {
	return func(c *Config) { c.PauseSLO = d }
}

// WithStallTimeout sets the handshake watchdog's deadline: when a
// mutator has not responded to a pending handshake or acknowledgement
// round within d, the collector reports a stall (the "stall" trace
// event, the Snapshot.Stalls counter and the OnStall callback) — once
// per mutator per wait — and keeps waiting. Zero keeps the 1s default;
// a negative d disables the watchdog. The deadline also bounds how long
// Close waits for a wedged handshake before abandoning the cycle.
func WithStallTimeout(d time.Duration) Option {
	return func(c *Config) { c.StallTimeout = d }
}

// WithAllocRetries bounds how many full-collection-and-retry rounds an
// exhausted allocation attempts before giving up with ErrOutOfMemory.
// Zero keeps the default of 3.
func WithAllocRetries(n int) Option {
	return func(c *Config) { c.AllocRetries = n }
}

// WithSelfCheck makes the collector audit its own protocol invariants
// at the end of every cycle (status converged, trace quiesced, no
// object left gray, allocator bookkeeping intact) while the mutators
// keep running. Violations are counted and retained (see
// Collector.SelfCheckErr) rather than panicking. Intended for chaos
// campaigns and stress tests; each audit walks the heap once.
func WithSelfCheck(on bool) Option {
	return func(c *Config) { c.SelfCheck = on }
}

// WithFaultInjector arms deterministic fault injection: in decides at
// each named injection point (see FaultPoint) whether to delay, drop or
// fail the operation. Nil (the default) disables injection; the hot
// paths then pay one pointer comparison.
func WithFaultInjector(in *FaultInjector) Option {
	return func(c *Config) { c.Fault = in }
}

// WithAdmission arms the runtime's admission controller: a bounded
// in-flight token pool (cfg.MaxInFlight) with a bounded, deadline-aware
// wait queue (cfg.MaxQueue, cfg.QueueTimeout) in front of it, plus a
// degraded mode — driven by the pacer's heap-occupancy red-line
// (cfg.RedLine, a fraction of the emergency full-collection bound) and
// recent allocation-deadline slips (cfg.SlipWindow) — that sheds
// low-priority requests while the runtime is in trouble. Rejections
// wrap ErrShed; counters surface in Snapshot.Admission and the
// Prometheus exposition. Zero fields of cfg assume the defaults (64
// in-flight, 256 queued, 50ms queue timeout, 0.9 red-line, 250ms slip
// window). The controller sheds *before* the heap reaches the
// emergency trigger — backpressure instead of ErrOutOfMemory.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(c *Config) { c.Admission = &cfg }
}

// WithRequestSLO declares a per-request latency objective for request
// latencies fed to Runtime.ObserveRequest: each observation is recorded
// into the request-latency histogram (Snapshot.RequestLatency — end to
// end, distinct from the per-pause histograms), and every observation
// longer than d raises Snapshot.RequestSLOBreaches and triggers a
// flight-recorder dump when one is armed. Zero disables the SLO but
// WithAdmission alone still enables the request histogram.
func WithRequestSLO(d time.Duration) Option {
	return func(c *Config) { c.RequestSLO = d }
}

// buildConfig folds the options over a zero Config (whose zero fields
// later assume the paper's defaults).
func buildConfig(opts []Option) Config {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}
