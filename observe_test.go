package gengc_test

// Integration tests for the observability layer: pause histograms and
// Snapshot, the structured trace stream, and the gcreport pipeline —
// driven through the public API plus the workload runner, the way
// cmd/gctrace and cmd/gcbench use them.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"gengc"
	"gengc/internal/report"
	"gengc/internal/trace"
	"gengc/internal/workload"
)

// churn is a small allocation-heavy profile: most objects die young,
// some survive and get promoted, old objects are updated — every pause
// cause (handshake, roots, ack, allocwait) can occur.
func churn(threads int) workload.Profile {
	return workload.Profile{
		Name:          "churn",
		Threads:       threads,
		OpsPerThread:  30000,
		AllocFrac:     0.7,
		MeanSize:      96,
		SizeJitter:    32,
		SlotsMax:      3,
		NurserySlots:  256,
		AttachFrac:    0.5,
		SurvivorFrac:  0.02,
		SurvivorSlots: 64,
		SurvivorTTL:   2,
		BaseBytes:     256 << 10,
		BaseSlots:     4,
		BaseObjSize:   64,
		OldUpdateFrac: 0.05,
		OldRetain:     256,
		Locality:      0.5,
	}
}

// TestPauseBoundedChurnParallel runs the churn workload at Workers=1
// and Workers=4 and asserts that pauses were recorded and that the
// worst mutator-visible pause stays within a generous bound — the
// on-the-fly property: mutators are never stopped for a whole
// collection, so no pause should approach the multi-second range even
// on a loaded CI machine.
func TestPauseBoundedChurnParallel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := workload.Run(churn(4), gengc.Config{
				HeapBytes:  8 << 20,
				Mode:       gengc.Generational,
				YoungBytes: 512 << 10,
				Workers:    workers,
			}, 42)
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary.NumCycles == 0 {
				t.Fatal("workload triggered no collections")
			}
			p := res.Pauses
			if p.Count == 0 {
				t.Fatal("no pauses recorded despite collections running")
			}
			if p.Mutator != -1 {
				t.Errorf("fleet stats mutator id = %d, want -1", p.Mutator)
			}
			if p.Max <= 0 || p.Max > 5*time.Second {
				t.Errorf("max pause %v outside (0, 5s]", p.Max)
			}
			if p.P50 > p.P99 || p.P99 > p.P999 || p.P999 > p.Max {
				t.Errorf("quantiles not monotone: p50=%v p99=%v p99.9=%v max=%v",
					p.P50, p.P99, p.P999, p.Max)
			}
			if p.Total <= 0 {
				t.Errorf("total pause time = %v, want > 0", p.Total)
			}
		})
	}
}

// TestSnapshotPerMutator drives mutators directly and checks the
// Snapshot surface: per-mutator entries while attached, fleet coverage
// after detach, and heap/cycle counters.
func TestSnapshotPerMutator(t *testing.T) {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational), gengc.WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	root := m.PushRoot(gengc.Nil)
	for i := 0; i < 2000; i++ {
		m.SetRoot(root, m.MustAlloc(1, 64))
	}
	m.Collect(false) // cooperates → records pauses
	m.Collect(true)

	snap := rt.Snapshot()
	if snap.Cycles != 2 || snap.Fulls != 1 {
		t.Fatalf("snapshot cycles=%d fulls=%d, want 2/1", snap.Cycles, snap.Fulls)
	}
	if snap.HeapObjects <= 0 || snap.HeapBytes <= 0 {
		t.Fatalf("snapshot heap empty: %+v", snap)
	}
	if len(snap.Mutators) != 1 {
		t.Fatalf("per-mutator entries = %d, want 1", len(snap.Mutators))
	}
	if snap.Mutators[0].Count == 0 {
		t.Fatal("attached mutator recorded no pauses across two collections")
	}
	if snap.Fleet.Count < snap.Mutators[0].Count {
		t.Fatalf("fleet count %d < mutator count %d",
			snap.Fleet.Count, snap.Mutators[0].Count)
	}

	// After detach the per-mutator list empties but the fleet keeps the
	// history (the retired histogram).
	before := snap.Fleet.Count
	m.Detach()
	snap = rt.Snapshot()
	if len(snap.Mutators) != 0 {
		t.Fatalf("per-mutator entries after detach = %d, want 0", len(snap.Mutators))
	}
	if snap.Fleet.Count != before {
		t.Fatalf("fleet count changed across detach: %d -> %d", before, snap.Fleet.Count)
	}
}

// TestPauseHistogramsOff checks WithPauseHistograms(false) switches the
// accounting off cleanly.
func TestPauseHistogramsOff(t *testing.T) {
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(4<<20), gengc.WithPauseHistograms(false))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()
	root := m.PushRoot(gengc.Nil)
	for i := 0; i < 500; i++ {
		m.SetRoot(root, m.MustAlloc(1, 64))
	}
	m.Collect(true)
	if snap := rt.Snapshot(); snap.Fleet.Count != 0 || len(snap.Mutators) != 0 {
		t.Fatalf("pause accounting off but snapshot has data: %+v", snap)
	}
}

// TestTraceSinkEvents runs collections against a memory sink and checks
// the event stream's shape: the start boundary, per-cycle spans, and
// cycle numbers that match the metrics records.
func TestTraceSinkEvents(t *testing.T) {
	sink := &trace.MemorySink{}
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(4<<20), gengc.WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	root := m.PushRoot(gengc.Nil)
	for i := 0; i < 2000; i++ {
		m.SetRoot(root, m.MustAlloc(1, 64))
	}
	m.Collect(false)
	m.Collect(true)
	m.Detach()
	rt.Close() // final flush

	byEv := map[string][]gengc.TraceEvent{}
	for _, e := range sink.Events() {
		byEv[e.Ev] = append(byEv[e.Ev], e)
	}
	if n := len(byEv["start"]); n != 1 {
		t.Fatalf("start events = %d, want 1", n)
	}
	cycles := byEv["cycle"]
	if len(cycles) != 2 {
		t.Fatalf("cycle events = %d, want 2", len(cycles))
	}
	recs := rt.Cycles()
	for i, e := range cycles {
		if e.Cycle != int64(recs[i].Seq) {
			t.Errorf("cycle event %d numbered %d, metrics Seq %d", i, e.Cycle, recs[i].Seq)
		}
		if e.K != recs[i].Kind.String() {
			t.Errorf("cycle event %d kind %q, metrics %v", i, e.K, recs[i].Kind)
		}
		if e.D <= 0 {
			t.Errorf("cycle event %d has non-positive duration %d", i, e.D)
		}
	}
	if len(byEv["sync"]) != 6 {
		t.Errorf("sync events = %d, want 3 per cycle", len(byEv["sync"]))
	}
	if len(byEv["sweep"]) != 2 {
		t.Errorf("sweep events = %d, want 2", len(byEv["sweep"]))
	}
	if len(byEv["pause"]) == 0 {
		t.Error("no pause events emitted")
	}
	if len(byEv["initfull"]) != 1 {
		t.Errorf("initfull events = %d, want 1 (one full cycle)", len(byEv["initfull"]))
	}
}

// TestTraceJSONLThroughReport is the in-process version of the
// Makefile's trace-verify target: workload → JSONL sink → report.Parse
// → renderers, asserting the pipeline agrees with the run's metrics.
func TestTraceJSONLThroughReport(t *testing.T) {
	var buf bytes.Buffer
	sink := gengc.NewJSONLTraceSink(&buf)
	res, err := workload.Run(churn(2), gengc.Config{
		HeapBytes:  8 << 20,
		Mode:       gengc.Generational,
		YoungBytes: 512 << 10,
	}, 7, workload.TraceTo(sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	tr, err := report.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Runs != 1 {
		t.Fatalf("runs = %d, want 1", tr.Runs)
	}
	bds := tr.Breakdown()
	var traced int
	for _, b := range bds {
		traced += b.Cycles
	}
	if traced != res.Summary.NumCycles {
		t.Fatalf("trace holds %d cycles, metrics %d", traced, res.Summary.NumCycles)
	}
	pauses := tr.Pauses()
	if pauses.Count == 0 {
		t.Fatal("no pause events in trace")
	}
	if max := pauses.Max(); max != res.Pauses.Max {
		// Histogram Max is exact and the events carry the same
		// durations, so the two views must agree.
		t.Fatalf("trace max pause %v != histogram max %v", max, res.Pauses.Max)
	}
	var out bytes.Buffer
	report.RenderSummary(&out, tr)
	report.RenderPauseCDF(&out, tr, false)
	report.RenderBreakdown(&out, tr, false)
	if !strings.Contains(out.String(), "partial") {
		t.Fatalf("rendered report missing cycle table:\n%s", out.String())
	}
}

// TestPublishExpvar checks the expvar surface: publishing works once
// per name and reports a duplicate instead of panicking.
func TestPublishExpvar(t *testing.T) {
	rt, err := gengc.NewManual(gengc.WithHeapBytes(8 << 20))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.PublishExpvar("gengc-test-snapshot"); err != nil {
		t.Fatal(err)
	}
	if err := rt.PublishExpvar("gengc-test-snapshot"); err == nil {
		t.Fatal("second publish under the same name did not fail")
	}
}
