// Package workload provides the synthetic mutator programs that stand in
// for the paper's benchmarks (SPECjvm98, the Anagram generator and the
// multithreaded Ray Tracer; §8.2). The original applications and the
// prototype JVM are not reproducible, so each profile is parameterized
// to match the published *generational characterization* of its
// benchmark — the fraction of objects dying young, the survivor
// lifetime around promotion, the inter-generational pointer rate and
// its locality, the live-set size, and the ratio of allocation to
// computation (Figures 10–12 and 22–23). Those characteristics are what
// drive every conclusion in the paper's evaluation, so matching them
// preserves the shape of the results.
//
// Alongside the paper-calibrated profiles, the package carries three
// deterministic churn loops built for the performance harnesses rather
// than the paper's figures (see DESIGN.md §5 for the full knob table):
//
//   - BarrierChurn: a store-dominated loop with uniform fan-out into a
//     small base set — the write-barrier microbenchmark (cmd/gcbench
//     -experiment barrier) and the "churn" profile of the contention
//     matrix (cmd/gcsweep).
//   - ZipfChurn: a popularity table whose objects receive pointer
//     mutations in Zipf-skewed proportion (the Zipf type; skew s is a
//     knob), concentrating inter-generational card traffic on hot
//     cards — the matrix's "zipf" profile.
//   - Auction: a RUBiS-style bid/browse/list mix over Zipf-popular item
//     listings with bid chains and old-generation listing churn — the
//     matrix's "auction" profile.
//
// All three run a fixed operation sequence under a fixed seed, so
// paired benchmark runs measure the same work.
package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gengc"
	"gengc/internal/heap"
	"gengc/internal/metrics"
)

// Profile describes one synthetic benchmark program.
type Profile struct {
	// Name identifies the profile ("_202_jess", "Anagram", ...).
	Name string

	// Threads is the number of mutator threads.
	Threads int

	// OpsPerThread is the length of the run.
	OpsPerThread int

	// AllocFrac is the fraction of operations that allocate.
	AllocFrac float64

	// MeanSize and SizeJitter control the object size distribution:
	// size = MeanSize ± uniform(SizeJitter).
	MeanSize   int
	SizeJitter int

	// SlotsMax bounds the pointer-slot count of allocated objects
	// (uniform in [0, SlotsMax]).
	SlotsMax int

	// NurserySlots is the per-thread window of freshly allocated
	// objects; an object stored there dies after NurserySlots further
	// nursery allocations. Most allocations land here — these are the
	// objects that "die young".
	NurserySlots int

	// AttachFrac is the probability that a young allocation is linked
	// into its cluster with a barriered pointer store (instead of
	// only being rooted). It calibrates the rate of heap pointer
	// stores — and hence the dirty-card percentages of Figure 22 —
	// independently of the allocation rate.
	AttachFrac float64

	// SurvivorFrac routes a fraction of allocations to the survivor
	// pool instead of the nursery: these live long enough to be
	// promoted.
	SurvivorFrac float64

	// SurvivorSlots is the per-thread survivor pool size.
	SurvivorSlots int

	// SurvivorTTL is how many collection cycles a survivor lives
	// after its birth cycle. A small TTL models _202_jess/_228_jack:
	// objects get tenured and die immediately afterwards.
	SurvivorTTL int

	// BaseBytes is the long-lived structure built at startup (the
	// application's permanent data), split across threads.
	BaseBytes int

	// BaseSlots is the pointer-slot count of each base object.
	BaseSlots int

	// BaseObjSize is the size of each base object.
	BaseObjSize int

	// OldUpdateFrac is the probability per operation of storing a
	// pointer to a recently allocated (young) object into a base
	// (old) object — the source of inter-generational pointers and
	// dirty cards.
	OldUpdateFrac float64

	// OldRetain bounds how many young objects the base structure
	// retains at once: old-object updates rotate through a ring of
	// (object, slot) locations, clearing the location that rotates
	// out. This is what feeds the old generation with tenured-then-
	// dead data in the jess/jack/javac profiles. Default 1024.
	OldRetain int

	// Locality is the fraction of old-object updates that hit the
	// "hot" first 1/16th of the base structure. High locality models
	// _209_db (card size has no effect on the scanned area); low
	// locality spreads dirty objects across the heap (_213_javac).
	Locality float64

	// WorkPerOp is the computational work (spin iterations) per
	// operation: high for _201_compress, near zero for Anagram.
	WorkPerOp int

	// LargeEvery, when positive, allocates a large object (about
	// LargeSize bytes) every LargeEvery operations.
	LargeEvery int
	LargeSize  int
}

// Validate reports obviously broken profile parameters.
func (p Profile) Validate() error {
	if p.Threads <= 0 || p.OpsPerThread <= 0 {
		return fmt.Errorf("workload %s: need positive threads and ops", p.Name)
	}
	if p.AllocFrac < 0 || p.AllocFrac > 1 || p.SurvivorFrac < 0 || p.SurvivorFrac > 1 {
		return fmt.Errorf("workload %s: fractions out of range", p.Name)
	}
	if p.NurserySlots <= 0 {
		return fmt.Errorf("workload %s: nursery must have slots", p.Name)
	}
	if p.MeanSize < 16 || p.MeanSize < p.SizeJitter {
		return fmt.Errorf("workload %s: bad size distribution (%d ± %d)", p.Name, p.MeanSize, p.SizeJitter)
	}
	return nil
}

// Scale returns a copy with the run length scaled by f (used by the
// harness's -scale flag and by quick tests).
func (p Profile) Scale(f float64) Profile {
	p.OpsPerThread = int(float64(p.OpsPerThread) * f)
	if p.OpsPerThread < 1000 {
		p.OpsPerThread = 1000
	}
	return p
}

// WithThreads returns a copy running with n threads (the multithreaded
// Ray Tracer sweep of Figure 7).
func (p Profile) WithThreads(n int) Profile {
	p.Threads = n
	return p
}

// Result is the outcome of one run of a profile on one runtime.
type Result struct {
	Profile  string
	Mode     gengc.Mode
	Elapsed  time.Duration
	Ops      int64
	Allocs   int64
	AllocedB int64
	Summary  metrics.Summary
	Cycles   []metrics.Cycle

	// Pauses is the fleet-wide pause statistics over every mutator
	// thread of the run (zero-valued when pause accounting is off).
	Pauses metrics.PauseStats

	// Census is the final heap population, taken after the collector
	// shut down (quiescent).
	Census heap.Stats
}

// RunOption adjusts how Run drives a profile, beyond the collector
// configuration.
type RunOption func(*runOptions)

type runOptions struct {
	onCycle func(metrics.Cycle)
	sink    gengc.TraceSink
}

// OnCycle streams every collection's record to fn as the cycle
// completes (see gengc.Runtime.OnCycle); fn runs on the collector
// goroutine and must not block.
func OnCycle(fn func(metrics.Cycle)) RunOption {
	return func(o *runOptions) { o.onCycle = fn }
}

// TraceTo streams the run's structured collector events to sink (see
// gengc.WithTraceSink). Multiple runs may share one sink: each run's
// events begin with a "start" boundary, which cmd/gcreport uses to
// separate concatenated runs.
func TraceTo(sink gengc.TraceSink) RunOption {
	return func(o *runOptions) { o.sink = sink }
}

// Run executes the profile against a fresh runtime built from cfg and
// returns the measurements. The runtime is closed before returning; the
// summary's elapsed time covers only the mutator work (start of threads
// to completion of the last), matching the paper's elapsed-time metric.
func Run(p Profile, cfg gengc.Config, seed int64, opts ...RunOption) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	var ro runOptions
	for _, opt := range opts {
		opt(&ro)
	}
	// The host Go runtime's own collector would inject pauses into
	// the measurement; disable it for the duration of the run and
	// clean up afterwards. (The simulated heap is a few fixed arrays,
	// so the process stays within a predictable footprint.)
	prevGC := debug.SetGCPercent(-1)
	defer func() {
		debug.SetGCPercent(prevGC)
		runtime.GC()
	}()

	if ro.sink != nil {
		cfg.TraceSink = ro.sink
	}
	rt, err := gengc.New(gengc.WithConfig(cfg))
	if err != nil {
		return Result{}, err
	}
	defer rt.Close()
	if ro.onCycle != nil {
		rt.OnCycle(ro.onCycle)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		ops      int64
		allocs   int64
		alloced  int64
	)
	start := time.Now()
	for th := 0; th < p.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			r := newRunner(rt, p, seed+int64(th)*7919)
			err := r.run()
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			ops += r.ops
			allocs += r.allocs
			alloced += r.allocedBytes
			mu.Unlock()
		}(th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return Result{}, fmt.Errorf("workload %s: %w", p.Name, firstErr)
	}
	// Let any in-flight cycle finish before summarizing, so the
	// per-cycle tables include it.
	rt.Close()
	census := rt.Collector().H.Census()
	return Result{
		Profile:  p.Name,
		Mode:     cfg.Mode,
		Elapsed:  elapsed,
		Ops:      ops,
		Allocs:   allocs,
		AllocedB: alloced,
		Summary:  rt.Collector().Metrics().Summarize(elapsed),
		Cycles:   rt.Cycles(),
		Pauses:   rt.Snapshot().Fleet,
		Census:   census,
	}, nil
}

// oldLoc is one base-structure location holding a young reference.
type oldLoc struct {
	obj  gengc.Ref
	slot int
}

// runner is the per-thread mutator state.
type runner struct {
	rt  *gengc.Runtime
	m   *gengc.Mutator
	p   Profile
	rng *rand.Rand

	// nursery is a ring of root slots holding the die-young window.
	nursery    []int
	nurseryPos int

	// survivors is a pool of root slots with birth cycles.
	survivors    []int
	survivorBorn []int64
	survivorPos  int

	// base is the index of the thread's long-lived objects (kept
	// reachable through a chain rooted at baseRoot).
	base []gengc.Ref

	// oldRing tracks the base locations currently holding young
	// references, so their number stays bounded by OldRetain.
	oldRing []oldLoc
	oldPos  int

	// last is the most recently allocated object; old-object updates
	// store it into the base structure.
	last gengc.Ref

	// clusterHead/clusterSlot batch young objects into small trees:
	// a head object sits in the nursery ring and subsequent
	// allocations hang off its slots, so the whole cluster dies when
	// the head's ring slot is overwritten. (Linking each object to
	// its predecessor instead would chain the entire allocation
	// history and nothing would ever die.)
	clusterHead gengc.Ref
	clusterSlot int

	ops          int64
	allocs       int64
	allocedBytes int64
	sink         uint64
}

func newRunner(rt *gengc.Runtime, p Profile, seed int64) *runner {
	return &runner{rt: rt, p: p, rng: rand.New(rand.NewSource(seed))}
}

// run executes the thread's operations.
func (r *runner) run() error {
	r.m = r.rt.NewMutator()
	defer r.m.Detach()
	if err := r.buildBase(); err != nil {
		return err
	}
	r.nursery = make([]int, r.p.NurserySlots)
	for i := range r.nursery {
		r.nursery[i] = r.m.PushRoot(gengc.Nil)
	}
	n := r.p.SurvivorSlots
	if n == 0 {
		n = 64
	}
	r.survivors = make([]int, n)
	r.survivorBorn = make([]int64, n)
	for i := range r.survivors {
		r.survivors[i] = r.m.PushRoot(gengc.Nil)
	}
	retain := r.p.OldRetain
	if retain == 0 {
		retain = 1024
	}
	r.oldRing = make([]oldLoc, retain)

	for op := 0; op < r.p.OpsPerThread; op++ {
		r.m.Safepoint()
		r.ops++
		r.compute()
		r.expireSurvivors(op)
		dice := r.rng.Float64()
		switch {
		case dice < r.p.AllocFrac:
			if err := r.allocate(op); err != nil {
				return err
			}
		case dice < r.p.AllocFrac+r.p.OldUpdateFrac:
			r.updateOld()
		default:
			r.chase()
		}
	}
	return nil
}

// buildBase constructs the thread's share of the long-lived structure:
// a chain of BaseSlots-slot objects, reachable from one root, and an
// index for O(1) access when mutating old objects.
func (r *runner) buildBase() error {
	share := r.p.BaseBytes / r.p.Threads
	if share <= 0 {
		return nil
	}
	count := share / r.p.BaseObjSize
	if count == 0 {
		count = 1
	}
	r.base = make([]gengc.Ref, 0, count)
	var prev gengc.Ref
	root := r.m.PushRoot(gengc.Nil)
	for i := 0; i < count; i++ {
		r.m.Safepoint()
		obj, err := r.m.Alloc(r.p.BaseSlots, r.p.BaseObjSize)
		if err != nil {
			return err
		}
		// Slot 0 is the spine of the chain. A one-element batch: the
		// spine is the only slot initialized here, and WriteBatch fills
		// a dense prefix. The profile's mutation phases (updateOld,
		// cluster attach) stay on Write — they hit random single slots
		// of random objects, which a batch cannot express.
		r.m.WriteBatch(obj, []gengc.Ref{prev})
		r.m.SetRoot(root, obj)
		prev = obj
		r.base = append(r.base, obj)
	}
	return nil
}

// compute spins to model application work between heap operations.
func (r *runner) compute() {
	s := r.sink
	for i := 0; i < r.p.WorkPerOp; i++ {
		s = s*6364136223846793005 + 1442695040888963407
	}
	r.sink = s
}

// allocate creates one object and decides its intended lifetime.
func (r *runner) allocate(op int) error {
	size := r.p.MeanSize
	if r.p.SizeJitter > 0 {
		size += r.rng.Intn(2*r.p.SizeJitter) - r.p.SizeJitter
	}
	slots := 0
	if r.p.SlotsMax > 0 {
		slots = r.rng.Intn(r.p.SlotsMax + 1)
	}
	if r.p.LargeEvery > 0 && op%r.p.LargeEvery == r.p.LargeEvery-1 {
		size = r.p.LargeSize
		slots = 0
	}
	obj, err := r.m.Alloc(slots, size)
	if err != nil {
		return err
	}
	r.allocs++
	r.allocedBytes += int64(size)
	r.last = obj

	if r.rng.Float64() < r.p.SurvivorFrac {
		// Survivor: park it in the survivor pool with its birth
		// cycle; expireSurvivors kills it TTL cycles later.
		i := r.survivorPos
		r.survivorPos = (r.survivorPos + 1) % len(r.survivors)
		r.m.SetRoot(r.survivors[i], obj)
		r.survivorBorn[i] = r.rt.Collector().CyclesDone()
		return nil
	}
	// Die young: attach to the current cluster if it has a free slot
	// (a barriered store, at the profile's calibrated rate), otherwise
	// become the head of a new cluster in the nursery ring.
	if r.clusterHead != gengc.Nil && r.clusterSlot < r.m.Slots(r.clusterHead) &&
		r.rng.Float64() < r.p.AttachFrac {
		r.m.Write(r.clusterHead, r.clusterSlot, obj)
		r.clusterSlot++
		return nil
	}
	r.m.SetRoot(r.nursery[r.nurseryPos], obj)
	r.nurseryPos = (r.nurseryPos + 1) % len(r.nursery)
	if slots > 0 {
		r.clusterHead, r.clusterSlot = obj, 0
	} else {
		r.clusterHead = gengc.Nil
	}
	return nil
}

// expireSurvivors incrementally clears survivor roots whose TTL has
// passed; this is what makes promoted objects die shortly after tenure
// in the jess/jack profiles.
func (r *runner) expireSurvivors(op int) {
	if r.p.SurvivorTTL <= 0 || len(r.survivors) == 0 {
		return
	}
	now := r.rt.Collector().CyclesDone()
	// Check two entries per op; the pool is scanned fully every
	// len/2 operations, far more often than a collection cycle.
	for k := 0; k < 2; k++ {
		i := (op*2 + k) % len(r.survivors)
		if r.m.Root(r.survivors[i]) != gengc.Nil &&
			now-r.survivorBorn[i] >= int64(r.p.SurvivorTTL) {
			r.m.SetRoot(r.survivors[i], gengc.Nil)
		}
	}
}

// updateOld stores the latest young object into a base (old) object,
// creating an inter-generational pointer and dirtying a card.
func (r *runner) updateOld() {
	if len(r.base) == 0 || r.last == gengc.Nil || r.p.BaseSlots < 2 {
		return
	}
	var idx int
	if r.rng.Float64() < r.p.Locality {
		hot := len(r.base) / 16
		if hot == 0 {
			hot = 1
		}
		idx = r.rng.Intn(hot)
	} else {
		idx = r.rng.Intn(len(r.base))
	}
	obj := r.base[idx]
	slot := 1 + r.rng.Intn(r.p.BaseSlots-1) // slot 0 is the spine
	if old := r.oldRing[r.oldPos]; old.obj != gengc.Nil {
		// Rotate out the oldest young-holding location so retention
		// stays bounded.
		r.m.Write(old.obj, old.slot, gengc.Nil)
	}
	r.oldRing[r.oldPos] = oldLoc{obj, slot}
	r.oldPos = (r.oldPos + 1) % len(r.oldRing)
	r.m.Write(obj, slot, r.last)
}

// chase walks a few pointers from a random base object, modeling reads.
func (r *runner) chase() {
	if len(r.base) == 0 {
		return
	}
	x := r.base[r.rng.Intn(len(r.base))]
	for d := 0; d < 3 && x != gengc.Nil; d++ {
		s := r.m.Slots(x)
		if s == 0 {
			break
		}
		x = r.m.Read(x, r.rng.Intn(s))
	}
	r.sink += uint64(x)
}
