package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gengc"
)

// Zipf draws ranks 0..n-1 with P(rank = k) ∝ 1/(k+1)^s: rank 0 is the
// most popular object, rank 1 the second, and so on, with the skew
// exponent s controlling how steeply popularity falls off. s = 0 is the
// uniform distribution; s ≈ 0.6 is mild skew; s ≈ 0.9 matches the
// classic web/OLTP popularity measurements; s ≥ 1.2 concentrates most
// of the probability mass on a handful of hot ranks.
//
// Unlike math/rand's Zipf, any s > 0 is supported (the s ∈ {0.6, 0.9}
// points of the contention matrix are below rand.NewZipf's s > 1
// domain). Draws invert a precomputed CDF with a binary search, so a
// generator costs O(n) to build and O(log n) per draw, and the sequence
// is fully determined by the seed of the supplied *rand.Rand.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a generator over n ranks with skew s, drawing from
// rng. It panics on n <= 0 or s < 0 (a workload configuration error).
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n <= 0 || s < 0 {
		panic(fmt.Sprintf("workload.NewZipf: need n > 0 and s >= 0, got n=%d s=%g", n, s))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding leaving the last bucket short
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws one rank in [0, n).
func (z *Zipf) Next() int {
	return sort.SearchFloat64s(z.cdf, z.rng.Float64())
}

// Prob returns the probability of rank k (for tests and expected-value
// calculations).
func (z *Zipf) Prob(k int) float64 {
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// ZipfChurn is the Zipf-popularity object-graph profile of the
// contention matrix (cmd/gcsweep): a table of long-lived objects whose
// popularity follows a Zipf distribution, mutated by a stream of young
// allocations. Every operation allocates one short-lived object and
// stores it into a Zipf-chosen table object, so hot table objects
// receive a skewed share of the pointer mutations — after the first
// collection the table is old (black) and every such store is an
// inter-generational write. High skew therefore concentrates card marks
// (and, under BarrierBatched, same-card dedup opportunities) on a few
// cards and focuses allocation-death traffic on a few size-class
// shards; low skew spreads the same store volume across the table.
// This is the popularity shape that "millions of users" traffic
// actually has, and it is exactly what the uniform churn loop
// (BarrierChurn) cannot express.
//
// The profile is deterministic under a fixed Seed: two runs with the
// same parameters perform the identical sequence of allocations,
// draws and stores.
type ZipfChurn struct {
	// Objects is the popularity-table size (ranks of the Zipf draw).
	// Default 512.
	Objects int

	// Slots is the pointer-slot count of each table object; stores
	// into an object rotate through its slots, so each table object
	// retains at most Slots young objects. Default 8.
	Slots int

	// Skew is the Zipf exponent s. Default 0.9.
	Skew float64

	// Ring is the rooted window of recent young allocations (the
	// die-young nursery). Default 64.
	Ring int

	// ReadEvery, when positive, makes every ReadEvery-th operation a
	// pointer-chase read of a Zipf-chosen table object instead of an
	// allocate-and-store (a browse against the same hot set). Default
	// 8; negative disables reads.
	ReadEvery int

	// Seed anchors the profile's random stream. Threads running
	// concurrently must use distinct seeds (the matrix harness offsets
	// the seed per thread).
	Seed int64
}

// withDefaults fills unset fields.
func (c ZipfChurn) withDefaults() ZipfChurn {
	if c.Objects == 0 {
		c.Objects = 512
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.Skew == 0 {
		c.Skew = 0.9
	}
	if c.Ring == 0 {
		c.Ring = 64
	}
	if c.ReadEvery == 0 {
		c.ReadEvery = 8
	}
	return c
}

// RunThread executes ops operations on m: build the rooted popularity
// table, then per operation either allocate one young object and store
// it into a Zipf-chosen table object (rotating through the object's
// slots) or chase pointers from a Zipf-chosen table object. Roots are
// left in place; callers detach the mutator or pop them.
func (c ZipfChurn) RunThread(m *gengc.Mutator, ops int) error {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	z := NewZipf(rng, c.Skew, c.Objects)

	table := make([]gengc.Ref, c.Objects)
	for i := range table {
		obj, err := m.Alloc(c.Slots, 0)
		if err != nil {
			return err
		}
		m.PushRoot(obj)
		table[i] = obj
		m.Safepoint()
	}
	ring := make([]int, c.Ring)
	for i := range ring {
		ring[i] = m.PushRoot(gengc.Nil)
	}
	nextSlot := make([]int, c.Objects)
	var sink uint64
	for op := 0; op < ops; op++ {
		rank := z.Next()
		if c.ReadEvery > 0 && op%c.ReadEvery == c.ReadEvery-1 {
			// Browse: walk a few pointers from the hot object.
			x := table[rank]
			for d := 0; d < 3 && x != gengc.Nil; d++ {
				x = m.Read(x, d%c.Slots)
			}
			sink += uint64(x)
		} else {
			y, err := m.Alloc(2, 48)
			if err != nil {
				return err
			}
			m.SetRoot(ring[op%c.Ring], y)
			obj := table[rank]
			m.Write(obj, nextSlot[rank], y)
			nextSlot[rank] = (nextSlot[rank] + 1) % c.Slots
		}
		m.Safepoint()
	}
	_ = sink
	return nil
}
