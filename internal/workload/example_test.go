package workload_test

import (
	"fmt"
	"math/rand"

	"gengc"
	"gengc/internal/workload"
)

// ExampleZipf shows the generator's defining property: rank 0 receives
// the largest share of draws, and raising the skew exponent
// concentrates the distribution further.
func ExampleZipf() {
	for _, s := range []float64{0.6, 1.2} {
		z := workload.NewZipf(rand.New(rand.NewSource(1)), s, 100)
		counts := make([]int, 100)
		for i := 0; i < 100_000; i++ {
			counts[z.Next()]++
		}
		fmt.Printf("s=%.1f: rank 0 share ≈ %d%%, expected %d%%\n",
			s, counts[0]/1000, int(z.Prob(0)*100))
	}
	// Output:
	// s=0.6: rank 0 share ≈ 7%, expected 7%
	// s=1.2: rank 0 share ≈ 27%, expected 27%
}

// ExampleZipfChurn runs the Zipf-popularity profile of the contention
// matrix: every operation allocates a short-lived object and stores it
// into a Zipf-chosen slot of a long-lived table, so hot table objects
// absorb a skewed share of the inter-generational pointer traffic.
func ExampleZipfChurn() {
	rt, err := gengc.New(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(32<<20),
		gengc.WithYoungBytes(1<<20),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	m := rt.NewMutator()
	defer m.Detach()
	churn := workload.ZipfChurn{Skew: 1.2, Objects: 256, Seed: 42}
	if err := churn.RunThread(m, 20_000); err != nil {
		panic(err)
	}
	fmt.Println("zipf churn completed")
	// Output:
	// zipf churn completed
}

// ExampleAuction runs the auction mix: bids allocate short-lived
// records chained onto Zipf-popular long-lived items, browses read the
// same chains, and new listings churn the old generation.
func ExampleAuction() {
	rt, err := gengc.New(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(32<<20),
		gengc.WithYoungBytes(1<<20),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	m := rt.NewMutator()
	defer m.Detach()
	mix := workload.Auction{Items: 128, Skew: 0.9, Seed: 42}
	if err := mix.RunThread(m, 20_000); err != nil {
		panic(err)
	}
	fmt.Println("auction mix completed")
	// Output:
	// auction mix completed
}

// ExampleBarrierChurn runs the uniform store-dominated churn loop the
// barrier benchmark and the matrix's "churn" profile share: one
// allocation plus a fan of barriered pointer stores per operation.
func ExampleBarrierChurn() {
	rt, err := gengc.New(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(32<<20),
		gengc.WithYoungBytes(1<<20),
		gengc.WithBarrier(gengc.BarrierBatched),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	m := rt.NewMutator()
	defer m.Detach()
	churn := workload.BarrierChurn{BaseObjects: 16, Fanout: 8}
	if err := churn.RunThread(m, 20_000); err != nil {
		panic(err)
	}
	fmt.Println("flushed batched stores:", rt.Snapshot().Barrier.Flushes > 0)
	// Output:
	// flushed batched stores: true
}
