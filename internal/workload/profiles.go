package workload

// The profiles below parameterize the synthetic engine to match the
// published generational characterization of each benchmark the paper
// measures (Figures 10–12, 22–23). The comments quote the paper's
// numbers the profile is tuned against.

// baseOps is the default run length at scale 1.0.
const baseOps = 1_500_000

// Compress models _201_compress: almost no garbage collection (1.7% of
// time, 5 partial + 15 full cycles), objects do NOT die young (only 40%
// of young objects freed by partials, 19% of bytes), essentially no
// inter-generational pointers (3 old objects scanned per partial),
// negligible dirty cards (0.01%). The program is compute-bound and works
// on large, long-lived buffers.
func Compress() Profile {
	return Profile{
		Name:          "_201_compress",
		Threads:       1,
		OpsPerThread:  baseOps / 3,
		AllocFrac:     0.06,
		MeanSize:      128,
		SizeJitter:    64,
		SlotsMax:      2,
		NurserySlots:  256,
		AttachFrac:    0.02,
		SurvivorFrac:  0.55,
		SurvivorSlots: 384,
		SurvivorTTL:   6,
		BaseBytes:     1 << 20,
		BaseSlots:     4,
		BaseObjSize:   96,
		OldUpdateFrac: 0.00005,
		Locality:      0.9,
		WorkPerOp:     900,
		LargeEvery:    4000,
		LargeSize:     128 << 10,
	}
}

// Jess models _202_jess, the benchmark generations hurt (-3.7% MP):
// 97.9% of young objects die in partials, but promoted objects die soon
// after tenure (87% of objects freed in fulls too), and 36.2% of the
// objects scanned during a partial are dirty old objects — a heavy
// inter-generational pointer maintenance load with mid-spread locality
// (15.8%..61.2% dirty cards across card sizes).
func Jess() Profile {
	return Profile{
		Name:          "_202_jess",
		Threads:       1,
		OpsPerThread:  baseOps,
		AllocFrac:     0.45,
		MeanSize:      56,
		SizeJitter:    24,
		SlotsMax:      3,
		NurserySlots:  512,
		AttachFrac:    0.5,
		SurvivorFrac:  0.12,
		SurvivorSlots: 2048,
		SurvivorTTL:   2,
		BaseBytes:     3 << 20,
		BaseSlots:     6,
		BaseObjSize:   80,
		OldUpdateFrac: 0.012,
		Locality:      0.25,
		WorkPerOp:     25,
	}
}

// DB models _209_db: a large long-lived database (the heap's old region)
// that is updated in a concentrated spot — the paper observes that card
// size has practically no influence on the area scanned because the
// dirty objects are concentrated (§8.5.3). 99.8% of young objects die in
// partials; only 7 old objects per partial carry inter-generational
// pointers; ~20% of cards are dirty at every card size.
func DB() Profile {
	return Profile{
		Name:          "_209_db",
		Threads:       1,
		OpsPerThread:  baseOps,
		AllocFrac:     0.50,
		MeanSize:      48,
		SizeJitter:    16,
		SlotsMax:      2,
		NurserySlots:  512,
		AttachFrac:    0.6,
		SurvivorFrac:  0.004,
		SurvivorSlots: 256,
		SurvivorTTL:   8,
		BaseBytes:     8 << 20,
		BaseSlots:     4,
		BaseObjSize:   64,
		OldUpdateFrac: 0.0002,
		Locality:      0.97,
		WorkPerOp:     250,
	}
}

// Javac models _213_javac, the SPEC benchmark that profits most from
// generations (+17.2% MP): a big live set (16 full collections without
// generations shrink to 16 with, 36 partials), the largest
// inter-generational pointer load (16184 old objects scanned per
// partial, 30% of the partial scan) spread across the heap — smaller
// cards help (Figure 21: +18.8% at 16 B vs +11.8% at 4096 B) — and 69%
// of young objects dying in partials with real survivors.
func Javac() Profile {
	return Profile{
		Name:          "_213_javac",
		Threads:       1,
		OpsPerThread:  baseOps,
		AllocFrac:     0.45,
		MeanSize:      72,
		SizeJitter:    32,
		SlotsMax:      4,
		NurserySlots:  640,
		AttachFrac:    0.35,
		SurvivorFrac:  0.06,
		SurvivorSlots: 3072,
		SurvivorTTL:   5,
		BaseBytes:     16 << 20,
		BaseSlots:     6,
		BaseObjSize:   96,
		OldUpdateFrac: 0.10,
		OldRetain:     12000,
		Locality:      0.7,
		WorkPerOp:     12,
	}
}

// MTRT models _227_mtrt: two rendering threads, 99.5% of objects dying
// young, almost no inter-generational pointers (280 old objects per
// partial), and no full collections at all under the generational
// collector (36 partials).
func MTRT() Profile {
	return Profile{
		Name:          "_227_mtrt",
		Threads:       2,
		OpsPerThread:  baseOps / 2,
		AllocFrac:     0.55,
		MeanSize:      64,
		SizeJitter:    32,
		SlotsMax:      3,
		NurserySlots:  768,
		AttachFrac:    0.12,
		SurvivorFrac:  0.012,
		SurvivorSlots: 512,
		SurvivorTTL:   4,
		BaseBytes:     2 << 20,
		BaseSlots:     4,
		BaseObjSize:   96,
		OldUpdateFrac: 0.003,
		Locality:      0.5,
		WorkPerOp:     40,
	}
}

// Jack models _228_jack, the other benchmark generations hurt (-2.1%
// MP): 96.6% of young objects die in partials, yet tenured objects die
// before the next full collection (90.8% freed in fulls) so partial
// collections buy little, while the card and promotion overhead remains.
func Jack() Profile {
	return Profile{
		Name:          "_228_jack",
		Threads:       1,
		OpsPerThread:  baseOps,
		AllocFrac:     0.50,
		MeanSize:      56,
		SizeJitter:    24,
		SlotsMax:      3,
		NurserySlots:  512,
		AttachFrac:    0.55,
		SurvivorFrac:  0.05,
		SurvivorSlots: 2048,
		SurvivorTTL:   1,
		BaseBytes:     2 << 20,
		BaseSlots:     6,
		BaseObjSize:   80,
		OldUpdateFrac: 0.0015,
		Locality:      0.3,
		WorkPerOp:     50,
	}
}

// Anagram models the IBM-internal Anagram generator: the most
// collection-intensive program in the study (62.8% of time in GC with
// generations, 78.9% without; 152 partials), creating and freeing many
// short strings with a tiny live set and essentially no
// inter-generational pointers (1 old object per partial, ~1% dirty
// cards). Generations give it the paper's best speedup (+25% MP,
// +32.7% UP).
func Anagram() Profile {
	return Profile{
		Name:         "Anagram",
		Threads:      1,
		OpsPerThread: baseOps * 2,
		AllocFrac:    0.85,
		MeanSize:     40,
		SizeJitter:   16,
		// The anagram generator churns through strings — character
		// data with no reference fields — so its objects carry no
		// pointer slots and the write barrier almost never fires
		// (the paper measures ~1% dirty cards and a single old
		// object scanned per partial collection).
		SlotsMax:      0,
		NurserySlots:  1024,
		AttachFrac:    0,
		SurvivorFrac:  0.010,
		SurvivorSlots: 512,
		SurvivorTTL:   5,
		BaseBytes:     256 << 10,
		BaseSlots:     4,
		BaseObjSize:   64,
		OldUpdateFrac: 0.00002,
		Locality:      0.9,
		WorkPerOp:     2,
	}
}

// MTRayTracer models the paper's modified multithreaded Ray Tracer
// (300×300 matrix, parameterized rendering threads; §8.2). Each thread
// renders against its own scene share; the thread count is swept from
// 2 to 10 in Figure 7. Use WithThreads to set the sweep point.
func MTRayTracer(threads int) Profile {
	return Profile{
		Name:          "MTRayTracer",
		Threads:       threads,
		OpsPerThread:  baseOps * 3 / (2 * threads),
		AllocFrac:     0.55,
		MeanSize:      64,
		SizeJitter:    32,
		SlotsMax:      3,
		NurserySlots:  768,
		AttachFrac:    0.12,
		SurvivorFrac:  0.012,
		SurvivorSlots: 512,
		SurvivorTTL:   4,
		BaseBytes:     3 << 20,
		BaseSlots:     4,
		BaseObjSize:   96,
		OldUpdateFrac: 0.003,
		Locality:      0.5,
		WorkPerOp:     40,
	}
}

// SPEC returns the six SPECjvm98 profiles the paper tabulates, in the
// paper's order (_200_check and _222_mpegaudio are omitted exactly as in
// the paper: they hardly collect).
func SPEC() []Profile {
	return []Profile{Compress(), Jess(), DB(), Javac(), MTRT(), Jack()}
}

// All returns every profile at its default configuration.
func All() []Profile {
	return append(SPEC(), Anagram(), MTRayTracer(4))
}

// ByName returns the profile with the given name, or false.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
