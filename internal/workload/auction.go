package workload

import (
	"fmt"
	"math/rand"

	"gengc"
)

// Auction is the auction-site mix of the contention matrix
// (cmd/gcsweep), shaped after the RUBiS-style buy/bid workloads the
// ddtxn benchmarks drive (zipf.go/buy.go/rubis.go): a catalog of
// long-lived item listings with Zipf-distributed popularity, a table of
// long-lived users, and a stream of operations that is mostly bids —
// each bid allocates a short-lived bid record and links it onto the
// chosen item's bid chain — plus browse reads over the same hot items
// and an occasional new listing that replaces an old one.
//
// What it stresses, compared with ZipfChurn's flat table: bids build
// *chains* hanging off hot old objects (a hot item's card stays
// permanently dirty and its chain is young-reachable-from-old at every
// partial collection), listings churn the old generation itself (a
// replaced item dies tenured, together with its chain), and the bid mix
// interleaves three object lifetimes (bid records die young, chains die
// in bulk on rollover or replacement, items die old). Popularity skew
// concentrates all three on a few cards.
//
// The profile is deterministic under a fixed Seed; concurrent threads
// must use distinct seeds. Each thread owns a private catalog (the
// collector-visible contention — cards, size-class shards, the young
// generation — is shared through the runtime; application-level object
// sharing between mutators would make runs racy and non-reproducible).
type Auction struct {
	// Items is the catalog size. Default 256.
	Items int

	// Users is the user-table size. Default 128.
	Users int

	// Skew is the Zipf exponent of item popularity. Default 0.9.
	Skew float64

	// MaxBids bounds an item's bid chain: the chain restarts (and the
	// old chain dies in bulk) after MaxBids consecutive bids. Default 8.
	MaxBids int

	// BidFrac and ListFrac set the operation mix: a bid with
	// probability BidFrac (default 0.55), a new listing with
	// probability ListFrac (default 0.05), a browse otherwise.
	BidFrac, ListFrac float64

	// Seed anchors the profile's random stream.
	Seed int64
}

// auction directory fan-out: items are held in Slots-wide directory
// objects rather than mutator roots, so replacing a listing is a
// barriered store into an old object, as it would be in a real index.
const auctionDirFan = 32

// withDefaults fills unset fields.
func (a Auction) withDefaults() Auction {
	if a.Items == 0 {
		a.Items = 256
	}
	if a.Users == 0 {
		a.Users = 128
	}
	if a.Skew == 0 {
		a.Skew = 0.9
	}
	if a.MaxBids == 0 {
		a.MaxBids = 8
	}
	if a.BidFrac == 0 {
		a.BidFrac = 0.55
	}
	if a.ListFrac == 0 {
		a.ListFrac = 0.05
	}
	return a
}

// Validate reports obviously broken parameters.
func (a Auction) Validate() error {
	a = a.withDefaults()
	if a.BidFrac < 0 || a.ListFrac < 0 || a.BidFrac+a.ListFrac > 1 {
		return fmt.Errorf("workload.Auction: bad mix (bid %.2f + list %.2f)", a.BidFrac, a.ListFrac)
	}
	return nil
}

// item slot layout: slot 0 = head of the bid chain, slot 1 = seller.
// bid slot layout: slot 0 = previous bid in the chain, slot 1 = bidder.
const (
	itemSlots = 2
	bidSlots  = 2
)

// RunThread executes ops operations on m: build the rooted user table
// and the directory-held catalog, then per operation bid on, browse, or
// relist a Zipf-chosen item. Roots are left in place; callers detach
// the mutator or pop them.
func (a Auction) RunThread(m *gengc.Mutator, ops int) error {
	a = a.withDefaults()
	if err := a.Validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(a.Seed))
	z := NewZipf(rng, a.Skew, a.Items)

	// Long-lived users, rooted directly (they model sessions pinned by
	// the application).
	users := make([]gengc.Ref, a.Users)
	for i := range users {
		u, err := m.Alloc(0, 64)
		if err != nil {
			return err
		}
		m.PushRoot(u)
		users[i] = u
		m.Safepoint()
	}

	// The catalog: directory objects hold the item references, so a
	// relisting is an old-to-young barriered store (and the dead item
	// is unreachable the moment the slot is overwritten).
	nDirs := (a.Items + auctionDirFan - 1) / auctionDirFan
	dirs := make([]gengc.Ref, nDirs)
	for i := range dirs {
		d, err := m.Alloc(auctionDirFan, 0)
		if err != nil {
			return err
		}
		m.PushRoot(d)
		dirs[i] = d
		m.Safepoint()
	}
	newItem := func(rank int) (gengc.Ref, error) {
		it, err := m.Alloc(itemSlots, 96)
		if err != nil {
			return gengc.Nil, err
		}
		m.Write(it, 1, users[rank%a.Users]) // seller
		m.Write(dirs[rank/auctionDirFan], rank%auctionDirFan, it)
		return it, nil
	}
	items := make([]gengc.Ref, a.Items)
	for rank := range items {
		it, err := newItem(rank)
		if err != nil {
			return err
		}
		items[rank] = it
		m.Safepoint()
	}
	chainLen := make([]int, a.Items)

	var sink uint64
	for op := 0; op < ops; op++ {
		rank := z.Next()
		it := items[rank]
		dice := rng.Float64()
		switch {
		case dice < a.BidFrac:
			// Bid: allocate the record, link it onto the item's chain
			// (restarting the chain — killing it in bulk — at MaxBids),
			// and install it as the new head. The head store hits the
			// same hot item card every time for hot ranks.
			b, err := m.Alloc(bidSlots, 48)
			if err != nil {
				return err
			}
			if chainLen[rank] < a.MaxBids {
				m.Write(b, 0, m.Read(it, 0))
				chainLen[rank]++
			} else {
				chainLen[rank] = 1
			}
			m.Write(b, 1, users[rng.Intn(a.Users)])
			m.Write(it, 0, b)
		case dice < a.BidFrac+a.ListFrac:
			// New listing: replace the item in its directory slot; the
			// old item and its entire bid chain become garbage (an
			// old-generation death, once the item has been promoted).
			nit, err := newItem(rank)
			if err != nil {
				return err
			}
			items[rank] = nit
			chainLen[rank] = 0
		default:
			// Browse: walk the bid chain a few hops.
			x := m.Read(it, 0)
			for d := 0; d < 3 && x != gengc.Nil; d++ {
				x = m.Read(x, 0)
			}
			sink += uint64(x)
		}
		m.Safepoint()
	}
	_ = sink
	return nil
}
