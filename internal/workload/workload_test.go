package workload

import (
	"testing"

	"gengc"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	for _, n := range []int{2, 4, 6, 8, 10} {
		if err := MTRayTracer(n).Validate(); err != nil {
			t.Errorf("raytracer %d threads: %v", n, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Anagram()
	cases := []func(*Profile){
		func(p *Profile) { p.Threads = 0 },
		func(p *Profile) { p.OpsPerThread = 0 },
		func(p *Profile) { p.AllocFrac = 1.5 },
		func(p *Profile) { p.SurvivorFrac = -0.1 },
		func(p *Profile) { p.NurserySlots = 0 },
		func(p *Profile) { p.MeanSize = 8 },
		func(p *Profile) { p.MeanSize = 32; p.SizeJitter = 64 },
	}
	for i, mut := range cases {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile validated", i)
		}
	}
}

func TestScale(t *testing.T) {
	p := Jess()
	half := p.Scale(0.5)
	if half.OpsPerThread != p.OpsPerThread/2 {
		t.Errorf("Scale(0.5) ops = %d, want %d", half.OpsPerThread, p.OpsPerThread/2)
	}
	tiny := p.Scale(0.0000001)
	if tiny.OpsPerThread < 1000 {
		t.Errorf("Scale floor violated: %d", tiny.OpsPerThread)
	}
}

func TestWithThreads(t *testing.T) {
	p := MTRayTracer(2).WithThreads(8)
	if p.Threads != 8 {
		t.Errorf("threads = %d", p.Threads)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("_202_jess"); !ok {
		t.Error("jess not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name found")
	}
}

func TestSPECOrder(t *testing.T) {
	names := []string{"_201_compress", "_202_jess", "_209_db", "_213_javac", "_227_mtrt", "_228_jack"}
	spec := SPEC()
	if len(spec) != len(names) {
		t.Fatalf("SPEC has %d profiles", len(spec))
	}
	for i, p := range spec {
		if p.Name != names[i] {
			t.Errorf("SPEC[%d] = %s, want %s", i, p.Name, names[i])
		}
	}
}

// TestRunAllModes runs a small profile under each collector mode and
// sanity-checks the results.
func TestRunAllModes(t *testing.T) {
	p := Anagram().Scale(0.01)
	for _, mode := range []gengc.Mode{gengc.NonGenerational, gengc.Generational, gengc.GenerationalAging} {
		res, err := Run(p, gengc.Config{Mode: mode, HeapBytes: 16 << 20, YoungBytes: 1 << 20}, 7)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Ops != int64(p.OpsPerThread) {
			t.Errorf("%v: ops = %d, want %d", mode, res.Ops, p.OpsPerThread)
		}
		if res.Allocs == 0 || res.AllocedB == 0 {
			t.Errorf("%v: no allocation recorded", mode)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: non-positive elapsed", mode)
		}
		if res.Mode != mode {
			t.Errorf("mode = %v, want %v", res.Mode, mode)
		}
	}
}

// TestRunDeterministicAllocs: the allocation count depends only on the
// seed, not on collector scheduling.
func TestRunDeterministicAllocs(t *testing.T) {
	p := Jess().Scale(0.005)
	a, err := Run(p, gengc.Config{Mode: gengc.Generational}, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, gengc.Config{Mode: gengc.NonGenerational}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Allocs != b.Allocs || a.AllocedB != b.AllocedB {
		t.Errorf("allocation streams differ across modes: %d/%d vs %d/%d",
			a.Allocs, a.AllocedB, b.Allocs, b.AllocedB)
	}
}

// TestRunMultithreaded exercises the multi-threaded path.
func TestRunMultithreaded(t *testing.T) {
	p := MTRayTracer(4).Scale(0.01)
	res, err := Run(p, gengc.Config{Mode: gengc.Generational}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(4*p.OpsPerThread) {
		t.Errorf("ops = %d, want %d", res.Ops, 4*p.OpsPerThread)
	}
}

// TestRunRejectsInvalidProfile propagates validation errors.
func TestRunRejectsInvalidProfile(t *testing.T) {
	p := Anagram()
	p.Threads = 0
	if _, err := Run(p, gengc.Config{}, 1); err == nil {
		t.Error("Run accepted an invalid profile")
	}
}

// TestProfileCharacteristics spot-checks that profile knobs map to the
// paper's qualitative characterization after a real run.
func TestProfileCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("workload characterization is slow")
	}
	// Anagram: die-young extreme; almost no inter-generational work.
	res, err := Run(Anagram().Scale(0.1), gengc.Config{Mode: gengc.Generational}, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.NumPartial == 0 {
		t.Fatal("anagram triggered no partials")
	}
	if s.PctObjsFreedPartial < 80 {
		t.Errorf("anagram partial freed %.1f%% of young objects, want > 80%%", s.PctObjsFreedPartial)
	}
	if s.AvgInterGenScanned > 200 {
		t.Errorf("anagram inter-gen scans = %.0f, want tiny", s.AvgInterGenScanned)
	}

	// Jess: heavy inter-generational maintenance.
	res, err = Run(Jess().Scale(0.15), gengc.Config{Mode: gengc.Generational}, 11)
	if err != nil {
		t.Fatal(err)
	}
	s = res.Summary
	if s.NumPartial < 2 {
		t.Skipf("jess run too short for characterization (%d partials)", s.NumPartial)
	}
	if s.AvgInterGenScanned < 100 {
		t.Errorf("jess inter-gen scans = %.0f, want substantial", s.AvgInterGenScanned)
	}
}
