package workload

import (
	"math/rand"
	"testing"

	"gengc"
)

// newTestRunner builds a runner with an attached mutator for white-box
// tests of the engine's mechanics.
func newTestRunner(t *testing.T, p Profile) (*runner, *gengc.Runtime) {
	t.Helper()
	rt, err := gengc.NewManual(gengc.WithMode(gengc.Generational), gengc.WithHeapBytes(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(rt, p, 7)
	r.m = rt.NewMutator()
	if err := r.buildBase(); err != nil {
		t.Fatal(err)
	}
	r.nursery = make([]int, p.NurserySlots)
	for i := range r.nursery {
		r.nursery[i] = r.m.PushRoot(gengc.Nil)
	}
	n := p.SurvivorSlots
	if n == 0 {
		n = 64
	}
	r.survivors = make([]int, n)
	r.survivorBorn = make([]int64, n)
	for i := range r.survivors {
		r.survivors[i] = r.m.PushRoot(gengc.Nil)
	}
	retain := p.OldRetain
	if retain == 0 {
		retain = 1024
	}
	r.oldRing = make([]oldLoc, retain)
	return r, rt
}

func TestBuildBaseSize(t *testing.T) {
	p := DB()
	p.Threads = 1
	r, rt := newTestRunner(t, p)
	wantCount := p.BaseBytes / p.BaseObjSize
	if len(r.base) != wantCount {
		t.Errorf("base has %d objects, want %d", len(r.base), wantCount)
	}
	// The base must be a connected chain: walking slot 0 from the last
	// object reaches every one.
	seen := 0
	for x := r.base[len(r.base)-1]; x != gengc.Nil; x = r.m.Read(x, 0) {
		seen++
	}
	if seen != wantCount {
		t.Errorf("chain reaches %d objects, want %d", seen, wantCount)
	}
	_ = rt
}

// TestNurseryObjectsDie: nursery-routed allocations become unreachable
// after the ring wraps.
func TestNurseryObjectsDie(t *testing.T) {
	p := Anagram()
	p.NurserySlots = 8
	p.SurvivorFrac = 0
	r, rt := newTestRunner(t, p)
	first := gengc.Nil
	for op := 0; op < 64; op++ {
		if err := r.allocate(op); err != nil {
			t.Fatal(err)
		}
		if op == 0 {
			first = r.m.Root(r.nursery[0])
		}
	}
	// The first object's slot has been overwritten several times.
	for _, slot := range r.nursery {
		if r.m.Root(slot) == first {
			t.Fatal("first allocation still rooted after ring wrapped")
		}
	}
	_ = rt
}

// TestOldRingBoundsRetention: the old-update ring clears rotated-out
// locations so at most OldRetain young objects are held by the base.
func TestOldRingBoundsRetention(t *testing.T) {
	p := Jess()
	p.OldRetain = 4
	r, rt := newTestRunner(t, p)
	// Give the runner young objects to store.
	for op := 0; op < 20; op++ {
		if err := r.allocate(op); err != nil {
			t.Fatal(err)
		}
		r.updateOld()
	}
	held := 0
	for _, obj := range r.base {
		for i := 1; i < p.BaseSlots; i++ {
			if r.m.Read(obj, i) != gengc.Nil {
				held++
			}
		}
	}
	if held > p.OldRetain {
		t.Errorf("base holds %d young refs, want <= %d", held, p.OldRetain)
	}
	if held == 0 {
		t.Error("old updates stored nothing")
	}
	_ = rt
}

// TestExpireSurvivorsTTL: survivors are cleared once the cycle count
// advances past their TTL.
func TestExpireSurvivorsTTL(t *testing.T) {
	p := Jack()
	p.SurvivorFrac = 1.0 // everything survives
	p.SurvivorTTL = 1
	p.SurvivorSlots = 16
	r, rt := newTestRunner(t, p)
	for op := 0; op < 8; op++ {
		if err := r.allocate(op); err != nil {
			t.Fatal(err)
		}
	}
	live := 0
	for _, s := range r.survivors {
		if r.m.Root(s) != gengc.Nil {
			live++
		}
	}
	if live != 8 {
		t.Fatalf("parked %d survivors, want 8", live)
	}
	// Advance the collector's cycle count past the TTL, then sweep the
	// pool incrementally.
	r.m.Collect(false)
	r.m.Collect(false)
	for op := 0; op < len(r.survivors); op++ {
		r.expireSurvivors(op)
	}
	for i, s := range r.survivors {
		if r.m.Root(s) != gengc.Nil {
			t.Errorf("survivor %d not expired after TTL", i)
		}
	}
	_ = rt
}

// TestClusterAttachRespectsAttachFrac: AttachFrac 0 never writes into
// cluster heads; AttachFrac 1 fills every head slot before rotating.
func TestClusterAttachRespectsAttachFrac(t *testing.T) {
	p := Jess()
	p.SurvivorFrac = 0
	p.SlotsMax = 3
	for _, frac := range []float64{0, 1} {
		p.AttachFrac = frac
		r, _ := newTestRunner(t, p)
		r.rng = rand.New(rand.NewSource(5))
		writes := 0
		for op := 0; op < 200; op++ {
			if err := r.allocate(op); err != nil {
				t.Fatal(err)
			}
		}
		for _, slot := range r.nursery {
			head := r.m.Root(slot)
			if head == gengc.Nil {
				continue
			}
			for i := 0; i < r.m.Slots(head); i++ {
				if r.m.Read(head, i) != gengc.Nil {
					writes++
				}
			}
		}
		if frac == 0 && writes != 0 {
			t.Errorf("AttachFrac 0 produced %d cluster writes", writes)
		}
		if frac == 1 && writes == 0 {
			t.Error("AttachFrac 1 produced no cluster writes")
		}
	}
}

// TestComputeAdvancesSink: the spin loop does real work the compiler
// cannot elide.
func TestComputeAdvancesSink(t *testing.T) {
	p := Compress()
	r, _ := newTestRunner(t, p)
	before := r.sink
	r.compute()
	if r.p.WorkPerOp > 0 && r.sink == before {
		t.Error("compute did not change the sink")
	}
}
