package workload

import (
	"math"
	"math/rand"
	"testing"

	"gengc"
)

// TestZipfChiSquared draws a large sample for each matrix skew point
// and checks, chi-squared style, that the empirical rank frequencies
// match the target distribution: the statistic Σ (observed−expected)²/
// expected over the n ranks must stay below a generous p≈1e-4 critical
// value for n−1 degrees of freedom. The draws are seeded, so the test
// is deterministic — the bound guards the generator's shape, not its
// run-to-run luck.
func TestZipfChiSquared(t *testing.T) {
	const (
		ranks   = 64
		samples = 200_000
		// Critical value of χ²(63) at p ≈ 1e-4 is ≈ 117; anything near
		// it means the empirical shape tracks the target closely.
		critical = 120.0
	)
	for _, s := range []float64{0.6, 0.9, 1.2} {
		z := NewZipf(rand.New(rand.NewSource(42)), s, ranks)
		var counts [ranks]int
		for i := 0; i < samples; i++ {
			counts[z.Next()]++
		}
		chi2 := 0.0
		for k := 0; k < ranks; k++ {
			expected := z.Prob(k) * samples
			d := float64(counts[k]) - expected
			chi2 += d * d / expected
		}
		if chi2 > critical {
			t.Errorf("s=%g: chi-squared %.1f > %.1f over %d ranks", s, chi2, critical, ranks)
		}
		// The defining property, independent of the statistic: observed
		// popularity is monotone-ish — rank 0 beats the tail decisively.
		if counts[0] <= counts[ranks-1] {
			t.Errorf("s=%g: rank 0 drawn %d times, tail rank %d — no skew", s, counts[0], counts[ranks-1])
		}
	}
}

// TestZipfSkewOrdering checks that raising s concentrates more mass on
// the hot rank, and that s=0 degenerates to uniform.
func TestZipfSkewOrdering(t *testing.T) {
	const ranks = 128
	prev := -1.0
	for _, s := range []float64{0, 0.6, 0.9, 1.2} {
		z := NewZipf(rand.New(rand.NewSource(1)), s, ranks)
		p0 := z.Prob(0)
		if p0 <= prev {
			t.Errorf("s=%g: P(rank 0)=%g not increasing in s (prev %g)", s, p0, prev)
		}
		prev = p0
		sum := 0.0
		for k := 0; k < ranks; k++ {
			sum += z.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%g: probabilities sum to %g", s, sum)
		}
	}
	z := NewZipf(rand.New(rand.NewSource(1)), 0, ranks)
	if math.Abs(z.Prob(0)-1.0/ranks) > 1e-9 {
		t.Errorf("s=0: P(rank 0)=%g, want uniform %g", z.Prob(0), 1.0/ranks)
	}
}

// TestZipfDeterminism: the same seed must reproduce the same draw
// sequence exactly — the property the matrix harness relies on to make
// cells comparable across passes and runs.
func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(rand.New(rand.NewSource(7)), 0.9, 1024)
	b := NewZipf(rand.New(rand.NewSource(7)), 0.9, 1024)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %d != %d under the same seed", i, x, y)
		}
	}
	c := NewZipf(rand.New(rand.NewSource(8)), 0.9, 1024)
	same := true
	for i := 0; i < 1000; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical 1000-draw sequence")
	}
}

// runProfileThread runs one profile thread against a fresh generational
// runtime and returns the final snapshot.
func runProfileThread(t *testing.T, run func(m *gengc.Mutator, ops int) error, ops int) gengc.Snapshot {
	t.Helper()
	rt, err := gengc.New(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(32<<20),
		gengc.WithYoungBytes(1<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	if err := run(m, ops); err != nil {
		t.Fatal(err)
	}
	m.Detach()
	rt.Close()
	snap := rt.Snapshot()
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestZipfChurnRuns drives the profile through enough operations to
// trigger partial collections and checks the heap survives Verify and
// the skewed stores produced inter-generational traffic.
func TestZipfChurnRuns(t *testing.T) {
	snap := runProfileThread(t, ZipfChurn{Skew: 1.2, Seed: 3}.RunThread, 30_000)
	if snap.Cycles == 0 {
		t.Error("no collection cycles — workload too small to exercise the matrix")
	}
	if snap.HeapObjects == 0 {
		t.Error("empty heap after run")
	}
}

// TestAuctionRuns drives the auction mix and checks collections
// happened and the verifier stays clean.
func TestAuctionRuns(t *testing.T) {
	snap := runProfileThread(t, Auction{Skew: 1.2, Seed: 5}.RunThread, 80_000)
	if snap.Cycles == 0 {
		t.Error("no collection cycles — workload too small to exercise the matrix")
	}
}

// TestAuctionValidate rejects a broken operation mix.
func TestAuctionValidate(t *testing.T) {
	if err := (Auction{BidFrac: 0.9, ListFrac: 0.2}).Validate(); err == nil {
		t.Error("mix summing past 1 not rejected")
	}
	if err := (Auction{}).Validate(); err != nil {
		t.Errorf("default mix rejected: %v", err)
	}
}
