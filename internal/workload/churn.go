package workload

import "gengc"

// BarrierChurn parameterizes the pointer-write-heavy churn loop behind
// the write-barrier benchmark (cmd/gcbench -experiment barrier) and the
// barrier-mode equivalence tests. Unlike Profile — which calibrates
// allocation/death rates against the paper's benchmarks — this loop is
// deliberately store-dominated: every operation allocates one small
// object and then fans Fanout pointer stores into a long-lived base
// object, so the per-store barrier cost (shading, card marking) is the
// measured quantity rather than allocation or tracing.
//
// The loop is deterministic (no PRNG): two runs with the same
// parameters perform the identical sequence of allocations and stores,
// which is what lets the eager-vs-batched equivalence test compare live
// sets across barrier modes.
type BarrierChurn struct {
	// BaseObjects is the number of long-lived Fanout-slot objects per
	// mutator; the fan of stores rotates through them. After the first
	// collection they are old (black), so the stores into them are the
	// inter-generational writes that dirty cards.
	BaseObjects int

	// Fanout is the number of pointer stores per operation — the slot
	// count of each base object.
	Fanout int

	// Ring is the rooted window of recently allocated objects; store
	// values are drawn from it, so every store writes a live young
	// reference (an object that rotates out of the ring stays
	// reachable only through the base slots that still hold it).
	Ring int

	// UseWriteBatch switches the fan of stores from a Write-per-slot
	// loop to one WriteBatch call per operation. The stores are
	// identical (same slots, same values, same program point), so the
	// two APIs are directly comparable in the benchmark sweep.
	UseWriteBatch bool
}

// withDefaults fills unset fields: 64 base objects, fanout 8, a
// 32-object recent ring.
func (c BarrierChurn) withDefaults() BarrierChurn {
	if c.BaseObjects == 0 {
		c.BaseObjects = 64
	}
	if c.Fanout == 0 {
		c.Fanout = 8
	}
	if c.Ring == 0 {
		c.Ring = 32
	}
	return c
}

// RunThread executes ops churn operations on m: per operation, allocate
// one small object into the rooted ring, then store Fanout references
// from the ring into the slots of the next base object (through the
// write barrier), then pass a safe point. It leaves its roots in place;
// callers detach the mutator or pop them.
func (c BarrierChurn) RunThread(m *gengc.Mutator, ops int) error {
	c = c.withDefaults()
	base := make([]gengc.Ref, c.BaseObjects)
	for i := range base {
		obj, err := m.Alloc(c.Fanout, 0)
		if err != nil {
			return err
		}
		m.PushRoot(obj)
		base[i] = obj
		m.Safepoint()
	}
	ring := make([]int, c.Ring)
	for i := range ring {
		ring[i] = m.PushRoot(gengc.Nil)
	}
	vals := make([]gengc.Ref, c.Fanout)
	for op := 0; op < ops; op++ {
		y, err := m.Alloc(2, 48)
		if err != nil {
			return err
		}
		m.SetRoot(ring[op%c.Ring], y)
		for i := range vals {
			// Spread the fan over the ring without a PRNG; the stride
			// keeps consecutive slots from holding the same value.
			vals[i] = m.Root(ring[(op+i*7)%c.Ring])
		}
		x := base[op%c.BaseObjects]
		if c.UseWriteBatch {
			m.WriteBatch(x, vals)
		} else {
			for i, v := range vals {
				m.Write(x, i, v)
			}
		}
		m.Safepoint()
	}
	return nil
}
