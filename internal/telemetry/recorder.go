// Package telemetry holds the anomaly flight recorder: a bounded
// in-memory ring that continuously records the collector's trace-event
// stream at near-zero cost and, when something goes wrong — a stalled
// handshake, an aborted cycle, an out-of-memory give-up, a pause-SLO
// breach — freezes the last events plus a runtime snapshot into a Dump
// that can be serialized as JSONL for offline triage with cmd/gcreport.
//
// The Recorder implements trace.Sink, so it slots into the existing
// trace layer: with no user sink it is the tracer's only sink; with one
// it rides behind a trace.TeeSink. Either way events reach it already
// serialized by the Tracer, batched once per collection cycle.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gengc/internal/trace"
)

// maxDumps bounds how many trigger captures the recorder retains; older
// dumps are discarded first. Anomalies cluster (a stall storm fires the
// watchdog repeatedly), so a handful of the most recent captures is
// what a triage actually reads.
const maxDumps = 4

// minTriggerGap rate-limits dump capture: triggers within the gap of
// the previous dump are counted but capture nothing new, so a storm of
// stall reports cannot turn the recorder into an allocation hot spot.
const minTriggerGap = time.Second

// Dump is one frozen anomaly capture.
type Dump struct {
	// Reason is the trigger ("stall", "cycleabort", "oom",
	// "allocstall", "pauseslo", or "manual" for user-forced dumps).
	Reason string `json:"reason"`

	// TriggeredAt is the wall-clock capture time.
	TriggeredAt time.Time `json:"triggered_at"`

	// Events is the ring's content at the trigger, oldest first — the
	// last N trace events preceding the anomaly.
	Events []trace.Event `json:"events"`

	// Snapshot is the runtime state at the trigger (the embedder's
	// snapshot type, e.g. gengc.Snapshot), or nil when no snapshot
	// function was installed.
	Snapshot any `json:"snapshot,omitempty"`
}

// WriteJSONL serializes the dump as JSONL: one header object carrying
// the reason, time and snapshot, then one line per captured event —
// the same event encoding cmd/gcreport parses.
func (d Dump) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	header := struct {
		Ev          string    `json:"ev"`
		Reason      string    `json:"reason"`
		TriggeredAt time.Time `json:"triggered_at"`
		Events      int       `json:"events"`
		Snapshot    any       `json:"snapshot,omitempty"`
	}{Ev: "flightdump", Reason: d.Reason, TriggeredAt: d.TriggeredAt,
		Events: len(d.Events), Snapshot: d.Snapshot}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, e := range d.Events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Recorder is the flight recorder. It is safe for concurrent use: the
// Tracer serializes Emit calls, while Trigger and the read accessors
// may run from any goroutine.
type Recorder struct {
	mu    sync.Mutex
	ring  []trace.Event // capacity fixed at construction
	next  int           // next write position
	wrap  bool          // ring has wrapped at least once
	dumps []Dump
	last  time.Time // last capture time (rate limiting)

	snapFn atomic.Value // func() any
	count  atomic.Int64 // total events recorded
	dumpN  atomic.Int64 // total dumps captured
	trigN  atomic.Int64 // total triggers (captured or rate-limited)
}

// NewRecorder builds a flight recorder retaining the last n events.
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: make([]trace.Event, n)}
}

// SetSnapshotFn installs the function invoked at every capture to
// freeze the runtime state into the dump. fn runs outside the
// recorder's lock and must be safe to call from any goroutine; nil
// uninstalls.
func (r *Recorder) SetSnapshotFn(fn func() any) {
	r.snapFn.Store(fn)
}

// Emit records one event into the ring (trace.Sink).
func (r *Recorder) Emit(e trace.Event) {
	r.mu.Lock()
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
	r.count.Add(1)
}

// Flush is a no-op (trace.Sink); the ring is always current.
func (r *Recorder) Flush() error { return nil }

// eventsLocked copies the ring's contents, oldest first. Caller holds
// mu.
func (r *Recorder) eventsLocked() []trace.Event {
	if !r.wrap {
		out := make([]trace.Event, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]trace.Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Events returns the ring's current contents, oldest first.
func (r *Recorder) Events() []trace.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

// Trigger captures a dump for reason, unless a capture happened within
// the rate-limit gap. It reports whether a dump was actually taken;
// either way the trigger is counted. The snapshot function runs outside
// the lock, so a Snapshot that itself reads tracer state cannot
// deadlock against a concurrent ring drain.
func (r *Recorder) Trigger(reason string) bool {
	r.trigN.Add(1)
	now := time.Now()
	r.mu.Lock()
	if !r.last.IsZero() && now.Sub(r.last) < minTriggerGap {
		r.mu.Unlock()
		return false
	}
	r.last = now
	events := r.eventsLocked()
	r.mu.Unlock()

	d := Dump{Reason: reason, TriggeredAt: now, Events: events}
	if fn, _ := r.snapFn.Load().(func() any); fn != nil {
		d.Snapshot = fn()
	}

	r.mu.Lock()
	r.dumps = append(r.dumps, d)
	if len(r.dumps) > maxDumps {
		r.dumps = append(r.dumps[:0], r.dumps[len(r.dumps)-maxDumps:]...)
	}
	r.mu.Unlock()
	r.dumpN.Add(1)
	return true
}

// Dumps returns the retained captures, oldest first.
func (r *Recorder) Dumps() []Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// LastDump returns the most recent capture, if any.
func (r *Recorder) LastDump() (Dump, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dumps) == 0 {
		return Dump{}, false
	}
	return r.dumps[len(r.dumps)-1], true
}

// DumpCount returns how many dumps have been captured over the
// recorder's lifetime (retained or since discarded).
func (r *Recorder) DumpCount() int64 { return r.dumpN.Load() }

// TriggerCount returns how many triggers fired, including rate-limited
// ones that captured nothing.
func (r *Recorder) TriggerCount() int64 { return r.trigN.Load() }

// EventCount returns how many events the ring has seen in total.
func (r *Recorder) EventCount() int64 { return r.count.Load() }
