package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"gengc/internal/trace"
)

func ev(i int) trace.Event {
	return trace.Event{Ev: "pause", N: int64(i), Cycle: int64(i)}
}

// TestRecorderRingWrap fills the ring past capacity and checks Events
// returns exactly the last N, oldest first.
func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 3; i++ {
		r.Emit(ev(i))
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("pre-wrap events = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.N != int64(i) {
			t.Fatalf("pre-wrap event %d has N=%d", i, e.N)
		}
	}
	for i := 3; i < 10; i++ {
		r.Emit(ev(i))
	}
	got = r.Events()
	if len(got) != 4 {
		t.Fatalf("post-wrap events = %d, want ring size 4", len(got))
	}
	for i, e := range got {
		if want := int64(6 + i); e.N != want {
			t.Fatalf("post-wrap event %d has N=%d, want %d (oldest-first)", i, e.N, want)
		}
	}
	if r.EventCount() != 10 {
		t.Fatalf("EventCount = %d, want 10", r.EventCount())
	}
}

// TestRecorderTrigger captures a dump and checks its contents, the
// snapshot hook, and the rate limiter.
func TestRecorderTrigger(t *testing.T) {
	r := NewRecorder(8)
	r.SetSnapshotFn(func() any { return map[string]int{"cycles": 7} })
	for i := 0; i < 5; i++ {
		r.Emit(ev(i))
	}
	if !r.Trigger("stall") {
		t.Fatal("first trigger rate-limited")
	}
	d, ok := r.LastDump()
	if !ok {
		t.Fatal("no dump after trigger")
	}
	if d.Reason != "stall" || len(d.Events) != 5 || d.Snapshot == nil {
		t.Fatalf("dump = reason %q, %d events, snapshot %v", d.Reason, len(d.Events), d.Snapshot)
	}
	if d.TriggeredAt.IsZero() {
		t.Fatal("dump has zero TriggeredAt")
	}

	// Within the gap: counted, not captured.
	if r.Trigger("stall") {
		t.Fatal("second trigger inside the gap captured a dump")
	}
	if r.DumpCount() != 1 || r.TriggerCount() != 2 {
		t.Fatalf("dumps=%d triggers=%d, want 1/2", r.DumpCount(), r.TriggerCount())
	}

	// Age the last capture past the gap: the next trigger captures.
	r.mu.Lock()
	r.last = time.Now().Add(-2 * minTriggerGap)
	r.mu.Unlock()
	if !r.Trigger("oom") {
		t.Fatal("trigger after the gap rate-limited")
	}
	if d, _ := r.LastDump(); d.Reason != "oom" {
		t.Fatalf("last dump reason %q, want oom", d.Reason)
	}
}

// TestRecorderDumpRetention checks only the newest maxDumps captures
// are retained while DumpCount keeps the lifetime total.
func TestRecorderDumpRetention(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < maxDumps+3; i++ {
		r.Emit(ev(i))
		r.mu.Lock()
		r.last = time.Time{} // disarm the rate limiter
		r.mu.Unlock()
		if !r.Trigger(fmt.Sprintf("t%d", i)) {
			t.Fatalf("trigger %d rate-limited", i)
		}
	}
	dumps := r.Dumps()
	if len(dumps) != maxDumps {
		t.Fatalf("retained dumps = %d, want %d", len(dumps), maxDumps)
	}
	if got := dumps[len(dumps)-1].Reason; got != fmt.Sprintf("t%d", maxDumps+2) {
		t.Fatalf("newest dump reason %q", got)
	}
	if r.DumpCount() != int64(maxDumps+3) {
		t.Fatalf("DumpCount = %d, want %d", r.DumpCount(), maxDumps+3)
	}
}

// TestDumpWriteJSONL serializes a dump and re-parses every line: a
// flightdump header followed by one trace event per line.
func TestDumpWriteJSONL(t *testing.T) {
	r := NewRecorder(8)
	r.SetSnapshotFn(func() any {
		return struct {
			Cycles int `json:"cycles"`
		}{42}
	})
	for i := 0; i < 3; i++ {
		r.Emit(ev(i))
	}
	r.Trigger("manual")
	d, _ := r.LastDump()

	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty output")
	}
	var header struct {
		Ev       string          `json:"ev"`
		Reason   string          `json:"reason"`
		Events   int             `json:"events"`
		Snapshot json.RawMessage `json:"snapshot"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if header.Ev != "flightdump" || header.Reason != "manual" || header.Events != 3 {
		t.Fatalf("header = %+v", header)
	}
	if len(header.Snapshot) == 0 {
		t.Fatal("header carries no snapshot")
	}
	var lines int
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("event line %d: %v", lines, err)
		}
		if e.N != int64(lines) {
			t.Fatalf("event line %d has N=%d", lines, e.N)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("event lines = %d, want 3", lines)
	}
}

// TestRecorderConcurrentRace hammers Emit, Trigger and the readers from
// independent goroutines; meaningful under -race.
func TestRecorderConcurrentRace(t *testing.T) {
	r := NewRecorder(16)
	r.SetSnapshotFn(func() any { return r.EventCount() })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 4 {
				case 0:
					r.Emit(ev(i))
				case 1:
					r.Trigger("race")
				case 2:
					_ = r.Events()
				default:
					_, _ = r.LastDump()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.EventCount() == 0 || r.TriggerCount() == 0 {
		t.Fatalf("counts: events=%d triggers=%d", r.EventCount(), r.TriggerCount())
	}
}
