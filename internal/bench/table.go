// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§8, Figures 7–23). Each
// experiment runs workload profiles under the collector configurations
// the paper compares, and renders the same rows the paper reports, side
// by side with the paper's published numbers where applicable.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // "fig7" ... "fig23"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, "  "+b.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// FormatCSV renders the table as CSV (one header row, then data rows),
// for downstream plotting.
func (t *Table) FormatCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
}
