package bench

// Published numbers from the paper, used for the side-by-side columns
// in the regenerated tables and in EXPERIMENTS.md. All improvements are
// percent reduction of elapsed time from generational collection.

// paperFig7 is the multithreaded Ray Tracer improvement on the 4-way
// multiprocessor, by thread count (Figure 7).
var paperFig7 = map[int]float64{2: 1.3, 4: 2.6, 6: 10.6, 8: 16.0, 10: 11.7}

// paperFig8 is the Anagram improvement (Figure 8):
// multiprocessor 25.0%, uniprocessor 32.7%.
var paperFig8 = struct{ MP, UP float64 }{25.0, 32.7}

// paperFig9 is the SPECjvm improvement (Figure 9): MP and UP columns.
var paperFig9 = map[string]struct{ MP, UP float64 }{
	"_227_mtrt":     {7.0, 25.2},
	"_201_compress": {0.0, 2.0},
	"_209_db":       {-0.9, 0.7},
	"_202_jess":     {-3.7, -2.5},
	"_213_javac":    {17.2, 15.3},
	"_228_jack":     {-2.12, -7.7},
}

// paperFig10 is the GC activity characterization (Figure 10):
// percent time GC active (gen), #partials, #fulls, percent time active
// without generations, #cycles without generations.
var paperFig10 = map[string]struct {
	GCPct    float64
	Partials int
	Fulls    int
	GCPctNG  float64
	CyclesNG int
}{
	"_227_mtrt":     {21.5, 36, 0, 30.5, 26},
	"_201_compress": {1.7, 5, 15, 1.2, 17},
	"_209_db":       {2.4, 15, 1, 3.4, 15},
	"_202_jess":     {13.3, 70, 2, 14.8, 51},
	"_213_javac":    {23.8, 36, 16, 43.3, 82},
	"_228_jack":     {7.7, 45, 4, 6.3, 35},
	"Anagram":       {62.8, 152, 8, 78.9, 56},
}

// paperFig11 is the scanning characterization (Figure 11): old objects
// scanned for inter-generational pointers, objects scanned per partial,
// per full, and per collection without generations.
var paperFig11 = map[string]struct {
	InterGen, Partial, Full, NonGen float64
}{
	"_227_mtrt":     {280, 1023, -1, 238703},
	"_201_compress": {3, 168, 4789, 4778},
	"_209_db":       {7, 399, 294534, 287522},
	"_202_jess":     {1373, 3797, 25411, 25446},
	"_213_javac":    {16184, 53833, 213735, 194267},
	"_228_jack":     {151, 4890, 14972, 11241},
	"Anagram":       {1, 863, 273248, 271453},
}

// paperFig12 is the freeing characterization (Figure 12): percent bytes
// freed in partials, percent objects freed in partials, in fulls, and in
// collections without generations.
var paperFig12 = map[string]struct {
	BytesPartial, ObjsPartial, ObjsFull, ObjsNonGen float64
}{
	"_227_mtrt":     {99.89, 99.54, -1, 52.3},
	"_201_compress": {19.29, 40.43, 2.6, 2.3},
	"_209_db":       {97.66, 99.77, 22.2, 43.1},
	"_202_jess":     {98.02, 97.88, 87.2, 86.3},
	"_213_javac":    {71.25, 68.67, 44.7, 26.8},
	"_228_jack":     {91.63, 96.58, 90.8, 94.7},
	"Anagram":       {86.22, 93.43, 14.2, 13.2},
}

// paperFig13 is the average collection elapsed time in ms (Figure 13):
// partial, full, and without generations.
var paperFig13 = map[string]struct{ Partial, Full, NonGen float64 }{
	"_227_mtrt":     {99, -1, 260},
	"_201_compress": {17, 35, 31},
	"_209_db":       {80, 270, 215},
	"_202_jess":     {61, 116, 87},
	"_213_javac":    {145, 367, 249},
	"_228_jack":     {60, 95, 71},
	"Anagram":       {52, 429, 346},
}

// paperFig15 is the pages touched per collection (Figure 15).
var paperFig15 = map[string]struct{ Partial, Full, NonGen float64 }{
	"_227_mtrt":     {1489, -1, 3355},
	"_201_compress": {76, 124, 109},
	"_209_db":       {944, 2794, 2827},
	"_202_jess":     {1304, 2227, 2048},
	"_213_javac":    {2607, 3709, 3080},
	"_228_jack":     {1199, 2052, 1767},
	"Anagram":       {1082, 4938, 5054},
}

// paperFig21 is the card-size sweep of improvements (Figure 21),
// selected columns: 16-byte and 4096-byte cards.
var paperFig21 = map[string]struct{ At16, At4096 float64 }{
	"_201_compress": {0.11, 0.62},
	"_202_jess":     {-4.25, -6.65},
	"_209_db":       {-0.45, -0.63},
	"_213_javac":    {18.82, 11.83},
	"_227_mtrt":     {9.05, 8.90},
	"_228_jack":     {-7.43, -6.50},
	"Anagram":       {23.61, 35.24},
}

// paperFig22 is the dirty-card percentage at 16-byte and 4096-byte
// cards (Figure 22).
var paperFig22 = map[string]struct{ At16, At4096 float64 }{
	"_201_compress": {0.01, 0.27},
	"_202_jess":     {15.81, 61.18},
	"_209_db":       {19.96, 21.36},
	"_213_javac":    {9.58, 59.49},
	"_227_mtrt":     {1.76, 29.99},
	"_228_jack":     {17.66, 44.11},
	"Anagram":       {1.14, 1.31},
}
