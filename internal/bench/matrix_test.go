package bench

import (
	"strings"
	"testing"

	"gengc"
)

// tinySpec is a one-cell-per-axis matrix that still completes cycles.
func tinySpec(t *testing.T) MatrixSpec {
	t.Helper()
	variants, err := MatrixVariants([]string{"churn", "zipf", "auction"})
	if err != nil {
		t.Fatal(err)
	}
	// Keep one representative variant per profile to stay fast.
	var picked []MatrixVariant
	seen := map[string]bool{}
	for _, v := range variants {
		if !seen[v.Profile] {
			seen[v.Profile] = true
			picked = append(picked, v)
		}
	}
	return MatrixSpec{
		Mutators:   []int{1, 2},
		Workers:    []int{1},
		Shards:     []int{0},
		Barriers:   []gengc.BarrierMode{gengc.BarrierBatched},
		Variants:   picked,
		TotalOps:   30_000,
		Passes:     1,
		YoungBytes: 512 << 10,
	}
}

func TestMatrixVariantsExpansion(t *testing.T) {
	vs, err := MatrixVariants([]string{"churn", "zipf", "auction"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 7 {
		t.Fatalf("expected 7 variants (2 churn + 3 zipf + 2 auction), got %d", len(vs))
	}
	if _, err := MatrixVariants([]string{"nope"}); err == nil {
		t.Error("unknown profile not rejected")
	}
}

func TestRunMatrixSmall(t *testing.T) {
	rep, err := RunMatrix(tinySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != MatrixSchema || rep.SchemaVersion != MatrixSchemaVersion {
		t.Errorf("schema stamp missing: %q v%d", rep.Schema, rep.SchemaVersion)
	}
	if rep.Host.Fingerprint() == "" || rep.Host.GoVersion == "" {
		t.Error("host metadata not stamped")
	}
	if len(rep.Cells) != 6 { // 3 profiles × 2 mutator counts
		t.Fatalf("expected 6 cells, got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %f", c.Key(), c.NsPerOp)
		}
		if c.Cycles == 0 {
			t.Errorf("%s: no collection cycles — metrics say nothing about the collector", c.Key())
		}
		if c.BarrierFlushes == 0 {
			t.Errorf("%s: batched cell recorded no flushes", c.Key())
		}
	}
	rep.Sanity()
	if len(rep.Regressions) != 0 {
		t.Errorf("sanity checks flagged a healthy run: %v", rep.Regressions)
	}
}

func TestMatrixBaselineHostMismatchRefused(t *testing.T) {
	rep := &MatrixReport{
		Host:  CurrentHost(),
		Cells: []MatrixCell{{Profile: "churn", Contention: "low", Mutators: 1, Workers: 1, Barrier: "eager", NsPerOp: 100}},
	}
	rep.CompareBaseline(MatrixBaseline{
		Fingerprint: "plan9/mips gomaxprocs=64 numcpu=64",
		NsPerOp:     map[string]float64{rep.Cells[0].Key(): 1},
	}, 25)
	if !strings.HasPrefix(rep.BaselineComparison, "refused") {
		t.Errorf("cross-host comparison not refused: %q", rep.BaselineComparison)
	}
	if len(rep.Regressions) != 0 {
		t.Errorf("refused comparison still produced regressions: %v", rep.Regressions)
	}
}

// shapeCells is a two-group matrix (churn/low and zipf/s=1.2) used by
// the shape-comparison tests. Both groups cost 100 ns/op in this run.
func shapeCells() []MatrixCell {
	return []MatrixCell{
		{Profile: "churn", Contention: "low", Mutators: 1, Workers: 1, Barrier: "eager", NsPerOp: 100},
		{Profile: "churn", Contention: "low", Mutators: 2, Workers: 1, Barrier: "eager", NsPerOp: 100},
		{Profile: "zipf", Contention: "s=1.2", Mutators: 1, Workers: 1, Barrier: "eager", NsPerOp: 100},
		{Profile: "zipf", Contention: "s=1.2", Mutators: 2, Workers: 1, Barrier: "eager", NsPerOp: 100},
	}
}

func baselineFor(cells []MatrixCell, ns func(MatrixCell) float64) MatrixBaseline {
	b := MatrixBaseline{Fingerprint: CurrentHost().Fingerprint(), NsPerOp: map[string]float64{}}
	for _, c := range cells {
		b.NsPerOp[c.Key()] = ns(c)
	}
	return b
}

func TestMatrixBaselineShapeRegressionFlagged(t *testing.T) {
	// In the baseline, churn cost half of zipf; in this run they cost
	// the same — churn's normalized group median doubled. That shape
	// change must be flagged, and it must name the churn group only.
	rep := &MatrixReport{Host: CurrentHost(), Cells: shapeCells()}
	rep.CompareBaseline(baselineFor(rep.Cells, func(c MatrixCell) float64 {
		if c.Profile == "churn" {
			return 50
		}
		return 100
	}), 25)
	if !strings.HasPrefix(rep.BaselineComparison, "applied") {
		t.Fatalf("same-host comparison not applied: %q", rep.BaselineComparison)
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "group churn/low") {
		t.Fatalf("churn shape regression not flagged: %v", rep.Regressions)
	}
}

func TestMatrixBaselineUniformSlowdownNotFlagged(t *testing.T) {
	// Every cell 3x slower than baseline: the shape is identical, so
	// nothing is flagged — a uniform shift is indistinguishable from
	// host load and is deliberately not gated here.
	rep := &MatrixReport{Host: CurrentHost(), Cells: shapeCells()}
	rep.CompareBaseline(baselineFor(rep.Cells, func(MatrixCell) float64 { return 300 }), 25)
	if !strings.HasPrefix(rep.BaselineComparison, "applied") {
		t.Fatalf("same-host comparison not applied: %q", rep.BaselineComparison)
	}
	if len(rep.Regressions) != 0 {
		t.Errorf("uniform slowdown flagged as shape regression: %v", rep.Regressions)
	}
}

func TestMatrixBaselineTooFewOverlapRefused(t *testing.T) {
	rep := &MatrixReport{Host: CurrentHost(), Cells: shapeCells()[:1]}
	rep.CompareBaseline(MatrixBaseline{
		Fingerprint: CurrentHost().Fingerprint(),
		NsPerOp:     map[string]float64{rep.Cells[0].Key(): 100},
	}, 25)
	if !strings.HasPrefix(rep.BaselineComparison, "refused") {
		t.Errorf("single-cell overlap not refused: %q", rep.BaselineComparison)
	}
	if len(rep.Regressions) != 0 {
		t.Errorf("refused comparison produced regressions: %v", rep.Regressions)
	}
}

func TestMatrixSanityFlagsSilentBatchedBarrier(t *testing.T) {
	rep := &MatrixReport{Cells: []MatrixCell{
		{Profile: "zipf", Contention: "s=1.2", Mutators: 1, Workers: 1, Barrier: "batched", Cycles: 3, BarrierFlushes: 0},
		{Profile: "zipf", Contention: "s=1.2", Mutators: 2, Workers: 1, Barrier: "eager", Cycles: 0},
	}}
	rep.Sanity()
	if len(rep.Regressions) != 2 {
		t.Fatalf("expected 2 sanity flags (silent batched barrier, zero cycles), got %v", rep.Regressions)
	}
}
