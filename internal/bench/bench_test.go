package bench

import (
	"strings"
	"testing"

	"gengc"
	"gengc/internal/workload"
)

// tinyOpts keeps experiment runs minimal for unit tests.
func tinyOpts() Options {
	return Options{Scale: 0.002, Repeats: 1, Seed: 1, PageCost: -1}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1.0 || o.Repeats != 3 || o.Seed == 0 || o.HeapBytes != 32<<20 {
		t.Errorf("defaults = %+v", o)
	}
	if o.PageCost == 0 {
		t.Error("default page cost not applied")
	}
	if o2 := (Options{PageCost: -1}).withDefaults(); o2.PageCost != 0 {
		t.Errorf("negative PageCost should disable, got %d", o2.PageCost)
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID: "fig0", Title: "demo",
		Header: []string{"name", "value"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("alpha", "1.5")
	tab.AddRow("b", "22")
	var sb strings.Builder
	tab.Format(&sb)
	out := sb.String()
	for _, want := range []string{"FIG0", "demo", "alpha", "22", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureImprovement(t *testing.T) {
	o := tinyOpts()
	imp, err := o.MeasureImprovement(workload.Anagram(),
		o.withDefaults().config(gengc.Generational, defaultYoung, defaultCard, 0))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Profile != "Anagram" {
		t.Errorf("profile = %q", imp.Profile)
	}
	if imp.Gen.Mode != gengc.Generational || imp.NonGen.Mode != gengc.NonGenerational {
		t.Error("modes not recorded")
	}
	if imp.Percent < -1000 || imp.Percent > 1000 {
		t.Errorf("implausible improvement %v", imp.Percent)
	}
}

func TestFig8Tiny(t *testing.T) {
	tab, err := tinyOpts().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig8" || len(tab.Rows) != 1 {
		t.Fatalf("table = %+v", tab)
	}
	if tab.Rows[0][2] != "25.0%" {
		t.Errorf("paper MP column = %q, want 25.0%%", tab.Rows[0][2])
	}
}

func TestCharacterizationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization runs all profiles")
	}
	o := tinyOpts()
	o.Scale = 0.003
	chs, err := o.Characterize()
	if err != nil {
		t.Fatal(err)
	}
	if len(chs) != 7 {
		t.Fatalf("%d characterizations, want 7", len(chs))
	}
	for _, build := range []func([]Characterization) Table{
		Fig10, Fig11, Fig12, Fig13, Fig14, Fig15,
	} {
		tab := build(chs)
		if len(tab.Rows) != 7 {
			t.Errorf("%s has %d rows, want 7", tab.ID, len(tab.Rows))
		}
		var sb strings.Builder
		tab.Format(&sb) // must not panic
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	names := []string{"_201_compress", "_202_jess", "_209_db", "_213_javac", "_227_mtrt", "_228_jack", "Anagram"}
	for _, n := range names {
		if _, ok := paperFig10[n]; !ok {
			t.Errorf("paperFig10 missing %s", n)
		}
		if _, ok := paperFig11[n]; !ok {
			t.Errorf("paperFig11 missing %s", n)
		}
		if _, ok := paperFig12[n]; !ok {
			t.Errorf("paperFig12 missing %s", n)
		}
		if _, ok := paperFig13[n]; !ok {
			t.Errorf("paperFig13 missing %s", n)
		}
		if _, ok := paperFig15[n]; !ok {
			t.Errorf("paperFig15 missing %s", n)
		}
		if _, ok := paperFig22[n]; !ok {
			t.Errorf("paperFig22 missing %s", n)
		}
	}
	for _, n := range []int{2, 4, 6, 8, 10} {
		if _, ok := paperFig7[n]; !ok {
			t.Errorf("paperFig7 missing %d threads", n)
		}
	}
	if len(paperFig9) != 6 {
		t.Errorf("paperFig9 has %d entries, want 6", len(paperFig9))
	}
}

func TestMeasureRelative(t *testing.T) {
	o := tinyOpts()
	od := o.withDefaults()
	rel, err := o.MeasureRelative(workload.Jess(),
		od.config(gengc.GenerationalAging, defaultYoung, defaultCard, 1),
		od.config(gengc.Generational, defaultYoung, defaultCard, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rel < -1000 || rel > 1000 {
		t.Errorf("implausible relative improvement %v", rel)
	}
}

func TestTableFormatCSV(t *testing.T) {
	tab := Table{ID: "figX", Title: "csv demo", Header: []string{"a", "b"}}
	tab.AddRow("x,y", `q"u`)
	var sb strings.Builder
	tab.FormatCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"q""u"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "# figX: csv demo") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}
