package bench

import (
	"fmt"
	"time"

	"gengc"
	"gengc/internal/workload"
)

// Default experiment parameters, as chosen by the paper (§8.3): object
// marking (16-byte cards), simple promotion, 4 MB young generation.
const (
	defaultYoung = 4 << 20
	defaultCard  = 16
)

// cardSizes is the §8.5.3 sweep: all powers of two from 16 to 4096.
var cardSizes = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// youngSizes is the §8.5.1 sweep (bytes).
var youngSizes = []int{1 << 20, 2 << 20, 4 << 20, 8 << 20}

// rtThreads is the Figure 7 thread sweep.
var rtThreads = []int{2, 4, 6, 8, 10}

// agingThresholds lists the paper's tenure ages {4, 6, 8, 10}; our age
// counter starts one lower (allocation at 0, the paper's at 1).
var agingThresholds = []int{4, 6, 8, 10}

// Fig7 regenerates Figure 7: percentage improvement for the
// multithreaded Ray Tracer by thread count.
func (o Options) Fig7() (Table, error) {
	o = o.withDefaults()
	t := Table{ID: "fig7", Title: "MT Ray Tracer improvement vs thread count",
		Header: []string{"threads", "improvement", "paper(MP)"}}
	for _, n := range rtThreads {
		imp, err := o.MeasureImprovement(workload.MTRayTracer(n),
			o.config(gengc.Generational, defaultYoung, defaultCard, 0))
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprint(n), pct(imp.Percent), pct(paperFig7[n]))
	}
	t.Notes = append(t.Notes, "host is a uniprocessor; see EXPERIMENTS.md on the MP/UP condition")
	return t, nil
}

// Fig8 regenerates Figure 8: the Anagram improvement.
func (o Options) Fig8() (Table, error) {
	o = o.withDefaults()
	t := Table{ID: "fig8", Title: "Anagram improvement",
		Header: []string{"benchmark", "improvement", "paper(MP)", "paper(UP)"}}
	imp, err := o.MeasureImprovement(workload.Anagram(),
		o.config(gengc.Generational, defaultYoung, defaultCard, 0))
	if err != nil {
		return t, err
	}
	t.AddRow("Anagram", pct(imp.Percent), pct(paperFig8.MP), pct(paperFig8.UP))
	return t, nil
}

// Fig9 regenerates Figure 9: SPECjvm improvements.
func (o Options) Fig9() (Table, error) {
	o = o.withDefaults()
	t := Table{ID: "fig9", Title: "SPECjvm improvement",
		Header: []string{"benchmark", "improvement", "paper(MP)", "paper(UP)"}}
	for _, p := range workload.SPEC() {
		imp, err := o.MeasureImprovement(p,
			o.config(gengc.Generational, defaultYoung, defaultCard, 0))
		if err != nil {
			return t, err
		}
		ref := paperFig9[p.Name]
		t.AddRow(p.Name, pct(imp.Percent), pct(ref.MP), pct(ref.UP))
	}
	return t, nil
}

// Characterization holds the per-profile paired runs that Figures 10–15
// are derived from.
type Characterization struct {
	Profile string
	Gen     workload.Result
	NonGen  workload.Result
}

// Characterize runs every profile once under the default generational
// configuration and once under the baseline, with page tracking on.
func (o Options) Characterize() ([]Characterization, error) {
	o = o.withDefaults()
	o.TrackPages = true
	// Characterization tables are single-run measurements in the
	// paper as well ("running a single copy of the application").
	o.Repeats = 1
	var out []Characterization
	for _, p := range append(workload.SPEC(), workload.Anagram()) {
		imp, err := o.MeasureImprovement(p,
			o.config(gengc.Generational, defaultYoung, defaultCard, 0))
		if err != nil {
			return nil, err
		}
		out = append(out, Characterization{Profile: p.Name, Gen: imp.Gen, NonGen: imp.NonGen})
	}
	return out, nil
}

// Fig10 regenerates Figure 10: use of garbage collection.
func Fig10(chs []Characterization) Table {
	t := Table{ID: "fig10", Title: "Use of garbage collection in application",
		Header: []string{"benchmark", "%GC", "partial", "full", "%GC w/o gen", "cycles w/o gen",
			"paper:%GC", "p:part", "p:full", "p:%GC-ng", "p:cyc-ng"}}
	for _, ch := range chs {
		ref := paperFig10[ch.Profile]
		t.AddRow(ch.Profile,
			pct(ch.Gen.Summary.GCActivePct),
			fmt.Sprint(ch.Gen.Summary.NumPartial),
			fmt.Sprint(ch.Gen.Summary.NumFull),
			pct(ch.NonGen.Summary.GCActivePct),
			fmt.Sprint(ch.NonGen.Summary.NumCycles),
			pct(ref.GCPct), fmt.Sprint(ref.Partials), fmt.Sprint(ref.Fulls),
			pct(ref.GCPctNG), fmt.Sprint(ref.CyclesNG))
	}
	t.Notes = append(t.Notes,
		"on one CPU the collector's wall time overlaps mutator execution, inflating %GC against the paper's 4-way host")
	return t
}

// Fig11 regenerates Figure 11: objects scanned.
func Fig11(chs []Characterization) Table {
	t := Table{ID: "fig11", Title: "Generational characterization part 1: objects scanned",
		Header: []string{"benchmark", "inter-gen", "partial", "full", "w/o gen",
			"p:ig", "p:part", "p:full", "p:ng"}}
	for _, ch := range chs {
		ref := paperFig11[ch.Profile]
		full := "N/A"
		if ch.Gen.Summary.NumFull > 0 {
			full = f0(ch.Gen.Summary.AvgScannedFull)
		}
		pfull := "N/A"
		if ref.Full >= 0 {
			pfull = f0(ref.Full)
		}
		t.AddRow(ch.Profile,
			f0(ch.Gen.Summary.AvgInterGenScanned),
			f0(ch.Gen.Summary.AvgScannedPartial),
			full,
			f0(avgScannedAll(ch.NonGen)),
			f0(ref.InterGen), f0(ref.Partial), pfull, f0(ref.NonGen))
	}
	return t
}

func avgScannedAll(r workload.Result) float64 {
	if r.Summary.NumCycles == 0 {
		return 0
	}
	return float64(r.Summary.ObjectsScanned) / float64(r.Summary.NumCycles)
}

// Fig12 regenerates Figure 12: percentage freed.
func Fig12(chs []Characterization) Table {
	t := Table{ID: "fig12", Title: "Generational characterization part 2: percentage freed",
		Header: []string{"benchmark", "%bytes partial", "%objs partial", "%objs full", "%objs w/o gen",
			"p:%bytes", "p:%objs", "p:full", "p:ng"}}
	for _, ch := range chs {
		ref := paperFig12[ch.Profile]
		full := "N/A"
		if ch.Gen.Summary.NumFull > 0 {
			full = pct(ch.Gen.Summary.PctObjsFreedFull)
		}
		pfull := "N/A"
		if ref.ObjsFull >= 0 {
			pfull = pct(ref.ObjsFull)
		}
		t.AddRow(ch.Profile,
			pct(ch.Gen.Summary.PctBytesFreedPartial),
			pct(ch.Gen.Summary.PctObjsFreedPartial),
			full,
			pct(ch.NonGen.Summary.PctObjsFreedFull),
			pct(ref.BytesPartial), pct(ref.ObjsPartial), pfull, pct(ref.ObjsNonGen))
	}
	return t
}

// Fig13 regenerates Figure 13: elapsed time of collection cycles.
func Fig13(chs []Characterization) Table {
	t := Table{ID: "fig13", Title: "Elapsed time of collection cycles (ms)",
		Header: []string{"benchmark", "partial", "full", "w/o gen", "p:part", "p:full", "p:ng"}}
	for _, ch := range chs {
		ref := paperFig13[ch.Profile]
		full := "N/A"
		if ch.Gen.Summary.NumFull > 0 {
			full = f1(ch.Gen.Summary.AvgTimeFull.Seconds() * 1000)
		}
		pfull := "N/A"
		if ref.Full >= 0 {
			pfull = f0(ref.Full)
		}
		t.AddRow(ch.Profile,
			f1(ch.Gen.Summary.AvgTimePartial.Seconds()*1000),
			full,
			f1(ch.NonGen.Summary.AvgTimeFull.Seconds()*1000),
			f0(ref.Partial), pfull, f0(ref.NonGen))
	}
	return t
}

// Fig14 regenerates Figure 14: average gain from collections.
func Fig14(chs []Characterization) Table {
	t := Table{ID: "fig14", Title: "Average gain from collections",
		Header: []string{"benchmark", "objs/partial", "objs/full", "objs w/o gen",
			"bytes/partial", "bytes/full", "bytes w/o gen"}}
	for _, ch := range chs {
		full, fullB := "N/A", "N/A"
		if ch.Gen.Summary.NumFull > 0 {
			full = f0(ch.Gen.Summary.AvgFreedObjsFull)
			fullB = f0(ch.Gen.Summary.AvgFreedBytesFull)
		}
		t.AddRow(ch.Profile,
			f0(ch.Gen.Summary.AvgFreedObjsPartial),
			full,
			f0(ch.NonGen.Summary.AvgFreedObjsFull),
			f0(ch.Gen.Summary.AvgFreedBytesPartial),
			fullB,
			f0(ch.NonGen.Summary.AvgFreedBytesFull))
	}
	return t
}

// Fig15 regenerates Figure 15: pages touched per collection.
func Fig15(chs []Characterization) Table {
	t := Table{ID: "fig15", Title: "Average pages touched by a GC",
		Header: []string{"benchmark", "partial", "full", "w/o gen", "p:part", "p:full", "p:ng"}}
	for _, ch := range chs {
		ref := paperFig15[ch.Profile]
		full := "N/A"
		if ch.Gen.Summary.NumFull > 0 {
			full = f0(ch.Gen.Summary.AvgPagesFull)
		}
		pfull := "N/A"
		if ref.Full >= 0 {
			pfull = f0(ref.Full)
		}
		t.AddRow(ch.Profile,
			f0(ch.Gen.Summary.AvgPagesPartial),
			full,
			f0(ch.NonGen.Summary.AvgPagesFull),
			f0(ref.Partial), pfull, f0(ref.NonGen))
	}
	return t
}

// Fig16 regenerates Figure 16: tuning the young generation size for the
// multithreaded Ray Tracer (block and object marking × 1/2/4/8 MB).
func (o Options) Fig16() (Table, error) {
	o = o.withDefaults()
	t := Table{ID: "fig16", Title: "Young-size tuning, MT Ray Tracer (improvement %)",
		Header: []string{"config", "2", "4", "6", "8", "10 threads"}}
	for _, card := range []int{4096, 16} {
		name := "block"
		if card == 16 {
			name = "object"
		}
		for _, young := range youngSizes {
			row := []string{fmt.Sprintf("%s marking, %dm young", name, young>>20)}
			for _, n := range rtThreads {
				imp, err := o.MeasureImprovement(workload.MTRayTracer(n),
					o.config(gengc.Generational, young, card, 0))
				if err != nil {
					return t, err
				}
				row = append(row, f1(imp.Percent))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig17 regenerates Figure 17: young-size tuning for SPECjvm and
// Anagram.
func (o Options) Fig17() (Table, error) {
	o = o.withDefaults()
	t := Table{ID: "fig17", Title: "Young-size tuning, SPECjvm + Anagram (improvement %)",
		Header: []string{"benchmark", "blk 1m", "blk 2m", "blk 4m", "blk 8m",
			"obj 1m", "obj 2m", "obj 4m", "obj 8m"}}
	for _, p := range append(workload.SPEC(), workload.Anagram()) {
		row := []string{p.Name}
		for _, card := range []int{4096, 16} {
			for _, young := range youngSizes {
				imp, err := o.MeasureImprovement(p,
					o.config(gengc.Generational, young, card, 0))
				if err != nil {
					return t, err
				}
				row = append(row, f1(imp.Percent))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FigAging regenerates Figures 18 and 19: the aging mechanism versus
// the non-generational collector, for tenure thresholds 4/6/8/10
// (paper's age counting) across young generation sizes.
func (o Options) FigAging() (Table, error) {
	o = o.withDefaults()
	t := Table{ID: "fig18-19", Title: "Aging improvement over non-generational (object marking)",
		Header: []string{"benchmark", "age", "1m", "2m", "4m", "8m"}}
	for _, p := range append(workload.SPEC(), workload.Anagram()) {
		for _, age := range agingThresholds {
			row := []string{p.Name, fmt.Sprint(age)}
			for _, young := range youngSizes {
				imp, err := o.MeasureImprovement(p,
					o.config(gengc.GenerationalAging, young, defaultCard, age-1))
				if err != nil {
					return t, err
				}
				row = append(row, f1(imp.Percent))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes, "paper age N = object tenured after N-1 survived collections (allocation age differs by one)")
	return t, nil
}

// Fig20 regenerates Figure 20: the overhead of the aging mechanism with
// 2 ages (i.e. the same promotion decision as the simple scheme) over
// simple promotion.
func (o Options) Fig20() (Table, error) {
	o = o.withDefaults()
	t := Table{ID: "fig20", Title: "Aging with 2 ages vs simple promotion (improvement %)",
		Header: []string{"benchmark", "1m", "2m", "4m", "8m"}}
	for _, p := range append(workload.SPEC(), workload.Anagram()) {
		row := []string{p.Name}
		for _, young := range youngSizes {
			rel, err := o.MeasureRelative(p,
				o.config(gengc.GenerationalAging, young, defaultCard, 1),
				o.config(gengc.Generational, young, defaultCard, 0))
			if err != nil {
				return t, err
			}
			row = append(row, f1(rel))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// CardSweep holds one profile's generational runs across card sizes,
// plus the non-generational baseline; Figures 21–23 derive from it.
type CardSweep struct {
	Profile  string
	ByCard   map[int]workload.Result
	Baseline time.Duration // averaged non-generational elapsed
	GenAvg   map[int]time.Duration
}

// SweepCards runs the §8.5.3 card-size sweep.
func (o Options) SweepCards() ([]CardSweep, error) {
	o = o.withDefaults()
	var out []CardSweep
	for _, p := range append(workload.SPEC(), workload.Anagram()) {
		cs := CardSweep{Profile: p.Name,
			ByCard: map[int]workload.Result{},
			GenAvg: map[int]time.Duration{}}
		_, nonAvg, err := o.runAveraged(p, o.config(gengc.NonGenerational, defaultYoung, defaultCard, 0))
		if err != nil {
			return nil, err
		}
		cs.Baseline = nonAvg
		for _, card := range cardSizes {
			res, avg, err := o.runAveraged(p, o.config(gengc.Generational, defaultYoung, card, 0))
			if err != nil {
				return nil, err
			}
			cs.ByCard[card] = res
			cs.GenAvg[card] = avg
		}
		out = append(out, cs)
	}
	return out, nil
}

// Fig21 renders the card-size improvement table.
func Fig21(sweeps []CardSweep) Table {
	t := Table{ID: "fig21", Title: "Improvement by card size (4m young, %)",
		Header: cardHeader("benchmark", "p:16", "p:4096")}
	for _, cs := range sweeps {
		row := []string{cs.Profile}
		for _, card := range cardSizes {
			imp := 100 * (cs.Baseline - cs.GenAvg[card]).Seconds() / cs.Baseline.Seconds()
			row = append(row, f1(imp))
		}
		ref := paperFig21[cs.Profile]
		row = append(row, f1(ref.At16), f1(ref.At4096))
		t.AddRow(row...)
	}
	return t
}

// Fig22 renders the dirty-card percentage table.
func Fig22(sweeps []CardSweep) Table {
	t := Table{ID: "fig22", Title: "Percentage of dirty cards from allocated cards",
		Header: cardHeader("benchmark", "p:16", "p:4096")}
	for _, cs := range sweeps {
		row := []string{cs.Profile}
		for _, card := range cardSizes {
			row = append(row, f1(cs.ByCard[card].Summary.AvgDirtyCardPct))
		}
		ref := paperFig22[cs.Profile]
		row = append(row, f1(ref.At16), f1(ref.At4096))
		t.AddRow(row...)
	}
	return t
}

// Fig23 renders the area-scanned table (KB scanned on dirty cards per
// partial collection; the paper's unit is also an area).
func Fig23(sweeps []CardSweep) Table {
	t := Table{ID: "fig23", Title: "Area scanned for dirty cards (KB per partial)",
		Header: cardHeader("benchmark")}
	for _, cs := range sweeps {
		row := []string{cs.Profile}
		for _, card := range cardSizes {
			row = append(row, f1(cs.ByCard[card].Summary.AvgAreaScanned/1024))
		}
		t.AddRow(row...)
	}
	return t
}

func cardHeader(first string, extra ...string) []string {
	h := []string{first}
	for _, c := range cardSizes {
		h = append(h, fmt.Sprint(c))
	}
	return append(h, extra...)
}
