package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gengc"
	"gengc/internal/workload"
)

// Options configure an experiment batch.
type Options struct {
	// Scale multiplies every profile's run length; 1.0 is the
	// default experiment size.
	Scale float64

	// Repeats averages elapsed times over this many runs (the paper
	// repeats each measurement 8 times; sweeps here default lower to
	// keep the full suite tractable).
	Repeats int

	// Seed anchors the workloads' deterministic random streams.
	Seed int64

	// HeapBytes overrides the heap size (default: the paper's 32 MB).
	HeapBytes int

	// TrackPages enables the Figure 15 instrumentation.
	TrackPages bool

	// PageCost is the simulated memory cost (busy-spin iterations)
	// charged to the collector per first-touched page per cycle; see
	// gc.Config.PageCostSpins. Negative disables; 0 uses the default.
	PageCost int

	// Workers is the parallel collector worker count (0 or 1 keeps the
	// paper's single collector thread).
	Workers int

	// TraceSink, when non-nil, receives every run's structured
	// collector events (concatenated; each run opens with a "start"
	// boundary event). Feed a gengc.NewJSONLTraceSink and render the
	// output with cmd/gcreport.
	TraceSink gengc.TraceSink

	// Progress, when non-nil, receives one line per run.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Seed == 0 {
		o.Seed = 20000620 // PLDI 2000
	}
	if o.HeapBytes == 0 {
		o.HeapBytes = 32 << 20
	}
	switch {
	case o.PageCost == 0:
		o.PageCost = 4000
	case o.PageCost < 0:
		o.PageCost = 0
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// config builds the collector configuration for one run.
func (o Options) config(mode gengc.Mode, youngBytes, cardBytes, oldAge int) gengc.Config {
	return gengc.Config{
		Mode:          mode,
		HeapBytes:     o.HeapBytes,
		YoungBytes:    youngBytes,
		CardBytes:     cardBytes,
		OldAge:        oldAge,
		Workers:       o.Workers,
		TrackPages:    o.TrackPages,
		PageCostSpins: o.PageCost,
	}
}

// runAveraged runs the profile Repeats times and returns the run with
// the median elapsed time (robust against scheduler noise) plus that
// median elapsed duration.
func (o Options) runAveraged(p workload.Profile, cfg gengc.Config) (workload.Result, time.Duration, error) {
	p = p.Scale(o.Scale)
	var ropts []workload.RunOption
	if o.TraceSink != nil {
		ropts = append(ropts, workload.TraceTo(o.TraceSink))
	}
	results := make([]workload.Result, 0, o.Repeats)
	var sum time.Duration
	for r := 0; r < o.Repeats; r++ {
		res, err := workload.Run(p, cfg, o.Seed+int64(r)*104729, ropts...)
		if err != nil {
			return workload.Result{}, 0, err
		}
		results = append(results, res)
		sum += res.Elapsed
	}
	// Use the median run (by elapsed time): single-CPU scheduling
	// noise is heavy-tailed, so the median is far more stable than
	// the mean across repeats.
	_ = sum
	sort.Slice(results, func(i, j int) bool { return results[i].Elapsed < results[j].Elapsed })
	best := results[len(results)/2]
	avg := best.Elapsed
	o.logf("  %-14s %-20v young=%dK card=%d elapsed=%v cycles=%d/%d",
		p.Name, cfg.Mode, cfg.YoungBytes>>10, cfg.CardBytes,
		avg.Round(time.Millisecond), best.Summary.NumPartial, best.Summary.NumFull)
	return best, avg, nil
}

// Improvement measures the paper's headline metric: the percentage
// reduction in elapsed time of the generational configuration relative
// to the non-generational baseline on the same workload.
//
//	improvement = 100 · (T_nongen − T_gen) / T_nongen
type Improvement struct {
	Profile string
	Percent float64
	Gen     workload.Result
	NonGen  workload.Result
}

// MeasureImprovement runs the profile under genCfg and under the
// non-generational baseline and compares elapsed times.
func (o Options) MeasureImprovement(p workload.Profile, genCfg gengc.Config) (Improvement, error) {
	nonCfg := genCfg
	nonCfg.Mode = gengc.NonGenerational
	gen, genAvg, err := o.runAveraged(p, genCfg)
	if err != nil {
		return Improvement{}, err
	}
	non, nonAvg, err := o.runAveraged(p, nonCfg)
	if err != nil {
		return Improvement{}, err
	}
	imp := 100 * (nonAvg - genAvg).Seconds() / nonAvg.Seconds()
	return Improvement{Profile: p.Name, Percent: imp, Gen: gen, NonGen: non}, nil
}

// MeasureRelative compares two arbitrary configurations (used by the
// aging-vs-simple Figure 20): positive means cfgA is faster than cfgB.
func (o Options) MeasureRelative(p workload.Profile, cfgA, cfgB gengc.Config) (float64, error) {
	_, aAvg, err := o.runAveraged(p, cfgA)
	if err != nil {
		return 0, err
	}
	_, bAvg, err := o.runAveraged(p, cfgB)
	if err != nil {
		return 0, err
	}
	return 100 * (bAvg - aAvg).Seconds() / bAvg.Seconds(), nil
}
