package bench

import (
	"context"
	"fmt"
	"time"

	"gengc"
	"gengc/internal/server"
)

// This file is the server-mode overload harness behind cmd/gcserve:
// the request engine of internal/server driven by the open-loop Poisson
// load generator across offered arrival rates, once with the admission
// controller armed and once naive, producing the versioned
// BENCH_server.json report (schema: BENCHMARKS.md §server). The
// experiment exists to demonstrate the robustness story end to end:
// under overload the admitted leg sheds load with a bounded completed-
// request latency tail and zero OOM, while the naive leg visibly
// breaches the request SLO (its queue grows without bound, so completed
// requests carry the queue wait) or exhausts the heap.
//
// Rates are derived from a capacity calibration on the running host —
// a closed-loop burst measuring sustainable completion throughput —
// so "2× sustainable" means the same thing on a laptop and a loaded CI
// container, and the regression gate can stay host-independent.

// ServerSchema identifies the BENCH_server.json format; bump
// ServerSchemaVersion on any incompatible field change and record the
// change in BENCHMARKS.md.
const (
	ServerSchema        = "gengc/bench-server"
	ServerSchemaVersion = 1
)

// ServerOptions parameterizes the sweep. Zero fields assume defaults.
type ServerOptions struct {
	// Multipliers are the offered-rate multiples of the calibrated
	// capacity, one pair of cells (admission on/off) per entry.
	// Default {0.5, 1, 2, 4} — the overload legs at 2× and 4× are the
	// acceptance criterion.
	Multipliers []float64

	// Duration is each cell's load-generation window.
	Duration time.Duration

	// Workers is the request-worker count.
	Workers int

	// HeapBytes/YoungBytes size the runtime; the defaults (12 MB /
	// 512 KB) keep the session state a live-set fraction large enough
	// that overload actually threatens the heap.
	HeapBytes  int
	YoungBytes int

	// SLO is the per-request latency objective. The admission leg also
	// uses it as each request's deadline; the naive leg measures
	// against it but never deadlines or sheds.
	SLO time.Duration

	// Objects/Slots/Size shape each request's allocated graph.
	Objects int
	Slots   int
	Size    int

	// LowFraction is the PriorityLow arrival share (degraded-mode shed
	// candidates).
	LowFraction float64

	Seed int64
}

func (o ServerOptions) withDefaults() ServerOptions {
	if len(o.Multipliers) == 0 {
		o.Multipliers = []float64{0.5, 1, 2, 4}
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.HeapBytes == 0 {
		o.HeapBytes = 12 << 20
	}
	if o.YoungBytes == 0 {
		o.YoungBytes = 512 << 10
	}
	if o.SLO == 0 {
		o.SLO = 50 * time.Millisecond
	}
	if o.Objects == 0 {
		o.Objects = 96
	}
	if o.Slots == 0 {
		o.Slots = 2
	}
	if o.Size == 0 {
		o.Size = 128
	}
	if o.LowFraction == 0 {
		o.LowFraction = 0.25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ServerCell is one (rate, admission) leg's outcome.
type ServerCell struct {
	Multiplier float64 `json:"multiplier"`
	RatePerSec float64 `json:"rate_per_sec"`
	Admission  bool    `json:"admission"`

	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Retries   int64 `json:"retries"`

	FailedOOM     int64 `json:"failed_oom"`
	FailedStalled int64 `json:"failed_stalled"`

	// GoodputPerSec is completed requests per second of load window.
	GoodputPerSec float64 `json:"goodput_per_sec"`

	// Completed-request latency quantiles in nanoseconds (end to end:
	// queue wait + allocation + retries).
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`

	SLOBreaches    int64 `json:"slo_breaches"`
	DegradedEnters int64 `json:"degraded_enters"`
	FlightDumps    int64 `json:"flight_dumps"`
	Cycles         int64 `json:"cycles"`
	Fulls          int64 `json:"fulls"`
}

// ServerReport is the BENCH_server.json document.
type ServerReport struct {
	Schema        string   `json:"schema"`
	SchemaVersion int      `json:"schema_version"`
	Host          HostMeta `json:"host"`

	WorkersConf     int     `json:"workers"`
	HeapBytes       int     `json:"heap_bytes"`
	YoungBytes      int     `json:"young_bytes"`
	SLONs           int64   `json:"slo_ns"`
	DurationNs      int64   `json:"duration_ns"`
	Objects         int     `json:"objects"`
	ObjectSize      int     `json:"object_size"`
	LowFraction     float64 `json:"low_fraction"`
	CapacityPerSec  float64 `json:"capacity_per_sec"`
	CalibrationReqs int64   `json:"calibration_reqs"`

	Cells    []ServerCell `json:"cells"`
	Findings []string     `json:"findings"`

	// Regressions are the gate's failures (non-empty => exit 2).
	Regressions []string `json:"regressions"`
}

// RunServer calibrates capacity, sweeps rate × admission, and gates the
// result. logf (optional) receives one progress line per cell.
func RunServer(opts ServerOptions, logf func(format string, args ...any)) (*ServerReport, error) {
	opts = opts.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &ServerReport{
		Schema:        ServerSchema,
		SchemaVersion: ServerSchemaVersion,
		Host:          CurrentHost(),
		WorkersConf:   opts.Workers,
		HeapBytes:     opts.HeapBytes,
		YoungBytes:    opts.YoungBytes,
		SLONs:         int64(opts.SLO),
		DurationNs:    int64(opts.Duration),
		Objects:       opts.Objects,
		ObjectSize:    opts.Size,
		LowFraction:   opts.LowFraction,
	}

	capacity, calReqs, err := calibrate(opts)
	if err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	rep.CapacityPerSec = capacity
	rep.CalibrationReqs = calReqs
	logf("calibrated capacity: %.0f req/s (%d closed-loop requests)", capacity, calReqs)

	for _, mult := range opts.Multipliers {
		rate := capacity * mult
		for _, admit := range []bool{true, false} {
			cell, err := runServerCell(opts, mult, rate, admit)
			if err != nil {
				return nil, fmt.Errorf("cell x%.2g admission=%v: %w", mult, admit, err)
			}
			rep.Cells = append(rep.Cells, *cell)
			logf("x%-4.2g %7.0f req/s admission=%-5v goodput=%7.0f/s shed=%-6d oom=%-3d p99.9=%-12v breaches=%d",
				mult, rate, admit, cell.GoodputPerSec, cell.Shed, cell.FailedOOM,
				time.Duration(cell.P999Ns), cell.SLOBreaches)
		}
	}

	rep.Findings = serverFindings(rep)
	rep.Regressions = rep.Gate()
	return rep, nil
}

// calibrate measures sustainable completion throughput with a closed
// loop: enough requests to cover several collection cycles, submitted
// with admission off and consumed as fast as the workers go.
func calibrate(opts ServerOptions) (perSec float64, reqs int64, err error) {
	rt, err := newServerRuntime(opts, false)
	if err != nil {
		return 0, 0, err
	}
	s := server.New(rt, server.Config{Workers: opts.Workers, Seed: opts.Seed})
	const n = 600
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := s.Submit(server.Request{
			Objects: opts.Objects, Slots: opts.Slots, Size: opts.Size,
		}); err != nil {
			_ = s.Drain(context.Background())
			return 0, 0, err
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	st := s.Stats()
	if st.Completed == 0 {
		return 0, 0, fmt.Errorf("calibration completed nothing")
	}
	return float64(st.Completed) / elapsed.Seconds(), st.Completed, nil
}

func newServerRuntime(opts ServerOptions, admit bool) (*gengc.Runtime, error) {
	ro := []gengc.Option{
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(opts.HeapBytes),
		gengc.WithYoungBytes(opts.YoungBytes),
		gengc.WithRequestSLO(opts.SLO),
		gengc.WithFlightRecorder(256),
		gengc.WithStallTimeout(100 * time.Millisecond),
	}
	if admit {
		ro = append(ro, gengc.WithAdmission(gengc.AdmissionConfig{
			MaxInFlight:  4 * opts.Workers,
			MaxQueue:     8 * opts.Workers,
			QueueTimeout: opts.SLO / 2,
		}))
	}
	return gengc.New(ro...)
}

// runServerCell runs one (rate, admission) leg.
func runServerCell(opts ServerOptions, mult, rate float64, admit bool) (*ServerCell, error) {
	rt, err := newServerRuntime(opts, admit)
	if err != nil {
		return nil, err
	}
	s := server.New(rt, server.Config{Workers: opts.Workers, Seed: opts.Seed})

	tpl := server.Request{Objects: opts.Objects, Slots: opts.Slots, Size: opts.Size}
	if admit {
		// The admission leg gives every request the SLO as its
		// deadline: queue wait counts against it, so work that cannot
		// finish in time is abandoned instead of served late.
		tpl.Deadline = opts.SLO
	}
	load := server.RunLoad(context.Background(), s, server.LoadConfig{
		StartRate:   rate,
		Duration:    opts.Duration,
		BurstEvery:  opts.Duration / 4,
		BurstLen:    opts.Duration / 20,
		BurstFactor: 2,
		LowFraction: opts.LowFraction,
		Template:    tpl,
		Seed:        opts.Seed + int64(mult*1000) + boolSeed(admit),
	})

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		return nil, err
	}
	st := s.Stats()
	snap := rt.Snapshot()
	req := snap.RequestLatency
	return &ServerCell{
		Multiplier:     mult,
		RatePerSec:     rate,
		Admission:      admit,
		Offered:        load.Offered,
		Completed:      st.Completed,
		Shed:           st.Shed,
		Retries:        st.Retries,
		FailedOOM:      st.FailedOOM,
		FailedStalled:  st.FailedStalled,
		GoodputPerSec:  float64(st.Completed) / opts.Duration.Seconds(),
		P50Ns:          int64(req.P50),
		P99Ns:          int64(req.P99),
		P999Ns:         int64(req.P999),
		MaxNs:          int64(req.Max),
		SLOBreaches:    snap.RequestSLOBreaches,
		DegradedEnters: snap.Admission.DegradedEnters,
		FlightDumps:    snap.FlightRecorderDumps,
		Cycles:         snap.Cycles,
		Fulls:          snap.Fulls,
	}, nil
}

func boolSeed(b bool) int64 {
	if b {
		return 7
	}
	return 13
}

// serverFindings distills the report into the sentences EXPERIMENTS.md
// quotes.
func serverFindings(rep *ServerReport) []string {
	var out []string
	top := topOverloadCells(rep)
	if top.adm != nil && top.naive != nil {
		out = append(out, fmt.Sprintf(
			"at %.1fx capacity the admitted leg completed %d requests (goodput %.0f/s, p99.9 %v, %d shed, %d OOM) while the naive leg completed %d (p99.9 %v, %d SLO breaches, %d OOM)",
			top.adm.Multiplier, top.adm.Completed, top.adm.GoodputPerSec,
			time.Duration(top.adm.P999Ns), top.adm.Shed, top.adm.FailedOOM,
			top.naive.Completed, time.Duration(top.naive.P999Ns),
			top.naive.SLOBreaches, top.naive.FailedOOM))
	}
	var admOOM, naiveOOM int64
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Admission {
			admOOM += c.FailedOOM
		} else {
			naiveOOM += c.FailedOOM
		}
	}
	out = append(out, fmt.Sprintf(
		"OOM failures across all rates: %d with admission, %d naive (shed-before-OOM: the controller must keep the left number at zero)",
		admOOM, naiveOOM))
	return out
}

type overloadPair struct{ adm, naive *ServerCell }

// topOverloadCells returns the admitted and naive cells at the highest
// overload multiplier (>= 2 if present, else the largest).
func topOverloadCells(rep *ServerReport) overloadPair {
	var p overloadPair
	best := 0.0
	for i := range rep.Cells {
		if m := rep.Cells[i].Multiplier; m > best {
			best = m
		}
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Multiplier != best {
			continue
		}
		if c.Admission {
			p.adm = c
		} else {
			p.naive = c
		}
	}
	return p
}

// Gate applies the host-independent acceptance checks; any returned
// string is a regression (cmd/gcserve exits 2). The checks compare the
// two legs' *behavior classes*, not absolute latencies, so they hold on
// any host:
//
//  1. every admitted cell finishes with zero OOM failures and nonzero
//     completions (shed before OOM, never instead of serving);
//  2. the top overload admitted cell sheds (admission must actually
//     engage at >= 2x capacity);
//  3. every admitted cell's completed-request p99.9 stays within 4x
//     the SLO (the deadline-bounded tail — completed work is never
//     served arbitrarily late);
//  4. the top overload naive cell measurably misbehaves: it breaches
//     the SLO or OOMs (the contrast that justifies the controller).
func (rep *ServerReport) Gate() []string {
	var bad []string
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if !c.Admission {
			continue
		}
		if c.FailedOOM > 0 {
			bad = append(bad, fmt.Sprintf(
				"admitted cell x%.2g: %d OOM failures (admission must shed before OOM)",
				c.Multiplier, c.FailedOOM))
		}
		if c.Completed == 0 {
			bad = append(bad, fmt.Sprintf(
				"admitted cell x%.2g completed nothing", c.Multiplier))
		}
		if c.P999Ns > 4*rep.SLONs {
			bad = append(bad, fmt.Sprintf(
				"admitted cell x%.2g: completed p99.9 %v exceeds 4x SLO %v",
				c.Multiplier, time.Duration(c.P999Ns), time.Duration(rep.SLONs)))
		}
	}
	top := topOverloadCells(rep)
	if top.adm == nil || top.naive == nil {
		bad = append(bad, "missing top-rate cell pair")
		return bad
	}
	if top.adm.Multiplier >= 2 && top.adm.Shed == 0 {
		bad = append(bad, fmt.Sprintf(
			"admitted cell x%.2g shed nothing at overload", top.adm.Multiplier))
	}
	if top.naive.SLOBreaches == 0 && top.naive.FailedOOM == 0 {
		bad = append(bad, fmt.Sprintf(
			"naive cell x%.2g neither breached the SLO nor OOMed — no overload contrast measured",
			top.naive.Multiplier))
	}
	return bad
}
