package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gengc"
	"gengc/internal/workload"
)

// This file is the contention-matrix harness behind cmd/gcsweep: one
// sweep over mutators × collector Workers × AllocShards × barrier mode
// × workload contention level, producing the versioned BENCH_matrix.json
// report (schema: BENCHMARKS.md). The sweep exists to answer the
// question the single-experiment harnesses cannot: how the sharded
// allocator, the batched barrier and the card table behave as skewed
// pointer-mutation traffic and thread counts rise together.

// MatrixSchema identifies the BENCH_matrix.json format; bump
// MatrixSchemaVersion on any incompatible field change and record the
// change in BENCHMARKS.md.
const (
	MatrixSchema        = "gengc/bench-matrix"
	MatrixSchemaVersion = 1
)

// HostMeta is the host-metadata stanza stamped into every matrix
// report. Fingerprint determines baseline comparability: ns/op numbers
// from hosts with different parallelism or architecture are not
// comparable, so regression checks refuse to run across fingerprints.
type HostMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
}

// CurrentHost captures the running host's metadata.
func CurrentHost() HostMeta {
	return HostMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Fingerprint is the baseline-matching key: platform and parallelism,
// but not the Go toolchain patch level (minor toolchain drift moves
// ns/op far less than the regression tolerance; the full go version is
// still recorded in the report for the reader).
func (h HostMeta) Fingerprint() string {
	return fmt.Sprintf("%s/%s gomaxprocs=%d numcpu=%d", h.GOOS, h.GOARCH, h.GoMaxProcs, h.NumCPU)
}

// MatrixVariant is one workload leg of the sweep: a named profile at a
// named contention level. NewRun builds the per-thread run function;
// the harness offsets seed per thread and per pass so repeats measure
// the same work without literally replaying one PRNG stream across
// mutators.
type MatrixVariant struct {
	Profile    string
	Contention string
	NewRun     func(seed int64) func(m *gengc.Mutator, ops int) error
}

// MatrixVariants expands profile names ("churn", "zipf", "auction")
// into the matrix's contention-level variants:
//
//   - churn: the uniform store-dominated BarrierChurn loop, contention
//     low = 64 base objects, high = 8 (the fan of stores concentrates
//     on 8 hot cards).
//   - zipf: ZipfChurn at skew s ∈ {0.6, 0.9, 1.2} — the contention
//     axis is the popularity skew itself.
//   - auction: the Auction mix, low = 512 items at s=0.9, high = 64
//     items at s=1.2.
func MatrixVariants(profiles []string) ([]MatrixVariant, error) {
	var out []MatrixVariant
	for _, p := range profiles {
		switch p {
		case "churn":
			for _, v := range []struct {
				label string
				base  int
			}{{"low", 64}, {"high", 8}} {
				churn := workload.BarrierChurn{BaseObjects: v.base}
				out = append(out, MatrixVariant{
					Profile: "churn", Contention: v.label,
					NewRun: func(int64) func(*gengc.Mutator, int) error {
						return churn.RunThread
					},
				})
			}
		case "zipf":
			for _, s := range []float64{0.6, 0.9, 1.2} {
				s := s
				out = append(out, MatrixVariant{
					Profile: "zipf", Contention: fmt.Sprintf("s=%.1f", s),
					NewRun: func(seed int64) func(*gengc.Mutator, int) error {
						return workload.ZipfChurn{Skew: s, Seed: seed}.RunThread
					},
				})
			}
		case "auction":
			for _, v := range []struct {
				label string
				items int
				skew  float64
			}{{"low", 512, 0.9}, {"high", 64, 1.2}} {
				v := v
				out = append(out, MatrixVariant{
					Profile: "auction", Contention: v.label,
					NewRun: func(seed int64) func(*gengc.Mutator, int) error {
						return workload.Auction{Items: v.items, Skew: v.skew, Seed: seed}.RunThread
					},
				})
			}
		default:
			return nil, fmt.Errorf("unknown matrix profile %q (want churn, zipf or auction)", p)
		}
	}
	return out, nil
}

// MatrixSpec parameterizes one sweep.
type MatrixSpec struct {
	Mutators []int               // mutator thread counts
	Workers  []int               // collector worker counts (WithWorkers)
	Shards   []int               // central shard counts (WithAllocShards; 0 = per-class default)
	Barriers []gengc.BarrierMode // barrier modes (WithBarrier)
	Variants []MatrixVariant     // workload × contention legs

	// TotalOps is the per-run operation budget, split evenly across the
	// cell's mutators so every cell performs the same total work.
	TotalOps int

	// Passes is how many times the whole matrix is measured. Passes are
	// interleaved — pass 2 starts only after pass 1 has visited every
	// cell — so slow host drift (thermal, page cache, background load)
	// spreads across all cells instead of landing on whichever cells
	// were measured last; each cell reports the per-metric median of
	// its passes.
	Passes int

	Seed                  int64
	HeapBytes, YoungBytes int

	// Progress receives one line per completed cell pass (nil = quiet).
	Progress func(string)
}

func (s MatrixSpec) withDefaults() MatrixSpec {
	if s.TotalOps == 0 {
		// Enough for the least allocation-intensive variant (the
		// auction mix) to cross the young-generation trigger several
		// times at the default YoungBytes.
		s.TotalOps = 60_000
	}
	if s.Passes == 0 {
		s.Passes = 2
	}
	if s.Seed == 0 {
		s.Seed = 20000620 // PLDI 2000
	}
	if s.HeapBytes == 0 {
		s.HeapBytes = 32 << 20
	}
	if s.YoungBytes == 0 {
		s.YoungBytes = 1 << 20
	}
	return s
}

func (s MatrixSpec) validate() error {
	if len(s.Mutators) == 0 || len(s.Workers) == 0 || len(s.Shards) == 0 ||
		len(s.Barriers) == 0 || len(s.Variants) == 0 {
		return fmt.Errorf("matrix: every axis needs at least one value")
	}
	for _, m := range s.Mutators {
		if m <= 0 {
			return fmt.Errorf("matrix: bad mutator count %d", m)
		}
	}
	return nil
}

// MatrixCell is one measured configuration: the cell coordinates, the
// throughput and pause/cycle distributions, and the contention counters
// read from Runtime.Snapshot. All metrics are per-pass medians.
type MatrixCell struct {
	Profile    string `json:"profile"`
	Contention string `json:"contention"`
	Mutators   int    `json:"mutators"`
	Workers    int    `json:"workers"`
	Shards     int    `json:"shards"` // 0 = per-class default
	Barrier    string `json:"barrier"`

	NsPerOp float64 `json:"ns_per_op"`

	// Fleet-wide mutator pause quantiles (the on-the-fly property under
	// load), in nanoseconds.
	PauseP50Ns  int64 `json:"pause_p50_ns"`
	PauseP99Ns  int64 `json:"pause_p99_ns"`
	PauseP999Ns int64 `json:"pause_p999_ns"`

	// Collection-cycle behavior: completed cycles per run and the
	// mean/max clear-to-sweep-end elapsed time.
	Cycles      int64 `json:"cycles"`
	CycleMeanNs int64 `json:"cycle_mean_ns"`
	CycleMaxNs  int64 `json:"cycle_max_ns"`

	// Contention counters (run totals): contended allocator lock
	// acquisitions across tiers, batched-barrier buffer flushes, and
	// same-card dedup hits (both zero under the eager barrier).
	AllocContended int64 `json:"alloc_contended"`
	BarrierFlushes int64 `json:"barrier_flushes"`
	CardDedupHits  int64 `json:"card_dedup_hits"`

	Passes int `json:"passes"`
}

// Key is the cell's identity in baseline maps:
// "profile/contention/m<mutators>/w<workers>/s<shards>/<barrier>".
func (c MatrixCell) Key() string {
	return fmt.Sprintf("%s/%s/m%d/w%d/s%d/%s",
		c.Profile, c.Contention, c.Mutators, c.Workers, c.Shards, c.Barrier)
}

// MatrixBaseline is an embedded reference run: the fingerprint of the
// host that produced it and its per-cell ns/op map (keys from
// MatrixCell.Key). The regression gate does not compare the absolute
// values cell by cell — see CompareBaseline for the shape-normalized
// comparison it actually performs; the raw map is kept so the reference
// numbers stay readable and regenerable.
type MatrixBaseline struct {
	Fingerprint string             `json:"fingerprint"`
	NsPerOp     map[string]float64 `json:"ns_per_op"`
}

// MatrixReport is the BENCH_matrix.json document; see BENCHMARKS.md for
// the field-by-field schema and the baseline-matching rules.
type MatrixReport struct {
	Schema        string   `json:"schema"`
	SchemaVersion int      `json:"schema_version"`
	Generated     string   `json:"generated"`
	Host          HostMeta `json:"host"`

	TotalOps   int   `json:"total_ops_per_run"`
	Passes     int   `json:"passes"`
	Seed       int64 `json:"seed"`
	HeapBytes  int   `json:"heap_bytes"`
	YoungBytes int   `json:"young_bytes"`

	Cells []MatrixCell `json:"cells"`

	// Baseline bookkeeping: the embedded baseline this run was checked
	// against (if any) and the outcome — "applied", "refused: host
	// fingerprint mismatch (...)", or "none embedded". A refused
	// comparison is not a failure: it means the numbers must not be
	// read against the baseline, per the cross-host rule.
	Baseline           *MatrixBaseline `json:"baseline,omitempty"`
	BaselineComparison string          `json:"baseline_comparison"`

	// Regressions lists everything flagged: profile/contention groups
	// whose shape-normalized median ns/op exceeded the baseline
	// tolerance, and cells that failed the host-independent sanity
	// checks. Non-empty ⇒ cmd/gcsweep exits 2.
	Regressions []string `json:"regressions"`
}

// oneRun measures a single cell pass: a fresh runtime, TotalOps split
// across the mutator threads, snapshot and cycle records on shutdown.
type oneRun struct {
	nsPerOp                   float64
	p50, p99, p999            int64
	cycles                    int64
	cycleMean, cycleMax       int64
	contended, flushes, dedup int64
}

func (s MatrixSpec) runCell(v MatrixVariant, muts, workers, shards int, barrier gengc.BarrierMode, pass int) (oneRun, error) {
	rt, err := gengc.New(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(s.HeapBytes),
		gengc.WithYoungBytes(s.YoungBytes),
		gengc.WithWorkers(workers),
		gengc.WithAllocShards(shards),
		gengc.WithBarrier(barrier),
	)
	if err != nil {
		return oneRun{}, err
	}
	defer rt.Close()

	per := s.TotalOps / muts
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	errs := make(chan error, muts)
	start := time.Now()
	for id := 0; id < muts; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.NewMutator()
			defer m.Detach()
			seed := s.Seed + int64(id)*7919 + int64(pass)*104729
			if err := v.NewRun(seed)(m, per); err != nil {
				errs <- err
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return oneRun{}, err
	}
	rt.Close()

	snap := rt.Snapshot()
	r := oneRun{
		nsPerOp:   float64(elapsed.Nanoseconds()) / float64(per*muts),
		p50:       snap.Fleet.P50.Nanoseconds(),
		p99:       snap.Fleet.P99.Nanoseconds(),
		p999:      snap.Fleet.P999.Nanoseconds(),
		contended: snap.Alloc.Contended(),
		flushes:   snap.Barrier.Flushes,
		dedup:     snap.Barrier.CardDedupHits,
	}
	var sum, max int64
	recs := rt.Cycles()
	for _, c := range recs {
		d := c.Duration.Nanoseconds()
		sum += d
		if d > max {
			max = d
		}
	}
	r.cycles = int64(len(recs))
	if len(recs) > 0 {
		r.cycleMean = sum / int64(len(recs))
	}
	r.cycleMax = max
	return r, nil
}

// medianF returns the median of xs (sorted in place); medianI likewise
// for int64.
func medianF(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func medianI(xs []int64) int64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// RunMatrix executes the sweep and returns the report (without baseline
// comparison — callers apply CompareBaseline and Sanity, then stamp
// Generated). The host's Go runtime GC is disabled for the duration, as
// in every other experiment in this repo.
func RunMatrix(spec MatrixSpec) (*MatrixReport, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	type coords struct {
		v                     MatrixVariant
		muts, workers, shards int
		barrier               gengc.BarrierMode
	}
	var cells []coords
	for _, v := range spec.Variants {
		for _, m := range spec.Mutators {
			for _, w := range spec.Workers {
				for _, sh := range spec.Shards {
					for _, b := range spec.Barriers {
						cells = append(cells, coords{v, m, w, sh, b})
					}
				}
			}
		}
	}
	runs := make([][]oneRun, len(cells))
	for pass := 0; pass < spec.Passes; pass++ {
		for i, c := range cells {
			r, err := spec.runCell(c.v, c.muts, c.workers, c.shards, c.barrier, pass)
			if err != nil {
				return nil, fmt.Errorf("matrix cell %s/%s m%d w%d s%d %v pass %d: %w",
					c.v.Profile, c.v.Contention, c.muts, c.workers, c.shards, c.barrier, pass, err)
			}
			runs[i] = append(runs[i], r)
			if spec.Progress != nil {
				spec.Progress(fmt.Sprintf("pass %d/%d %-8s %-6s m%d w%d s%d %-7v %8.1f ns/op",
					pass+1, spec.Passes, c.v.Profile, c.v.Contention,
					c.muts, c.workers, c.shards, c.barrier, r.nsPerOp))
			}
		}
	}

	rep := &MatrixReport{
		Schema:        MatrixSchema,
		SchemaVersion: MatrixSchemaVersion,
		Host:          CurrentHost(),
		TotalOps:      spec.TotalOps,
		Passes:        spec.Passes,
		Seed:          spec.Seed,
		HeapBytes:     spec.HeapBytes,
		YoungBytes:    spec.YoungBytes,
	}
	for i, c := range cells {
		var ns []float64
		var p50, p99, p999, cyc, cmean, cmax, cont, fl, dd []int64
		for _, r := range runs[i] {
			ns = append(ns, r.nsPerOp)
			p50 = append(p50, r.p50)
			p99 = append(p99, r.p99)
			p999 = append(p999, r.p999)
			cyc = append(cyc, r.cycles)
			cmean = append(cmean, r.cycleMean)
			cmax = append(cmax, r.cycleMax)
			cont = append(cont, r.contended)
			fl = append(fl, r.flushes)
			dd = append(dd, r.dedup)
		}
		rep.Cells = append(rep.Cells, MatrixCell{
			Profile:        c.v.Profile,
			Contention:     c.v.Contention,
			Mutators:       c.muts,
			Workers:        c.workers,
			Shards:         c.shards,
			Barrier:        c.barrier.String(),
			NsPerOp:        medianF(ns),
			PauseP50Ns:     medianI(p50),
			PauseP99Ns:     medianI(p99),
			PauseP999Ns:    medianI(p999),
			Cycles:         medianI(cyc),
			CycleMeanNs:    medianI(cmean),
			CycleMaxNs:     medianI(cmax),
			AllocContended: medianI(cont),
			BarrierFlushes: medianI(fl),
			CardDedupHits:  medianI(dd),
			Passes:         spec.Passes,
		})
	}
	return rep, nil
}

// groupOfKey extracts the profile/contention group from a cell key
// ("churn/high/m2/w1/s0/batched" → "churn/high").
func groupOfKey(key string) string {
	parts := strings.SplitN(key, "/", 3)
	if len(parts) < 3 {
		return key
	}
	return parts[0] + "/" + parts[1]
}

// CompareBaseline checks this run's matrix *shape* against the embedded
// baseline. The comparison is refused outright — no regressions,
// comparison marked — when the baseline's host fingerprint differs from
// this run's: cross-host ns/op comparison is exactly the
// unreproducible-number failure mode this harness exists to kill.
//
// Even on the matching host, absolute ns/op swings run to run with
// whatever else the machine is doing (measured on the 1-CPU reference
// container: ~50% median whole-run drift between back-to-back full
// sweeps). What *is* stable is the shape of the matrix — each cell's
// ns/op divided by the run's median ns/op (measured drift of the
// per-group medians of that ratio: ≤ ~30%). So both sides are
// normalized by their own median over the overlapping cells, aggregated
// to profile/contention group medians, and a regression is flagged per
// group whose normalized median grew by more than tolerancePct. A
// uniform whole-matrix slowdown is invisible to this gate by
// construction — it is indistinguishable from host load; the absolute
// per-cell numbers stay in the report and baseline for human reading,
// and the single-configuration experiments (gcbench) gate absolute
// throughput.
func (r *MatrixReport) CompareBaseline(b MatrixBaseline, tolerancePct float64) {
	if len(b.NsPerOp) == 0 {
		r.BaselineComparison = "none embedded"
		return
	}
	r.Baseline = &b
	if fp := r.Host.Fingerprint(); fp != b.Fingerprint {
		r.BaselineComparison = fmt.Sprintf(
			"refused: host fingerprint mismatch (run %q vs baseline %q) — ns/op is not comparable across hosts",
			fp, b.Fingerprint)
		return
	}
	// Restrict both sides to the overlapping cells, so partial sweeps
	// (-smoke, custom axes) compare against the matching slice of the
	// baseline with both medians computed over the same cell set.
	var keys []string
	cur := map[string]float64{}
	for _, c := range r.Cells {
		if base, ok := b.NsPerOp[c.Key()]; ok && base > 0 && c.NsPerOp > 0 {
			keys = append(keys, c.Key())
			cur[c.Key()] = c.NsPerOp
		}
	}
	if len(keys) < 2 {
		r.BaselineComparison = fmt.Sprintf(
			"refused: only %d cells overlap the baseline — shape comparison needs at least 2", len(keys))
		return
	}
	curAll := make([]float64, 0, len(keys))
	baseAll := make([]float64, 0, len(keys))
	for _, k := range keys {
		curAll = append(curAll, cur[k])
		baseAll = append(baseAll, b.NsPerOp[k])
	}
	curMed, baseMed := medianF(curAll), medianF(baseAll)
	curG := map[string][]float64{}
	baseG := map[string][]float64{}
	for _, k := range keys {
		g := groupOfKey(k)
		curG[g] = append(curG[g], cur[k]/curMed)
		baseG[g] = append(baseG[g], b.NsPerOp[k]/baseMed)
	}
	groups := make([]string, 0, len(curG))
	for g := range curG {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	r.BaselineComparison = fmt.Sprintf(
		"applied (shape-normalized, %d groups over %d cells)", len(groups), len(keys))
	for _, g := range groups {
		cm, bm := medianF(curG[g]), medianF(baseG[g])
		if bm <= 0 {
			continue
		}
		if cm > bm*(1+tolerancePct/100) {
			r.Regressions = append(r.Regressions, fmt.Sprintf(
				"group %s: normalized median ns/op %.3f vs baseline %.3f (+%.1f%%, tolerance %.0f%%)",
				g, cm, bm, (cm/bm-1)*100, tolerancePct))
		}
	}
}

// Sanity appends host-independent structural checks — the ones that
// still gate CI when the baseline comparison is refused: every batched
// cell must have recorded buffer flushes (a silent barrier is an
// observability regression, not a fast one), and every cell must have
// completed at least one collection cycle (a cell that never collects
// measured nothing about the collector).
func (r *MatrixReport) Sanity() {
	for _, c := range r.Cells {
		if c.Barrier == "batched" && c.BarrierFlushes == 0 {
			r.Regressions = append(r.Regressions,
				fmt.Sprintf("%s: batched barrier recorded zero flushes", c.Key()))
		}
		if c.Cycles == 0 {
			r.Regressions = append(r.Regressions,
				fmt.Sprintf("%s: run completed without a single collection cycle (ops budget too small)", c.Key()))
		}
	}
}
