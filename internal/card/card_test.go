package card

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewTableValidation(t *testing.T) {
	for _, bad := range []int{0, 8, 15, 17, 24, 8192, -16} {
		if _, err := NewTable(1<<20, bad); err == nil {
			t.Errorf("NewTable accepted card size %d", bad)
		}
	}
	for _, good := range []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		tab, err := NewTable(1<<20, good)
		if err != nil {
			t.Errorf("NewTable rejected card size %d: %v", good, err)
			continue
		}
		if tab.Size() != good {
			t.Errorf("Size = %d, want %d", tab.Size(), good)
		}
		if want := (1 << 20) / good; tab.NumCards() != want {
			t.Errorf("NumCards = %d, want %d", tab.NumCards(), want)
		}
	}
}

// TestGeometry checks IndexOf/Bounds are inverse over random addresses
// and card sizes.
func TestGeometry(t *testing.T) {
	sizes := []int{16, 64, 256, 4096}
	prop := func(rawAddr uint32, sizeIdx uint8) bool {
		size := sizes[int(sizeIdx)%len(sizes)]
		tab, _ := NewTable(1<<20, size)
		addr := rawAddr % (1 << 20)
		ci := tab.IndexOf(addr)
		lo, hi := tab.Bounds(ci)
		return lo <= addr && addr < hi && int(hi-lo) == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMarkClear(t *testing.T) {
	tab, _ := NewTable(1<<20, 16)
	if tab.IsDirty(100) {
		t.Fatal("fresh card dirty")
	}
	tab.Mark(100 * 16)
	if !tab.IsDirty(100) {
		t.Fatal("marked card not dirty")
	}
	if tab.IsDirty(99) || tab.IsDirty(101) {
		t.Fatal("neighbors dirtied")
	}
	tab.Clear(100)
	if tab.IsDirty(100) {
		t.Fatal("cleared card still dirty")
	}
	tab.MarkIndex(100)
	if !tab.IsDirty(100) {
		t.Fatal("MarkIndex did not dirty")
	}
}

func TestClearAll(t *testing.T) {
	tab, _ := NewTable(1<<20, 64)
	for i := 0; i < tab.NumCards(); i += 7 {
		tab.MarkIndex(i)
	}
	tab.ClearAll()
	if got := tab.CountDirty(0, tab.NumCards()); got != 0 {
		t.Errorf("dirty after ClearAll = %d", got)
	}
}

func TestForEachDirtyIn(t *testing.T) {
	tab, _ := NewTable(1<<20, 16)
	// Dirty a pattern deliberately crossing word boundaries (31, 32)
	// and including the range edges.
	dirty := []int{0, 5, 31, 32, 33, 63, 64, 100, 1000, 1001}
	for _, ci := range dirty {
		tab.MarkIndex(ci)
	}
	var got []int
	tab.ForEachDirtyIn(0, 1001, func(ci int) { got = append(got, ci) })
	if len(got) != len(dirty) {
		t.Fatalf("found %v, want %v", got, dirty)
	}
	for i := range got {
		if got[i] != dirty[i] {
			t.Fatalf("found %v, want %v", got, dirty)
		}
	}
	// Restricted window: excludes cards outside [lo, hi].
	got = nil
	tab.ForEachDirtyIn(31, 64, func(ci int) { got = append(got, ci) })
	want := []int{31, 32, 33, 63, 64}
	if len(got) != len(want) {
		t.Fatalf("window scan found %v, want %v", got, want)
	}
	// Window starting mid-word must mask lower bits.
	got = nil
	tab.ForEachDirtyIn(33, 63, func(ci int) { got = append(got, ci) })
	if len(got) != 2 || got[0] != 33 || got[1] != 63 {
		t.Fatalf("mid-word scan found %v, want [33 63]", got)
	}
}

// TestForEachDirtyInProperty cross-checks the word-at-a-time scan
// against a naive per-card scan over random patterns.
func TestForEachDirtyInProperty(t *testing.T) {
	prop := func(pattern []uint16, lo8, span8 uint8) bool {
		tab, _ := NewTable(1<<16, 16) // 4096 cards
		n := tab.NumCards()
		for _, p := range pattern {
			tab.MarkIndex(int(p) % n)
		}
		lo := int(lo8) % n
		hi := lo + int(span8)
		if hi >= n {
			hi = n - 1
		}
		var fast []int
		tab.ForEachDirtyIn(lo, hi, func(ci int) { fast = append(fast, ci) })
		var slow []int
		for ci := lo; ci <= hi; ci++ {
			if tab.IsDirty(ci) {
				slow = append(slow, ci)
			}
		}
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountDirty(t *testing.T) {
	tab, _ := NewTable(1<<20, 16)
	tab.MarkIndex(10)
	tab.MarkIndex(20)
	tab.MarkIndex(30)
	if got := tab.CountDirty(0, tab.NumCards()); got != 3 {
		t.Errorf("CountDirty = %d, want 3", got)
	}
	if got := tab.CountDirty(15, 25); got != 1 {
		t.Errorf("CountDirty window = %d, want 1", got)
	}
	if got := tab.CountDirty(0, 1<<30); got != 3 {
		t.Errorf("CountDirty clamped = %d, want 3", got)
	}
}

// TestConcurrentMarkClear exercises the §7.2 protocol structure: a
// "mutator" marking while a "collector" runs the clear/check/re-set
// sequence. The invariant checked is the paper's: a mark racing with
// the three-step clear never ends up lost when the mutator's store
// precedes its mark.
func TestConcurrentMarkClear(t *testing.T) {
	tab, _ := NewTable(1<<20, 16)
	const ci = 500
	addr := uint32(ci * 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tab.Mark(addr)
			}
		}
	}()
	for i := 0; i < 10000; i++ {
		tab.Clear(ci) // step 1
		// step 2 (check) elided: always assume young pointer found
		tab.MarkIndex(ci) // step 3
		if !tab.IsDirty(ci) {
			t.Fatal("card lost after three-step re-set")
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentMarksDistinctCards checks marks on different cards in
// the same word never interfere.
func TestConcurrentMarksDistinctCards(t *testing.T) {
	tab, _ := NewTable(1<<20, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tab.Mark(uint32((i*8 + w) * 16 % (1 << 20)))
			}
		}(w)
	}
	wg.Wait()
	// All first 8*5000 distinct cards in the pattern must be dirty.
	for ci := 0; ci < 8*5000 && ci < tab.NumCards(); ci++ {
		if !tab.IsDirty(ci) {
			t.Fatalf("card %d lost under concurrent marking", ci)
		}
	}
}
