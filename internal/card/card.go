// Package card implements the card-marking machinery of §3.1 and §7 of
// the paper: the heap is partitioned into cards, mutators mark a card
// dirty whenever they store a pointer into it, and the collector scans
// objects on dirty cards for inter-generational pointers at the start of
// a partial collection.
//
// Card sizes from 16 bytes ("object marking") up to 4096 bytes ("block
// marking") are supported — the full range the paper sweeps in §8.5.3.
//
// The paper keeps a designated byte per card and relies on hardware
// per-byte store atomicity. Go does not expose that, so the table packs
// one bit per card into 64-bit words manipulated with atomic or/and —
// a stronger primitive, which keeps the delicate clear/check/re-set
// protocol of §7.2 intact while letting the collector skip 64 clean
// cards with a single load (the moral equivalent of the paper's tight
// byte-table scan). The scan path goes further: DrainDirtyIn
// fetch-and-clears a whole word of dirty bits in one atomic and-not —
// the §7.2 "clear" step for up to 64 cards at once — and walks the
// snapshot with trailing-zeros, so a scan's cost tracks the number of
// dirty cards rather than the size of the table.
package card

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// MinSize and MaxSize bound the supported card sizes (both inclusive,
// powers of two): 16 bytes is the paper's "object marking", 4096 its
// "block marking".
const (
	MinSize = 16
	MaxSize = 4096
)

// Table is a card table over a heap of a fixed size.
type Table struct {
	cardSize int
	shift    uint // log2(cardSize)
	nCards   int
	words    []uint64 // one dirty bit per card
}

// NewTable builds a card table for heapBytes of heap with the given card
// size, which must be a power of two in [MinSize, MaxSize].
func NewTable(heapBytes, cardSize int) (*Table, error) {
	if cardSize < MinSize || cardSize > MaxSize || cardSize&(cardSize-1) != 0 {
		return nil, fmt.Errorf("card: invalid card size %d (want power of two in [%d, %d])", cardSize, MinSize, MaxSize)
	}
	shift := uint(0)
	for 1<<shift != cardSize {
		shift++
	}
	n := (heapBytes + cardSize - 1) / cardSize
	return &Table{cardSize: cardSize, shift: shift, nCards: n, words: make([]uint64, (n+63)/64)}, nil
}

// Size returns the card size in bytes.
func (t *Table) Size() int { return t.cardSize }

// NumCards returns the number of cards in the table.
func (t *Table) NumCards() int { return t.nCards }

// IndexOf returns the card index covering byte address addr.
func (t *Table) IndexOf(addr uint32) int { return int(addr >> t.shift) }

// Bounds returns the byte range [start, end) covered by card ci.
func (t *Table) Bounds(ci int) (start, end uint32) {
	return uint32(ci) << t.shift, uint32(ci+1) << t.shift
}

// Mark dirties the card containing addr. This is the MarkCard of
// Figures 1 and 4; in the aging algorithm the mutator must call it
// after the slot store (the order the §7.2 race argument depends on).
func (t *Table) Mark(addr uint32) {
	ci := addr >> t.shift
	atomic.OrUint64(&t.words[ci>>6], uint64(1)<<(ci&63))
}

// IsDirty reports whether card ci is marked.
func (t *Table) IsDirty(ci int) bool {
	return atomic.LoadUint64(&t.words[ci>>6])&(uint64(1)<<(uint(ci)&63)) != 0
}

// Clear resets card ci. In the aging collector this is step 1 of the
// three-step clear/check/re-set sequence.
func (t *Table) Clear(ci int) {
	atomic.AndUint64(&t.words[ci>>6], ^(uint64(1) << (uint(ci) & 63)))
}

// MarkIndex re-dirties card ci directly (step 3 of the §7.2 sequence,
// when the check of step 2 found a surviving inter-generational
// pointer).
func (t *Table) MarkIndex(ci int) {
	atomic.OrUint64(&t.words[ci>>6], uint64(1)<<(uint(ci)&63))
}

// ClearAll resets every card; used by InitFullCollection in the simple
// algorithm (the aging variant deliberately keeps its marks, §6).
func (t *Table) ClearAll() {
	for i := range t.words {
		atomic.StoreUint64(&t.words[i], 0)
	}
}

// ForEachDirtyIn calls fn for every dirty card in [lo, hi], scanning a
// word (64 cards) at a time so that clean stretches cost one load each.
// Cards marked concurrently with the scan may or may not be visited —
// the §7.2 protocol tolerates both outcomes. The marks are left in
// place; the collector's scan path uses DrainDirtyIn instead.
func (t *Table) ForEachDirtyIn(lo, hi int, fn func(ci int)) {
	if hi >= t.nCards {
		hi = t.nCards - 1
	}
	for ci := lo; ci <= hi; {
		w := atomic.LoadUint64(&t.words[ci>>6])
		// Mask off bits below ci within its word.
		w &= ^uint64(0) << (uint(ci) & 63)
		base := ci &^ 63
		for w != 0 {
			b := bits.TrailingZeros64(w)
			idx := base + b
			if idx > hi {
				return
			}
			fn(idx)
			w &= w - 1
		}
		ci = base + 64
	}
}

// DrainDirtyIn atomically clears the dirty bits in [lo, hi] one word at
// a time and calls fn for every card that was dirty. This fuses the
// per-card "clear" of §7.2 step 1 into one fetch-and-clear per 64
// cards: the and-not returns the word's prior value, so each dirty bit
// is observed by exactly one drainer, and a mutator's concurrent
// re-mark (§7.2 step 3, or a plain Mark racing the drain) lands either
// in the snapshot this call returns or in the table for the next scan —
// never lost. Clean words are detected with a plain load first, so the
// common case (a mostly-clean table) does no read-modify-write at all.
//
// fn runs after the card's bit is already cleared, which is exactly the
// clear-before-scan order the §7.2 race argument requires.
func (t *Table) DrainDirtyIn(lo, hi int, fn func(ci int)) {
	if hi >= t.nCards {
		hi = t.nCards - 1
	}
	for ci := lo; ci <= hi; {
		base := ci &^ 63
		wi := ci >> 6
		// Range mask: bits for cards [max(lo, base), min(hi, base+63)].
		mask := ^uint64(0) << (uint(ci) & 63)
		if hi < base+63 {
			mask &= ^uint64(0) >> (63 - uint(hi-base))
		}
		var dirty uint64
		if atomic.LoadUint64(&t.words[wi])&mask != 0 {
			dirty = atomic.AndUint64(&t.words[wi], ^mask) & mask
		}
		for dirty != 0 {
			fn(base + bits.TrailingZeros64(dirty))
			dirty &= dirty - 1
		}
		ci = base + 64
	}
}

// CountDirty returns the number of dirty cards in [from, to), a
// popcount per word.
func (t *Table) CountDirty(from, to int) int {
	if to > t.nCards {
		to = t.nCards
	}
	if from >= to {
		return 0
	}
	hi := to - 1
	n := 0
	for ci := from; ci <= hi; {
		base := ci &^ 63
		mask := ^uint64(0) << (uint(ci) & 63)
		if hi < base+63 {
			mask &= ^uint64(0) >> (63 - uint(hi-base))
		}
		n += bits.OnesCount64(atomic.LoadUint64(&t.words[ci>>6]) & mask)
		ci = base + 64
	}
	return n
}
