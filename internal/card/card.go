// Package card implements the card-marking machinery of §3.1 and §7 of
// the paper: the heap is partitioned into cards, mutators mark a card
// dirty whenever they store a pointer into it, and the collector scans
// objects on dirty cards for inter-generational pointers at the start of
// a partial collection.
//
// Card sizes from 16 bytes ("object marking") up to 4096 bytes ("block
// marking") are supported — the full range the paper sweeps in §8.5.3.
//
// The paper keeps a designated byte per card and relies on hardware
// per-byte store atomicity. Go does not expose that, so the table packs
// one bit per card into 32-bit words manipulated with atomic or/and —
// a stronger primitive, which keeps the delicate clear/check/re-set
// protocol of §7.2 intact while letting the collector skip 32 clean
// cards with a single load (the moral equivalent of the paper's tight
// byte-table scan).
package card

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// MinSize and MaxSize bound the supported card sizes (both inclusive,
// powers of two): 16 bytes is the paper's "object marking", 4096 its
// "block marking".
const (
	MinSize = 16
	MaxSize = 4096
)

// Table is a card table over a heap of a fixed size.
type Table struct {
	cardSize int
	shift    uint // log2(cardSize)
	nCards   int
	words    []uint32 // one dirty bit per card
}

// NewTable builds a card table for heapBytes of heap with the given card
// size, which must be a power of two in [MinSize, MaxSize].
func NewTable(heapBytes, cardSize int) (*Table, error) {
	if cardSize < MinSize || cardSize > MaxSize || cardSize&(cardSize-1) != 0 {
		return nil, fmt.Errorf("card: invalid card size %d (want power of two in [%d, %d])", cardSize, MinSize, MaxSize)
	}
	shift := uint(0)
	for 1<<shift != cardSize {
		shift++
	}
	n := (heapBytes + cardSize - 1) / cardSize
	return &Table{cardSize: cardSize, shift: shift, nCards: n, words: make([]uint32, (n+31)/32)}, nil
}

// Size returns the card size in bytes.
func (t *Table) Size() int { return t.cardSize }

// NumCards returns the number of cards in the table.
func (t *Table) NumCards() int { return t.nCards }

// IndexOf returns the card index covering byte address addr.
func (t *Table) IndexOf(addr uint32) int { return int(addr >> t.shift) }

// Bounds returns the byte range [start, end) covered by card ci.
func (t *Table) Bounds(ci int) (start, end uint32) {
	return uint32(ci) << t.shift, uint32(ci+1) << t.shift
}

// Mark dirties the card containing addr. This is the MarkCard of
// Figures 1 and 4; in the aging algorithm the mutator must call it
// after the slot store (the order the §7.2 race argument depends on).
func (t *Table) Mark(addr uint32) {
	ci := addr >> t.shift
	atomic.OrUint32(&t.words[ci>>5], 1<<(ci&31))
}

// IsDirty reports whether card ci is marked.
func (t *Table) IsDirty(ci int) bool {
	return atomic.LoadUint32(&t.words[ci>>5])&(1<<(uint(ci)&31)) != 0
}

// Clear resets card ci. In the aging collector this is step 1 of the
// three-step clear/check/re-set sequence.
func (t *Table) Clear(ci int) {
	atomic.AndUint32(&t.words[ci>>5], ^uint32(1<<(uint(ci)&31)))
}

// MarkIndex re-dirties card ci directly (step 3 of the §7.2 sequence,
// when the check of step 2 found a surviving inter-generational
// pointer).
func (t *Table) MarkIndex(ci int) {
	atomic.OrUint32(&t.words[ci>>5], 1<<(uint(ci)&31))
}

// ClearAll resets every card; used by InitFullCollection in the simple
// algorithm (the aging variant deliberately keeps its marks, §6).
func (t *Table) ClearAll() {
	for i := range t.words {
		atomic.StoreUint32(&t.words[i], 0)
	}
}

// ForEachDirtyIn calls fn for every dirty card in [lo, hi], scanning a
// word (32 cards) at a time so that clean stretches cost one load each.
// Cards marked concurrently with the scan may or may not be visited —
// the §7.2 protocol tolerates both outcomes.
func (t *Table) ForEachDirtyIn(lo, hi int, fn func(ci int)) {
	if hi >= t.nCards {
		hi = t.nCards - 1
	}
	for ci := lo; ci <= hi; {
		w := atomic.LoadUint32(&t.words[ci>>5])
		// Mask off bits below ci within its word.
		w &= ^uint32(0) << (uint(ci) & 31)
		base := ci &^ 31
		for w != 0 {
			b := bits.TrailingZeros32(w)
			idx := base + b
			if idx > hi {
				return
			}
			fn(idx)
			w &= w - 1
		}
		ci = base + 32
	}
}

// CountDirty returns the number of dirty cards in [from, to).
func (t *Table) CountDirty(from, to int) int {
	if to > t.nCards {
		to = t.nCards
	}
	n := 0
	for i := from; i < to; i++ {
		if t.IsDirty(i) {
			n++
		}
	}
	return n
}
