package card

import (
	"math/rand"
	"testing"
)

func TestDrainDirtyIn(t *testing.T) {
	tab, err := NewTable(1<<20, 16) // 65536 cards
	if err != nil {
		t.Fatal(err)
	}
	dirty := []int{0, 1, 63, 64, 65, 500, 1000, 1001}
	for _, ci := range dirty {
		tab.MarkIndex(ci)
	}
	var got []int
	tab.DrainDirtyIn(0, 1001, func(ci int) { got = append(got, ci) })
	if len(got) != len(dirty) {
		t.Fatalf("drained %v, want %v", got, dirty)
	}
	for i, ci := range dirty {
		if got[i] != ci {
			t.Fatalf("drained %v, want %v", got, dirty)
		}
	}
	// The drain cleared every visited card.
	if n := tab.CountDirty(0, tab.NumCards()); n != 0 {
		t.Fatalf("%d cards still dirty after drain", n)
	}
	// A second drain finds nothing.
	tab.DrainDirtyIn(0, tab.NumCards()-1, func(ci int) {
		t.Fatalf("card %d drained twice", ci)
	})
}

// TestDrainDirtyInWindow: cards outside [lo, hi] keep their marks even
// when they share a word with drained cards.
func TestDrainDirtyInWindow(t *testing.T) {
	tab, err := NewTable(1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range []int{30, 33, 63, 64, 100, 130} {
		tab.MarkIndex(ci)
	}
	var got []int
	tab.DrainDirtyIn(33, 100, func(ci int) { got = append(got, ci) })
	want := []int{33, 63, 64, 100}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	for _, ci := range []int{30, 130} {
		if !tab.IsDirty(ci) {
			t.Errorf("card %d outside the window lost its mark", ci)
		}
	}
	for _, ci := range want {
		if tab.IsDirty(ci) {
			t.Errorf("card %d inside the window kept its mark", ci)
		}
	}
}

// TestDrainDirtyInProperty cross-checks the word-at-a-time drain
// against a per-card reference on random mark sets and windows.
func TestDrainDirtyInProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		tab, err := NewTable(64<<10, 16) // 4096 cards
		if err != nil {
			t.Fatal(err)
		}
		marked := map[int]bool{}
		for i := 0; i < 50; i++ {
			ci := rng.Intn(tab.NumCards())
			tab.MarkIndex(ci)
			marked[ci] = true
		}
		lo := rng.Intn(tab.NumCards())
		hi := lo + rng.Intn(tab.NumCards()-lo)
		var want []int
		for ci := lo; ci <= hi; ci++ {
			if marked[ci] {
				want = append(want, ci)
			}
		}
		var got []int
		tab.DrainDirtyIn(lo, hi, func(ci int) { got = append(got, ci) })
		if len(got) != len(want) {
			t.Fatalf("trial %d: drained %v, want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: drained %v, want %v", trial, got, want)
			}
		}
		// Everything inside the window is clear, everything outside
		// kept its mark.
		for ci := range marked {
			inWindow := ci >= lo && ci <= hi
			if tab.IsDirty(ci) == inWindow {
				t.Fatalf("trial %d: card %d dirty=%v, inWindow=%v",
					trial, ci, tab.IsDirty(ci), inWindow)
			}
		}
	}
}

// TestDrainRaceStress: concurrent markers against a draining collector;
// every mark must be observed by some drain or remain in the table (no
// lost marks).
func TestDrainRaceStress(t *testing.T) {
	tab, err := NewTable(64<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	const marks = 20000
	done := make(chan int)
	go func() {
		seen := 0
		for i := 0; i < 400; i++ {
			tab.DrainDirtyIn(0, tab.NumCards()-1, func(ci int) { seen++ })
		}
		done <- seen
	}()
	rng := rand.New(rand.NewSource(9))
	total := map[int]int{}
	for i := 0; i < marks; i++ {
		ci := rng.Intn(tab.NumCards())
		tab.MarkIndex(ci)
		total[ci]++
	}
	seen := <-done
	// Final drain: whatever the concurrent drains missed must still be
	// in the table.
	rest := 0
	tab.DrainDirtyIn(0, tab.NumCards()-1, func(ci int) { rest++ })
	if seen+rest < len(total) {
		t.Fatalf("drains saw %d+%d cards, but %d distinct cards were marked",
			seen, rest, len(total))
	}
	if n := tab.CountDirty(0, tab.NumCards()); n != 0 {
		t.Fatalf("%d cards dirty after final drain", n)
	}
}
