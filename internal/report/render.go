package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Renderers: plain-text (and CSV) figures in the style of the bench
// package's tables. Every renderer takes the parsed Trace so cmd/gcreport
// can compose any subset with one parse.

// cdfPoints are the cumulative-fraction points printed for the pause
// CDF — the companion to the paper's "maximum pause time" measurements
// (§8.3): the interesting tail is the top percentiles.
var cdfPoints = []float64{0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0}

func fmtQ(q float64) string {
	if q == 1.0 {
		return "max"
	}
	return fmt.Sprintf("p%g", 100*q)
}

// RenderPauseCDF prints the fleet-wide pause-time distribution and the
// per-cause event counts.
func RenderPauseCDF(w io.Writer, t *Trace, csv bool) {
	c := t.Pauses()
	fmt.Fprintf(w, "Pause-time CDF (%d pauses, %d mutators, %d runs)\n",
		c.Count, c.Mutators, t.Runs)
	if c.Count == 0 {
		fmt.Fprintln(w, "  no pause events in trace (pause accounting off?)")
		fmt.Fprintln(w)
		return
	}
	if csv {
		fmt.Fprintln(w, "quantile,pause_ns")
		for _, q := range cdfPoints {
			fmt.Fprintf(w, "%s,%d\n", fmtQ(q), c.Quantile(q).Nanoseconds())
		}
	} else {
		for _, q := range cdfPoints {
			fmt.Fprintf(w, "  %-6s %12v\n", fmtQ(q), c.Quantile(q))
		}
	}
	causes := make([]string, 0, len(c.ByCause))
	for k := range c.ByCause {
		causes = append(causes, k)
	}
	sort.Strings(causes)
	fmt.Fprint(w, "  by cause:")
	for _, k := range causes {
		fmt.Fprintf(w, " %s=%d", k, c.ByCause[k])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}

// RenderBreakdown prints the per-phase cycle decomposition per kind.
func RenderBreakdown(w io.Writer, t *Trace, csv bool) {
	bds := t.Breakdown()
	fmt.Fprintln(w, "Cycle phase breakdown (mean per cycle)")
	if len(bds) == 0 {
		fmt.Fprintln(w, "  no completed cycles in trace")
		fmt.Fprintln(w)
		return
	}
	if csv {
		fmt.Fprintln(w, "kind,cycles,total_ns,sync1_ns,sync2_ns,sync3_ns,ack_ns,ack_rounds,trace_ns,drain_ns,sweep_ns,scanned,freed")
		for _, b := range bds {
			n := int64(b.Cycles)
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%.2f,%d,%d,%d,%.1f,%.1f\n",
				b.Kind, b.Cycles, b.Total.Nanoseconds()/n,
				b.Sync[0].Nanoseconds()/n, b.Sync[1].Nanoseconds()/n,
				b.Sync[2].Nanoseconds()/n, b.Acks.Nanoseconds()/n,
				float64(b.AckN)/float64(n), b.Trace.Nanoseconds()/n,
				b.Drain.Nanoseconds()/n, b.Sweep.Nanoseconds()/n,
				float64(b.Scanned)/float64(n), float64(b.Freed)/float64(n))
		}
	} else {
		fmt.Fprintf(w, "  %-8s %7s %12s %10s %10s %10s %10s %6s %12s %12s %12s %10s %10s\n",
			"kind", "cycles", "total", "sync1", "sync2", "sync3",
			"ack", "rnds", "trace", "drain", "sweep", "scanned", "freed")
		for _, b := range bds {
			n := time.Duration(b.Cycles)
			f := float64(b.Cycles)
			fmt.Fprintf(w, "  %-8s %7d %12v %10v %10v %10v %10v %6.2f %12v %12v %12v %10.1f %10.1f\n",
				b.Kind, b.Cycles, rnd(b.Total/n), rnd(b.Sync[0]/n),
				rnd(b.Sync[1]/n), rnd(b.Sync[2]/n), rnd(b.Acks/n),
				float64(b.AckN)/f, rnd(b.Trace/n), rnd(b.Drain/n), rnd(b.Sweep/n),
				float64(b.Scanned)/f, float64(b.Freed)/f)
		}
	}
	fmt.Fprintln(w)
}

func rnd(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// RenderCards prints the dirty-card statistics of the traced partials.
func RenderCards(w io.Writer, t *Trace, csv bool) {
	s := t.Cards()
	fmt.Fprintln(w, "Dirty cards (card scans of partial collections)")
	if s.Scans == 0 {
		fmt.Fprintln(w, "  no card scans in trace (non-generational run?)")
		fmt.Fprintln(w)
		return
	}
	pct := 0.0
	if s.Allocated > 0 {
		pct = 100 * float64(s.Dirty) / float64(s.Allocated)
	}
	f := float64(s.Scans)
	if csv {
		fmt.Fprintln(w, "scans,avg_dirty,avg_allocated,dirty_pct,avg_scan_ns")
		fmt.Fprintf(w, "%d,%.1f,%.1f,%.2f,%d\n", s.Scans,
			float64(s.Dirty)/f, float64(s.Allocated)/f, pct,
			s.Time.Nanoseconds()/int64(s.Scans))
	} else {
		fmt.Fprintf(w, "  scans=%d avg dirty=%.1f avg allocated=%.1f dirty%%=%.2f avg scan=%v\n",
			s.Scans, float64(s.Dirty)/f, float64(s.Allocated)/f, pct,
			rnd(s.Time/time.Duration(s.Scans)))
	}
	fmt.Fprintln(w)
}

// RenderMutators prints one line of pause quantiles per (run, mutator).
func RenderMutators(w io.Writer, t *Trace, csv bool) {
	ms := t.PerMutator()
	fmt.Fprintln(w, "Per-mutator pauses")
	if len(ms) == 0 {
		fmt.Fprintln(w, "  no pause events in trace")
		fmt.Fprintln(w)
		return
	}
	if csv {
		fmt.Fprintln(w, "run,mutator,count,p50_ns,p99_ns,max_ns")
		for _, m := range ms {
			fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n", m.Run, m.Mutator, m.Count,
				quantile(m.Sorted, 0.50), quantile(m.Sorted, 0.99),
				m.Sorted[len(m.Sorted)-1])
		}
	} else {
		fmt.Fprintf(w, "  %4s %8s %8s %12s %12s %12s\n",
			"run", "mutator", "count", "p50", "p99", "max")
		for _, m := range ms {
			fmt.Fprintf(w, "  %4d %8d %8d %12v %12v %12v\n",
				m.Run, m.Mutator, m.Count,
				time.Duration(quantile(m.Sorted, 0.50)),
				time.Duration(quantile(m.Sorted, 0.99)),
				time.Duration(m.Sorted[len(m.Sorted)-1]))
		}
	}
	fmt.Fprintln(w)
}

// RenderDemographics prints the promotion/survival figure of the
// generational runs: how much each partial tenured, and — in aging mode
// — the survival histogram showing where the young cohort dies off.
func RenderDemographics(w io.Writer, t *Trace, csv bool) {
	s := t.Demographics()
	fmt.Fprintln(w, "Heap demographics (promotion per partial collection)")
	if s.Partials == 0 {
		fmt.Fprintln(w, "  no demographics events in trace (non-generational run?)")
		fmt.Fprintln(w)
		return
	}
	f := float64(s.Partials)
	if csv {
		fmt.Fprintln(w, "partials,promoted_objects,promoted_bytes,avg_promoted_objects,avg_promoted_bytes")
		fmt.Fprintf(w, "%d,%d,%d,%.1f,%.1f\n", s.Partials,
			s.PromotedObjects, s.PromotedBytes,
			float64(s.PromotedObjects)/f, float64(s.PromotedBytes)/f)
		if len(s.SurvivalByAge) > 0 {
			fmt.Fprintln(w, "age,survivals")
			for age, n := range s.SurvivalByAge {
				if n != 0 {
					fmt.Fprintf(w, "%d,%d\n", age, n)
				}
			}
		}
	} else {
		fmt.Fprintf(w, "  partials=%d promoted=%d objects / %d bytes (avg %.1f obj, %.1f B per partial)\n",
			s.Partials, s.PromotedObjects, s.PromotedBytes,
			float64(s.PromotedObjects)/f, float64(s.PromotedBytes)/f)
		if len(s.SurvivalByAge) > 0 {
			var total int64
			for _, n := range s.SurvivalByAge {
				total += n
			}
			fmt.Fprintln(w, "  survival by age (aging mode; last bucket = promotions):")
			for age, n := range s.SurvivalByAge {
				if n == 0 {
					continue
				}
				bar := strings.Repeat("#", int(40*float64(n)/float64(total)+0.5))
				fmt.Fprintf(w, "    age %3d %10d %s\n", age, n, bar)
			}
		}
	}
	fmt.Fprintln(w)
}

// RenderSummary prints the one-paragraph header: what the trace holds.
func RenderSummary(w io.Writer, t *Trace) {
	var cycles, fulls int
	byEv := map[string]int{}
	for _, e := range t.Events {
		byEv[e.Ev]++
		if e.Ev == "cycle" {
			cycles++
			if e.K == "full" {
				fulls++
			}
		}
	}
	evs := make([]string, 0, len(byEv))
	for k := range byEv {
		evs = append(evs, k)
	}
	sort.Strings(evs)
	parts := make([]string, 0, len(evs))
	for _, k := range evs {
		parts = append(parts, fmt.Sprintf("%s=%d", k, byEv[k]))
	}
	fmt.Fprintf(w, "trace: %d events, %d runs, %d cycles (%d full)\n",
		len(t.Events), t.Runs, cycles, fulls)
	fmt.Fprintf(w, "  %s\n", strings.Join(parts, " "))
	for run, meta := range t.Meta() {
		if meta != "" {
			fmt.Fprintf(w, "  run %d: %s\n", run, meta)
		}
	}
	if t.Dropped > 0 {
		fmt.Fprintf(w, "  WARNING: %d events lost to ring overflow\n", t.Dropped)
	}
	fmt.Fprintln(w)
}
