// Package report turns the JSONL event stream of the trace package into
// the paper-style text figures rendered by cmd/gcreport: the pause-time
// CDF behind the paper's maximum-pause discussion (§8.3, Figure 9's
// companion measurements), the per-phase cycle breakdown behind Figures
// 13–14, and the dirty-card table behind Figures 21–23.
//
// A trace file may concatenate several runs (gcbench streams every
// repeat into one sink); each run opens with a "start" event, and all
// per-cycle aggregation keys on (run, cycle) so restarting cycle
// numbers do not collide.
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"gengc/internal/trace"
)

// Trace is a parsed event stream, split into runs.
type Trace struct {
	// Events is every parsed event in file order, annotated with its
	// run index.
	Events []RunEvent

	// Runs is how many "start" boundaries the stream contained (at
	// least 1 once any event was seen: a stream that does not open
	// with a boundary counts as one implicit run).
	Runs int

	// Dropped sums the "drops" events: trace events lost to ring
	// overflow, i.e. the figures under-count by this many events.
	Dropped int64
}

// RunEvent is one event tagged with the run it belongs to (0-based).
type RunEvent struct {
	trace.Event
	Run int
}

// Parse reads a JSONL event stream. Unparseable lines abort with an
// error naming the line number; an empty stream yields an empty Trace
// (Runs == 0), which the renderers reject.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	run := -1
	for line := 1; sc.Scan(); line++ {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch e.Ev {
		case "start":
			run++
		case "drops":
			t.Dropped += e.N
		default:
			if run < 0 {
				run = 0 // stream without a leading boundary
			}
		}
		if run < 0 {
			run = 0
		}
		t.Events = append(t.Events, RunEvent{Event: e, Run: run})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Runs = run + 1
	return t, nil
}

// quantile returns the q-quantile (0 < q <= 1) of a sorted slice,
// using the nearest-rank (ceiling) convention.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// PauseCDF summarizes the distribution of mutator pause events,
// fleet-wide and per cause.
type PauseCDF struct {
	Count    int
	ByCause  map[string]int
	Sorted   []int64 // all pause durations, ascending (ns)
	Mutators int     // distinct (run, mutator) pairs that paused
}

// Pauses extracts every "pause" event.
func (t *Trace) Pauses() PauseCDF {
	c := PauseCDF{ByCause: map[string]int{}}
	muts := map[[2]int]bool{}
	for _, e := range t.Events {
		if e.Ev != "pause" {
			continue
		}
		c.Count++
		c.ByCause[e.K]++
		c.Sorted = append(c.Sorted, e.D)
		muts[[2]int{e.Run, e.Worker}] = true
	}
	c.Mutators = len(muts)
	sort.Slice(c.Sorted, func(i, j int) bool { return c.Sorted[i] < c.Sorted[j] })
	return c
}

// Quantile returns the q-quantile pause duration.
func (c PauseCDF) Quantile(q float64) time.Duration {
	return time.Duration(quantile(c.Sorted, q))
}

// Max returns the largest observed pause.
func (c PauseCDF) Max() time.Duration {
	if len(c.Sorted) == 0 {
		return 0
	}
	return time.Duration(c.Sorted[len(c.Sorted)-1])
}

// CycleBreakdown is the per-phase time decomposition of the traced
// collection cycles, split by cycle kind.
type CycleBreakdown struct {
	Kind    string // "partial" or "full"
	Cycles  int
	Total   time.Duration // sum of whole-cycle spans
	Sync    [3]time.Duration
	Acks    time.Duration
	AckN    int
	Trace   time.Duration // whole trace-to-fixpoint phase
	Drain   time.Duration // serial + per-worker drain spans (may overlap)
	Sweep   time.Duration
	Scanned int64
	Freed   int64
}

// cycleKey identifies one collection cycle across concatenated runs.
type cycleKey struct {
	run int
	cyc int64
}

// Breakdown aggregates the phase spans per cycle kind. Cycles whose
// "cycle" event never arrived (a run cut off mid-cycle) are dropped.
func (t *Trace) Breakdown() []CycleBreakdown {
	kinds := map[cycleKey]string{}
	for _, e := range t.Events {
		if e.Ev == "cycle" {
			kinds[cycleKey{e.Run, e.Cycle}] = e.K
		}
	}
	agg := map[string]*CycleBreakdown{}
	get := func(kind string) *CycleBreakdown {
		b := agg[kind]
		if b == nil {
			b = &CycleBreakdown{Kind: kind}
			agg[kind] = b
		}
		return b
	}
	syncIdx := map[string]int{"sync1": 0, "sync2": 1, "sync3": 2}
	for _, e := range t.Events {
		kind, ok := kinds[cycleKey{e.Run, e.Cycle}]
		if !ok {
			continue
		}
		b := get(kind)
		d := time.Duration(e.D)
		switch e.Ev {
		case "cycle":
			b.Cycles++
			b.Total += d
			b.Scanned += e.N
			b.Freed += e.M
		case "sync":
			if i, ok := syncIdx[e.K]; ok {
				b.Sync[i] += d
			}
		case "ack":
			b.Acks += d
			b.AckN++
		case "trace":
			b.Trace += d
		case "drain":
			b.Drain += d
		case "sweep":
			b.Sweep += d
		}
	}
	out := make([]CycleBreakdown, 0, len(agg))
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Meta returns each run's metadata string — the key=value pairs the
// collector stamps into its "start" event (GOMAXPROCS, workers, shards,
// barrier, mode, module version) — indexed by run. Runs traced before
// metadata stamping existed, or streams without a leading boundary,
// yield empty strings.
func (t *Trace) Meta() []string {
	meta := make([]string, t.Runs)
	for _, e := range t.Events {
		if e.Ev == "start" && e.Run < len(meta) {
			meta[e.Run] = e.K
		}
	}
	return meta
}

// DemographicStats aggregates the "demographics" events — the
// per-partial promotion accounting of the generational modes.
type DemographicStats struct {
	Partials        int   // partial cycles that reported demographics
	PromotedObjects int64 // objects promoted into the old generation
	PromotedBytes   int64
	SurvivalByAge   []int64 // aging survival histogram (index = age)
}

// Demographics sums every demographics event in the trace. The survival
// histogram stays nil for simple-promotion runs (their events carry no
// age pairs).
func (t *Trace) Demographics() DemographicStats {
	var s DemographicStats
	for _, e := range t.Events {
		if e.Ev != "demographics" {
			continue
		}
		s.Partials++
		s.PromotedObjects += e.N
		s.PromotedBytes += e.M
		for _, pair := range strings.Split(e.K, ",") {
			as, cs, ok := strings.Cut(pair, ":")
			if !ok {
				continue
			}
			age, err1 := strconv.Atoi(as)
			n, err2 := strconv.ParseInt(cs, 10, 64)
			if err1 != nil || err2 != nil || age < 0 {
				continue
			}
			for len(s.SurvivalByAge) <= age {
				s.SurvivalByAge = append(s.SurvivalByAge, 0)
			}
			s.SurvivalByAge[age] += n
		}
	}
	return s
}

// CardStats aggregates the "cardscan" events — the dirty-card work of
// the partial collections (Figures 21–23).
type CardStats struct {
	Scans     int
	Dirty     int64
	Allocated int64
	Time      time.Duration
}

// Cards sums every card scan in the trace.
func (t *Trace) Cards() CardStats {
	var s CardStats
	for _, e := range t.Events {
		if e.Ev != "cardscan" {
			continue
		}
		s.Scans++
		s.Dirty += e.N
		s.Allocated += e.M
		s.Time += time.Duration(e.D)
	}
	return s
}

// MutatorPauses summarizes one mutator's pauses within one run.
type MutatorPauses struct {
	Run     int
	Mutator int
	Count   int
	Sorted  []int64
}

// PerMutator groups pause events by (run, mutator id), ordered by run
// then id.
func (t *Trace) PerMutator() []MutatorPauses {
	byKey := map[[2]int]*MutatorPauses{}
	for _, e := range t.Events {
		if e.Ev != "pause" {
			continue
		}
		k := [2]int{e.Run, e.Worker}
		m := byKey[k]
		if m == nil {
			m = &MutatorPauses{Run: e.Run, Mutator: e.Worker}
			byKey[k] = m
		}
		m.Count++
		m.Sorted = append(m.Sorted, e.D)
	}
	out := make([]MutatorPauses, 0, len(byKey))
	for _, m := range byKey {
		sort.Slice(m.Sorted, func(i, j int) bool { return m.Sorted[i] < m.Sorted[j] })
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].Mutator < out[j].Mutator
	})
	return out
}
