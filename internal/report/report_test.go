package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gengc/internal/trace"
)

// synth builds a two-run JSONL stream through the real JSONL sink, so
// the test also covers the wire format end to end.
func synth(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	s := trace.NewJSONLSink(&buf)
	emit := func(e trace.Event) { s.Emit(e) }

	// Run 0: one partial cycle, two mutators pausing.
	emit(trace.Event{Ev: "start"})
	emit(trace.Event{Ev: "sync", T: 10, D: 5, Cycle: 1, K: "sync1"})
	emit(trace.Event{Ev: "cardscan", T: 16, D: 4, Cycle: 1, N: 8, M: 100})
	emit(trace.Event{Ev: "sync", T: 15, D: 8, Cycle: 1, K: "sync2"})
	emit(trace.Event{Ev: "sync", T: 24, D: 6, Cycle: 1, K: "sync3"})
	emit(trace.Event{Ev: "ack", T: 31, D: 2, Cycle: 1, N: 1})
	emit(trace.Event{Ev: "drain", T: 30, D: 10, Cycle: 1, N: 50})
	emit(trace.Event{Ev: "trace", T: 30, D: 14, Cycle: 1, N: 50})
	emit(trace.Event{Ev: "sweep", T: 45, D: 20, Cycle: 1, N: 30})
	emit(trace.Event{Ev: "cycle", T: 10, D: 60, Cycle: 1, K: "partial", N: 50, M: 30})
	emit(trace.Event{Ev: "pause", T: 12, D: 1000, Worker: 0, K: "handshake"})
	emit(trace.Event{Ev: "pause", T: 13, D: 3000, Worker: 1, K: "roots"})

	// Run 1: cycle numbering restarts; same cycle seq must not merge
	// with run 0's. Its cycle is full and twice as slow.
	emit(trace.Event{Ev: "start"})
	emit(trace.Event{Ev: "sync", T: 10, D: 10, Cycle: 1, K: "sync1"})
	emit(trace.Event{Ev: "trace", T: 21, D: 28, Cycle: 1, N: 500})
	emit(trace.Event{Ev: "sweep", T: 50, D: 40, Cycle: 1, N: 300})
	emit(trace.Event{Ev: "cycle", T: 10, D: 120, Cycle: 1, K: "full", N: 500, M: 300})
	emit(trace.Event{Ev: "pause", T: 12, D: 7000, Worker: 0, K: "allocwait"})
	// A cycle that never completed: its events must be dropped.
	emit(trace.Event{Ev: "sync", T: 200, D: 9, Cycle: 2, K: "sync1"})
	emit(trace.Event{Ev: "drops", T: 210, N: 3})

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestParseRuns(t *testing.T) {
	tr, err := Parse(synth(t))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Runs != 2 {
		t.Fatalf("runs = %d, want 2", tr.Runs)
	}
	if tr.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped)
	}
	if len(tr.Events) != 20 {
		t.Fatalf("events = %d, want 20", len(tr.Events))
	}
	// Run tags: everything after the second "start" is run 1.
	if tr.Events[11].Run != 0 || tr.Events[12].Run != 1 {
		t.Fatalf("run boundary misplaced: %+v / %+v", tr.Events[11], tr.Events[12])
	}
}

func TestParseWithoutLeadingStart(t *testing.T) {
	tr, err := Parse(strings.NewReader(
		`{"ev":"cycle","t":1,"d":2,"cyc":1,"w":0,"k":"partial"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Runs != 1 || tr.Events[0].Run != 0 {
		t.Fatalf("headless stream: runs=%d run0=%d, want 1/0", tr.Runs, tr.Events[0].Run)
	}
}

func TestParseBadLine(t *testing.T) {
	_, err := Parse(strings.NewReader("{\"ev\":\"start\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestPausesAndQuantiles(t *testing.T) {
	tr, err := Parse(synth(t))
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Pauses()
	if c.Count != 3 {
		t.Fatalf("pause count = %d, want 3", c.Count)
	}
	// Worker 0 paused in both runs but is a distinct mutator each run.
	if c.Mutators != 3 {
		t.Fatalf("mutators = %d, want 3 (per-run identity)", c.Mutators)
	}
	if got := c.Max(); got != 7000*time.Nanosecond {
		t.Fatalf("max pause = %v, want 7µs", got)
	}
	if got := c.Quantile(0.5); got != 3000*time.Nanosecond {
		t.Fatalf("p50 = %v, want 3µs", got)
	}
	if c.ByCause["handshake"] != 1 || c.ByCause["allocwait"] != 1 {
		t.Fatalf("by cause = %v", c.ByCause)
	}
}

func TestBreakdownKeysByRunAndKind(t *testing.T) {
	tr, err := Parse(synth(t))
	if err != nil {
		t.Fatal(err)
	}
	bds := tr.Breakdown()
	if len(bds) != 2 {
		t.Fatalf("breakdowns = %d (%+v), want full+partial", len(bds), bds)
	}
	full, partial := bds[0], bds[1]
	if full.Kind != "full" || partial.Kind != "partial" {
		t.Fatalf("kinds = %s/%s", full.Kind, partial.Kind)
	}
	if partial.Cycles != 1 || partial.Total != 60 || partial.Sync[1] != 8 ||
		partial.AckN != 1 || partial.Drain != 10 || partial.Sweep != 20 {
		t.Fatalf("partial breakdown wrong: %+v", partial)
	}
	if full.Cycles != 1 || full.Total != 120 || full.Trace != 28 || full.Scanned != 500 {
		t.Fatalf("full breakdown wrong: %+v", full)
	}
	// The orphaned sync of run 1's unfinished cycle 2 must not leak in.
	if full.Sync[0] != 10 {
		t.Fatalf("full sync1 = %v, want 10 (unfinished cycle leaked)", full.Sync[0])
	}
}

func TestCards(t *testing.T) {
	tr, err := Parse(synth(t))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Cards()
	if s.Scans != 1 || s.Dirty != 8 || s.Allocated != 100 || s.Time != 4 {
		t.Fatalf("cards = %+v", s)
	}
}

func TestPerMutator(t *testing.T) {
	tr, err := Parse(synth(t))
	if err != nil {
		t.Fatal(err)
	}
	ms := tr.PerMutator()
	if len(ms) != 3 {
		t.Fatalf("per-mutator groups = %d, want 3", len(ms))
	}
	if ms[0].Run != 0 || ms[0].Mutator != 0 || ms[0].Count != 1 {
		t.Fatalf("first group = %+v", ms[0])
	}
	if ms[2].Run != 1 || ms[2].Mutator != 0 || ms[2].Sorted[0] != 7000 {
		t.Fatalf("last group = %+v", ms[2])
	}
}

// TestRenderEndToEnd drives every renderer over the synthetic trace in
// both formats; renderers must not panic and must mention the headline
// numbers.
func TestRenderEndToEnd(t *testing.T) {
	tr, err := Parse(synth(t))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	RenderSummary(&out, tr)
	for _, csv := range []bool{false, true} {
		RenderPauseCDF(&out, tr, csv)
		RenderBreakdown(&out, tr, csv)
		RenderCards(&out, tr, csv)
		RenderMutators(&out, tr, csv)
	}
	text := out.String()
	for _, want := range []string{
		"2 runs", "3 events lost", "partial", "full",
		"7µs", // the max pause
		"quantile,pause_ns", "run,mutator,count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered output missing %q:\n%s", want, text)
		}
	}
}

// TestRenderEmptySections checks the renderers degrade gracefully on a
// trace with no pauses, cycles or card scans.
func TestRenderEmptySections(t *testing.T) {
	tr, err := Parse(strings.NewReader("{\"ev\":\"start\",\"t\":0,\"d\":0,\"w\":0}\n"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	RenderSummary(&out, tr)
	RenderPauseCDF(&out, tr, false)
	RenderBreakdown(&out, tr, false)
	RenderCards(&out, tr, false)
	RenderMutators(&out, tr, false)
	for _, want := range []string{"no pause events", "no completed cycles", "no card scans"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("empty-trace output missing %q", want)
		}
	}
}
