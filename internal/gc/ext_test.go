package gc

import (
	"testing"

	"gengc/internal/heap"
)

func TestRemsetConfigValidation(t *testing.T) {
	if _, err := New(Config{Mode: NonGenerational, UseRememberedSet: true}); err == nil {
		t.Error("remembered set accepted without generations")
	}
	if _, err := New(Config{Mode: GenerationalAging, UseRememberedSet: true}); err == nil {
		t.Error("remembered set accepted with aging")
	}
	if _, err := New(Config{Mode: Generational, DynamicTenure: true}); err == nil {
		t.Error("dynamic tenure accepted without aging")
	}
}

// TestRemsetInterGenerationalPointer: the remembered-set variant keeps a
// young object alive that is reachable only through an old object.
func TestRemsetInterGenerationalPointer(t *testing.T) {
	c, err := New(Config{Mode: Generational, HeapBytes: 4 << 20,
		YoungBytes: 1 << 20, UseRememberedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMutator()
	old := mustAlloc(t, m, 1, 0)
	m.PushRoot(old)
	collectWhileCooperating(c, false, m) // promote
	if c.H.Color(old) != heap.Black {
		t.Fatal("setup: not promoted")
	}
	young := mustAlloc(t, m, 0, 32)
	m.Update(old, 0, young)
	// No card must be dirty — the remembered set replaced the table.
	if c.Cards.CountDirty(0, c.Cards.NumCards()) != 0 {
		t.Error("remembered-set mode dirtied cards")
	}
	collectWhileCooperating(c, false, m)
	if !c.H.ValidObject(young) {
		t.Fatal("young object referenced from remembered old object collected")
	}
	if m.Read(old, 0) != young {
		t.Fatal("slot corrupted")
	}
	cs := c.Metrics().Cycles()
	if got := cs[len(cs)-1].InterGenScanned; got != 1 {
		t.Errorf("InterGenScanned = %d, want 1", got)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRemsetYoungUpdatesNotRecorded: updates to young objects are
// filtered out (only black sources are remembered).
func TestRemsetYoungUpdatesNotRecorded(t *testing.T) {
	c, err := New(Config{Mode: Generational, HeapBytes: 4 << 20,
		YoungBytes: 1 << 20, UseRememberedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	y := mustAlloc(t, m, 0, 32)
	m.Update(x, 0, y) // young -> young
	m.rem.Lock()
	n := len(m.rem.buf)
	m.rem.Unlock()
	if n != 0 {
		t.Errorf("remembered %d young updates, want 0", n)
	}
}

// TestRemsetDetachAdoptsEntries: entries of a detached mutator survive.
func TestRemsetDetachAdoptsEntries(t *testing.T) {
	c, err := New(Config{Mode: Generational, HeapBytes: 4 << 20,
		YoungBytes: 1 << 20, UseRememberedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	keeper := c.NewMutator()
	old := mustAlloc(t, keeper, 1, 0)
	keeper.PushRoot(old)
	collectWhileCooperating(c, false, keeper)

	temp := c.NewMutator()
	young := mustAlloc(t, temp, 0, 32)
	temp.Update(old, 0, young)
	temp.Detach()
	collectWhileCooperating(c, false, keeper)
	if !c.H.ValidObject(young) {
		t.Fatal("remembered entry from detached mutator lost")
	}
}

// TestDynamicTenureAdjusts: the threshold moves with young survival.
func TestDynamicTenureAdjusts(t *testing.T) {
	c, err := New(Config{Mode: GenerationalAging, HeapBytes: 4 << 20,
		YoungBytes: 1 << 20, OldAge: 3, DynamicTenure: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMutator()
	// High survival: everything rooted.
	for i := 0; i < 50; i++ {
		m.PushRoot(mustAlloc(t, m, 0, 32))
	}
	collectWhileCooperating(c, false, m)
	if got := c.OldestAge(); got != 4 {
		t.Errorf("threshold after high-survival partial = %d, want 4", got)
	}
	// Near-total death: garbage only.
	for cycle := 0; cycle < 4; cycle++ {
		for i := 0; i < 500; i++ {
			mustAlloc(t, m, 0, 32)
		}
		collectWhileCooperating(c, false, m)
	}
	if got := c.OldestAge(); got >= 4 {
		t.Errorf("threshold after die-young partials = %d, want lowered", got)
	}
}

// TestDynamicTenureBounds: the threshold stays within [1, 10].
func TestDynamicTenureBounds(t *testing.T) {
	c, err := New(Config{Mode: GenerationalAging, HeapBytes: 4 << 20,
		YoungBytes: 1 << 20, OldAge: 1, DynamicTenure: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMutator()
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 100; i++ {
			mustAlloc(t, m, 0, 32)
		}
		collectWhileCooperating(c, false, m)
		if got := c.OldestAge(); got < 1 || got > 10 {
			t.Fatalf("threshold out of bounds: %d", got)
		}
	}
}
