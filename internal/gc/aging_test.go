package gc

import (
	"testing"

	"gengc/internal/heap"
)

func newAgingCollector(t *testing.T, oldAge int) *Collector {
	t.Helper()
	c, err := New(Config{
		Mode:      GenerationalAging,
		HeapBytes: 4 << 20, YoungBytes: 1 << 20,
		OldAge: oldAge,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAgingIncrementsAges: a live young object's age increases by one
// per survived collection; once the sweep finds it at the threshold age
// it stays black — i.e. tenure occurs at survival OldAge+1, matching the
// paper's counting where objects are born with age 1 and "age N is old"
// (§6, Figure 5; our OldAge = paper's N − 1).
func TestAgingIncrementsAges(t *testing.T) {
	const oldAge = 3
	c := newAgingCollector(t, oldAge)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	m.PushRoot(a)
	if c.H.Age(a) != 0 {
		t.Fatalf("birth age = %d", c.H.Age(a))
	}
	for i := 1; i <= oldAge; i++ {
		collectWhileCooperating(c, false, m)
		if got := c.H.Age(a); int(got) != i {
			t.Fatalf("after %d collections age = %d", i, got)
		}
		// Still young: demoted back to the allocation color.
		if got := c.H.Color(a); got != heap.Color(c.allocColor.Load()) {
			t.Fatalf("young survivor color = %v, want allocation color %v",
				got, heap.Color(c.allocColor.Load()))
		}
	}
	// Survival OldAge+1 tenures it: black, age frozen.
	collectWhileCooperating(c, false, m)
	if got := c.H.Color(a); got != heap.Black {
		t.Fatalf("tenured color = %v, want black", got)
	}
	collectWhileCooperating(c, false, m)
	if got := c.H.Age(a); int(got) != oldAge {
		t.Fatalf("tenured age advanced to %d", got)
	}
	if c.H.Color(a) != heap.Black {
		t.Fatal("tenured object demoted")
	}
}

// TestAgingYoungDiesAtAnyAge: a young object that loses its root is
// reclaimed by the next partial regardless of its age (< threshold).
func TestAgingYoungDiesAtAnyAge(t *testing.T) {
	c := newAgingCollector(t, 5)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	r := m.PushRoot(a)
	collectWhileCooperating(c, false, m)
	collectWhileCooperating(c, false, m)
	if c.H.Age(a) != 2 {
		t.Fatalf("age = %d, want 2", c.H.Age(a))
	}
	m.SetRoot(r, 0)
	collectWhileCooperating(c, false, m)
	if c.H.ValidObject(a) {
		t.Fatal("middle-aged garbage survived a partial")
	}
}

// TestAgingCardRetainedAcrossPartials: with aging, an old→young pointer
// stays inter-generational across several partials (the young target
// stays young), so the card must remain dirty (step 3 of §7.2) and the
// young object must keep surviving.
func TestAgingCardRetainedAcrossPartials(t *testing.T) {
	c := newAgingCollector(t, 1)
	m := c.NewMutator()
	old := mustAlloc(t, m, 1, 0)
	m.PushRoot(old)
	collectWhileCooperating(c, false, m)
	collectWhileCooperating(c, false, m) // threshold 1: tenured at the 2nd survival
	if c.H.Color(old) != heap.Black {
		t.Fatalf("setup: old not tenured (color %v, age %d)", c.H.Color(old), c.H.Age(old))
	}

	young := mustAlloc(t, m, 0, 32)
	m.Update(old, 0, young)
	ci := c.Cards.IndexOf(old)
	for i := 0; i < 3; i++ {
		collectWhileCooperating(c, false, m)
		if !c.H.ValidObject(young) {
			t.Fatalf("young target lost at partial %d", i+1)
		}
	}
	// After the target itself tenures (threshold 1, two survivals),
	// the pointer is old→old and the card may finally be cleared.
	if c.H.Color(young) != heap.Black {
		t.Fatalf("target should have tenured by now (color %v)", c.H.Color(young))
	}
	collectWhileCooperating(c, false, m)
	if c.Cards.IsDirty(ci) {
		t.Error("card still dirty after the pointer became intra-generational")
	}
	if err := c.VerifyCardInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestAgingFullKeepsCards: a full collection must not clear card marks
// in the aging scheme (§6) — they may describe pointers that are again
// inter-generational after re-tenuring.
func TestAgingFullKeepsCards(t *testing.T) {
	c := newAgingCollector(t, 2)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	m.PushRoot(x)
	y := mustAlloc(t, m, 0, 32)
	m.Update(x, 0, y)
	ci := c.Cards.IndexOf(x)
	if !c.Cards.IsDirty(ci) {
		t.Fatal("setup: card clean")
	}
	collectWhileCooperating(c, true, m)
	if !c.Cards.IsDirty(ci) {
		t.Error("full collection cleared a card in aging mode")
	}
}

// TestAgingFullRetenures: tenured objects survive a full collection and
// are black (still old) afterwards.
func TestAgingFullRetenures(t *testing.T) {
	c := newAgingCollector(t, 1)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	m.PushRoot(a)
	collectWhileCooperating(c, false, m)
	collectWhileCooperating(c, false, m)
	if c.H.Color(a) != heap.Black {
		t.Fatal("setup: not tenured")
	}
	collectWhileCooperating(c, true, m)
	if !c.H.ValidObject(a) || c.H.Color(a) != heap.Black {
		t.Fatalf("after full: valid=%v color=%v", c.H.ValidObject(a), c.H.Color(a))
	}
	if got := c.H.Age(a); got != 1 {
		t.Errorf("tenured age after full = %d, want frozen at 1", got)
	}
}

// TestAgingThresholdOne: with threshold 1 (the paper's "age 2 is old",
// its Figure 20 comparison against simple promotion) an object tenures
// at its second survival.
func TestAgingThresholdOne(t *testing.T) {
	c := newAgingCollector(t, 1)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	m.PushRoot(a)
	collectWhileCooperating(c, false, m)
	if c.H.Color(a) == heap.Black {
		t.Fatal("tenured too early")
	}
	collectWhileCooperating(c, false, m)
	if c.H.Color(a) != heap.Black {
		t.Fatal("threshold-1 aging did not promote at the second survival")
	}
}

// TestAgingGarbageTenuredDies: tenured garbage (jess behavior) is
// reclaimed by a full collection.
func TestAgingGarbageTenuredDies(t *testing.T) {
	c := newAgingCollector(t, 1)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	r := m.PushRoot(a)
	collectWhileCooperating(c, false, m)
	collectWhileCooperating(c, false, m) // tenure
	m.SetRoot(r, 0)
	collectWhileCooperating(c, false, m) // partial cannot touch it
	if !c.H.ValidObject(a) {
		t.Fatal("partial collected tenured object")
	}
	collectWhileCooperating(c, true, m)
	if c.H.ValidObject(a) {
		t.Fatal("full collection missed tenured garbage")
	}
}

// TestAgingTenureDoesNotOrphanPointers is the regression test for a
// soundness hole in a literal reading of Figure 6: a young object S
// stores a pointer to a younger object X (card dirtied), survives
// further collections, and silently tenures at a sweep — no store
// happens at tenure, so nothing re-marks S's card. If ClearCards had
// cleared the card while S was young, the partial after S's tenure
// would never trace X and would reclaim it while reachable. Our
// ClearCards keeps cards of young objects that hold young pointers.
func TestAgingTenureDoesNotOrphanPointers(t *testing.T) {
	c := newAgingCollector(t, 2)
	m := c.NewMutator()
	s := mustAlloc(t, m, 1, 0)
	m.PushRoot(s)
	x := mustAlloc(t, m, 0, 32)
	m.Update(s, 0, x) // S -> X, card dirty

	// Run partials until S tenures (threshold 2: three survivals).
	for i := 0; i < 3; i++ {
		collectWhileCooperating(c, false, m)
		if !c.H.ValidObject(x) {
			t.Fatalf("X reclaimed at partial %d while reachable via S", i+1)
		}
	}
	if c.H.Color(s) != heap.Black || c.H.Age(s) < 2 {
		t.Fatalf("setup: S not tenured (color %v, age %d)", c.H.Color(s), c.H.Age(s))
	}
	// S is old now; X may still be young. The pointer S->X is
	// inter-generational and must survive further partials.
	for i := 0; i < 3; i++ {
		collectWhileCooperating(c, false, m)
		if !c.H.ValidObject(x) {
			t.Fatalf("X reclaimed after S tenured (partial %d)", i+1)
		}
		if m.Read(s, 0) != x {
			t.Fatal("S's slot corrupted")
		}
	}
	if err := c.VerifyCardInvariant(); err != nil {
		t.Fatal(err)
	}
}
