// Package gc implements the on-the-fly garbage collectors of Domani,
// Kolodner and Petrank, "A Generational On-the-fly Garbage Collector for
// Java" (PLDI 2000): the DLG-style non-generational mark-and-sweep
// collector with a black/white color toggle (the paper's baseline,
// Remark 5.1), the simple generational collector with the yellow
// allocation color and color toggle (§3–§5, Figures 1–3), and the aging
// variant (§6, Figures 4–6).
//
// The collector runs in its own goroutine and never stops the mutators;
// coordination uses the paper's three-handshake protocol and write
// barrier, implemented with atomic operations in place of the paper's
// reliance on per-byte store atomicity.
package gc

import (
	"errors"
	"fmt"
	"io"
	"time"

	"gengc/internal/card"
	"gengc/internal/fault"
	"gengc/internal/trace"
)

// ErrInvalidConfig is wrapped by every configuration-validation failure,
// so callers can detect the class with errors.Is and still read the
// offending field from the message.
var ErrInvalidConfig = errors.New("invalid configuration")

// ErrClosed is wrapped by operations attempted on (or interrupted by) a
// stopped collector: an allocation after Stop, or an allocation wait
// that Stop cut short.
var ErrClosed = errors.New("runtime closed")

// ErrStalled is wrapped by waits that gave up because the collector
// could not make progress within the caller's deadline — an AllocCtx
// whose context expired while waiting for a full collection to free
// memory.
var ErrStalled = errors.New("collector stalled")

// Mode selects which of the paper's collectors runs.
type Mode int

const (
	// NonGenerational is the baseline DLG collector with the
	// black/white color toggle of Remark 5.1. Every collection is a
	// full collection and the write barrier never touches cards.
	NonGenerational Mode = iota

	// Generational is the collector of §3–§5: logical generations
	// (black = old), promotion after a single collection, the yellow
	// color for objects created during a cycle, the color toggle, and
	// card marking during the async phase only.
	Generational

	// GenerationalAging is the §6 variant: a byte-per-object age side
	// table, a tenuring threshold, always-on card marking, and the
	// three-step card-clearing race protocol of §7.2.
	GenerationalAging
)

func (m Mode) String() string {
	switch m {
	case NonGenerational:
		return "non-generational"
	case Generational:
		return "generational"
	case GenerationalAging:
		return "generational+aging"
	}
	return "invalid"
}

// Generational reports whether the mode maintains generations (and hence
// a card table).
func (m Mode) IsGenerational() bool { return m != NonGenerational }

// BarrierMode selects how the write barrier publishes its work to the
// collector.
type BarrierMode int

const (
	// BarrierEager is the paper's barrier, and the default: every
	// pointer store shades its operands immediately (a CAS plus a
	// locked gray-buffer append per shade) and dirties its card with
	// an atomic or as it happens.
	BarrierEager BarrierMode = iota

	// BarrierBatched defers the barrier's shared-memory work: stores
	// append the values to shade and the cards to mark into private
	// per-mutator buffers with plain stores, and the buffers drain at
	// the mutator's next safe-point response (or when full, or at
	// Detach) — always before the status/acknowledgement store that
	// publishes the response, which is the ordering the handshake and
	// trace-termination protocols already rely on. See DESIGN.md,
	// "Barrier modes".
	BarrierBatched
)

func (b BarrierMode) String() string {
	switch b {
	case BarrierEager:
		return "eager"
	case BarrierBatched:
		return "batched"
	}
	return "invalid"
}

// Config parameterizes a collector. The zero value is not usable; call
// (*Config).withDefaults or use the gengc package, which fills in the
// paper's defaults (32 MB heap, 4 MB young generation, 16-byte cards,
// simple promotion).
type Config struct {
	// Mode selects the collector variant.
	Mode Mode

	// HeapBytes is the heap size. The paper runs with a maximum heap
	// of 32 MB.
	HeapBytes int

	// YoungBytes is the size parameter of the young generation
	// (§3.3): a partial collection is triggered once the bytes
	// allocated since the previous collection exceed it. The paper
	// sweeps 1, 2, 4 and 8 MB and settles on 4 MB.
	YoungBytes int

	// CardBytes is the card size: 16 is the paper's "object marking",
	// 4096 its "block marking".
	CardBytes int

	// OldAge is the aging tenure threshold: number of collections an
	// object must survive before it is promoted (GenerationalAging
	// only). The paper counts ages from 1 at allocation; we count
	// survivals from 0, so our OldAge = paper's age − 1.
	OldAge int

	// FullThreshold caps the adaptive full-collection target at this
	// fraction of the heap — the paper's "standard method of starting
	// the concurrent collection when the heap is almost full" (§3.3).
	// The trigger calculation is deliberately identical with and
	// without generations (§8).
	FullThreshold float64

	// InitialTargetBytes is the starting point of the adaptive
	// full-collection target. The paper's heap grows from 1 MB toward
	// the 32 MB maximum, so full collections fire long before the
	// maximum heap fills; we model that with a target that starts
	// here and, after every full collection, tracks the live set plus
	// HeadroomBytes (clamped to [InitialTargetBytes,
	// FullThreshold·HeapBytes]).
	InitialTargetBytes int

	// HeadroomBytes is the allocation headroom above the live set at
	// which the next full collection triggers. The paper's grow-on-
	// demand heap keeps roughly constant headroom over the live data
	// (its non-generational javac run collects every ~2.5 MB despite
	// a double-digit-MB live set), which a multiplicative target
	// would not reproduce.
	HeadroomBytes int

	// GlobalRootSlots is the number of global (class-static-like)
	// root slots; they live in a heap object so that stores to them
	// go through the ordinary write barrier.
	GlobalRootSlots int

	// Workers is the number of collector worker goroutines used for
	// the trace and sweep phases. 1 (the default) reproduces the
	// paper's single collector thread exactly — the sequential trace
	// and sweep code paths run unchanged. Values above 1 parallelize
	// the trace with per-worker work-stealing deques and shard the
	// sweep by block ranges; the on-the-fly property and the
	// handshake protocol are unaffected (see DESIGN.md, "Parallel
	// trace & sweep").
	Workers int

	// Barrier selects the write-barrier publication strategy:
	// BarrierEager (the default, the paper's per-store protocol) or
	// BarrierBatched (per-mutator buffers drained at safe points).
	// Batched mode requires the color toggle, so it cannot be combined
	// with DisableColorToggle.
	Barrier BarrierMode

	// AllocShards is the number of central free-list shards of the
	// tiered allocator (per-mutator cache → class shard → page
	// allocator). 0 — the default — selects one shard per size class,
	// the maximum: cache refills, flushes and sweep frees of
	// different size classes then never contend on a lock. 1
	// degenerates to a single central lock (the pre-sharding
	// behavior, useful for comparison); values above the class count
	// are clamped to it.
	AllocShards int

	// DisableColorToggle runs the baseline with the *original* DLG
	// create protocol of §2 instead of the color toggle of §5 /
	// Remark 5.1: no yellow color, the clear color is always white,
	// sweep recolors black objects white as it passes, and the color
	// of a new object depends on the collector's phase and the sweep
	// pointer. Only valid with Mode == NonGenerational; exists for
	// the Remark 5.1 ablation.
	DisableColorToggle bool

	// UseRememberedSet replaces card marking with a remembered set
	// for inter-generational pointers — the §3.1 alternative the
	// paper discusses but does not build. Only valid with
	// Mode == Generational.
	UseRememberedSet bool

	// DynamicTenure makes the aging tenure threshold self-adjusting
	// (§6 notes dynamic policies "could easily be implemented"): the
	// threshold rises while young survival is high and falls while
	// almost everything dies young. Only valid with
	// Mode == GenerationalAging; OldAge is the starting point.
	DynamicTenure bool

	// TrackPages enables the Figure 15 pages-touched instrumentation.
	TrackPages bool

	// PageCostSpins, when positive, charges the collector a busy-spin
	// per page it touches for the first time in a cycle (implies
	// TrackPages). This reintroduces the memory-hierarchy cost that
	// dominated collection time on the paper's hardware; the
	// experiment harness enables it so that the locality advantage of
	// partial collections (Figure 15) is reflected in elapsed time as
	// it was in the paper.
	PageCostSpins int

	// StallTimeout is the handshake watchdog deadline: when a mutator
	// has not responded to a posted handshake (or acknowledgement
	// round) for this long, the collector reports it — a "stall"
	// trace event, the OnStall callback, and the Stalls snapshot
	// counter — instead of spinning blind, then keeps waiting. It is
	// also the grace period a closing collector grants a wedged
	// handshake before aborting the cycle (see Stop). 0 selects the
	// default (1s); negative disables the watchdog (Stop then uses
	// the default as its abort grace).
	StallTimeout time.Duration

	// AllocRetries bounds the allocation slow path: how many
	// full-collection waits a mutator performs before Alloc gives up
	// and returns ErrOutOfMemory. 0 selects the default (3).
	AllocRetries int

	// SelfCheck runs an inter-cycle invariant audit on the collector
	// goroutine at the end of every completed cycle: allocator
	// bookkeeping, no leftover gray objects, quiesced trace state.
	// Unlike Verify it tolerates running mutators, so chaos campaigns
	// can audit every cycle without quiescing. Violations are counted
	// and the first is retained (SelfCheckErr).
	SelfCheck bool

	// Fault, when non-nil, arms the deterministic fault-injection
	// layer: the injector's rules fire at the collector's named
	// seams (package fault documents the points and their
	// semantics). Nil — the default — leaves every injection point a
	// single pointer comparison.
	Fault *fault.Injector

	// Scheduler, when non-nil, arms the deterministic virtual-scheduler
	// seam: every fault point becomes a schedulable step (the calling
	// goroutine parks until the scheduler resumes it) and the
	// collector's handshake/acknowledgement wait loops block on
	// Scheduler.Wait instead of spinning. This is the model-checking
	// hook (internal/modelcheck); it requires Workers == 1 (the virtual
	// scheduler serializes execution, and the parallel phases spawn
	// pool goroutines it does not control) and excludes Fault (the two
	// consumers share the seam — the scheduler's Step decisions replace
	// injector decisions wholesale).
	Scheduler fault.Scheduler

	// UnsafeBreakFlushBeforeAck re-introduces a historical protocol
	// bug for verification demos: Cooperate publishes its handshake
	// status and acknowledgement epoch *before* flushing the batched
	// barrier buffers, un-ordering the flush from the response and
	// breaking the trace-termination argument (barrier.go's first
	// safety bullet). Only valid under a virtual scheduler — the
	// model checker exists to catch exactly this, and nothing else
	// may run with the ordering broken.
	UnsafeBreakFlushBeforeAck bool

	// Log, when non-nil, receives one line per collection cycle.
	Log io.Writer

	// TraceSink, when non-nil, receives the structured event stream
	// (cycle, handshake-round, ack-round, card-scan, trace-drain,
	// sweep-shard and mutator-pause spans; see the trace package).
	// Events are buffered in lock-free per-producer rings and drained
	// to the sink at the end of every cycle and at Stop.
	TraceSink trace.Sink

	// FlightRecorderEvents, when positive, arms the anomaly flight
	// recorder (internal/telemetry): a bounded in-memory ring holding
	// the last N trace events, frozen into a dump — together with a
	// runtime snapshot — when a stall is reported, a cycle aborts, an
	// allocation gives up (OOM or ErrStalled), or a pause breaches
	// PauseSLO. The recorder taps the same event stream as TraceSink
	// (tee'd when both are set), so arming it without a sink still
	// turns the trace layer on.
	FlightRecorderEvents int

	// PauseSLO, when positive, is the mutator pause service-level
	// objective: every recorded pause longer than this is counted
	// (Snapshot.SLOBreaches) and triggers a flight-recorder dump when
	// one is armed. Requires pause histograms (the default).
	PauseSLO time.Duration

	// RequestSLO, when positive, is the per-request latency objective:
	// every latency fed to Collector.ObserveRequest longer than this is
	// counted (RequestSLOBreaches) and triggers a flight-recorder dump
	// when one is armed. This is end-to-end request accounting — queue
	// wait plus allocation plus retries — distinct from the per-pause
	// histograms (PAPERS.md, "Distilling the Real Cost of Production
	// Garbage Collectors": the honest metric is per-request latency,
	// not per-pause time).
	RequestSLO time.Duration

	// Admission, when non-nil, arms the admission controller
	// (admission.go): a bounded in-flight token pool with a bounded,
	// deadline-aware queue and a degraded mode driven by the pacer's
	// occupancy/slip signals. Nil — the default — means every request
	// is admitted unconditionally (Collector.Admission returns nil).
	Admission *AdmissionConfig

	// DisablePauseHistograms turns off per-mutator pause accounting.
	// By default every mutator records its handshake/root-marking and
	// allocation-stall delays into a log-linear histogram (reported by
	// PauseStats); the cost is two clock reads per actual handshake
	// response — nothing on the Cooperate fast path — so accounting is
	// on unless explicitly disabled.
	DisablePauseHistograms bool
}

// withDefaults returns a copy with unset fields filled with the paper's
// chosen parameters (§8.3).
func (c Config) withDefaults() Config {
	if c.HeapBytes == 0 {
		c.HeapBytes = 32 << 20
	}
	if c.YoungBytes == 0 {
		c.YoungBytes = 4 << 20
	}
	if c.CardBytes == 0 {
		c.CardBytes = 16
	}
	if c.OldAge == 0 {
		c.OldAge = 3 // paper's default threshold 4, counted from age 1
	}
	if c.FullThreshold == 0 {
		c.FullThreshold = 0.75
	}
	if c.InitialTargetBytes == 0 {
		c.InitialTargetBytes = 4 << 20
	}
	if c.HeadroomBytes == 0 {
		c.HeadroomBytes = 4 << 20
	}
	if c.GlobalRootSlots == 0 {
		c.GlobalRootSlots = 256
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = time.Second
	}
	if c.AllocRetries == 0 {
		c.AllocRetries = 3
	}
	if c.Admission != nil {
		a := c.Admission.withDefaults()
		c.Admission = &a
	}
	return c
}

// validate rejects configurations the collector cannot run. Every
// failure wraps ErrInvalidConfig.
func (c Config) validate() error {
	if c.Mode < NonGenerational || c.Mode > GenerationalAging {
		return fmt.Errorf("gc: %w: invalid mode %d", ErrInvalidConfig, int(c.Mode))
	}
	if c.CardBytes < card.MinSize || c.CardBytes > card.MaxSize || c.CardBytes&(c.CardBytes-1) != 0 {
		return fmt.Errorf("gc: %w: invalid card size %d", ErrInvalidConfig, c.CardBytes)
	}
	if c.YoungBytes <= 0 || c.YoungBytes > c.HeapBytes {
		return fmt.Errorf("gc: %w: invalid young generation size %d (heap %d)", ErrInvalidConfig, c.YoungBytes, c.HeapBytes)
	}
	if c.FullThreshold <= 0 || c.FullThreshold >= 1 {
		return fmt.Errorf("gc: %w: full-collection threshold %v out of (0,1)", ErrInvalidConfig, c.FullThreshold)
	}
	if c.InitialTargetBytes < 64<<10 || c.InitialTargetBytes > c.HeapBytes {
		return fmt.Errorf("gc: %w: initial full-collection target %d out of range", ErrInvalidConfig, c.InitialTargetBytes)
	}
	if c.HeadroomBytes < 64<<10 || c.HeadroomBytes > c.HeapBytes {
		return fmt.Errorf("gc: %w: full-collection headroom %d out of range", ErrInvalidConfig, c.HeadroomBytes)
	}
	if c.OldAge < 1 || c.OldAge > 200 {
		return fmt.Errorf("gc: %w: tenure threshold %d out of range", ErrInvalidConfig, c.OldAge)
	}
	if c.Workers < 1 || c.Workers > 256 {
		return fmt.Errorf("gc: %w: worker count %d out of [1,256]", ErrInvalidConfig, c.Workers)
	}
	if c.AllocShards < 0 || c.AllocShards > 256 {
		return fmt.Errorf("gc: %w: allocation shard count %d out of [0,256]", ErrInvalidConfig, c.AllocShards)
	}
	if c.AllocRetries < 1 || c.AllocRetries > 1000 {
		return fmt.Errorf("gc: %w: allocation retry bound %d out of [1,1000]", ErrInvalidConfig, c.AllocRetries)
	}
	if c.FlightRecorderEvents < 0 || c.FlightRecorderEvents > 1<<20 {
		return fmt.Errorf("gc: %w: flight recorder size %d out of [0,%d]", ErrInvalidConfig, c.FlightRecorderEvents, 1<<20)
	}
	if c.PauseSLO < 0 {
		return fmt.Errorf("gc: %w: negative pause SLO %v", ErrInvalidConfig, c.PauseSLO)
	}
	if c.PauseSLO > 0 && c.DisablePauseHistograms {
		return fmt.Errorf("gc: %w: a pause SLO requires pause histograms", ErrInvalidConfig)
	}
	if c.RequestSLO < 0 {
		return fmt.Errorf("gc: %w: negative request SLO %v", ErrInvalidConfig, c.RequestSLO)
	}
	if c.Admission != nil {
		if err := c.Admission.validate(); err != nil {
			return err
		}
	}
	if c.Barrier < BarrierEager || c.Barrier > BarrierBatched {
		return fmt.Errorf("gc: %w: invalid barrier mode %d", ErrInvalidConfig, int(c.Barrier))
	}
	if c.Barrier == BarrierBatched && c.DisableColorToggle {
		return fmt.Errorf("gc: %w: the batched barrier requires the color toggle", ErrInvalidConfig)
	}
	if c.UseRememberedSet && c.Mode != Generational {
		return fmt.Errorf("gc: %w: remembered set requires the simple generational mode", ErrInvalidConfig)
	}
	if c.DisableColorToggle && c.Mode != NonGenerational {
		return fmt.Errorf("gc: %w: the toggle-free create protocol is only supported without generations", ErrInvalidConfig)
	}
	if c.DynamicTenure && c.Mode != GenerationalAging {
		return fmt.Errorf("gc: %w: dynamic tenuring requires the aging mode", ErrInvalidConfig)
	}
	if c.Scheduler != nil {
		if c.Workers != 1 {
			return fmt.Errorf("gc: %w: a virtual scheduler requires Workers == 1 (got %d)", ErrInvalidConfig, c.Workers)
		}
		if c.Fault != nil {
			return fmt.Errorf("gc: %w: a virtual scheduler excludes the fault injector", ErrInvalidConfig)
		}
	}
	if c.UnsafeBreakFlushBeforeAck && c.Scheduler == nil {
		return fmt.Errorf("gc: %w: UnsafeBreakFlushBeforeAck requires a virtual scheduler", ErrInvalidConfig)
	}
	return nil
}
