package gc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gengc/internal/heap"
)

func TestBarrierModeValidation(t *testing.T) {
	if _, err := New(Config{Mode: Generational, HeapBytes: 4 << 20, Barrier: BarrierMode(7)}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("out-of-range barrier mode: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := New(Config{Mode: Generational, HeapBytes: 4 << 20, Barrier: BarrierMode(-1)}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("negative barrier mode: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := New(Config{Mode: NonGenerational, HeapBytes: 4 << 20,
		Barrier: BarrierBatched, DisableColorToggle: true}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("batched + toggle-free: err = %v, want ErrInvalidConfig", err)
	}
	c, err := New(Config{Mode: Generational, HeapBytes: 4 << 20, Barrier: BarrierBatched})
	if err != nil {
		t.Fatalf("batched barrier rejected: %v", err)
	}
	if c.BarrierStats().Mode != BarrierBatched {
		t.Errorf("BarrierStats().Mode = %v, want batched", c.BarrierStats().Mode)
	}
}

func TestBarrierModeString(t *testing.T) {
	if BarrierEager.String() != "eager" || BarrierBatched.String() != "batched" {
		t.Fatalf("mode strings = %q/%q", BarrierEager, BarrierBatched)
	}
	if BarrierMode(9).String() != "invalid" {
		t.Fatalf("out-of-range string = %q", BarrierMode(9))
	}
}

// churnSeeded drives one mutator through a deterministic seeded mix of
// allocations, barriered stores and root drops, with partial and full
// collections at fixed operation indices. Liveness at every point is a
// pure function of the seed, so two runs differing only in barrier
// mode must end with the identical live set.
func churnSeeded(t *testing.T, c *Collector, seed int64, ops int) *Mutator {
	t.Helper()
	m := c.NewMutator()
	rng := rand.New(rand.NewSource(seed))
	live := 0
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.55 || live == 0:
			ref := mustAlloc(t, m, 3, 16+rng.Intn(48))
			m.PushRoot(ref)
			live++
		case r < 0.75 && live >= 2:
			a := m.Root(rng.Intn(live))
			b := m.Root(rng.Intn(live))
			m.Update(a, rng.Intn(3), b)
		case r < 0.85 && live >= 2:
			// The bulk-store API, on a dense prefix of a rooted object.
			x := m.Root(rng.Intn(live))
			vals := []heap.Addr{m.Root(rng.Intn(live)), m.Root(rng.Intn(live))}
			m.UpdateBatch(x, vals)
		default:
			drop := 1 + rng.Intn(min(live, 4))
			m.PopRoots(drop)
			live -= drop
		}
		m.Cooperate()
		if op%97 == 96 {
			m.Collect(false)
		}
		if op%403 == 402 {
			m.Collect(true)
		}
	}
	return m
}

// graphSignature walks the heap graph reachable from m's roots in
// deterministic order and returns an address-independent signature:
// each object is named by its discovery index, and every slot records
// the discovery index of its target (or -1). Two heaps have the same
// signature iff the reachable graphs are isomorphic under discovery
// order — addresses may differ between runs, structure may not.
func graphSignature(c *Collector, m *Mutator) string {
	index := map[heap.Addr]int{}
	var sig []byte
	var visit func(x heap.Addr)
	visit = func(x heap.Addr) {
		if x == 0 {
			return
		}
		if _, ok := index[x]; ok {
			return
		}
		index[x] = len(index)
		slots := c.H.Slots(x)
		sig = append(sig, []byte(fmt.Sprintf("o%d:%d[", index[x], slots))...)
		targets := make([]heap.Addr, slots)
		for i := 0; i < slots; i++ {
			targets[i] = c.H.LoadSlot(x, i)
		}
		for _, tgt := range targets {
			visit(tgt)
			ti := -1
			if tgt != 0 {
				ti = index[tgt]
			}
			sig = append(sig, []byte(fmt.Sprintf("%d,", ti))...)
		}
		sig = append(sig, ']')
	}
	for i := 0; i < m.NumRoots(); i++ {
		visit(m.Root(i))
	}
	return string(sig)
}

// TestBatchedEagerEquivalence: the same seeded workload, run once under
// each barrier mode, must end with the identical live set — object and
// byte counts and graph structure — after a final full collection. This
// is the semantic-equivalence guarantee of the batched barrier, checked
// per collector mode.
func TestBatchedEagerEquivalence(t *testing.T) {
	for _, mode := range []Mode{NonGenerational, Generational, GenerationalAging} {
		t.Run(mode.String(), func(t *testing.T) {
			type result struct {
				objects, bytes int64
				sig            string
				stats          BarrierStats
			}
			run := func(barrier BarrierMode) result {
				c, err := New(Config{Mode: mode, HeapBytes: 8 << 20,
					YoungBytes: 256 << 10, Barrier: barrier})
				if err != nil {
					t.Fatal(err)
				}
				m := churnSeeded(t, c, 12345, 1500)
				// Two settling fulls: the first may race leftover
				// floating garbage from the last in-workload partial,
				// the second runs on a quiescent heap.
				m.Collect(true)
				m.Collect(true)
				res := result{
					objects: c.HeapObjects(),
					bytes:   c.HeapBytes(),
					sig:     graphSignature(c, m),
					stats:   c.BarrierStats(),
				}
				m.Detach()
				c.Stop()
				return res
			}
			eager := run(BarrierEager)
			batched := run(BarrierBatched)
			if eager.objects != batched.objects || eager.bytes != batched.bytes {
				t.Errorf("live set diverged: eager %d objects/%d bytes, batched %d objects/%d bytes",
					eager.objects, eager.bytes, batched.objects, batched.bytes)
			}
			if eager.sig != batched.sig {
				t.Errorf("reachable graph diverged between barrier modes")
			}
			if eager.stats.Flushes != 0 || eager.stats.BufferedStores != 0 {
				t.Errorf("eager run advanced batched counters: %+v", eager.stats)
			}
			// In the generational modes every async store buffers a
			// card entry, so the deferred path must have flushed. In
			// NonGenerational the barrier only buffers during
			// sync/tracing windows, which this workload's stores —
			// made between manual collections — never hit; zero
			// flushes there is the correct (and cheapest) outcome.
			if mode != NonGenerational &&
				(batched.stats.Flushes == 0 || batched.stats.BufferedStores == 0) {
				t.Errorf("batched run never exercised the deferred path: %+v", batched.stats)
			}
		})
	}
}

// TestBatchedChurnRaceStress runs the batched barrier under -race with
// a started collector, parallel trace/sweep workers and several
// concurrent mutators, then audits every invariant. (The name matters:
// `make race` selects Race|Stress|Parallel tests.)
func TestBatchedChurnRaceStress(t *testing.T) {
	c, err := New(Config{Mode: Generational, HeapBytes: 16 << 20,
		YoungBytes: 256 << 10, Workers: 4, Barrier: BarrierBatched,
		SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	const mutators = 4
	var wg sync.WaitGroup
	for id := 0; id < mutators; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := c.NewMutator()
			defer m.Detach()
			rng := rand.New(rand.NewSource(int64(id) + 7))
			live := 0
			for op := 0; op < 4000; op++ {
				switch r := rng.Float64(); {
				case r < 0.5 || live == 0:
					ref, err := m.Alloc(2, 16+rng.Intn(64))
					if err != nil {
						t.Errorf("mutator %d: %v", id, err)
						return
					}
					m.PushRoot(ref)
					live++
				case r < 0.8 && live >= 2:
					a := m.Root(rng.Intn(live))
					vals := []heap.Addr{m.Root(rng.Intn(live)), m.Root(rng.Intn(live))}
					if rng.Intn(2) == 0 {
						m.UpdateBatch(a, vals)
					} else {
						m.Update(a, rng.Intn(2), vals[0])
					}
				default:
					drop := 1 + rng.Intn(min(live, 6))
					m.PopRoots(drop)
					live -= drop
				}
				m.Cooperate()
			}
		}(id)
	}
	wg.Wait()
	c.CollectNow(true)
	if err := c.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if err := c.VerifyCardInvariant(); err != nil {
		t.Errorf("card invariant: %v", err)
	}
	if err, n := c.SelfCheckErr(); n > 0 {
		t.Errorf("%d self-check violations, first: %v", n, err)
	}
	if c.BarrierStats().Flushes == 0 {
		t.Error("stress run never flushed a barrier buffer")
	}
	c.Stop()
}

// TestUpdateBatchMatchesUpdate: the two write APIs must leave identical
// slot contents and equivalent barrier state for the same stores.
func TestUpdateBatchMatchesUpdate(t *testing.T) {
	for _, barrier := range []BarrierMode{BarrierEager, BarrierBatched} {
		t.Run(barrier.String(), func(t *testing.T) {
			c, err := New(Config{Mode: Generational, HeapBytes: 4 << 20, Barrier: barrier})
			if err != nil {
				t.Fatal(err)
			}
			m := c.NewMutator()
			x := mustAlloc(t, m, 4, 0)
			m.PushRoot(x)
			vals := make([]heap.Addr, 4)
			for i := range vals {
				vals[i] = mustAlloc(t, m, 0, 16)
			}
			m.UpdateBatch(x, vals)
			for i, want := range vals {
				if got := c.H.LoadSlot(x, i); got != want {
					t.Errorf("slot %d = %d, want %d", i, got, want)
				}
			}
			// The deferred card mark publishes at the next safe point
			// with pending work, or at detach; force it and check the
			// card is visible to the collector.
			m.flushBarrier("detach")
			ci := c.Cards.IndexOf(x)
			if !c.Cards.IsDirty(ci) {
				t.Errorf("card %d not dirty after UpdateBatch", ci)
			}
			m.Detach()
			c.Stop()
		})
	}
}
