package gc

import (
	"time"

	"gengc/internal/fault"
	"gengc/internal/heap"
	"gengc/internal/trace"
)

// Batched write barrier (Config.Barrier == BarrierBatched): instead of
// shading and card-marking on every pointer store — a CAS, a locked
// gray-buffer append and an atomic or on the hot path — the barrier
// appends the values to shade and the cards to mark into private
// per-mutator buffers with plain stores, and drains them at the
// mutator's next safe-point response, when a buffer fills, and at
// Detach.
//
// Why draining at safe points preserves the sliding-views invariants
// (the full argument is in DESIGN.md, "Barrier modes"):
//
//   - Shades only matter to trace termination, and the trace cannot
//     terminate without an acknowledgement round in which this mutator
//     stores its ack — Cooperate flushes *before* that store, so every
//     buffered shade is CASed, appended and counted in grayProduced
//     before the collector can observe the ack. The fixpoint check in
//     trace() then either finds the gray objects or sees the counter
//     move and loops.
//
//   - Card marks only matter to the *next* partial collection's card
//     scan, which runs after the sync1 handshake completes — and every
//     mutator's sync1 response flushed its buffer first. A mark that
//     lands mid-scan is the same race the eager barrier already has,
//     and the §7.2 protocol tolerates it (the card stays dirty for the
//     cycle after).
//
//   - Deferred shades are evaluated against the handshake status the
//     entries were buffered under: Cooperate flushes before it stores
//     the new status, and the status only changes at safe points, so a
//     buffer never spans a phase boundary. The §7.1 allocation-color
//     acceptance therefore applies to exactly the same stores it would
//     have applied to eagerly. (The clear/alloc color pair is a set
//     invariant under the toggle, so entries that flush after
//     SwitchAllocationClearColors are still classified correctly.)
//
//   - A buffered shade can never reference a swept (blue) object: the
//     sweep only runs after the trace terminates, termination requires
//     this mutator's flush-then-ack, and blue never matches the
//     clear/alloc colors the flush CASes from anyway.

// barrierFlushThreshold bounds the deferred entries a batched mutator
// may hold before it flushes inline: well above any real fan-out
// between safe points, small enough that a flush stays cache-resident.
const barrierFlushThreshold = 256

// barrierBuf is one mutator's deferred-barrier state. Only the owning
// goroutine touches it; the collector sees its effects exclusively
// through the flush (gray buffer, card table, remembered set).
type barrierBuf struct {
	// shade holds values whose MarkGray is deferred; cards holds
	// objects whose card mark (or remembered-set entry) is deferred.
	shade []heap.Addr
	cards []heap.Addr

	// scratch collects the flush's CAS winners so they enter the gray
	// buffer under a single lock acquisition.
	scratch []heap.Addr

	// lastCard is the card index of the most recent cards entry (-1
	// when empty): consecutive stores into the same card — the common
	// case for field-by-field initialization and UpdateBatch — are
	// deduplicated at append time.
	lastCard int

	// stores and dedup accumulate between flushes and are published to
	// the collector's counters at each flush.
	stores int64
	dedup  int64
}

func newBarrierBuf() *barrierBuf {
	return &barrierBuf{
		shade:    make([]heap.Addr, 0, barrierFlushThreshold+2),
		cards:    make([]heap.Addr, 0, 64),
		scratch:  make([]heap.Addr, 0, 64),
		lastCard: -1,
	}
}

// bufferShade defers MarkGray(v).
func (b *barrierBuf) bufferShade(v heap.Addr) {
	if v == 0 {
		return
	}
	b.shade = append(b.shade, v)
}

// bufferCard defers the card mark (or remembered-set record) for x,
// deduplicating consecutive same-card entries.
func (m *Mutator) bufferCard(x heap.Addr) {
	b := m.bb
	ci := m.c.Cards.IndexOf(x)
	if ci == b.lastCard {
		b.dedup++
		return
	}
	b.lastCard = ci
	b.cards = append(b.cards, x)
}

// updateBatched is Update with the barrier's shared-memory work
// deferred: the per-phase decisions mirror the eager switch exactly —
// what would have been shaded is buffered for shading, what would have
// marked a card is buffered for marking — and the store itself happens
// in the same place.
func (m *Mutator) updateBatched(x heap.Addr, i int, y heap.Addr) {
	c := m.c
	b := m.bb
	sync := Status(m.status.Load()) != StatusAsync
	switch c.cfg.Mode {
	case GenerationalAging:
		if sync {
			b.bufferShade(c.H.LoadSlot(x, i))
			b.bufferShade(y)
		} else if c.tracing.Load() {
			b.bufferShade(c.H.LoadSlot(x, i))
		}
		c.H.StoreSlot(x, i, y)
		// Per §7.2 the card entry follows the store; the flush keeps
		// that order (all buffered stores precede the flush's marks).
		m.bufferCard(x)
	case Generational:
		if sync {
			b.bufferShade(c.H.LoadSlot(x, i))
			b.bufferShade(y)
		} else {
			if c.tracing.Load() {
				b.bufferShade(c.H.LoadSlot(x, i))
			}
			m.bufferCard(x)
		}
		c.H.StoreSlot(x, i, y)
	default: // NonGenerational
		if sync {
			b.bufferShade(c.H.LoadSlot(x, i))
			b.bufferShade(y)
		} else if c.tracing.Load() {
			b.bufferShade(c.H.LoadSlot(x, i))
		}
		c.H.StoreSlot(x, i, y)
	}
	b.stores++
	if len(b.shade)+len(b.cards) >= barrierFlushThreshold {
		m.flushBarrier("full")
	}
}

// flushBarrier drains the deferred-barrier buffers: buffered values are
// shaded (the flush batches the CAS winners into the gray buffer under
// one lock acquisition and one grayProduced addition), buffered cards
// are marked (or remembered). reason tags the trace event
// ("handshake"|"full"|"detach").
//
// Ordering contract: Cooperate calls this before it stores its new
// status and acknowledgement epoch, and Detach before it hands its gray
// buffer to the collector — the stores that publish a response publish
// the flush with it. In eager mode (no buffer) it is a no-op.
func (m *Mutator) flushBarrier(reason string) {
	b := m.bb
	if b == nil || (len(b.shade) == 0 && len(b.cards) == 0) {
		return
	}
	c := m.c
	// Delay-only seam (fault.BarrierFlush): dropping a flush and then
	// acknowledging would un-publish shades the trace-termination
	// check relies on, so Drop/Fail decisions are ignored. Under a
	// virtual scheduler this parks the mutator with entries buffered
	// but nothing drained — the step that exposes any response made
	// before its flush (the UnsafeBreakFlushBeforeAck needle).
	c.seamDelay(fault.BarrierFlush)
	var start time.Time
	if m.ring != nil {
		start = time.Now()
	}
	nShade, nCards := len(b.shade), len(b.cards)
	if nShade > 0 {
		// The markGray/markGrayAging acceptance rule, applied under
		// the pre-response status (see the file comment).
		cc := heap.Color(c.clearColor.Load())
		ac := heap.Color(c.allocColor.Load())
		acceptAlloc := c.cfg.Mode != GenerationalAging &&
			Status(m.status.Load()) != StatusAsync
		for _, v := range b.shade {
			from := cc
			if col := c.H.Color(v); col != cc {
				if !acceptAlloc || col != ac {
					continue
				}
				from = ac
			}
			if c.H.CasColor(v, from, heap.Gray) {
				b.scratch = append(b.scratch, v)
			}
		}
		b.shade = b.shade[:0]
		if len(b.scratch) > 0 {
			m.gray.Lock()
			m.gray.buf = append(m.gray.buf, b.scratch...)
			m.gray.Unlock()
			c.grayProduced.Add(int64(len(b.scratch)))
			b.scratch = b.scratch[:0]
		}
	}
	if nCards > 0 {
		if c.cfg.UseRememberedSet {
			for _, x := range b.cards {
				m.remember(x)
			}
		} else {
			for _, x := range b.cards {
				c.Cards.Mark(x)
			}
		}
		b.cards = b.cards[:0]
		b.lastCard = -1
	}
	c.barrierFlushes.Add(1)
	c.barrierStores.Add(b.stores)
	c.barrierDedup.Add(b.dedup)
	b.stores, b.dedup = 0, 0
	if m.ring != nil {
		m.ring.Emit(trace.Event{
			Ev:     "barrierflush",
			T:      c.tracer.Rel(start),
			D:      time.Since(start).Nanoseconds(),
			Worker: m.id,
			N:      int64(nShade),
			M:      int64(nCards),
			K:      reason,
		})
	}
}

// BarrierStats is the write barrier's counter snapshot. The counters
// only advance in batched mode; Mode reports which barrier ran. The
// contention matrix (cmd/gcsweep) records Flushes and CardDedupHits per
// cell — on Zipf-skewed workloads the dedup counter is the direct
// measure of how much hot-card traffic the batching elides.
type BarrierStats struct {
	// Mode is the configured barrier.
	Mode BarrierMode

	// Flushes counts buffer drains (safe-point responses, buffer-full
	// flushes and detaches that had entries to publish).
	Flushes int64

	// BufferedStores counts barriered pointer stores that went through
	// the deferred path.
	BufferedStores int64

	// CardDedupHits counts card entries elided because they targeted
	// the same card as the preceding store — work the eager barrier
	// would have spent an atomic or on.
	CardDedupHits int64
}

// BarrierStats returns the barrier counter snapshot.
func (c *Collector) BarrierStats() BarrierStats {
	return BarrierStats{
		Mode:           c.cfg.Barrier,
		Flushes:        c.barrierFlushes.Load(),
		BufferedStores: c.barrierStores.Load(),
		CardDedupHits:  c.barrierDedup.Load(),
	}
}
