package gc

import (
	"time"

	"gengc/internal/fault"
)

// The scheduler seam. Every coordination point of the protocol —
// handshake post/ack, safe-point cooperation, barrier flush, trace
// drain and steal, card/remset scans, sweep-shard claims — funnels
// through the three helpers below, which route each hit to the
// configured virtual scheduler (Config.Scheduler) when one is armed,
// else to the chaos injector (Config.Fault) when one is armed, else do
// nothing. Production holds nil for both, so a seam hit costs two
// pointer comparisons; the per-object hot loops additionally hoist the
// armed check out of the loop (seamArmed).

// Named timing constants of the real scheduler's wait loops, exported
// because the virtual scheduler's time model (internal/modelcheck) is
// built from them: a virtual run reports elapsed time as steps charged
// at HandshakeSleepMin and blocked waits charged at HandshakeSleepMax,
// the two ends of the real backoff. Tune them here and both the
// runtime and the verifier's estimates move together.
const (
	// HandshakeYieldBudget is how many runtime.Gosched calls a
	// handshake or acknowledgement wait performs before it falls back
	// to sleeping. Generous because a sleeping collector on a busy
	// single-P system is only rescheduled at the next preemption
	// point, ~10ms away, which would stretch the sync1/sync2 window
	// and prematurely promote everything allocated inside it (§7.1).
	HandshakeYieldBudget = 1 << 15

	// HandshakeSleepMin/Max bound the exponential backoff once the
	// yield budget is spent: the first sleep is Min (a promptly
	// responding mutator costs almost nothing), doubling
	// HandshakeBackoffDoublings times up to the Max cap, which bounds
	// how stale the collector's view of a slow mutator can get.
	HandshakeSleepMin = time.Microsecond
	HandshakeSleepMax = 100 * time.Microsecond

	// HandshakeBackoffDoublings is how many times the backoff doubles
	// before the cap applies: Min<<7 = 128µs would overshoot the
	// 100µs Max, so the 7th doubling clamps.
	HandshakeBackoffDoublings = 7

	// StopGraceDefault is the grace a closing collector grants a
	// wedged handshake before aborting the cycle when the watchdog is
	// disabled (negative StallTimeout) — the fallback for the
	// configured StallTimeout, which is the grace otherwise.
	StopGraceDefault = time.Second

	// AllocWaitSleepBase/Max bound the poll backoff of a mutator
	// waiting for a full collection after an allocation failure: the
	// first retry polls at Base, doubling per failed round (each
	// failure means the last collection freed too little, so hammering
	// the next one helps nobody) up to Max — far below the stall
	// deadline, so the waiting mutator keeps answering handshakes
	// promptly.
	AllocWaitSleepBase = 50 * time.Microsecond
	AllocWaitSleepMax  = time.Millisecond

	// CollectPollInterval is how often Mutator.Collect polls for its
	// requested cycle to finish between safe-point responses.
	CollectPollInterval = 20 * time.Microsecond
)

// seamArmed reports whether any seam consumer is installed. Hot loops
// (drainStack, the card scan) hoist this so the per-object cost of the
// seam is zero in production.
func (c *Collector) seamArmed() bool { return c.vsched != nil || c.flt != nil }

// seamStep announces one schedulable step and returns the merged
// decision: under a virtual scheduler the caller parks until resumed,
// under the chaos injector the point's rules are evaluated (and any
// delay slept). Call sites that cannot honor Drop/Fail use seamDelay.
func (c *Collector) seamStep(p fault.Point) (drop, fail bool) {
	if vs := c.vsched; vs != nil {
		d := vs.Step(p)
		return d.Drop, d.Fail
	}
	if in := c.flt; in != nil {
		return in.Inject(p)
	}
	return false, false
}

// seamDelay is seamStep for delay-only points: the step still parks
// under a virtual scheduler (that is the yield), but Drop/Fail
// decisions are ignored because the operation must happen.
func (c *Collector) seamDelay(p fault.Point) {
	if vs := c.vsched; vs != nil {
		vs.Step(p)
		return
	}
	if in := c.flt; in != nil {
		in.Inject(p)
	}
}

// seamWait diverts a collector wait loop to the virtual scheduler.
// handled reports whether a scheduler took the wait over; when it did,
// ok carries the verdict — false means the scheduler is abandoning the
// run and the caller must take its close-abort path, exactly as if the
// real scheduler's watchdog had fired at close.
func (c *Collector) seamWait(p fault.Point, ready func() bool) (handled, ok bool) {
	vs := c.vsched
	if vs == nil {
		return false, false
	}
	for !ready() {
		if !vs.Wait(p, ready) {
			return true, false
		}
	}
	return true, true
}
