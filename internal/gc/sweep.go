package gc

import (
	"gengc/internal/fault"
	"gengc/internal/heap"
)

// freeBatchSize bounds how many dead cells sweep accumulates before
// returning them to the heap under one lock acquisition.
const freeBatchSize = 256

// sweepState accumulates one sweeper's reclamation results: the pending
// free batch and the counters that are merged into the cycle record when
// the sweeper finishes. With Workers == 1 there is a single state; the
// sharded sweep gives each worker its own so no counter is contended.
type sweepState struct {
	batch        []heap.Addr
	objectsFreed int
	bytesFreed   int
	survivors    int

	// Demographics: deaths by allocator size class (the last slot
	// aggregates large objects), the aging survival histogram indexed
	// by the age at which the object survived, and the byte volume of
	// the demoted survivors (the young side of the aging promotion
	// arithmetic in finishCycle).
	deathsByClass [heap.NumClasses + 1]int64
	survivalByAge [maxAgeBuckets]int64
	survivorBytes int
}

// maxAgeBuckets bounds the per-age survival histogram. Ages past the
// last bucket are clamped into it; the tenure threshold is at most 200
// (Config.OldAge validation), well inside the uint8 age range.
const maxAgeBuckets = 208

// ageBucket clamps an age into the survival histogram.
func ageBucket(a uint8) int {
	if int(a) >= maxAgeBuckets {
		return maxAgeBuckets - 1
	}
	return int(a)
}

// mergeInto folds this sweeper's counters into the cycle record; the
// caller (the collector goroutine, after every sweeper finished) owns
// cyc.
func (st *sweepState) mergeInto(c *Collector) {
	c.cyc.ObjectsFreed += st.objectsFreed
	c.cyc.BytesFreed += st.bytesFreed
	c.cyc.Survivors += st.survivors
	c.cyc.SurvivorBytes += st.survivorBytes
	for i, n := range st.deathsByClass {
		if n == 0 {
			continue
		}
		if c.cyc.DeathsByClass == nil {
			c.cyc.DeathsByClass = make([]int64, heap.NumClasses+1)
		}
		c.cyc.DeathsByClass[i] += n
	}
	for i, n := range st.survivalByAge {
		if n == 0 {
			continue
		}
		if c.cyc.SurvivalByAge == nil {
			c.cyc.SurvivalByAge = make([]int64, maxAgeBuckets)
		}
		c.cyc.SurvivalByAge[i] += n
	}
}

// flush returns the batched dead cells to the heap under one heap-lock
// acquisition.
func (st *sweepState) flush(c *Collector) {
	if n := len(st.batch); n > 0 {
		bytes := c.H.FreeBatch(st.batch)
		st.bytesFreed += bytes
		c.noteFreed(n, bytes)
		st.batch = st.batch[:0]
	}
}

// sweepBlockOne reclaims the clear-colored objects of block b (Figures 2
// and 5) into st. With the color toggle there is nothing else to do in
// the simple algorithm: black (old) objects stay black — that is the
// promotion — and allocation-colored objects were created during the
// cycle and stay untouched, playing the role of white in the next cycle.
//
// The aging variant additionally walks the age table: reachable objects
// younger than the tenure threshold are recolored with the allocation
// color (so they remain collectible in the next partial collection) and
// their age is incremented; objects at the threshold stay black.
//
// Distinct blocks hold distinct objects, so concurrent calls for
// different blocks touch disjoint color/age entries and per-block hints;
// the free batches go through the heap lock.
func (c *Collector) sweepBlockOne(b int, full, aging bool, cc, ac heap.Color, oldest uint8, st *sweepState) {
	if !full && c.H.AllBlackHint(b) {
		// Entirely old block: it holds only black objects and
		// has no free cells, so nothing in it can carry the
		// clear color until a full collection recolors the
		// heap. Partial sweeps skip it — this is what confines
		// a partial collection's working set to the young
		// generation (Figure 15).
		return
	}
	allBlack := true
	populated := false
	cls := c.H.BlockClass(b)
	if cls < 0 || cls >= heap.NumClasses {
		cls = heap.NumClasses // large-object bucket
	}
	c.H.ForEachObjectInBlock(b, func(addr heap.Addr) {
		// The paper keeps the color in the object header, so
		// examining an object during sweep touches its page;
		// the page model charges that layout even though our
		// colors live in an atomic side table.
		c.H.Pages.TouchHeap(addr, 1)
		col := c.H.Color(addr)
		populated = true
		if col != heap.Black || (aging && c.H.Age(addr) < oldest) {
			allBlack = false
		}
		switch {
		case col == cc:
			// Dead: reclaim. Freeing writes the free-list
			// link into the cell, touching its heap page.
			c.H.Pages.TouchHeap(addr, heap.WordBytes)
			st.objectsFreed++
			st.deathsByClass[cls]++
			st.batch = append(st.batch, addr)
			if len(st.batch) >= freeBatchSize {
				st.flush(c)
			}
		case aging && col != heap.Blue && addr != c.globals:
			c.H.Pages.TouchAge(addr)
			// Objects at or past the threshold stay black with their
			// age frozen: that is the promotion, counted trace-side in
			// finishCycle (traced young minus the survivors demoted
			// here — the sweep cannot tell a freshly tenured object
			// from one tenured cycles ago, but the trace only ever
			// blackens young ones).
			if age := c.H.Age(addr); age < oldest {
				c.H.SetColor(addr, ac)
				c.H.SetAge(addr, age+1)
				if col == heap.Black && !full {
					st.survivors++
					st.survivorBytes += c.H.SizeOf(addr)
					st.survivalByAge[ageBucket(age)]++
				}
			}
		}
	})
	if full || c.H.BlockClass(b) < 0 {
		// Full sweeps recompute hints from scratch; non-small
		// blocks (free or large-object) are never hinted.
		c.H.SetAllBlackHint(b, false)
	}
	if populated && allBlack && c.H.BlockQuiet(b) {
		c.H.SetAllBlackHint(b, true)
	} else if populated || c.H.BlockClass(b) < 0 {
		c.H.SetAllBlackHint(b, false)
	}
}

// sweep reclaims every clear-colored object. With Workers == 1 it is the
// paper's serial block walk; otherwise the block range is sharded across
// the worker pool (parallel.go).
func (c *Collector) sweep(full bool) {
	if c.cfg.Workers > 1 {
		c.sweepParallel(full)
		return
	}
	cc := heap.Color(c.clearColor.Load())
	ac := heap.Color(c.allocColor.Load())
	aging := c.cfg.Mode == GenerationalAging
	oldest := c.oldestAge()

	st := &sweepState{batch: make([]heap.Addr, 0, freeBatchSize)}
	nBlocks := c.H.NumBlocks()
	for b := 1; b < nBlocks; b++ {
		if c.seamArmed() && (b-1)%sweepChunkBlocks == 0 {
			// Same cadence as a parallel shard claim; delay-only —
			// every block must be swept (see sweepParallel).
			c.seamDelay(fault.SweepShard)
		}
		c.sweepBlockOne(b, full, aging, cc, ac, oldest, st)
	}
	st.flush(c)
	st.mergeInto(c)
}
