package gc

import (
	"testing"

	"gengc/internal/heap"
)

// newTestCollector builds a collector without starting the background
// goroutine, so tests can drive phases manually.
func newTestCollector(t *testing.T, mode Mode) *Collector {
	t.Helper()
	c, err := New(Config{Mode: mode, HeapBytes: 4 << 20, YoungBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustAlloc(t *testing.T, m *Mutator, slots, size int) heap.Addr {
	t.Helper()
	a, err := m.Alloc(slots, size)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestColorToggleInit(t *testing.T) {
	c := newTestCollector(t, Generational)
	if c.AllocColor() != heap.White || c.ClearColor() != heap.Yellow {
		t.Fatalf("initial colors = %v/%v, want white/yellow",
			c.AllocColor(), c.ClearColor())
	}
	c.switchColors()
	if c.AllocColor() != heap.Yellow || c.ClearColor() != heap.White {
		t.Fatal("toggle did not swap")
	}
	c.switchColors()
	if c.AllocColor() != heap.White || c.ClearColor() != heap.Yellow {
		t.Fatal("double toggle is not identity")
	}
}

func TestCreateUsesAllocationColor(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	if got := c.H.Color(a); got != heap.White {
		t.Fatalf("created color = %v, want white", got)
	}
	c.switchColors()
	b := mustAlloc(t, m, 0, 32)
	if got := c.H.Color(b); got != heap.Yellow {
		t.Fatalf("created color after toggle = %v, want yellow", got)
	}
}

// TestBarrierAsyncIdle: during async with the collector idle, a
// generational update only marks the card (Figure 1's final case).
func TestBarrierAsyncIdle(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 2, 0)
	y := mustAlloc(t, m, 0, 32)
	old := mustAlloc(t, m, 0, 32)
	m.Update(x, 0, old)
	m.Update(x, 0, y)
	if c.H.LoadSlot(x, 0) != y {
		t.Fatal("store lost")
	}
	// No graying: all three stay white.
	for _, a := range []heap.Addr{x, y, old} {
		if c.H.Color(a) != heap.White {
			t.Errorf("object %#x color %v, want white", a, c.H.Color(a))
		}
	}
	if !c.Cards.IsDirty(c.Cards.IndexOf(x)) {
		t.Error("card of updated object not dirty")
	}
}

// TestBarrierAsyncIdleNonGen: no card marking without generations.
func TestBarrierAsyncIdleNonGen(t *testing.T) {
	c := newTestCollector(t, NonGenerational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	y := mustAlloc(t, m, 0, 32)
	m.Update(x, 0, y)
	if c.Cards.IsDirty(c.Cards.IndexOf(x)) {
		t.Error("non-generational barrier marked a card")
	}
}

// TestBarrierSyncGraysBoth: between the first and third handshakes the
// barrier grays both the old and the new value, including objects with
// the allocation color (the §7.1 exception).
func TestBarrierSyncGraysBoth(t *testing.T) {
	for _, mode := range []Mode{NonGenerational, Generational} {
		c := newTestCollector(t, mode)
		m := c.NewMutator()
		x := mustAlloc(t, m, 1, 0)
		old := mustAlloc(t, m, 0, 32)
		y := mustAlloc(t, m, 0, 32)
		m.Update(x, 0, old) // plain store while idle

		// Enter sync1 from the mutator's perspective.
		c.postHandshake(StatusSync1)
		m.Cooperate()

		m.Update(x, 0, y)
		if c.H.Color(old) != heap.Gray {
			t.Errorf("%v: old value color %v, want gray (alloc-color exception)", mode, c.H.Color(old))
		}
		if c.H.Color(y) != heap.Gray {
			t.Errorf("%v: new value color %v, want gray", mode, c.H.Color(y))
		}
	}
}

// TestBarrierAgingSyncClearOnly: the aging barrier's MarkGray (Figure 4)
// only shades clear-colored objects, even during sync.
func TestBarrierAgingSyncClearOnly(t *testing.T) {
	c := newTestCollector(t, GenerationalAging)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	y := mustAlloc(t, m, 0, 32) // allocation color (white)
	c.postHandshake(StatusSync1)
	m.Cooperate()
	m.Update(x, 0, y)
	if c.H.Color(y) == heap.Gray {
		t.Error("aging barrier grayed an allocation-colored object")
	}
	if !c.Cards.IsDirty(c.Cards.IndexOf(x)) {
		t.Error("aging barrier must mark cards in every phase")
	}
	c.postHandshake(StatusAsync)
	m.Cooperate()
}

// TestBarrierAsyncTracing: during async while the collector traces, the
// barrier grays the overwritten value (deletion barrier) but not the new
// value.
func TestBarrierAsyncTracing(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	old := mustAlloc(t, m, 0, 32)
	y := mustAlloc(t, m, 0, 32)
	m.Update(x, 0, old)

	// Make "old" clear-colored and set the tracing flag, as if a cycle
	// had toggled and is tracing.
	c.switchColors() // white becomes the clear color
	c.tracing.Store(true)
	defer c.tracing.Store(false)

	m.Update(x, 0, y)
	if c.H.Color(old) != heap.Gray {
		t.Errorf("overwritten value color = %v, want gray", c.H.Color(old))
	}
	if c.H.Color(y) == heap.Gray {
		t.Error("stored value grayed during async trace (insertion barrier must be off)")
	}
	// The gray must have been published to the mutator's buffer.
	m.gray.Lock()
	n := len(m.gray.buf)
	m.gray.Unlock()
	if n != 1 {
		t.Errorf("gray buffer has %d entries, want 1", n)
	}
}

// TestShadePublishesOnce: racing shades of one object publish exactly
// one gray entry (the CAS dedups).
func TestShadePublishesOnce(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 0, 32)
	c.switchColors() // make x clear-colored
	m.markGray(x)
	m.markGray(x)
	m.markGray(x)
	m.gray.Lock()
	n := len(m.gray.buf)
	m.gray.Unlock()
	if n != 1 {
		t.Errorf("gray buffer has %d entries, want 1", n)
	}
	if c.grayProduced.Load() != 1 {
		t.Errorf("grayProduced = %d, want 1", c.grayProduced.Load())
	}
}

// TestAgingUpdateMarksCardAfterStore verifies the §7.2 ordering: by the
// time the card is dirty, the slot already holds the new value.
func TestAgingUpdateMarksCardAfterStore(t *testing.T) {
	c := newTestCollector(t, GenerationalAging)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	y := mustAlloc(t, m, 0, 32)
	ci := c.Cards.IndexOf(x)
	c.Cards.Clear(ci)
	m.Update(x, 0, y)
	if !c.Cards.IsDirty(ci) {
		t.Fatal("card not marked")
	}
	if c.H.LoadSlot(x, 0) != y {
		t.Fatal("slot not stored")
	}
}

func TestReadHasNoBarrier(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	y := mustAlloc(t, m, 0, 32)
	m.Update(x, 0, y)
	c.switchColors()
	c.tracing.Store(true)
	defer c.tracing.Store(false)
	if got := m.Read(x, 0); got != y {
		t.Fatalf("Read = %#x, want %#x", got, y)
	}
	if c.H.Color(y) != heap.White {
		t.Error("Read changed a color")
	}
}

func TestRootStackOps(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	i := m.PushRoot(a)
	if m.Root(i) != a || m.NumRoots() != 1 {
		t.Fatal("root push/read broken")
	}
	m.SetRoot(i, 0)
	if m.Root(i) != 0 {
		t.Fatal("SetRoot lost")
	}
	m.PopRoots(1)
	if m.NumRoots() != 0 {
		t.Fatal("PopRoots broken")
	}
}

func TestMutatorIDsUnique(t *testing.T) {
	c := newTestCollector(t, Generational)
	m1 := c.NewMutator()
	m2 := c.NewMutator()
	if m1.ID() == m2.ID() {
		t.Error("duplicate mutator ids")
	}
	m1.Detach()
	m2.Detach()
	if got := len(c.muts.list); got != 0 {
		t.Errorf("registry has %d entries after detach", got)
	}
	// Double detach is a no-op.
	m1.Detach()
}
