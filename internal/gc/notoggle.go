package gc

import "gengc/internal/heap"

// Toggle-free creation: §2 describes the original DLG create protocol
// that the color toggle of §5 replaces. Without the toggle there is no
// yellow color and the clear color is always white; the color of a new
// object depends on where the collector is:
//
//	idle                   → white (ready for the next collection)
//	tracing (to sweep)     → black (so the trace need not visit it)
//	sweeping, ahead of the sweep pointer → black (the sweep will pass
//	                         it and recolor it white)
//	sweeping, behind the sweep pointer   → white (already passed; it
//	                         is a candidate for the *next* collection)
//	sweeping, at the sweep pointer       → gray ("some extra care must
//	                         be taken here for possible races between
//	                         the create and the sweep")
//
// The gray case resolves the boundary race at block granularity: a cell
// allocated in the very block the sweep is processing might or might
// not be passed, so it is created gray and pushed to the creating
// mutator's gray buffer — gray survives any sweep, and the buffered
// entry makes the next cycle's trace scan it.
//
// This mode exists for the Remark 5.1 ablation (cmd and benchmarks
// compare it against the toggled baseline) and is only supported for
// the non-generational collector, matching the paper: the generational
// design depends on the toggle to separate yellow from white.

// collectorPhase tracks where the collector is, for toggle-free creation.
type collectorPhase uint32

const (
	phaseIdle collectorPhase = iota
	phaseTracing
	phaseSweeping
)

// createColor picks the color for a new object in toggle-free mode.
// addr is the chosen cell (the caller allocates first, then colors).
func (m *Mutator) createColor(addr heap.Addr) heap.Color {
	switch collectorPhase(m.c.phase.Load()) {
	case phaseTracing:
		return heap.Black
	case phaseSweeping:
		block := int32(addr / heap.BlockSize)
		sweep := m.c.sweepBlock.Load()
		switch {
		case block > sweep:
			return heap.Black
		case block < sweep:
			return heap.White
		default:
			return heap.Gray
		}
	default:
		return heap.White
	}
}

// allocToggleFree is the create routine of the original DLG protocol:
// the cell is taken blue, then colored according to the collector's
// phase; a gray creation is published to the gray buffer so the next
// trace scans it.
func (m *Mutator) allocToggleFree(slots, size int) (heap.Addr, error) {
	addr, err := m.c.H.AllocBlue(&m.cache, slots, size)
	if err != nil {
		return 0, err
	}
	col := m.createColor(addr)
	m.c.H.SetColor(addr, col)
	if col == heap.Gray {
		m.gray.Lock()
		m.gray.buf = append(m.gray.buf, addr)
		m.gray.Unlock()
		m.c.grayProduced.Add(1)
	}
	return addr, nil
}

// sweepToggleFree is the original DLG sweep: reclaim white cells and
// recolor black cells white as the sweep pointer passes them, so that
// the heap is all-white again at the end — no InitFullCollection pass
// and no color exchange.
func (c *Collector) sweepToggleFree() {
	batch := make([]heap.Addr, 0, freeBatchSize)
	flush := func() {
		if n := len(batch); n > 0 {
			bytes := c.H.FreeBatch(batch)
			c.cyc.BytesFreed += bytes
			c.noteFreed(n, bytes)
			batch = batch[:0]
		}
	}
	nBlocks := c.H.NumBlocks()
	for b := 1; b < nBlocks; b++ {
		c.sweepBlock.Store(int32(b))
		c.H.ForEachObjectInBlock(b, func(addr heap.Addr) {
			c.H.Pages.TouchHeap(addr, 1)
			switch c.H.Color(addr) {
			case heap.White:
				c.H.Pages.TouchHeap(addr, heap.WordBytes)
				c.cyc.ObjectsFreed++
				batch = append(batch, addr)
				if len(batch) >= freeBatchSize {
					flush()
				}
			case heap.Black:
				c.H.SetColor(addr, heap.White)
			}
			// Gray (a boundary creation or a late shade): left as is;
			// its buffered entry makes the next trace process it.
		})
	}
	flush()
	c.sweepBlock.Store(int32(nBlocks))
}
