package gc

import (
	"errors"
	"testing"
	"time"

	"gengc/internal/heap"
)

// TestBackgroundTrigger: the young-generation trigger fires the
// background collector (§3.3).
func TestBackgroundTrigger(t *testing.T) {
	c, err := New(Config{Mode: Generational, HeapBytes: 8 << 20, YoungBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	m := c.NewMutator()
	defer m.Detach()
	for i := 0; i < 20000; i++ {
		if _, err := m.Alloc(0, 64); err != nil {
			t.Fatal(err)
		}
		m.Cooperate()
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.CyclesDone() == 0 && time.Now().Before(deadline) {
		m.Cooperate()
		time.Sleep(time.Millisecond)
	}
	if c.CyclesDone() == 0 {
		t.Fatal("background partial never ran")
	}
}

// TestOOMTriggersFullCollection: when the heap fills with garbage, the
// allocation slow path forces a full collection and succeeds.
func TestOOMTriggersFullCollection(t *testing.T) {
	c, err := New(Config{
		Mode: NonGenerational, HeapBytes: 2 << 20,
		YoungBytes: 1 << 20, InitialTargetBytes: 1 << 20,
		HeadroomBytes: 512 << 10, FullThreshold: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	m := c.NewMutator()
	defer m.Detach()
	// All garbage: each allocation replaces the root.
	r := m.PushRoot(0)
	for i := 0; i < 200000; i++ {
		a, err := m.Alloc(0, 256)
		if err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
		m.SetRoot(r, a)
		m.Cooperate()
		if c.FullsDone() > 2 {
			return // full collections rescued us: done
		}
	}
	if c.FullsDone() == 0 {
		t.Fatal("no full collection despite heap pressure")
	}
}

// TestHopelessOOMReturnsError: a heap packed with live data eventually
// reports out-of-memory instead of hanging.
func TestHopelessOOMReturnsError(t *testing.T) {
	c, err := New(Config{Mode: Generational, HeapBytes: 1 << 20, YoungBytes: 512 << 10,
		InitialTargetBytes: 256 << 10, HeadroomBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	m := c.NewMutator()
	defer m.Detach()
	sawErr := false
	for i := 0; i < 100000; i++ {
		a, err := m.Alloc(0, 2048)
		if err != nil {
			if !errors.Is(err, heap.ErrOutOfMemory) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
			break
		}
		m.PushRoot(a) // everything stays live
		m.Cooperate()
	}
	if !sawErr {
		t.Fatal("allocation never failed on a heap full of live data")
	}
}

// TestStopIsIdempotent: Stop can be called multiple times and before
// Start.
func TestStopIsIdempotent(t *testing.T) {
	c := newTestCollector(t, Generational)
	c.Stop() // not started: no-op
	c.Start()
	c.Start() // double start: no-op
	c.Stop()
	c.Stop()
}

// TestRetargetRatchet: the full-collection target never decreases and
// tracks occupancy plus headroom.
func TestRetargetRatchet(t *testing.T) {
	c := newTestCollector(t, Generational)
	p := c.Pacer()
	before := p.Target()
	p.Retarget(c.H.AllocatedBytes())
	after := p.Target()
	if after < before {
		t.Fatalf("target shrank: %d -> %d", before, after)
	}
	// Force it high, retarget with an empty heap: must not drop.
	p.fullTarget.Store(10 << 20)
	p.Retarget(c.H.AllocatedBytes())
	if p.Target() < 10<<20 {
		t.Fatal("ratchet violated")
	}
}

// TestMutatorCollectHelper: (*Mutator).Collect runs a cycle even without
// the background goroutine.
func TestMutatorCollectHelper(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	mustAlloc(t, m, 0, 64)
	m.Collect(false)
	if c.CyclesDone() != 1 {
		t.Fatalf("cycles = %d, want 1", c.CyclesDone())
	}
	m.Collect(true)
	if c.FullsDone() != 1 {
		t.Fatalf("fulls = %d, want 1", c.FullsDone())
	}
}

// TestVerifyCatchesDanglingRoot: the verifier reports a root pointing at
// a freed object.
func TestVerifyCatchesDanglingRoot(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	m.PushRoot(a)
	c.H.SetColor(a, heap.Yellow)
	c.H.FreeCell(a) // simulate an (incorrect) free of a live object
	if err := c.Verify(); err == nil {
		t.Fatal("Verify missed a dangling root")
	}
}
