package gc

import (
	"runtime"
	"time"
)

// Polling parameters for the collector's wait loops. The paper
// separates the handshake into postHandshake and waitHandshake (§7)
// instead of using a second collector thread; we do the same.
//
// Once the yield budget is spent the collector sleeps with exponential
// backoff: a fixed sleep either hammers the scheduler (too short) or
// stretches the sync1/sync2 window (too long) — the backoff starts at
// one microsecond, so a mutator that responds promptly costs almost
// nothing, and doubles up to a 100µs cap, which bounds how stale the
// collector's view of a slow mutator can get.
const (
	handshakeYieldBudget = 1 << 15 // Gosched calls before sleeping
	handshakeSleepMin    = time.Microsecond
	handshakeSleepMax    = 100 * time.Microsecond
)

// postHandshake publishes a new collector status; mutators observe it at
// their next safe point and update their own status.
func (c *Collector) postHandshake(s Status) {
	c.statusC.Store(uint32(s))
}

// waitHandshake blocks until every attached mutator has responded to the
// last posted status. Mutators attached mid-wait adopt the posted status
// on attach, so they never stall the handshake; detached mutators are
// skipped.
func (c *Collector) waitHandshake() {
	target := c.statusC.Load()
	for spin := 0; ; spin++ {
		if c.allMutatorsAt(target) {
			return
		}
		yieldOrSleep(spin)
	}
}

// yieldOrSleep cedes the processor while polling mutators: Gosched lets
// a cooperating mutator run immediately (it yields back at its next safe
// point). The yield budget is generous because falling back to a sleep
// is expensive on a busy single-P system — a sleeping collector is only
// rescheduled at the next preemption point, ~10 ms away, which would
// stretch the sync1/sync2 window and prematurely promote everything
// allocated inside it (§7.1). Past the budget, sleeps back off
// exponentially from handshakeSleepMin to the handshakeSleepMax cap.
func yieldOrSleep(spin int) {
	if spin < handshakeYieldBudget {
		runtime.Gosched()
		return
	}
	d := handshakeSleepMax
	if shift := spin - handshakeYieldBudget; shift < 7 {
		// 1, 2, 4, ... 64µs; from shift 7 the 100µs cap applies.
		d = handshakeSleepMin << uint(shift)
	}
	time.Sleep(d)
}

func (c *Collector) allMutatorsAt(target uint32) bool {
	c.muts.Lock()
	defer c.muts.Unlock()
	for _, m := range c.muts.list {
		if m.detached.Load() {
			continue
		}
		if m.status.Load() != target {
			return false
		}
	}
	return true
}

// handshake is the combined post-and-wait of Figure 3.
func (c *Collector) handshake(s Status) {
	c.postHandshake(s)
	c.waitHandshake()
}

// ackRound asks every mutator to pass one safe point and waits for it.
// It closes the trace-termination race: when a mutator acknowledges the
// epoch, every gray transition it performed before the acknowledgement
// is visible in its gray buffer. Each round's latency is recorded in
// the cycle record and emitted as an "ack" trace event.
func (c *Collector) ackRound() {
	start := time.Now()
	e := c.ackEpoch.Add(1)
	for spin := 0; ; spin++ {
		if c.allMutatorsAcked(e) {
			c.cyc.AckRounds++
			c.emit("ack", start, "", e, 0)
			return
		}
		yieldOrSleep(spin)
	}
}

func (c *Collector) allMutatorsAcked(e int64) bool {
	c.muts.Lock()
	defer c.muts.Unlock()
	for _, m := range c.muts.list {
		if m.detached.Load() {
			continue
		}
		if m.ack.Load() < e {
			return false
		}
	}
	return true
}
