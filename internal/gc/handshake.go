package gc

import (
	"runtime"
	"time"

	"gengc/internal/fault"
)

// The collector's wait loops poll with the named backoff constants of
// sched.go (HandshakeYieldBudget and friends — shared with the virtual
// scheduler's time model). The paper separates the handshake into
// postHandshake and waitHandshake (§7) instead of using a second
// collector thread; we do the same.
const (
	// watchdogCheckMask gates the watchdog's clock reads while the
	// wait is still in its yield phase: the stall deadline is checked
	// once per this many iterations, keeping the hot spin loop free
	// of time.Now calls. Once the wait falls back to sleeping, every
	// iteration already pays a sleep — whose true wall cost is timer
	// granularity, often ~1ms — so the gate is bypassed there: at one
	// check per 256 sleeps the watchdog would only look every ~250ms
	// and miss short stalls entirely.
	watchdogCheckMask = 255
)

// postHandshake publishes a new collector status; mutators observe it at
// their next safe point and update their own status.
func (c *Collector) postHandshake(s Status) {
	// Delay-only seam: the publication itself must happen, so a
	// Drop/Fail rule here degrades to its configured delay (and the
	// virtual scheduler just parks the collector before the store).
	c.seamDelay(fault.HandshakePost)
	c.statusC.Store(uint32(s))
}

// stallWatch tracks one wait's watchdog state: when the wait began,
// which mutators were already reported, and the iteration gate.
type stallWatch struct {
	phase    string
	start    time.Time
	reported map[int]bool
	iter     int
}

// newWatch opens a watchdog window for one handshake or ack wait. The
// clock is read once here; the per-iteration cost until a deadline
// fires is one counter increment and mask test.
func (c *Collector) newWatch(phase string) stallWatch {
	return stallWatch{phase: phase, start: time.Now()}
}

// watchdog runs the stall check once per gated iteration (every
// iteration when slow is set — the wait is already sleeping between
// polls). lagging reports whether a mutator has yet to respond to the
// wait in progress. It returns true when the wait must be abandoned:
// the collector is closing and the handshake has been wedged past its
// grace period — the caller aborts the cycle (Stop documents why that
// is safe).
func (c *Collector) watchdog(w *stallWatch, lagging func(*Mutator) bool, slow bool) (abort bool) {
	w.iter++
	if !slow && w.iter&watchdogCheckMask != 0 {
		return false
	}
	deadline := c.cfg.StallTimeout
	closing := c.closed.Load()
	if deadline <= 0 && !closing {
		return false // watchdog disabled, nothing to time
	}
	elapsed := time.Since(w.start)
	grace := deadline
	if grace <= 0 {
		grace = StopGraceDefault
	}
	if closing && elapsed > grace {
		return true
	}
	if deadline <= 0 || elapsed < deadline {
		return false
	}
	// Past the deadline: report every laggard exactly once per wait.
	c.muts.Lock()
	snapshot := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range snapshot {
		if m.detached.Load() || !lagging(m) || w.reported[m.id] {
			continue
		}
		if w.reported == nil {
			w.reported = make(map[int]bool)
		}
		w.reported[m.id] = true
		c.notifyStall(Stall{Mutator: m.id, Phase: w.phase, Waited: elapsed})
	}
	return false
}

// waitHandshake blocks until every attached mutator has responded to
// the last posted status, watched by the stall watchdog. Mutators
// attached mid-wait adopt the posted status on attach, so they never
// stall the handshake; detached mutators are skipped. The false return
// is the close-abort path: the collector is stopping and a mutator
// stayed unresponsive past the grace period.
func (c *Collector) waitHandshake() bool {
	target := c.statusC.Load()
	if handled, ok := c.seamWait(fault.HandshakeWait,
		func() bool { return c.allMutatorsAt(target) }); handled {
		return ok
	}
	w := c.newWatch(phaseLabel(Status(target)))
	lagging := func(m *Mutator) bool { return m.status.Load() != target }
	for spin := 0; ; spin++ {
		if c.allMutatorsAt(target) {
			return true
		}
		if c.watchdog(&w, lagging, spin >= HandshakeYieldBudget) {
			return false
		}
		yieldOrSleep(spin)
	}
}

// phaseLabel names the wait for stall reports: the three handshake
// rounds wait for sync1, sync2 and async (the paper's third handshake)
// respectively.
func phaseLabel(target Status) string {
	switch target {
	case StatusSync1:
		return "sync1"
	case StatusSync2:
		return "sync2"
	}
	return "sync3"
}

// yieldOrSleep cedes the processor while polling mutators: Gosched lets
// a cooperating mutator run immediately (it yields back at its next safe
// point). Past the yield budget, sleeps back off exponentially from
// HandshakeSleepMin to the HandshakeSleepMax cap (the constants and
// their rationale live in sched.go).
func yieldOrSleep(spin int) {
	if spin < HandshakeYieldBudget {
		runtime.Gosched()
		return
	}
	d := HandshakeSleepMax
	if shift := spin - HandshakeYieldBudget; shift < HandshakeBackoffDoublings {
		// 1, 2, 4, ... 64µs; from the final doubling the cap applies.
		d = HandshakeSleepMin << uint(shift)
	}
	time.Sleep(d)
}

func (c *Collector) allMutatorsAt(target uint32) bool {
	c.muts.Lock()
	defer c.muts.Unlock()
	for _, m := range c.muts.list {
		if m.detached.Load() {
			continue
		}
		if m.status.Load() != target {
			return false
		}
	}
	return true
}

// handshake is the combined post-and-wait of Figure 3.
func (c *Collector) handshake(s Status) bool {
	c.postHandshake(s)
	return c.waitHandshake()
}

// ackRound asks every mutator to pass one safe point and waits for it.
// It closes the trace-termination race: when a mutator acknowledges the
// epoch, every gray transition it performed before the acknowledgement
// is visible in its gray buffer. Each round's latency is recorded in
// the cycle record and emitted as an "ack" trace event. Like
// waitHandshake it is watched by the stall watchdog and returns false
// only on the close-abort path.
func (c *Collector) ackRound() bool {
	// Delay-only seam (a Drop/Fail rule degrades to its delay): the
	// epoch bump must happen or the round never completes.
	c.seamDelay(fault.HandshakeAck)
	start := time.Now()
	e := c.ackEpoch.Add(1)
	if handled, ok := c.seamWait(fault.AckWait,
		func() bool { return c.allMutatorsAcked(e) }); handled {
		if !ok {
			return false
		}
		c.cyc.AckRounds++
		c.emit("ack", start, "", e, 0)
		return true
	}
	w := c.newWatch("ack")
	lagging := func(m *Mutator) bool { return m.ack.Load() < e }
	for spin := 0; ; spin++ {
		if c.allMutatorsAcked(e) {
			c.cyc.AckRounds++
			c.emit("ack", start, "", e, 0)
			return true
		}
		if c.watchdog(&w, lagging, spin >= HandshakeYieldBudget) {
			return false
		}
		yieldOrSleep(spin)
	}
}

func (c *Collector) allMutatorsAcked(e int64) bool {
	c.muts.Lock()
	defer c.muts.Unlock()
	for _, m := range c.muts.list {
		if m.detached.Load() {
			continue
		}
		if m.ack.Load() < e {
			return false
		}
	}
	return true
}
