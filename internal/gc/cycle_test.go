package gc

import (
	"sync"
	"testing"

	"gengc/internal/heap"
)

// collectWhileCooperating runs a synchronous cycle while keeping the
// mutators responsive from the test goroutine's perspective: each
// mutator is parked in a goroutine that cooperates until the cycle ends.
func collectWhileCooperating(c *Collector, full bool, muts ...*Mutator) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for _, m := range muts {
		wg.Add(1)
		go func(m *Mutator) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					m.Cooperate()
				}
			}
		}(m)
	}
	c.CollectNow(full)
	close(done)
	wg.Wait()
}

// TestPartialPromotesSurvivors: §3 — after a partial collection the
// survivors are black (old) and are neither traced nor reclaimed by the
// next partial.
func TestPartialPromotesSurvivors(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 1, 0)
	m.PushRoot(a)
	garbage := mustAlloc(t, m, 0, 32)
	_ = garbage

	collectWhileCooperating(c, false, m)
	if got := c.H.Color(a); got != heap.Black {
		t.Fatalf("survivor color = %v, want black (promoted)", got)
	}
	if c.H.ValidObject(garbage) {
		t.Fatal("garbage survived the partial collection")
	}

	// The next partial must not rescan the promoted object.
	scanned := func() int {
		cs := c.Metrics().Cycles()
		return cs[len(cs)-1].ObjectsScanned
	}
	collectWhileCooperating(c, false, m)
	// Only the globals object is re-grayed as a root; the promoted
	// object must not be traced (no dirty card points at it).
	if got := scanned(); got > 2 {
		t.Errorf("second partial scanned %d objects, want <= 2 (old gen must not be traced)", got)
	}
	if c.H.Color(a) != heap.Black {
		t.Error("promoted object lost its color")
	}
}

// TestFullCollectsOldGarbage: garbage promoted by a partial is reclaimed
// by the next full collection (InitFullCollection recolors black).
func TestFullCollectsOldGarbage(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	r := m.PushRoot(a)
	collectWhileCooperating(c, false, m)
	if c.H.Color(a) != heap.Black {
		t.Fatal("not promoted")
	}
	m.SetRoot(r, 0) // now it is old garbage
	collectWhileCooperating(c, false, m)
	if !c.H.ValidObject(a) {
		t.Fatal("partial collected an old object")
	}
	collectWhileCooperating(c, true, m)
	if c.H.ValidObject(a) {
		t.Fatal("full collection did not reclaim old garbage")
	}
}

// TestInterGenerationalPointerKeepsYoungAlive: a young object reachable
// only through an old object's slot must survive a partial collection —
// the card-marking invariant of §3.1.
func TestInterGenerationalPointerKeepsYoungAlive(t *testing.T) {
	for _, mode := range []Mode{Generational, GenerationalAging} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{Mode: mode, HeapBytes: 4 << 20, YoungBytes: 1 << 20, OldAge: 1}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := c.NewMutator()
			old := mustAlloc(t, m, 1, 0)
			m.PushRoot(old)
			// Promote (tenure threshold 1 for aging: survive one cycle).
			collectWhileCooperating(c, false, m)
			if mode == GenerationalAging {
				collectWhileCooperating(c, false, m)
			}
			if c.H.Color(old) != heap.Black {
				t.Fatalf("old object color = %v, want black", c.H.Color(old))
			}
			// Store a young object reachable ONLY via the old object.
			young := mustAlloc(t, m, 0, 32)
			m.Update(old, 0, young)
			collectWhileCooperating(c, false, m)
			if !c.H.ValidObject(young) {
				t.Fatal("young object referenced from old generation was collected")
			}
			if m.Read(old, 0) != young {
				t.Fatal("old object's slot corrupted")
			}
			if err := c.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := c.VerifyCardInvariant(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGlobalRootsSurvive: objects reachable only from a global root
// survive partial and full collections.
func TestGlobalRootsSurvive(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 48)
	m.Update(c.Globals(), 7, a)
	collectWhileCooperating(c, false, m)
	if !c.H.ValidObject(a) {
		t.Fatal("global-rooted object collected by partial")
	}
	collectWhileCooperating(c, true, m)
	if !c.H.ValidObject(a) {
		t.Fatal("global-rooted object collected by full")
	}
	m.Update(c.Globals(), 7, 0)
	collectWhileCooperating(c, true, m)
	collectWhileCooperating(c, true, m)
	if c.H.ValidObject(a) {
		t.Fatal("dropped global not reclaimed after two fulls")
	}
}

// TestNonGenerationalReclaimsEachCycle: with the toggle, garbage made
// before cycle N is reclaimed by cycle N+1 at the latest.
func TestNonGenerationalReclaimsEachCycle(t *testing.T) {
	c := newTestCollector(t, NonGenerational)
	m := c.NewMutator()
	keep := mustAlloc(t, m, 0, 32)
	m.PushRoot(keep)
	var garbage []heap.Addr
	for i := 0; i < 50; i++ {
		garbage = append(garbage, mustAlloc(t, m, 0, 32))
	}
	collectWhileCooperating(c, true, m)
	collectWhileCooperating(c, true, m)
	for _, g := range garbage {
		if c.H.ValidObject(g) {
			t.Fatalf("garbage %#x survived two full cycles", g)
		}
	}
	if !c.H.ValidObject(keep) {
		t.Fatal("rooted object collected")
	}
}

// TestYellowObjectsNotPromoted: objects created during a partial cycle
// carry the allocation color and are not promoted by that cycle (§4) —
// and are collectible in the next cycle once dead.
func TestYellowObjectsNotPromoted(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	m.PushRoot(mustAlloc(t, m, 0, 32))

	var during heap.Addr
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		allocated := false
		for {
			select {
			case <-done:
				return
			default:
				m.Cooperate()
				// Allocate one object mid-cycle, after the toggle.
				if !allocated && c.tracing.Load() &&
					Status(m.status.Load()) == StatusAsync {
					during = mustAlloc(t, m, 0, 32)
					allocated = true
				}
			}
		}
	}()
	c.CollectNow(false)
	close(done)
	wg.Wait()
	if during == 0 {
		t.Skip("cycle completed before the mid-cycle allocation")
	}
	if got := c.H.Color(during); got == heap.Black {
		t.Fatal("object created during the cycle was promoted")
	}
	// It is garbage (never rooted): the next partial must reclaim it.
	collectWhileCooperating(c, false, m)
	if c.H.ValidObject(during) {
		t.Fatal("yellow garbage not reclaimed by the following partial")
	}
}

// TestCardsClearedBySimplePartial: after a partial collection in the
// simple algorithm every previously dirty card is clean (all survivors
// were promoted, §3.2).
func TestCardsClearedBySimplePartial(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 2, 0)
	y := mustAlloc(t, m, 0, 32)
	m.PushRoot(x)
	m.Update(x, 0, y)
	ci := c.Cards.IndexOf(x)
	if !c.Cards.IsDirty(ci) {
		t.Fatal("setup: card not dirty")
	}
	collectWhileCooperating(c, false, m)
	if c.Cards.IsDirty(ci) {
		t.Fatal("card still dirty after simple partial")
	}
}

// TestStatsRecorded: cycles record freed counts and kinds.
func TestStatsRecorded(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	for i := 0; i < 20; i++ {
		mustAlloc(t, m, 0, 64)
	}
	collectWhileCooperating(c, false, m)
	collectWhileCooperating(c, true, m)
	cs := c.Metrics().Cycles()
	if len(cs) != 2 {
		t.Fatalf("%d cycles recorded, want 2", len(cs))
	}
	if cs[0].Kind.String() != "partial" || cs[1].Kind.String() != "full" {
		t.Errorf("kinds = %v, %v", cs[0].Kind, cs[1].Kind)
	}
	if cs[0].ObjectsFreed < 20 {
		t.Errorf("partial freed %d, want >= 20", cs[0].ObjectsFreed)
	}
	if cs[0].Duration <= 0 {
		t.Error("no duration recorded")
	}
	if c.CyclesDone() != 2 || c.FullsDone() != 1 {
		t.Errorf("counters = %d/%d", c.CyclesDone(), c.FullsDone())
	}
}

// TestAllBlackBlockSkipSoundness: a fully black block skipped by partial
// sweeps must still have its dead objects reclaimed by a full
// collection.
func TestAllBlackBlockSkipSoundness(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	// Fill whole blocks with objects, root them, promote them.
	var roots []int
	var objs []heap.Addr
	for i := 0; i < 3*heap.BlockSize/64; i++ {
		a := mustAlloc(t, m, 0, 64)
		roots = append(roots, m.PushRoot(a))
		objs = append(objs, a)
	}
	collectWhileCooperating(c, false, m)
	// At least one block should now be hinted all-black.
	hinted := 0
	for b := 1; b < c.H.NumBlocks(); b++ {
		if c.H.AllBlackHint(b) {
			hinted++
		}
	}
	if hinted == 0 {
		t.Fatal("no all-black blocks after promoting block-filling objects")
	}
	// Drop everything; partials skip the black blocks (objects stay),
	// a full must reclaim them.
	for _, r := range roots {
		m.SetRoot(r, 0)
	}
	collectWhileCooperating(c, false, m)
	alive := 0
	for _, a := range objs {
		if c.H.ValidObject(a) {
			alive++
		}
	}
	if alive == 0 {
		t.Fatal("partial reclaimed promoted (old) objects")
	}
	collectWhileCooperating(c, true, m)
	for _, a := range objs {
		if c.H.ValidObject(a) {
			t.Fatal("full collection missed dead old objects in hinted blocks")
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCycleWithNoMutators: collections run fine with an empty registry.
func TestCycleWithNoMutators(t *testing.T) {
	c := newTestCollector(t, Generational)
	c.CollectNow(false)
	c.CollectNow(true)
	if c.CyclesDone() != 2 {
		t.Fatalf("cycles = %d", c.CyclesDone())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestMutatorAttachMidCycle: attaching a mutator during a cycle must not
// wedge the handshake protocol.
func TestMutatorAttachMidCycle(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	mustAlloc(t, m, 0, 32)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		attached := false
		for {
			select {
			case <-done:
				return
			default:
				m.Cooperate()
				if !attached && Status(c.statusC.Load()) != StatusAsync {
					m2 := c.NewMutator()
					a := mustAlloc(t, m2, 0, 32)
					m2.PushRoot(a)
					m2.Cooperate()
					m2.Detach()
					attached = true
				}
			}
		}
	}()
	c.CollectNow(false)
	c.CollectNow(true)
	close(done)
	wg.Wait()
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}
