package gc

import (
	"fmt"
	"strings"
	"time"

	"gengc/internal/heap"
	"gengc/internal/metrics"
)

// Cycle runs one complete collection cycle — the "collection cycle" of
// Figure 2 (simple promotion and non-generational) or Figure 5 (aging):
//
//	clear: if full collection, InitFullCollection; Handshake(sync1)
//	mark:  postHandshake(sync2); ClearCards and the color toggle
//	       (order per mode); waitHandshake; postHandshake(async);
//	       mark global roots; waitHandshake
//	trace: process gray objects to the fixpoint
//	sweep: reclaim clear-colored objects
//
// Cycles are serialized; mutators keep running throughout.
func (c *Collector) Cycle(full bool) {
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()

	start := time.Now()
	youngAtStart := c.pacer.YoungAlloc()
	kind := metrics.Partial
	if full {
		kind = metrics.Full
	}
	c.cyc = metrics.Cycle{Kind: kind, Workers: c.cfg.Workers}
	if c.cfg.Workers > 1 {
		c.cyc.WorkerScanned = make([]int, c.cfg.Workers)
		c.cyc.WorkerFreed = make([]int, c.cfg.Workers)
	}
	c.H.Pages.Reset()
	allocBase := c.H.AllocStats()
	barrierBase := c.barrierFlushes.Load()

	// --- clear ---
	toggleFree := c.cfg.DisableColorToggle
	if full && !toggleFree {
		ifStart := time.Now()
		c.initFullCollection()
		c.emit("initfull", ifStart, "", 0, 0)
	}
	c.tracing.Store(true)
	c.phase.Store(uint32(phaseTracing))
	syncStart := time.Now()
	if !c.handshake(StatusSync1) {
		c.abortCycle(start, "sync1")
		return
	}
	c.cyc.Sync1Time = time.Since(syncStart)
	c.emit("sync", syncStart, "sync1", 0, 0)

	// --- mark ---
	sync2Start := time.Now()
	c.postHandshake(StatusSync2)
	switch c.cfg.Mode {
	case Generational:
		// Figure 2: ClearCards precedes the toggle, so the card
		// scan finishes before any yellow object can exist (§7.1).
		if !full {
			csStart := time.Now()
			if c.cfg.UseRememberedSet {
				c.drainRememberedSet()
			} else {
				c.clearCardsSimple()
			}
			c.emit("cardscan", csStart, "",
				int64(c.cyc.DirtyCards), int64(c.cyc.AllocatedCards))
		}
		c.switchColors()
	case GenerationalAging:
		// Figure 5: toggle first, then the card scan, which must
		// classify targets against the post-toggle colors. Full
		// collections skip the scan and keep the marks (§6).
		c.switchColors()
		if !full {
			csStart := time.Now()
			c.clearCardsAging()
			c.emit("cardscan", csStart, "",
				int64(c.cyc.DirtyCards), int64(c.cyc.AllocatedCards))
		}
	default:
		if !toggleFree {
			c.switchColors()
		}
	}
	if !c.waitHandshake() {
		c.abortCycle(start, "sync2")
		return
	}
	c.cyc.Sync2Time = time.Since(sync2Start)
	c.emit("sync", sync2Start, "sync2", 0, 0)

	sync3Start := time.Now()
	c.postHandshake(StatusAsync)
	// Mark global roots: the globals object itself is the root; its
	// referents are reached when the trace scans it. It may already be
	// black (it is old): re-gray it so a partial collection scans its
	// slots, since stores to globals mark cards like any heap store
	// but the globals object must act as a first-class root.
	// rootedGlobals records whether *this* graying admitted the globals
	// object to the trace — if the card scan already re-grayed it, it
	// is inside the InterGenScanned counters instead — so the simple
	// scheme's trace-side promotion arithmetic below can exclude it.
	rootsBefore := len(c.markStack)
	c.collectorMarkGray(c.globals)
	c.collectorShadeFrom(c.globals, heap.Black)
	rootedGlobals := len(c.markStack) > rootsBefore
	if !c.waitHandshake() {
		c.abortCycle(start, "sync3")
		return
	}
	c.cyc.Sync3Time = time.Since(sync3Start)
	c.emit("sync", sync3Start, "sync3", 0, 0)
	c.cyc.HandshakeTime = time.Since(syncStart)

	// --- trace ---
	traceStart := time.Now()
	if !c.trace() {
		c.abortCycle(start, "trace")
		return
	}
	c.cyc.TraceTime = time.Since(traceStart)
	c.emit("trace", traceStart, "", int64(c.cyc.ObjectsScanned), 0)

	// --- sweep ---
	sweepStart := time.Now()
	if toggleFree {
		c.sweepBlock.Store(0)
		c.phase.Store(uint32(phaseSweeping))
		c.sweepToggleFree()
	} else {
		c.sweep(full)
	}
	c.phase.Store(uint32(phaseIdle))
	c.H.ReclaimEmptyBlocks()
	c.cyc.SweepTime = time.Since(sweepStart)
	c.emit("sweep", sweepStart, "", int64(c.cyc.ObjectsFreed), 0)

	switch {
	case full:
		c.cyc.Survivors = c.cyc.ObjectsScanned
	case c.cfg.Mode == Generational:
		// Young survivors: everything blackened except the old
		// objects re-grayed by the card scan. In the simple scheme
		// every one of them is promoted, so the same arithmetic —
		// minus the globals root when it entered the trace as a root
		// rather than via a dirty card — yields the promotion counts;
		// byte-side, the trace accumulated each blackened object's
		// size, and the card scan / remembered-set drain the re-grayed
		// old volume.
		c.cyc.Survivors = c.cyc.ObjectsScanned - c.cyc.InterGenScanned
		promoted := c.cyc.Survivors
		promotedBytes := c.cyc.TraceBytes - c.cyc.InterGenBytes
		if rootedGlobals {
			promoted--
			promotedBytes -= c.H.SizeOf(c.globals)
		}
		if promoted < 0 {
			promoted = 0
		}
		if promotedBytes < 0 {
			promotedBytes = 0
		}
		c.cyc.PromotedObjects = promoted
		c.cyc.PromotedBytes = promotedBytes
	case c.cfg.Mode == GenerationalAging:
		// Aging: the sweep already counted (and demoted) the young
		// survivors below the threshold. Everything else the trace
		// blackened — minus the re-grayed old objects and the globals
		// root — reached the threshold and stayed black: the newly
		// tenured cohort. The sweep itself cannot count it (a freshly
		// tenured object is indistinguishable from one tenured cycles
		// ago), but the trace only ever blackens young objects in a
		// partial, so the subtraction is exact.
		promoted := c.cyc.ObjectsScanned - c.cyc.InterGenScanned - c.cyc.Survivors
		promotedBytes := c.cyc.TraceBytes - c.cyc.InterGenBytes - c.cyc.SurvivorBytes
		if rootedGlobals {
			promoted--
			promotedBytes -= c.H.SizeOf(c.globals)
		}
		if promoted < 0 {
			promoted = 0
		}
		if promotedBytes < 0 {
			promotedBytes = 0
		}
		c.cyc.PromotedObjects = promoted
		c.cyc.PromotedBytes = promotedBytes
		if promoted > 0 {
			// The tenure bucket closes the survival histogram: its
			// final populated index is the threshold age.
			oldest := int(c.oldestAge())
			for len(c.cyc.SurvivalByAge) <= oldest {
				c.cyc.SurvivalByAge = append(c.cyc.SurvivalByAge, 0)
			}
			c.cyc.SurvivalByAge[oldest] += int64(promoted)
		}
	}
	// Trim the sweep's fixed-size survival histogram down to its
	// populated prefix before the record is retained.
	c.cyc.SurvivalByAge = trimTrailingZeros(c.cyc.SurvivalByAge)

	c.cyc.Duration = time.Since(start)
	c.cyc.PagesTouched = c.H.Pages.Count()
	// Allocator activity while the cycle ran: the delta of the shard
	// counters over the cycle, recorded per cycle and emitted as an
	// "allocstats" point event.
	allocNow := c.H.AllocStats()
	c.cyc.AllocRefills = allocNow.Refills - allocBase.Refills
	c.cyc.AllocContended = (allocNow.ShardContended + allocNow.PageContended) -
		(allocBase.ShardContended + allocBase.PageContended)
	c.cyc.BarrierFlushes = c.barrierFlushes.Load() - barrierBase
	c.emit("allocstats", start, "", c.cyc.AllocRefills, c.cyc.AllocContended)
	if !full && c.cfg.Mode.IsGenerational() {
		c.emit("demographics", start, survivalKey(c.cyc.SurvivalByAge),
			int64(c.cyc.PromotedObjects), int64(c.cyc.PromotedBytes))
	}
	c.emit("cycle", start, kind.String(),
		int64(c.cyc.ObjectsScanned), int64(c.cyc.ObjectsFreed))
	c.flushTrace()
	c.demo.Lock()
	c.demo.AddCycle(c.cyc)
	c.demo.Unlock()
	if !full && c.cfg.Mode.IsGenerational() {
		c.pacer.NotePromotion(c.cyc.PromotedBytes, int(youngAtStart))
	}
	c.rec.Record(c.cyc)
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log,
			"gc %s: %v sync=%v scanned=%d intergen=%d dirty=%d/%d freed=%d (%d B) survivors=%d pages=%d\n",
			kind, c.cyc.Duration.Round(time.Microsecond),
			c.cyc.HandshakeTime.Round(time.Microsecond),
			c.cyc.ObjectsScanned, c.cyc.InterGenScanned,
			c.cyc.DirtyCards, c.cyc.AllocatedCards,
			c.cyc.ObjectsFreed, c.cyc.BytesFreed, c.cyc.Survivors,
			c.cyc.PagesTouched)
	}
	if !full && c.cfg.DynamicTenure {
		c.pacer.NoteSurvival(c.cyc.ObjectsFreed, c.cyc.Survivors)
	}
	// Retire the cycle with the pacer: consume the young bytes the
	// cycle covered (bytes allocated while it ran are young for the
	// *next* cycle), reconcile the occupancy estimate against the
	// heap's shard counters, and — after a partial — learn whether the
	// old generation the partial cannot reclaim has grown past the
	// target, making a full collection due.
	if c.pacer.EndCycle(youngAtStart, c.H.AllocatedBytes(), full) {
		c.request(true)
	}
	c.cyclesDone.Add(1)
	if full {
		c.fullsDone.Add(1)
	}
	if c.cfg.SelfCheck {
		if err := c.selfCheckCycle(); err != nil {
			c.recordSelfCheckViolation(fmt.Errorf("after %s cycle %d: %w",
				kind, c.cyclesDone.Load(), err))
		}
	}
}

// trimTrailingZeros shrinks a histogram slice to its populated prefix;
// an all-zero slice becomes nil.
func trimTrailingZeros(v []int64) []int64 {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return v[:n]
}

// survivalKey renders a survival histogram as "age:count,..." pairs for
// the demographics trace event's K field, skipping empty buckets.
func survivalKey(v []int64) string {
	if len(v) == 0 {
		return ""
	}
	var b strings.Builder
	for age, n := range v {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", age, n)
	}
	return b.String()
}

// abortCycle abandons a collection whose handshake was wedged past the
// close grace period (Stop). It never runs outside a close: the abort
// converges the protocol state — status back to async, trace predicate
// off — and skips the sweep entirely, so no object is freed on the
// strength of the incomplete trace. Objects left gray or unswept are
// floating garbage the closing runtime never needs back.
func (c *Collector) abortCycle(start time.Time, phase string) {
	c.postHandshake(StatusAsync)
	c.tracing.Store(false)
	c.phase.Store(uint32(phaseIdle))
	c.markStack = c.markStack[:0]
	c.tracePending.Store(0)
	c.abortedCycles.Add(1)
	c.emit("cycleabort", start, phase, 0, 0)
	c.flushTrace()
	c.triggerDump("cycleabort")
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "gc: cycle aborted at close (wedged in %s after %v)\n",
			phase, time.Since(start).Round(time.Millisecond))
	}
}
