package gc

import (
	"fmt"
	"time"

	"gengc/internal/heap"
	"gengc/internal/metrics"
)

// Cycle runs one complete collection cycle — the "collection cycle" of
// Figure 2 (simple promotion and non-generational) or Figure 5 (aging):
//
//	clear: if full collection, InitFullCollection; Handshake(sync1)
//	mark:  postHandshake(sync2); ClearCards and the color toggle
//	       (order per mode); waitHandshake; postHandshake(async);
//	       mark global roots; waitHandshake
//	trace: process gray objects to the fixpoint
//	sweep: reclaim clear-colored objects
//
// Cycles are serialized; mutators keep running throughout.
func (c *Collector) Cycle(full bool) {
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()

	start := time.Now()
	youngAtStart := c.pacer.YoungAlloc()
	kind := metrics.Partial
	if full {
		kind = metrics.Full
	}
	c.cyc = metrics.Cycle{Kind: kind, Workers: c.cfg.Workers}
	if c.cfg.Workers > 1 {
		c.cyc.WorkerScanned = make([]int, c.cfg.Workers)
		c.cyc.WorkerFreed = make([]int, c.cfg.Workers)
	}
	c.H.Pages.Reset()
	allocBase := c.H.AllocStats()
	barrierBase := c.barrierFlushes.Load()

	// --- clear ---
	toggleFree := c.cfg.DisableColorToggle
	if full && !toggleFree {
		ifStart := time.Now()
		c.initFullCollection()
		c.emit("initfull", ifStart, "", 0, 0)
	}
	c.tracing.Store(true)
	c.phase.Store(uint32(phaseTracing))
	syncStart := time.Now()
	if !c.handshake(StatusSync1) {
		c.abortCycle(start, "sync1")
		return
	}
	c.cyc.Sync1Time = time.Since(syncStart)
	c.emit("sync", syncStart, "sync1", 0, 0)

	// --- mark ---
	sync2Start := time.Now()
	c.postHandshake(StatusSync2)
	switch c.cfg.Mode {
	case Generational:
		// Figure 2: ClearCards precedes the toggle, so the card
		// scan finishes before any yellow object can exist (§7.1).
		if !full {
			csStart := time.Now()
			if c.cfg.UseRememberedSet {
				c.drainRememberedSet()
			} else {
				c.clearCardsSimple()
			}
			c.emit("cardscan", csStart, "",
				int64(c.cyc.DirtyCards), int64(c.cyc.AllocatedCards))
		}
		c.switchColors()
	case GenerationalAging:
		// Figure 5: toggle first, then the card scan, which must
		// classify targets against the post-toggle colors. Full
		// collections skip the scan and keep the marks (§6).
		c.switchColors()
		if !full {
			csStart := time.Now()
			c.clearCardsAging()
			c.emit("cardscan", csStart, "",
				int64(c.cyc.DirtyCards), int64(c.cyc.AllocatedCards))
		}
	default:
		if !toggleFree {
			c.switchColors()
		}
	}
	if !c.waitHandshake() {
		c.abortCycle(start, "sync2")
		return
	}
	c.cyc.Sync2Time = time.Since(sync2Start)
	c.emit("sync", sync2Start, "sync2", 0, 0)

	sync3Start := time.Now()
	c.postHandshake(StatusAsync)
	// Mark global roots: the globals object itself is the root; its
	// referents are reached when the trace scans it. It may already be
	// black (it is old): re-gray it so a partial collection scans its
	// slots, since stores to globals mark cards like any heap store
	// but the globals object must act as a first-class root.
	c.collectorMarkGray(c.globals)
	c.collectorShadeFrom(c.globals, heap.Black)
	if !c.waitHandshake() {
		c.abortCycle(start, "sync3")
		return
	}
	c.cyc.Sync3Time = time.Since(sync3Start)
	c.emit("sync", sync3Start, "sync3", 0, 0)
	c.cyc.HandshakeTime = time.Since(syncStart)

	// --- trace ---
	traceStart := time.Now()
	if !c.trace() {
		c.abortCycle(start, "trace")
		return
	}
	c.cyc.TraceTime = time.Since(traceStart)
	c.emit("trace", traceStart, "", int64(c.cyc.ObjectsScanned), 0)

	// --- sweep ---
	sweepStart := time.Now()
	if toggleFree {
		c.sweepBlock.Store(0)
		c.phase.Store(uint32(phaseSweeping))
		c.sweepToggleFree()
	} else {
		c.sweep(full)
	}
	c.phase.Store(uint32(phaseIdle))
	c.H.ReclaimEmptyBlocks()
	c.cyc.SweepTime = time.Since(sweepStart)
	c.emit("sweep", sweepStart, "", int64(c.cyc.ObjectsFreed), 0)

	switch {
	case full:
		c.cyc.Survivors = c.cyc.ObjectsScanned
	case c.cfg.Mode == Generational:
		// Young survivors: everything blackened except the old
		// objects re-grayed by the card scan.
		c.cyc.Survivors = c.cyc.ObjectsScanned - c.cyc.InterGenScanned
	}

	c.cyc.Duration = time.Since(start)
	c.cyc.PagesTouched = c.H.Pages.Count()
	// Allocator activity while the cycle ran: the delta of the shard
	// counters over the cycle, recorded per cycle and emitted as an
	// "allocstats" point event.
	allocNow := c.H.AllocStats()
	c.cyc.AllocRefills = allocNow.Refills - allocBase.Refills
	c.cyc.AllocContended = (allocNow.ShardContended + allocNow.PageContended) -
		(allocBase.ShardContended + allocBase.PageContended)
	c.cyc.BarrierFlushes = c.barrierFlushes.Load() - barrierBase
	c.emit("allocstats", start, "", c.cyc.AllocRefills, c.cyc.AllocContended)
	c.emit("cycle", start, kind.String(),
		int64(c.cyc.ObjectsScanned), int64(c.cyc.ObjectsFreed))
	c.flushTrace()
	c.rec.Record(c.cyc)
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log,
			"gc %s: %v sync=%v scanned=%d intergen=%d dirty=%d/%d freed=%d (%d B) survivors=%d pages=%d\n",
			kind, c.cyc.Duration.Round(time.Microsecond),
			c.cyc.HandshakeTime.Round(time.Microsecond),
			c.cyc.ObjectsScanned, c.cyc.InterGenScanned,
			c.cyc.DirtyCards, c.cyc.AllocatedCards,
			c.cyc.ObjectsFreed, c.cyc.BytesFreed, c.cyc.Survivors,
			c.cyc.PagesTouched)
	}
	if !full && c.cfg.DynamicTenure {
		c.pacer.NoteSurvival(c.cyc.ObjectsFreed, c.cyc.Survivors)
	}
	// Retire the cycle with the pacer: consume the young bytes the
	// cycle covered (bytes allocated while it ran are young for the
	// *next* cycle), reconcile the occupancy estimate against the
	// heap's shard counters, and — after a partial — learn whether the
	// old generation the partial cannot reclaim has grown past the
	// target, making a full collection due.
	if c.pacer.EndCycle(youngAtStart, c.H.AllocatedBytes(), full) {
		c.request(true)
	}
	c.cyclesDone.Add(1)
	if full {
		c.fullsDone.Add(1)
	}
	if c.cfg.SelfCheck {
		if err := c.selfCheckCycle(); err != nil {
			c.recordSelfCheckViolation(fmt.Errorf("after %s cycle %d: %w",
				kind, c.cyclesDone.Load(), err))
		}
	}
}

// abortCycle abandons a collection whose handshake was wedged past the
// close grace period (Stop). It never runs outside a close: the abort
// converges the protocol state — status back to async, trace predicate
// off — and skips the sweep entirely, so no object is freed on the
// strength of the incomplete trace. Objects left gray or unswept are
// floating garbage the closing runtime never needs back.
func (c *Collector) abortCycle(start time.Time, phase string) {
	c.postHandshake(StatusAsync)
	c.tracing.Store(false)
	c.phase.Store(uint32(phaseIdle))
	c.markStack = c.markStack[:0]
	c.tracePending.Store(0)
	c.abortedCycles.Add(1)
	c.emit("cycleabort", start, phase, 0, 0)
	c.flushTrace()
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "gc: cycle aborted at close (wedged in %s after %v)\n",
			phase, time.Since(start).Round(time.Millisecond))
	}
}
