package gc

import (
	"gengc/internal/fault"
	"gengc/internal/heap"
)

// drainDirtyAllocatedCards visits every dirty card overlapping a block
// assigned to some size class, draining the card table a word at a
// time: each 64-card word's dirty bits are fetched and cleared with one
// atomic and-not, and fn runs with the card already clear — the §7.2
// step-1 clear, batched. Callers that need the mark back (step 3)
// re-set it with MarkIndex.
//
// Dirty marks can only exist where objects exist (cards are marked with
// an object's address), so restricting the scan to allocated regions is
// sound and keeps the §7.1 window — during which mutators promote
// freshly created objects — short. Regions are block-aligned and cards
// never exceed a block, so regions cover whole cards. Returns the number
// of cards scanned (the Figure 22 "allocated cards" denominator).
func (c *Collector) drainDirtyAllocatedCards(fn func(ci int)) int {
	scan := fn
	if c.seamArmed() {
		// Per-card seam hit inside the §7.2 window: the card's mark is
		// already cleared (step 1) but its objects are not yet scanned
		// (step 2) — the exact interval where a mutator's concurrent
		// update-then-mark must not be lost. Wrapped only when armed so
		// the production scan stays branch-free per card.
		scan = func(ci int) {
			c.seamDelay(fault.CardScan)
			fn(ci)
		}
	}
	n := 0
	pages := c.H.Pages != nil
	c.H.AllocatedRegions(func(start, end heap.Addr) {
		lo := c.Cards.IndexOf(start)
		hi := c.Cards.IndexOf(end - 1)
		n += hi - lo + 1
		if pages {
			// The scan reads the card table across the whole
			// region; record the pages of the paper-layout
			// (byte-per-card) table it would touch.
			for ci := lo; ci <= hi; ci += heap.PageBytes {
				c.H.Pages.TouchCardByte(ci)
			}
			c.H.Pages.TouchCardByte(hi)
		}
		c.Cards.DrainDirtyIn(lo, hi, scan)
	})
	return n
}

// clearCardsSimple is ClearCards of Figure 3 (the simple promotion
// algorithm): walk the card table; for every dirty card clear the mark
// and re-gray the black (old) objects on it, so that the trace scans
// them and thereby reaches the young objects they reference.
//
// Clearing unconditionally is sound here because every object surviving
// the collection is promoted, turning all recorded inter-generational
// pointers into intra-generational ones (§3.2). The call happens before
// the color toggle, so no yellow objects exist yet (§7.1's required
// ordering).
func (c *Collector) clearCardsSimple() {
	c.cyc.AllocatedCards = c.drainDirtyAllocatedCards(func(ci int) {
		// The drain already cleared the mark (whole words at a time).
		c.cyc.DirtyCards++
		start, end := c.Cards.Bounds(ci)
		c.H.ForEachObjectInRange(start, end, func(addr heap.Addr) {
			c.H.Pages.TouchHeap(addr, 1)
			size := c.H.SizeOf(addr)
			c.cyc.AreaScanned += size
			if c.H.Color(addr) == heap.Black {
				c.H.Pages.TouchHeap(addr, size)
				if c.H.CasColor(addr, heap.Black, heap.Gray) {
					c.markStack = append(c.markStack, addr)
					c.cyc.InterGenScanned++
					c.cyc.InterGenBytes += size
				}
			}
		})
	})
	c.cyc.CardsScanned = c.cyc.AllocatedCards
}

// clearCardsAging is ClearCards of Figure 6: for every dirty card the
// collector (1) clears the mark, (2) scans the tenured objects on the
// card, graying their clear-colored targets, and (3) re-marks the card
// if any target is still young — the three-step order that §7.2 proves
// race-free against the mutator's update-then-mark barrier.
//
// It runs after the color toggle (Figure 5 order), so "young" targets
// are exactly the non-black, non-free objects.
//
// One extension over the paper's Figure 6 is required for soundness: a
// *young* object on a dirty card may hold pointers to younger objects,
// and when it tenures (at a later sweep, silently — no store occurs, so
// no card is marked) those pointers become inter-generational. If its
// card were cleared here, the next partial would miss them. Figure 6
// re-marks only for tenured sources; we additionally keep the card
// dirty while any young object on it holds a young target, so that by
// induction every old→young pointer is always covered by a dirty card.
// (The cost matches the simple algorithm's, which also examines young
// objects on dirty cards.)
func (c *Collector) clearCardsAging() {
	oldest := c.oldestAge()
	c.cyc.AllocatedCards = c.drainDirtyAllocatedCards(func(ci int) {
		c.cyc.DirtyCards++
		// Step 1 (clear) already happened: the drain fetched and
		// cleared this card's bit along with the rest of its word.
		remark := false
		start, end := c.Cards.Bounds(ci)
		c.H.ForEachObjectInRange(start, end, func(addr heap.Addr) {
			c.H.Pages.TouchHeap(addr, 1)
			size := c.H.SizeOf(addr)
			c.cyc.AreaScanned += size
			tenured := c.H.Color(addr) == heap.Black && c.H.Age(addr) >= oldest
			slots := c.H.Slots(addr)
			if !tenured {
				// Young source: keep the card while it points at
				// anything young, so its tenure cannot orphan an
				// inter-generational pointer.
				for i := 0; i < slots && !remark; i++ {
					t := c.H.LoadSlot(addr, i)
					if t == 0 {
						continue
					}
					if col := c.H.Color(t); col != heap.Black && col != heap.Blue {
						remark = true
					}
				}
				return
			}
			c.H.Pages.TouchAge(addr)
			c.H.Pages.TouchHeap(addr, size)
			c.cyc.InterGenScanned++
			c.cyc.InterGenBytes += size
			for i := 0; i < slots; i++ {
				t := c.H.LoadSlot(addr, i)
				if t == 0 {
					continue
				}
				c.collectorMarkGray(t) // step 2
				if col := c.H.Color(t); col != heap.Black && col != heap.Blue {
					remark = true
				}
			}
		})
		if remark {
			c.Cards.MarkIndex(ci) // step 3
		}
	})
	c.cyc.CardsScanned = c.cyc.AllocatedCards
}

// initFullCollection is InitFullCollection of Figures 3 and 6: recolor
// all black and gray objects with the (pre-toggle) allocation color so
// that the toggle makes the whole heap collectible. The simple algorithm
// also clears every card mark ("a full collection begins by clearing
// card marks, without tracing from the dirty cards", §3.2); the aging
// algorithm keeps them, because its inter-generational pointers can
// outlive a full collection (§6).
func (c *Collector) initFullCollection() {
	if c.cfg.Workers > 1 {
		c.initFullParallel()
	} else {
		// Recoloring invalidates every all-black hint.
		for b := 1; b < c.H.NumBlocks(); b++ {
			c.H.SetAllBlackHint(b, false)
		}
		ac := heap.Color(c.allocColor.Load())
		c.H.ForEachObject(func(addr heap.Addr) {
			c.H.Pages.TouchHeap(addr, 1)
			if col := c.H.Color(addr); col == heap.Black || col == heap.Gray {
				c.H.SetColor(addr, ac)
			}
		})
	}
	if c.cfg.Mode == Generational {
		c.Cards.ClearAll()
		for ci := 0; ci < c.Cards.NumCards(); ci += heap.PageBytes {
			c.H.Pages.TouchCardByte(ci)
		}
	}
}

// switchColors is SwitchAllocationClearColors of Figure 3: exchange the
// meaning of the two toggled colors. Only the collector writes these
// variables; mutators read them on every allocation and barrier call.
func (c *Collector) switchColors() {
	a := c.allocColor.Load()
	cl := c.clearColor.Load()
	c.clearColor.Store(a)
	c.allocColor.Store(cl)
}
