package gc

import (
	"fmt"

	"gengc/internal/heap"
)

// Verify audits heap reachability and collector invariants. It must be
// called while the mutators are quiescent (externally synchronized with
// the verifying goroutine) and no collection cycle is running; the usual
// pattern in tests is to join the worker goroutines first.
//
// Checks:
//   - allocator bookkeeping (delegated to heap.CheckIntegrity),
//   - exact shard-counter reconciliation — cached cells and allocation
//     totals against the per-block state and a color census — which is
//     only meaningful at quiescence (heap.ReconcileCounters),
//   - every object reachable from the global roots and the registered
//     mutators' roots is allocated (not blue) — i.e. the collector never
//     freed a live object,
//   - reachable addresses are valid object starts.
func (c *Collector) Verify() error {
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()
	// Fold every attached mutator's pending allocation accounting into
	// the shard counters so the reconciliation below is exact. Safe
	// because Verify's contract is quiescence: the caches' owners are
	// not allocating while we touch them.
	c.muts.Lock()
	attached := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range attached {
		c.H.PublishAllocs(&m.cache)
	}
	if err := c.H.CheckIntegrity(); err != nil {
		return err
	}
	if err := c.H.ReconcileCounters(); err != nil {
		return err
	}
	// With every cache published the heap counters are exact, so the
	// collector's own totals must agree with them to the object.
	if got, want := c.HeapBytes(), c.H.AllocatedBytes(); got != want {
		return fmt.Errorf("gc: collector heap-bytes total %d, heap counters say %d", got, want)
	}
	if got, want := c.HeapObjects(), c.H.AllocatedObjects(); got != want {
		return fmt.Errorf("gc: collector heap-objects total %d, heap counters say %d", got, want)
	}
	seen := make(map[heap.Addr]bool)
	var stack []heap.Addr
	push := func(a heap.Addr, what string) error {
		if a == 0 || seen[a] {
			return nil
		}
		if !c.H.ValidObject(a) {
			return fmt.Errorf("gc: %s references %#x which is not a live object (color %v)",
				what, a, c.H.Color(a))
		}
		seen[a] = true
		stack = append(stack, a)
		return nil
	}
	if err := push(c.globals, "global root object"); err != nil {
		return err
	}
	c.muts.Lock()
	muts := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range muts {
		for i, r := range m.roots {
			if err := push(r, fmt.Sprintf("mutator %d root %d", m.id, i)); err != nil {
				return err
			}
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		slots := c.H.Slots(x)
		for i := 0; i < slots; i++ {
			t := c.H.LoadSlot(x, i)
			if err := push(t, fmt.Sprintf("object %#x slot %d", x, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyCardInvariant checks the generational invariant of §3.1: every
// inter-generational pointer (a pointer from an old object to a young
// one) lies on a dirty card. Like Verify it requires quiescence. Only
// meaningful for the generational modes; in the simple-promotion mode
// old means black, in the aging mode old means black and tenured.
func (c *Collector) VerifyCardInvariant() error {
	if !c.cfg.Mode.IsGenerational() || c.cfg.UseRememberedSet {
		return nil
	}
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()
	oldest := c.oldestAge()
	var firstErr error
	c.H.ForEachObject(func(addr heap.Addr) {
		if firstErr != nil {
			return
		}
		if c.H.Color(addr) != heap.Black {
			return
		}
		if c.cfg.Mode == GenerationalAging && c.H.Age(addr) < oldest {
			return
		}
		if addr == c.globals {
			// The globals object is re-grayed as a root every
			// cycle, so it is exempt from the card discipline.
			return
		}
		slots := c.H.Slots(addr)
		for i := 0; i < slots; i++ {
			t := c.H.LoadSlot(addr, i)
			if t == 0 {
				continue
			}
			col := c.H.Color(t)
			young := col != heap.Black && col != heap.Blue
			if c.cfg.Mode == GenerationalAging && col == heap.Black && c.H.Age(t) < oldest {
				young = true
			}
			if young && !c.Cards.IsDirty(c.Cards.IndexOf(addr)) {
				firstErr = fmt.Errorf(
					"gc: inter-generational pointer %#x[%d] -> %#x (%v) on clean card %d",
					addr, i, t, col, c.Cards.IndexOf(addr))
				return
			}
		}
	})
	return firstErr
}
