package gc

import (
	"time"

	"gengc/internal/fault"
	"gengc/internal/heap"
)

// collectorMarkGray shades a clear-colored object gray and pushes it on
// the collector's mark stack. This is MarkGray as executed by the
// collector after the color toggle: only clear-colored objects are
// candidates (Figure 1's allocation-color case applies to mutators in
// sync1/sync2 only).
func (c *Collector) collectorMarkGray(x heap.Addr) {
	cc := heap.Color(c.clearColor.Load())
	c.collectorShadeFrom(x, cc)
}

// collectorShadeFrom performs the from→gray transition and pushes on
// success.
func (c *Collector) collectorShadeFrom(x heap.Addr, from heap.Color) {
	if x == 0 {
		return
	}
	if c.H.Color(x) == from && c.H.CasColor(x, from, heap.Gray) {
		c.markStack = append(c.markStack, x)
	}
}

// markBlack traces one gray object (Figure 3): shade its sons gray, then
// blacken it.
func (c *Collector) markBlack(x heap.Addr) {
	if c.H.Color(x) == heap.Black {
		return
	}
	slots := c.H.Slots(x)
	c.H.Pages.TouchHeap(x, heap.HeaderBytes+slots*heap.WordBytes)
	for i := 0; i < slots; i++ {
		c.collectorMarkGray(c.H.LoadSlot(x, i))
	}
	c.H.SetColor(x, heap.Black)
	c.cyc.ObjectsScanned++
	c.cyc.SlotsScanned += slots
	c.cyc.TraceBytes += c.H.SizeOf(x)
}

// drainStack traces until the collector's stack is empty, emitting one
// "drain" span when it did any work.
func (c *Collector) drainStack() {
	if len(c.markStack) == 0 {
		return
	}
	start := time.Now()
	before := c.cyc.ObjectsScanned
	// Hoisted armed check: the per-object seam hit (one schedulable
	// step per popped object under a virtual scheduler, one injector
	// evaluation under chaos) costs nothing when neither is installed.
	seam := c.seamArmed()
	for len(c.markStack) > 0 {
		if seam {
			c.seamDelay(fault.TraceDrain)
		}
		x := c.markStack[len(c.markStack)-1]
		c.markStack = c.markStack[:len(c.markStack)-1]
		c.markBlack(x)
	}
	if n := c.cyc.ObjectsScanned - before; n > 0 {
		c.emit("drain", start, "", int64(n), 0)
	}
}

// collectBuffers moves every mutator gray buffer (and any orphaned
// buffers of detached mutators) onto the mark stack, returning how many
// objects were collected.
func (c *Collector) collectBuffers() int {
	total := 0
	c.muts.Lock()
	snapshot := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range snapshot {
		m.gray.Lock()
		buf := m.gray.buf
		m.gray.buf = nil
		m.gray.Unlock()
		c.markStack = append(c.markStack, buf...)
		total += len(buf)
	}
	c.orphans.Lock()
	buf := c.orphans.buf
	c.orphans.buf = nil
	c.orphans.Unlock()
	c.markStack = append(c.markStack, buf...)
	total += len(buf)
	return total
}

// trace runs the concurrent trace to its fixpoint: "While there is a
// gray object: pick a gray object x; MarkBlack(x)" (Figure 2).
//
// Termination and completeness: every gray transition is a CAS, so the
// total number of gray events per cycle is bounded by the number of
// objects, and the write barrier (deletion barrier during async) keeps
// the snapshot-at-the-beginning invariant — any object reachable when
// the roots were marked either keeps an all-clear path that the trace
// walks, or had an edge of that path overwritten, which grayed it.
//
// The delicate part is observing the fixpoint without stopping the
// mutators: a mutator may have CASed an object gray but not yet appended
// it to its buffer. The loop below closes that window: after draining to
// empty it snapshots the global gray-production counter, runs an
// acknowledgement round (every mutator passes a safe point, so every
// gray produced before its ack is appended and visible), drains again,
// and only finishes when the drain found nothing and the counter did not
// move. A counter that moved means some mutator grayed an object inside
// the window, so the loop repeats; the counter is monotonic and bounded,
// so the loop terminates.
//
// The false return propagates a failed acknowledgement round — the
// close-abort path (see ackRound); the caller abandons the cycle.
func (c *Collector) trace() bool {
	if c.cfg.Workers > 1 {
		return c.traceParallel()
	}
	for {
		c.drainStack()
		if c.collectBuffers() > 0 {
			continue
		}
		g0 := c.grayProduced.Load()
		if !c.ackRound() {
			return false
		}
		n := c.collectBuffers()
		c.drainStack()
		g1 := c.grayProduced.Load()
		if n == 0 && g0 == g1 && len(c.markStack) == 0 {
			break
		}
	}
	c.tracing.Store(false)
	return true
}
