package gc

import (
	"fmt"

	"gengc/internal/heap"
)

// Shared protocol invariants, used by three auditors: the inter-cycle
// self-check (Config.SelfCheck, selfcheck.go), the quiescent verifier
// (Verify, verify.go) and the model checker (internal/modelcheck),
// which calls the step-safe subset after every schedulable step of an
// enumerated interleaving. Keeping the checks here — one body each —
// means the model checker asserts exactly the invariants the runtime
// audits on itself, not a reimplementation that could drift.
//
// Two safety classes:
//
//   - CheckQuiescentCycle is safe on the collector goroutine whenever
//     a cycle just completed (mutators may keep running): it reads only
//     atomics, the collector-owned mark stack, and lock-protected heap
//     bookkeeping.
//
//   - The CheckReachable* and CheckBarrierBuffers walkers read mutator
//     root stacks and barrier buffers that belong to their owning
//     goroutines, with no locks. They are step-safe only under a
//     virtual scheduler, where every actor is parked while the checker
//     runs (the scheduler serializes execution); outside model
//     checking, use Verify, which quiesces first.

// CheckQuiescentCycle audits the collector's own post-cycle state:
//
//   - the trace machinery is quiesced (status async, trace predicate
//     off, no queued or in-flight parallel work, empty mark stack),
//   - allocator bookkeeping is consistent (heap.CheckIntegrity walks
//     the free lists under the heap lock),
//   - no object is left gray — the trace fixpoint plus the final
//     acknowledgement round blackened every gray before the sweep, and
//     in the async window between cycles the write barrier cannot
//     produce new grays (mutators only gray during sync1/sync2 or
//     while the collector is tracing).
//
// A violation means the cycle that just finished broke the collector's
// own protocol, independent of whatever the mutators are doing.
func (c *Collector) CheckQuiescentCycle() error {
	if s := Status(c.statusC.Load()); s != StatusAsync {
		return fmt.Errorf("gc: self-check: post-cycle status %v, want async", s)
	}
	if c.tracing.Load() {
		return fmt.Errorf("gc: self-check: trace predicate still set after cycle")
	}
	if n := c.tracePending.Load(); n != 0 {
		return fmt.Errorf("gc: self-check: %d objects still pending in worker deques", n)
	}
	if n := len(c.markStack); n != 0 {
		return fmt.Errorf("gc: self-check: %d objects left on the mark stack", n)
	}
	if err := c.H.CheckIntegrity(); err != nil {
		return fmt.Errorf("gc: self-check: %w", err)
	}
	var firstGray error
	c.H.ForEachObject(func(addr heap.Addr) {
		if firstGray == nil && c.H.Color(addr) == heap.Gray {
			firstGray = fmt.Errorf("gc: self-check: object %#x left gray after cycle", addr)
		}
	})
	return firstGray
}

// CheckReachable walks every object reachable from the roots — the
// globals object, every attached mutator's root stack, and the slots of
// everything found — calling visit once per distinct address before its
// slots are followed. visit's error stops the walk and is returned with
// the path context (which root family reached the address).
//
// Step-safe only under a virtual scheduler: the walk reads mutator root
// stacks without synchronization (see the file comment).
func (c *Collector) CheckReachable(visit func(addr heap.Addr) error) error {
	seen := make(map[heap.Addr]bool)
	var stack []heap.Addr
	push := func(a heap.Addr) {
		if a != 0 && !seen[a] {
			seen[a] = true
			stack = append(stack, a)
		}
	}
	push(c.globals)
	c.muts.Lock()
	snapshot := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range snapshot {
		if m.detached.Load() {
			continue
		}
		for _, r := range m.roots {
			push(r)
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := visit(a); err != nil {
			return err
		}
		if !c.H.ValidObject(a) {
			// visit tolerated it; nothing to walk.
			continue
		}
		for i, n := 0, c.H.Slots(a); i < n; i++ {
			push(c.H.LoadSlot(a, i))
		}
	}
	return nil
}

// CheckReachableAllocated asserts that every reachable address is a
// live allocated object — the lost-object invariant. It holds at every
// step of every phase: the collector must never free (or recycle the
// cell of) an object the mutators can still reach. This is the needle
// detector for the protocol's historical failure modes (a store during
// sync2 whose target the trace missed, a flush racing the final
// acknowledgement, a dropped handshake with buffered cards).
func (c *Collector) CheckReachableAllocated() error {
	return c.CheckReachable(func(a heap.Addr) error {
		if !c.H.ValidObject(a) {
			return fmt.Errorf("gc: invariant: reachable address %#x is not a live object (freed or corrupt)", a)
		}
		if c.H.Color(a) == heap.Blue {
			return fmt.Errorf("gc: invariant: reachable object %#x is blue (on a free list)", a)
		}
		return nil
	})
}

// CheckNoReachableClear asserts that no reachable object still carries
// the clear color. Valid only in the window where the trace has reached
// its fixpoint but the cycle's sweep has not completed — from
// tracing.Store(false) through the end of sweep — when every reachable
// object must have been blackened (or be allocation-colored, §7.1); a
// clear-colored reachable object there is about to be freed by the
// ongoing sweep. The model checker runs it at sweep-shard steps.
func (c *Collector) CheckNoReachableClear() error {
	cc := heap.Color(c.clearColor.Load())
	return c.CheckReachable(func(a heap.Addr) error {
		if !c.H.ValidObject(a) {
			return fmt.Errorf("gc: invariant: reachable address %#x is not a live object", a)
		}
		if c.H.Color(a) == cc {
			return fmt.Errorf("gc: invariant: reachable object %#x still clear-colored (%v) during sweep", a, cc)
		}
		return nil
	})
}

// CheckBarrierBuffers asserts the batched barrier's fourth safety
// bullet (barrier.go): no buffered shade or card entry references a
// blue (freed) object. Checkable at any step — a buffered entry
// pointing at a free cell means a flush was lost across a sweep. Eager
// mode holds vacuously (no buffers).
func (c *Collector) CheckBarrierBuffers() error {
	c.muts.Lock()
	snapshot := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range snapshot {
		if m.detached.Load() || m.bb == nil {
			continue
		}
		for _, v := range m.bb.shade {
			if v != 0 && c.H.ValidObject(v) && c.H.Color(v) == heap.Blue {
				return fmt.Errorf("gc: invariant: mutator %d holds buffered shade of blue object %#x", m.id, v)
			}
		}
		for _, x := range m.bb.cards {
			if x != 0 && c.H.ValidObject(x) && c.H.Color(x) == heap.Blue {
				return fmt.Errorf("gc: invariant: mutator %d holds buffered card entry for blue object %#x", m.id, x)
			}
		}
	}
	return nil
}
