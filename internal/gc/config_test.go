package gc

import "testing"

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.HeapBytes != 32<<20 {
		t.Errorf("HeapBytes = %d, want 32MB", c.HeapBytes)
	}
	if c.YoungBytes != 4<<20 {
		t.Errorf("YoungBytes = %d, want 4MB", c.YoungBytes)
	}
	if c.CardBytes != 16 {
		t.Errorf("CardBytes = %d, want 16 (object marking)", c.CardBytes)
	}
	if c.OldAge != 3 {
		t.Errorf("OldAge = %d, want 3 (paper age 4)", c.OldAge)
	}
	if c.FullThreshold != 0.75 {
		t.Errorf("FullThreshold = %v", c.FullThreshold)
	}
	if err := c.validate(); err != nil {
		t.Errorf("defaults do not validate: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{}.withDefaults()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad mode", func(c *Config) { c.Mode = Mode(99) }},
		{"bad card size", func(c *Config) { c.CardBytes = 24 }},
		{"card too big", func(c *Config) { c.CardBytes = 8192 }},
		{"young > heap", func(c *Config) { c.YoungBytes = c.HeapBytes * 2 }},
		{"threshold 0", func(c *Config) { c.FullThreshold = -1 }},
		{"threshold 1+", func(c *Config) { c.FullThreshold = 1.5 }},
		{"old age", func(c *Config) { c.OldAge = 5000 }},
		{"initial target", func(c *Config) { c.InitialTargetBytes = 1 }},
		{"headroom", func(c *Config) { c.HeadroomBytes = 1 }},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, c)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if NonGenerational.String() != "non-generational" ||
		Generational.String() != "generational" ||
		GenerationalAging.String() != "generational+aging" {
		t.Error("mode strings wrong")
	}
	if NonGenerational.IsGenerational() {
		t.Error("non-generational reports generational")
	}
	if !Generational.IsGenerational() || !GenerationalAging.IsGenerational() {
		t.Error("generational modes not reported generational")
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusAsync.String() != "async" || StatusSync1.String() != "sync1" || StatusSync2.String() != "sync2" {
		t.Error("status strings wrong")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{CardBytes: 7}); err == nil {
		t.Error("New accepted bad card size")
	}
}
