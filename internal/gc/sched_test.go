package gc

import (
	"errors"
	"runtime"
	"testing"

	"gengc/internal/fault"
)

// recordingSched is a minimal fault.Scheduler for white-box ordering
// tests: it never reorders anything (every Step proceeds, every Wait
// spins the real scheduler), but it records the points it sees and
// lets a test observe collector/mutator state at a chosen point.
type recordingSched struct {
	points []fault.Point
	onStep func(p fault.Point)
}

func (rs *recordingSched) Step(p fault.Point) fault.Decision {
	rs.points = append(rs.points, p)
	if rs.onStep != nil {
		rs.onStep(p)
	}
	return fault.Decision{}
}

func (rs *recordingSched) Wait(p fault.Point, ready func() bool) bool {
	for !ready() {
		runtime.Gosched()
	}
	return true
}

func (rs *recordingSched) saw(p fault.Point) bool {
	for _, q := range rs.points {
		if q == p {
			return true
		}
	}
	return false
}

func schedTestConfig(rs *recordingSched) Config {
	return Config{
		Mode:                   Generational,
		Barrier:                BarrierBatched,
		HeapBytes:              1 << 20,
		YoungBytes:             256 << 10,
		CardBytes:              64,
		InitialTargetBytes:     64 << 10,
		HeadroomBytes:          64 << 10,
		GlobalRootSlots:        8,
		Scheduler:              rs,
		StallTimeout:           -1,
		DisablePauseHistograms: true,
	}
}

// TestCooperateFlushesBeforeAck pins the ordering the sliding-views
// termination argument depends on (barrier.go): when Cooperate answers
// an acknowledgement round with entries in its batched barrier buffer,
// the flush must be published no later than the ack store. The
// recording scheduler observes the mutator's ack word at the
// barrier-flush seam point — inside the flush — and it must still lag
// the collector's epoch. The companion subtest proves the probe is
// sharp: with the historical bug re-introduced the same probe sees the
// ack already stored.
func TestCooperateFlushesBeforeAck(t *testing.T) {
	run := func(t *testing.T, breakOrder bool) (ackStoredAtFlush bool) {
		rs := &recordingSched{}
		cfg := schedTestConfig(rs)
		cfg.UnsafeBreakFlushBeforeAck = breakOrder
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := c.NewMutator()
		defer m.Detach()
		x, err := m.Alloc(2, 0)
		if err != nil {
			t.Fatal(err)
		}
		y, err := m.Alloc(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		// An async-phase store buffers a card mark, so the next
		// Cooperate has something to flush.
		m.Update(x, 0, y)
		if len(m.bb.cards) == 0 {
			t.Fatal("batched Update buffered no card entry")
		}
		// Open an acknowledgement round by hand; no collector cycle is
		// running, so the response below is the only moving part.
		c.ackEpoch.Add(1)
		if !m.PendingResponse() {
			t.Fatal("ack epoch bump did not make a response pending")
		}
		flushSeen := false
		rs.onStep = func(p fault.Point) {
			if p != fault.BarrierFlush {
				return
			}
			flushSeen = true
			ackStoredAtFlush = m.ack.Load() == c.ackEpoch.Load()
		}
		m.Cooperate()
		if !flushSeen {
			t.Fatal("Cooperate never reached the barrier-flush point")
		}
		if !rs.saw(fault.Cooperate) {
			t.Fatal("Cooperate never hit its own seam point")
		}
		if m.ack.Load() != c.ackEpoch.Load() {
			t.Fatal("Cooperate did not store the acknowledgement")
		}
		if len(m.bb.shade) != 0 || len(m.bb.cards) != 0 {
			t.Fatal("Cooperate left barrier entries buffered")
		}
		if !c.Cards.IsDirty(c.Cards.IndexOf(x)) {
			t.Fatal("flush did not mark the buffered card")
		}
		return ackStoredAtFlush
	}

	t.Run("correct-order", func(t *testing.T) {
		if run(t, false) {
			t.Fatal("ack was already stored when the flush ran — flush must precede the ack")
		}
	})
	t.Run("broken-order-is-observable", func(t *testing.T) {
		if !run(t, true) {
			t.Fatal("UnsafeBreakFlushBeforeAck did not move the flush after the ack store")
		}
	})
}

// TestDroppedHandshakeKeepsBuffers: a Cooperate that the injector turns
// into a missed safe point must leave the response unmade and the
// batched buffers intact — no dangling half-published state — and the
// next safe point must deliver everything: flush first, then the ack.
func TestDroppedHandshakeKeepsBuffers(t *testing.T) {
	inj := fault.New(1)
	inj.Install(fault.Rule{Point: fault.Cooperate, Kind: fault.Drop, Count: 1})
	cfg := schedTestConfig(nil)
	cfg.Scheduler = nil
	cfg.Fault = inj
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMutator()
	defer m.Detach()
	x, err := m.Alloc(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Alloc(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Update(x, 0, y)
	if got := len(m.bb.cards); got != 1 {
		t.Fatalf("buffered %d card entries, want 1", got)
	}
	c.ackEpoch.Add(1)

	// First safe point: dropped. Nothing may leak — the ack is not
	// stored, the buffer is untouched, the card table unmarked.
	m.Cooperate()
	if m.ack.Load() == c.ackEpoch.Load() {
		t.Fatal("dropped Cooperate stored the acknowledgement")
	}
	if got := len(m.bb.cards); got != 1 {
		t.Fatalf("dropped Cooperate left %d card entries, want the original 1", got)
	}
	if c.Cards.IsDirty(c.Cards.IndexOf(x)) {
		t.Fatal("dropped Cooperate marked the card")
	}

	// Second safe point: the rule is spent, the response happens, and
	// the buffered card arrives with it.
	m.Cooperate()
	if m.ack.Load() != c.ackEpoch.Load() {
		t.Fatal("second Cooperate did not store the acknowledgement")
	}
	if len(m.bb.shade) != 0 || len(m.bb.cards) != 0 {
		t.Fatal("second Cooperate left barrier entries buffered")
	}
	if !c.Cards.IsDirty(c.Cards.IndexOf(x)) {
		t.Fatal("second Cooperate did not publish the buffered card mark")
	}
	if got := inj.Fired(fault.Cooperate); got != 1 {
		t.Fatalf("drop rule fired %d times, want 1", got)
	}
}

// TestSchedulerConfigValidation: the virtual-scheduler seam is a
// verification-only configuration and must refuse the combinations the
// harness cannot serialize.
func TestSchedulerConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := schedTestConfig(&recordingSched{})
		return cfg
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"scheduler-with-workers", func(cfg *Config) { cfg.Workers = 2 }},
		{"scheduler-with-fault", func(cfg *Config) { cfg.Fault = fault.New(1) }},
		{"break-without-scheduler", func(cfg *Config) {
			cfg.Scheduler = nil
			cfg.UnsafeBreakFlushBeforeAck = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("New() error = %v, want ErrInvalidConfig", err)
			}
		})
	}
	// And the supported shape works.
	cfg := base()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("valid scheduler config rejected: %v", err)
	}
	m := c.NewMutator()
	if _, err := m.Alloc(1, 0); err != nil {
		t.Fatal(err)
	}
	m.Detach()
}
