package gc

import (
	"math"
	"sync/atomic"
	"time"
)

// Trigger is the pacer's verdict on one allocation: whether the
// collector should be asked for a collection, and which kind.
type Trigger int

const (
	TriggerNone    Trigger = iota
	TriggerPartial         // young allocation passed the generation size (§3.3)
	TriggerFull            // the heap is (almost) full
)

// Pacer owns the collection-scheduling policy that used to be scattered
// through the collector: the young-allocation trigger of §3.3, the
// adaptive full-collection target modeling the paper's grow-on-demand
// heap, and the DynamicTenure threshold of §6.
//
// The pacer never takes a heap-wide snapshot on the allocation path.
// NoteAlloc maintains its own occupancy estimate with one atomic add and
// compares it against cached targets; the estimate is resynchronized
// against the heap's summed per-shard allocation counters once per cycle
// (Reconcile/EndCycle), which is also the only time the counters are
// read. Between reconciliations the estimate can only overshoot — sweep
// frees are not subtracted until cycle end — and an overshoot at worst
// requests a collection early, which the collector's staleness check
// (run) drops after consulting the real counters off the hot path.
type Pacer struct {
	// Policy parameters, fixed at construction.
	generational bool
	youngBytes   int64
	emergency    int64 // FullThreshold · heap size: the hard "almost full" bound
	initialTgt   int64
	headroom     int64

	// young counts bytes allocated since the last collection (the
	// §3.3 partial trigger).
	young atomic.Int64

	// occupancy is the allocated-bytes estimate: incremented by
	// NoteAlloc, resynchronized from the heap's shard counters at
	// every reconcile point.
	occupancy atomic.Int64

	// fullTarget is the adaptive full-collection trigger: a full
	// cycle is requested once allocated bytes reach it. It models the
	// paper's growing heap (1 MB initial, 32 MB max): after every
	// full collection it tracks the live set plus headroom, clamped
	// to [initialTgt, emergency], and never decreases.
	fullTarget atomic.Int64

	// dynOldAge is the current tenure threshold; equals the
	// configured OldAge unless DynamicTenure adjusts it.
	dynOldAge atomic.Int32

	// promotionRate is an exponentially weighted moving average of
	// promoted bytes per young byte allocated, observed at the end of
	// every generational partial (NotePromotion). Stored as a float64
	// bit pattern; the ROADMAP's adaptive-pacer work reads it to
	// predict old-generation growth. promotedBytes is the lifetime
	// total.
	promotionRate atomic.Uint64
	promotedBytes atomic.Int64
	promotionSeen atomic.Bool

	// Robustness signals for the admission controller (admission.go):
	// slips counts allocation-deadline misses (an AllocCtx expiring in
	// the slow path, or an OOM give-up) with lastSlip the unixnano of
	// the most recent one, and allocWait is an EWMA of how long
	// allocation slow-path waits lasted (float64 nanoseconds, stored
	// as a bit pattern like promotionRate).
	slips         atomic.Int64
	lastSlip      atomic.Int64
	allocWait     atomic.Uint64
	allocWaitSeen atomic.Bool
}

// promotionAlpha is the EWMA weight of the newest partial's observed
// promotion rate: heavy enough to track phase changes within a few
// cycles, light enough that one anomalous partial does not whipsaw the
// estimate.
const promotionAlpha = 0.3

// newPacer derives the pacing policy from the configuration and the
// actual (block-rounded) heap size.
func newPacer(cfg Config, heapSize int) *Pacer {
	p := &Pacer{
		generational: cfg.Mode.IsGenerational(),
		youngBytes:   int64(cfg.YoungBytes),
		emergency:    int64(float64(heapSize) * cfg.FullThreshold),
		initialTgt:   int64(cfg.InitialTargetBytes),
		headroom:     int64(cfg.HeadroomBytes),
	}
	p.fullTarget.Store(p.initialTgt)
	p.dynOldAge.Store(int32(cfg.OldAge))
	return p
}

// NoteAlloc records size freshly allocated bytes and returns the
// collection, if any, that the allocation pushes due. Two atomic adds
// and at most two atomic loads — no heap traversal, no locks.
func (p *Pacer) NoteAlloc(size int) Trigger {
	occ := p.occupancy.Add(int64(size))
	young := p.young.Add(int64(size))
	// Emergency bound: the heap is almost full regardless of mode.
	if occ >= p.emergency {
		return TriggerFull
	}
	if !p.generational {
		// Without generations every collection is full and fires
		// from the adaptive target directly.
		if occ >= p.fullTarget.Load() {
			return TriggerFull
		}
		return TriggerNone
	}
	if young >= p.youngBytes {
		return TriggerPartial
	}
	// Full collections in the generational modes are decided at the
	// end of a partial, from what the partial failed to reclaim
	// (EndCycle): young garbage must not trip the full-heap trigger.
	return TriggerNone
}

// YoungAlloc returns the bytes allocated since the last collection.
func (p *Pacer) YoungAlloc() int64 { return p.young.Load() }

// Target returns the current adaptive full-collection target.
func (p *Pacer) Target() int64 { return p.fullTarget.Load() }

// PartialDue reports whether the young-generation trigger still holds;
// the collector's staleness check for queued partial requests.
func (p *Pacer) PartialDue() bool { return p.young.Load() >= p.youngBytes }

// FullDue reports whether allocated bytes (the caller reads the real
// counters, off the hot path) still warrant a full collection.
func (p *Pacer) FullDue(allocated int64) bool {
	return allocated >= p.fullTarget.Load()
}

// Reconcile resynchronizes the occupancy estimate with the heap's true
// allocated bytes (summed from the per-shard counters by the caller).
// Implemented as a delta add so concurrent NoteAlloc contributions
// landing after the load are preserved rather than overwritten.
func (p *Pacer) Reconcile(allocated int64) {
	p.occupancy.Add(allocated - p.occupancy.Load())
}

// EndCycle retires one collection: the young bytes the cycle consumed
// are subtracted (bytes allocated while it ran are young for the next
// cycle), the occupancy estimate is reconciled, and after a full
// collection the adaptive target is recomputed. For a partial it
// reports whether the leftover — what the partial could not reclaim —
// has grown past the target, i.e. a full collection is now due: the
// "heap is almost full" trigger of §3.3 evaluated against the old
// generation only.
func (p *Pacer) EndCycle(youngAtStart, allocated int64, full bool) (fullDue bool) {
	young := p.young.Add(-youngAtStart)
	p.Reconcile(allocated)
	if full {
		p.Retarget(allocated)
		return false
	}
	return allocated-young >= p.fullTarget.Load()
}

// Retarget recomputes the adaptive full-collection target after a full
// collection: the post-collection occupancy plus a fixed headroom,
// mirroring the paper's grow-on-demand heap.
//
// The next target is based on the heap occupancy at the end of the
// cycle — including what the mutators allocated while the collection
// ran — and it never decreases: the paper's heap grows on demand from
// 1 MB toward 32 MB and is never shrunk, so any episode in which
// allocation outruns collection raises the trigger permanently. This
// ratchet is what lets the non-generational collector settle into a
// bloated heap with expensive full collections, while frequent cheap
// partials keep the generational heap small from the start (compare
// the footprints behind Figure 15).
func (p *Pacer) Retarget(allocated int64) {
	t := allocated + p.headroom
	if t < p.initialTgt {
		t = p.initialTgt
	}
	if t > p.emergency {
		t = p.emergency
	}
	if prev := p.fullTarget.Load(); t < prev {
		t = prev
	}
	p.fullTarget.Store(t)
}

// NotePromotion records one generational partial's outcome: promoted
// bytes out of the youngBytes the cycle covered. The first observation
// seeds the EWMA; later ones fold in with weight promotionAlpha.
func (p *Pacer) NotePromotion(promotedBytes, youngBytes int) {
	p.promotedBytes.Add(int64(promotedBytes))
	if youngBytes <= 0 {
		return
	}
	rate := float64(promotedBytes) / float64(youngBytes)
	if !p.promotionSeen.Swap(true) {
		p.promotionRate.Store(math.Float64bits(rate))
		return
	}
	for {
		old := p.promotionRate.Load()
		next := math.Float64bits(promotionAlpha*rate +
			(1-promotionAlpha)*math.Float64frombits(old))
		if p.promotionRate.CompareAndSwap(old, next) {
			return
		}
	}
}

// PromotionRate returns the smoothed promoted-bytes-per-young-byte
// estimate (0 until the first generational partial completes).
func (p *Pacer) PromotionRate() float64 {
	return math.Float64frombits(p.promotionRate.Load())
}

// PromotedBytes returns the lifetime total of bytes promoted into the
// old generation.
func (p *Pacer) PromotedBytes() int64 { return p.promotedBytes.Load() }

// OldAge returns the current tenure threshold.
func (p *Pacer) OldAge() int { return int(p.dynOldAge.Load()) }

// Occupancy returns the pacer's current allocated-bytes estimate. It
// can overshoot the true value between reconcile points (see the type
// comment) — conservative in the right direction for a shed-before-OOM
// watermark.
func (p *Pacer) Occupancy() int64 { return p.occupancy.Load() }

// OccupancyRatio returns occupancy as a fraction of the emergency
// full-collection bound (FullThreshold·heap): 1.0 means the next
// allocation trips the emergency trigger. The admission controller's
// red-line watermark is expressed in this unit.
func (p *Pacer) OccupancyRatio() float64 {
	if p.emergency <= 0 {
		return 0
	}
	return float64(p.occupancy.Load()) / float64(p.emergency)
}

// NoteSlip records one allocation-deadline miss: an AllocCtx whose
// context expired while waiting for a full collection, or an
// allocation that exhausted its retry budget (OOM give-up).
func (p *Pacer) NoteSlip() {
	p.slips.Add(1)
	p.lastSlip.Store(time.Now().UnixNano())
}

// Slips returns the lifetime allocation-deadline miss count.
func (p *Pacer) Slips() int64 { return p.slips.Load() }

// SlipWithin reports whether an allocation deadline slipped within the
// last window — the admission controller's "deadlines are slipping
// right now" predicate.
func (p *Pacer) SlipWithin(window time.Duration) bool {
	last := p.lastSlip.Load()
	return last != 0 && time.Now().UnixNano()-last <= int64(window)
}

// NoteAllocWait folds one allocation slow-path wait into the EWMA
// (same seeding and weight as the promotion-rate estimate).
func (p *Pacer) NoteAllocWait(d time.Duration) {
	ns := float64(d.Nanoseconds())
	if !p.allocWaitSeen.Swap(true) {
		p.allocWait.Store(math.Float64bits(ns))
		return
	}
	for {
		old := p.allocWait.Load()
		next := math.Float64bits(promotionAlpha*ns +
			(1-promotionAlpha)*math.Float64frombits(old))
		if p.allocWait.CompareAndSwap(old, next) {
			return
		}
	}
}

// AllocWaitEWMA returns the smoothed allocation slow-path wait (0 until
// the first wait completes).
func (p *Pacer) AllocWaitEWMA() time.Duration {
	return time.Duration(math.Float64frombits(p.allocWait.Load()))
}

// NoteSurvival implements the DynamicTenure policy after a partial
// collection: high young survival suggests objects need more time to
// die (raise the threshold, delaying promotion); near-total young
// mortality means aging buys nothing over simple promotion (lower it).
func (p *Pacer) NoteSurvival(freed, survivors int) {
	if freed+survivors == 0 {
		return
	}
	survival := float64(survivors) / float64(freed+survivors)
	cur := p.dynOldAge.Load()
	switch {
	case survival > 0.6 && cur < 10:
		p.dynOldAge.Store(cur + 1)
	case survival < 0.2 && cur > 1:
		p.dynOldAge.Store(cur - 1)
	}
}
