package gc

import (
	"gengc/internal/fault"
	"gengc/internal/heap"
)

// Remembered-set support: §3.1 discusses the choice between card marking
// and remembered sets for tracking inter-generational pointers and notes
// the authors used only card marking (no free header bit, and Java's
// high update rate). This file implements the road not taken, as an
// extension: the write barrier records updated *old* (black) objects in
// a per-mutator buffer instead of marking cards, and the collector
// re-grays the recorded objects at the start of a partial collection.
//
// The simple promotion scheme makes the set discardable per cycle: every
// survivor is promoted, so recorded inter-generational pointers become
// intra-generational, exactly like the unconditional card clearing of
// §3.2. The variant is only supported with Mode == Generational.

// remember records an updated object for the next partial collection.
// Only black (old) objects matter — pointers from young objects are
// reached by the ordinary young trace — which is the filtering the paper
// mentions skipping in its card-marking collector.
func (m *Mutator) remember(x heap.Addr) {
	if m.c.H.Color(x) != heap.Black {
		return
	}
	m.rem.Lock()
	m.rem.buf = append(m.rem.buf, x)
	m.rem.Unlock()
}

// drainRememberedSet replaces ClearCards in a remembered-set partial
// collection: every recorded old object is re-grayed so the trace scans
// it for pointers into the young generation. Duplicates are cheap: the
// black→gray CAS admits each object once.
func (c *Collector) drainRememberedSet() {
	c.muts.Lock()
	snapshot := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	drain := func(buf []heap.Addr) {
		if len(buf) == 0 {
			return
		}
		// Per-buffer seam hit (delay only): the inter-generational
		// re-scan ordering step of a remembered-set partial — the
		// remset counterpart of the card scan's §7.2 window.
		c.seamDelay(fault.RemsetDrain)
		for _, x := range buf {
			c.H.Pages.TouchHeap(x, 1)
			if c.H.Color(x) == heap.Black && c.H.CasColor(x, heap.Black, heap.Gray) {
				c.markStack = append(c.markStack, x)
				size := c.H.SizeOf(x)
				c.cyc.InterGenScanned++
				c.cyc.InterGenBytes += size
				c.cyc.AreaScanned += size
			}
		}
	}
	for _, m := range snapshot {
		m.rem.Lock()
		buf := m.rem.buf
		m.rem.buf = nil
		m.rem.Unlock()
		drain(buf)
	}
	c.remOrphans.Lock()
	buf := c.remOrphans.buf
	c.remOrphans.buf = nil
	c.remOrphans.Unlock()
	drain(buf)
}
