package gc

import (
	"sync"
	"testing"
	"time"
)

// TestHandshakeRoundTrip: posting a status blocks waitHandshake until
// every mutator cooperates, in order sync1 → sync2 → async.
func TestHandshakeRoundTrip(t *testing.T) {
	c := newTestCollector(t, Generational)
	m1 := c.NewMutator()
	m2 := c.NewMutator()

	done := make(chan struct{})
	go func() {
		c.handshake(StatusSync1)
		c.handshake(StatusSync2)
		c.postHandshake(StatusAsync)
		c.waitHandshake()
		close(done)
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-done:
			if Status(m1.status.Load()) != StatusAsync || Status(m2.status.Load()) != StatusAsync {
				t.Fatal("mutators not in async after handshakes")
			}
			return
		case <-deadline:
			t.Fatal("handshakes did not complete")
		default:
			m1.Cooperate()
			m2.Cooperate()
		}
	}
}

// TestWaitHandshakeSkipsDetached: a detached mutator cannot stall a
// handshake.
func TestWaitHandshakeSkipsDetached(t *testing.T) {
	c := newTestCollector(t, Generational)
	live := c.NewMutator()
	dead := c.NewMutator()
	dead.Detach() // never cooperates again

	done := make(chan struct{})
	go func() {
		c.handshake(StatusSync1)
		c.postHandshake(StatusAsync)
		c.waitHandshake()
		close(done)
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-done:
			return
		case <-deadline:
			t.Fatal("handshake stalled on a detached mutator")
		default:
			live.Cooperate()
		}
	}
}

// TestAckRoundVisibility: after an ack round, grays shaded before each
// mutator's acknowledgement are visible to collectBuffers.
func TestAckRoundVisibility(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 0, 32)
	c.switchColors() // make x clear-colored
	m.markGray(x)    // CAS + buffer append

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Cooperate()
			}
		}
	}()
	c.ackRound()
	n := c.collectBuffers()
	close(stop)
	wg.Wait()
	if n != 1 {
		t.Fatalf("collected %d grays after ack round, want 1", n)
	}
	if len(c.markStack) != 1 || c.markStack[0] != x {
		t.Fatalf("mark stack = %v", c.markStack)
	}
	c.markStack = c.markStack[:0]
	c.switchColors() // restore
}

// TestCooperateFastPathCheap: with nothing pending, Cooperate performs
// no handshake work (regression guard for the hot path: it must not
// mark roots or yield).
func TestCooperateFastPathCheap(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 0, 32)
	m.PushRoot(a)
	c.switchColors() // a becomes clear-colored
	for i := 0; i < 1000; i++ {
		m.Cooperate()
	}
	// No handshake was posted, so the root must not have been grayed.
	if got := c.H.Color(a); got == 3 /* gray */ {
		t.Fatal("fast-path Cooperate marked roots")
	}
	c.switchColors()
}
