package gc

import (
	"sync"
	"testing"
	"time"

	"gengc/internal/heap"
)

func newToggleFree(t *testing.T) *Collector {
	t.Helper()
	c, err := New(Config{Mode: NonGenerational, HeapBytes: 4 << 20,
		YoungBytes: 1 << 20, DisableColorToggle: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestToggleFreeConfigValidation(t *testing.T) {
	for _, mode := range []Mode{Generational, GenerationalAging} {
		if _, err := New(Config{Mode: mode, DisableColorToggle: true}); err == nil {
			t.Errorf("toggle-free accepted with %v", mode)
		}
	}
}

// TestToggleFreeBasicReclaim: garbage dies, live data survives, and the
// heap is all-white between cycles (no toggle, no recolor pass).
func TestToggleFreeBasicReclaim(t *testing.T) {
	c := newToggleFree(t)
	m := c.NewMutator()
	keep := mustAlloc(t, m, 1, 0)
	m.PushRoot(keep)
	child := mustAlloc(t, m, 0, 32)
	m.Update(keep, 0, child)
	var garbage []heap.Addr
	for i := 0; i < 100; i++ {
		garbage = append(garbage, mustAlloc(t, m, 0, 32))
	}
	collectWhileCooperating(c, true, m)
	for _, g := range garbage {
		if c.H.ValidObject(g) {
			t.Fatalf("garbage %#x survived", g)
		}
	}
	if !c.H.ValidObject(keep) || !c.H.ValidObject(child) {
		t.Fatal("live data lost")
	}
	// The survivors must be white again (sweep recolors in place).
	if c.H.Color(keep) != heap.White || c.H.Color(child) != heap.White {
		t.Fatalf("survivors not recolored white: %v/%v",
			c.H.Color(keep), c.H.Color(child))
	}
	// And a second cycle must work identically.
	collectWhileCooperating(c, true, m)
	if !c.H.ValidObject(keep) || !c.H.ValidObject(child) {
		t.Fatal("live data lost in second cycle")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestToggleFreeCreateColors: creation color follows the collector's
// phase per §2.
func TestToggleFreeCreateColors(t *testing.T) {
	c := newToggleFree(t)
	m := c.NewMutator()

	a := mustAlloc(t, m, 0, 32) // idle: white
	if c.H.Color(a) != heap.White {
		t.Fatalf("idle create color = %v, want white", c.H.Color(a))
	}

	c.phase.Store(uint32(phaseTracing))
	b := mustAlloc(t, m, 0, 32)
	if c.H.Color(b) != heap.Black {
		t.Fatalf("tracing create color = %v, want black", c.H.Color(b))
	}

	c.phase.Store(uint32(phaseSweeping))
	c.sweepBlock.Store(0) // sweep at the very beginning: everything ahead
	d := mustAlloc(t, m, 0, 32)
	if c.H.Color(d) != heap.Black {
		t.Fatalf("create ahead of sweep = %v, want black", c.H.Color(d))
	}
	c.sweepBlock.Store(int32(c.H.NumBlocks())) // sweep done: everything behind
	e := mustAlloc(t, m, 0, 32)
	if c.H.Color(e) != heap.White {
		t.Fatalf("create behind sweep = %v, want white", c.H.Color(e))
	}
	c.sweepBlock.Store(int32(e / heap.BlockSize)) // same block: boundary
	f := mustAlloc(t, m, 0, 32)
	if f/heap.BlockSize == e/heap.BlockSize && c.H.Color(f) != heap.Gray {
		t.Fatalf("boundary create = %v, want gray", c.H.Color(f))
	}
	c.phase.Store(uint32(phaseIdle))
}

// TestToggleFreeBoundaryGraySurvives: a gray boundary creation survives
// the current sweep and is collected in a later cycle once dead, or
// stays if live.
func TestToggleFreeBoundaryGraySurvives(t *testing.T) {
	c := newToggleFree(t)
	m := c.NewMutator()
	c.phase.Store(uint32(phaseSweeping))
	a := mustAlloc(t, m, 0, 32)
	c.sweepBlock.Store(int32(a / heap.BlockSize))
	b := mustAlloc(t, m, 0, 32) // gray boundary creation
	c.phase.Store(uint32(phaseIdle))
	if c.H.Color(b) != heap.Gray {
		t.Skip("allocation landed in a different block")
	}
	m.PushRoot(b)
	collectWhileCooperating(c, true, m)
	if !c.H.ValidObject(b) {
		t.Fatal("gray boundary creation was reclaimed while rooted")
	}
	// Its gray entry was processed: now it cycles like any object.
	m.PopRoots(1)
	collectWhileCooperating(c, true, m)
	collectWhileCooperating(c, true, m)
	if c.H.ValidObject(b) {
		t.Fatal("dead boundary creation never reclaimed")
	}
}

// TestToggleFreeConcurrentChurn: the toggle-free baseline under real
// concurrency, with verification.
func TestToggleFreeConcurrentChurn(t *testing.T) {
	c := newToggleFree(t)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	m.PushRoot(x)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Cooperate()
				n, err := m.Alloc(0, 32)
				if err != nil {
					t.Error(err)
					return
				}
				m.Update(x, 0, n)
			}
		}
	}()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			c.CollectNow(true)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("toggle-free cycles did not terminate")
	}
	close(stop)
	wg.Wait()
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if m.Read(x, 0) == 0 || !c.H.ValidObject(m.Read(x, 0)) {
		t.Fatal("last stored child lost")
	}
}
