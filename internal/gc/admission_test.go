package gc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// admissionCollector builds a collector with the given admission
// parameters and the paper-default heap.
func admissionCollector(t *testing.T, ac AdmissionConfig) *Collector {
	t.Helper()
	c, err := New(Config{Mode: Generational, Admission: &ac})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestAdmissionTokenCycle(t *testing.T) {
	c := admissionCollector(t, AdmissionConfig{MaxInFlight: 2})
	a := c.Admission()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := a.Admit(ctx, PriorityLow); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	st := a.Stats()
	if !st.Enabled || st.Admitted != 2 || st.InFlight != 2 {
		t.Fatalf("stats after 2 admits: %+v", st)
	}
	a.Release()
	a.Release()
	if st := a.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight after releases: %+v", st)
	}
	// Tokens are reusable after release.
	if err := a.Admit(ctx, PriorityHigh); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	a.Release()
}

func TestAdmissionQueueTimeoutShed(t *testing.T) {
	c := admissionCollector(t, AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 10 * time.Millisecond})
	a := c.Admission()
	if err := a.Admit(context.Background(), PriorityHigh); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.Admit(context.Background(), PriorityHigh)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("queued admit past the timeout: err = %v, want ErrShed", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("shed took %v, want ~10ms", waited)
	}
	st := a.Stats()
	if st.ShedTimeout != 1 || st.Shed != 1 {
		t.Fatalf("stats after timeout shed: %+v", st)
	}
	a.Release()
}

func TestAdmissionDeadlineAwareQueueWait(t *testing.T) {
	// The queue timeout is generous but the caller's own deadline is
	// not: the wait must be bounded by the deadline, not QueueTimeout.
	c := admissionCollector(t, AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 30 * time.Second})
	a := c.Admission()
	if err := a.Admit(context.Background(), PriorityHigh); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := a.Admit(ctx, PriorityHigh)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline-bounded queue wait took %v", waited)
	}
	a.Release()
}

func TestAdmissionQueueFullShed(t *testing.T) {
	c := admissionCollector(t, AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 200 * time.Millisecond})
	a := c.Admission()
	if err := a.Admit(context.Background(), PriorityHigh); err != nil {
		t.Fatal(err)
	}
	// Occupy the single queue slot with a background waiter.
	waiting := make(chan error, 1)
	go func() { waiting <- a.Admit(context.Background(), PriorityHigh) }()
	for a.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.Admit(context.Background(), PriorityHigh); !errors.Is(err, ErrShed) {
		t.Fatalf("admit with full queue: err = %v, want ErrShed", err)
	}
	if st := a.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("stats: %+v, want ShedQueueFull 1", st)
	}
	// Releasing the token admits the queued waiter.
	a.Release()
	if err := <-waiting; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.Release()
}

func TestAdmissionDegradedShedsLowPriority(t *testing.T) {
	c := admissionCollector(t, AdmissionConfig{
		MaxInFlight: 8, SlipWindow: 50 * time.Millisecond})
	a := c.Admission()
	// A deadline slip puts the controller into degraded mode for the
	// slip window.
	c.Pacer().NoteSlip()
	if !a.Degraded() {
		t.Fatal("controller not degraded right after a slip")
	}
	if err := a.Admit(context.Background(), PriorityLow); !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority admit while degraded: err = %v, want ErrShed", err)
	}
	if err := a.Admit(context.Background(), PriorityHigh); err != nil {
		t.Fatalf("high-priority admit while degraded: %v", err)
	}
	a.Release()
	st := a.Stats()
	if st.ShedDegraded != 1 || st.DegradedEnters != 1 {
		t.Fatalf("stats: %+v, want ShedDegraded 1 DegradedEnters 1", st)
	}
	// Degraded mode expires with the slip window.
	deadline := time.Now().Add(5 * time.Second)
	for a.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("controller still degraded long after the slip window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := a.Admit(context.Background(), PriorityLow); err != nil {
		t.Fatalf("low-priority admit after recovery: %v", err)
	}
	a.Release()
}

func TestAdmissionRedLineDegrades(t *testing.T) {
	c := admissionCollector(t, AdmissionConfig{MaxInFlight: 8, RedLine: 0.5})
	a := c.Admission()
	// Pump the pacer's occupancy estimate past the red line without
	// touching the heap: NoteAlloc is the estimate's only input
	// between reconciles.
	emergency := int64(float64(c.H.SizeBytes) * c.Config().FullThreshold)
	c.Pacer().Reconcile(emergency/2 + (1 << 20))
	if got := c.Pacer().OccupancyRatio(); got < 0.5 {
		t.Fatalf("occupancy ratio %v, want >= 0.5", got)
	}
	if err := a.Admit(context.Background(), PriorityLow); !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority admit over the red line: err = %v, want ErrShed", err)
	}
	if err := a.Admit(context.Background(), PriorityHigh); err != nil {
		t.Fatalf("high-priority admit over the red line: %v", err)
	}
	a.Release()
	// Dropping the estimate exits degraded mode.
	c.Pacer().Reconcile(0)
	if a.Degraded() {
		t.Fatal("controller degraded with an empty heap")
	}
}

func TestAdmissionDrainSheds(t *testing.T) {
	c := admissionCollector(t, AdmissionConfig{MaxInFlight: 1, MaxQueue: 4,
		QueueTimeout: 30 * time.Second})
	a := c.Admission()
	if err := a.Admit(context.Background(), PriorityHigh); err != nil {
		t.Fatal(err)
	}
	// A queued waiter must be released promptly when drain begins.
	waiting := make(chan error, 1)
	go func() { waiting <- a.Admit(context.Background(), PriorityHigh) }()
	for a.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	a.BeginDrain()
	select {
	case err := <-waiting:
		if !errors.Is(err, ErrShed) {
			t.Fatalf("queued waiter at drain: err = %v, want ErrShed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter not released by BeginDrain")
	}
	if err := a.Admit(context.Background(), PriorityHigh); !errors.Is(err, ErrShed) {
		t.Fatalf("admit after drain: err = %v, want ErrShed", err)
	}
	st := a.Stats()
	if st.ShedDraining != 2 {
		t.Fatalf("stats: %+v, want ShedDraining 2", st)
	}
	a.Release()
}

func TestAdmissionStopBeginsDrain(t *testing.T) {
	c, err := New(Config{Mode: Generational, Admission: &AdmissionConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if !c.Admission().Draining() {
		t.Fatal("Stop did not begin admission drain")
	}
}

func TestAdmissionConfigValidation(t *testing.T) {
	for _, bad := range []AdmissionConfig{
		{MaxInFlight: -1},
		{MaxQueue: -1},
		{QueueTimeout: -time.Second},
		{RedLine: 1.5},
		{SlipWindow: -time.Second},
	} {
		_, err := New(Config{Mode: Generational, Admission: &bad})
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("Admission %+v: err = %v, want ErrInvalidConfig", bad, err)
		}
	}
}

func TestObserveRequestSLO(t *testing.T) {
	c, err := New(Config{Mode: Generational, RequestSLO: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.ObserveRequest(100 * time.Microsecond)
	c.ObserveRequest(5 * time.Millisecond)
	if got := c.RequestSLOBreaches(); got != 1 {
		t.Fatalf("RequestSLOBreaches = %d, want 1", got)
	}
	st := c.RequestStats()
	if st.Count != 2 || st.Mutator != -1 {
		t.Fatalf("RequestStats = %+v, want Count 2 Mutator -1", st)
	}
	if st.Max < 5*time.Millisecond {
		t.Fatalf("RequestStats.Max = %v, want >= 5ms", st.Max)
	}
}
