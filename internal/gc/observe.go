package gc

import (
	"time"

	"gengc/internal/metrics"
	"gengc/internal/trace"
)

// Observability: the emit helpers that feed the structured-event layer
// (trace package) and the pause-statistics snapshot API. All emit paths
// are nil-safe — a collector without a TraceSink pays one pointer
// comparison per call site.

// emit appends a span event to the collector goroutine's ring. It must
// be called from the collector goroutine (cycle phases, serial drains,
// handshake and ack rounds).
func (c *Collector) emit(ev string, start time.Time, detail string, n, m int64) {
	if c.tracer == nil {
		return
	}
	c.ring.Emit(trace.Event{
		Ev:    ev,
		T:     c.tracer.Rel(start),
		D:     time.Since(start).Nanoseconds(),
		Cycle: c.cyclesDone.Load() + 1,
		K:     detail,
		N:     n,
		M:     m,
	})
}

// emitWorker appends a span event to one worker's ring; used by the
// parallel trace and sweep goroutines. ring may be nil (no sink).
func (c *Collector) emitWorker(ring *trace.Ring, ev string, worker int, start time.Time, n int64) {
	if ring == nil {
		return
	}
	ring.Emit(trace.Event{
		Ev:     ev,
		T:      c.tracer.Rel(start),
		D:      time.Since(start).Nanoseconds(),
		Cycle:  c.cyclesDone.Load() + 1,
		Worker: worker,
		N:      n,
	})
}

// flushTrace drains every producer ring into the sink; called at the
// end of each cycle so traces stream out while the run progresses.
func (c *Collector) flushTrace() {
	if c.tracer != nil {
		c.tracer.Flush()
	}
}

// PauseStats reports per-mutator pause statistics for every currently
// attached mutator, plus the fleet-wide aggregate (Mutator == -1) which
// also folds in the histograms of mutators that have detached. Pauses
// are the mutator-visible delays of the on-the-fly protocol: handshake
// responses (including root marking at the sync2→async transition),
// acknowledgement-round responses, and allocation stalls waiting for a
// full collection. Safe to call at any time, including while mutators
// run; empty when Config.DisablePauseHistograms is set.
func (c *Collector) PauseStats() (fleet metrics.PauseStats, perMutator []metrics.PauseStats) {
	agg := c.PauseHistogram()
	c.muts.Lock()
	snapshot := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range snapshot {
		if m.pauses == nil {
			continue
		}
		perMutator = append(perMutator, m.pauses.Stats(m.id))
	}
	fleet = agg.Stats(-1)
	return fleet, perMutator
}

// PauseHistogram returns a freshly merged fleet-wide pause histogram:
// the retired (detached-mutator) history plus every attached mutator's
// live histogram. The caller owns the returned copy; the Prometheus
// exposition renders its buckets directly.
func (c *Collector) PauseHistogram() *metrics.Histogram {
	agg := &metrics.Histogram{}
	c.retired.MergeInto(agg)
	c.muts.Lock()
	snapshot := append([]*Mutator(nil), c.muts.list...)
	c.muts.Unlock()
	for _, m := range snapshot {
		if m.pauses != nil {
			m.pauses.MergeInto(agg)
		}
	}
	return agg
}
