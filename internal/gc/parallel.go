package gc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gengc/internal/fault"
	"gengc/internal/heap"
	"gengc/internal/trace"
)

// Parallel trace and sweep (Workers > 1). The paper runs a single
// collector thread (§8: the 4-way PowerPC leaves three processors to the
// mutators); this file parallelizes the collector's two heavy phases
// while leaving the on-the-fly machinery — handshakes, write barrier,
// card scanning, trace-termination protocol — untouched:
//
//   - The trace replaces the single mark stack with one deque per worker
//     plus work stealing. Every gray transition is still a CAS on the
//     color table (CasColor), so each object enters exactly one deque at
//     most once per cycle and is blackened by exactly one worker; the
//     SATB reasoning of trace.go carries over verbatim.
//
//   - Termination inside one drain uses a pending counter: it counts
//     objects that sit in some deque or are being scanned. A push
//     increments it before the object becomes stealable and the scanning
//     worker decrements it only after the object's sons were pushed, so
//     pending == 0 proves no work exists anywhere — the same
//     "all deques empty and steal failed" condition expressed as one
//     atomic. The cross-mutator fixpoint (gray counter + ack round)
//     remains the outer loop's job, exactly as with one worker.
//
//   - The sweep shards the block range across the same pool: workers
//     claim chunks of blocks from an atomic cursor, accumulate dead
//     cells in per-worker batches, and merge each batch under a single
//     heap-lock acquisition (heap.FreeBatch). Blocks are disjoint, so
//     two workers never touch the same object's color, age or hint.

// sweepChunkBlocks is how many blocks a sweep worker claims per cursor
// bump: large enough to amortize the atomic, small enough to balance
// uneven block populations.
const sweepChunkBlocks = 16

// publishThreshold is the private-stack depth beyond which a worker
// offers the older half of its work to thieves. Low enough that a
// worker holding plenty of work shares promptly, high enough that the
// owner's hot path stays lock-free.
const publishThreshold = 16

// wsDeque is one worker's gray-object deque, split in two so the
// owner's hot path takes no lock: `priv` is a plain stack touched only
// by the owner, and `shared` is a mutex-guarded window that thieves
// steal from. The owner publishes the *older* half of its private stack
// — typically the roots of the largest untraced subgraphs — whenever
// the stack is deep and the window has run empty; `sharedN` mirrors
// len(shared) so both sides can check for emptiness without the lock.
type wsDeque struct {
	priv    []heap.Addr
	mu      sync.Mutex
	shared  []heap.Addr
	sharedN atomic.Int32
}

// push appends to the owner's private stack, republishing work for
// thieves when the stack is deep and the steal window is empty. Owner
// only.
func (d *wsDeque) push(x heap.Addr) {
	d.priv = append(d.priv, x)
	if len(d.priv) >= publishThreshold && d.sharedN.Load() == 0 {
		d.publish()
	}
}

// publish moves the older half of the private stack into the shared
// window. Owner only.
func (d *wsDeque) publish() {
	half := len(d.priv) / 2
	if half == 0 {
		return
	}
	d.mu.Lock()
	d.shared = append(d.shared, d.priv[:half]...)
	d.sharedN.Store(int32(len(d.shared)))
	d.mu.Unlock()
	d.priv = append(d.priv[:0], d.priv[half:]...)
}

// pop takes from the private stack, refilling it with anything left in
// the shared window when it runs dry. Owner only.
func (d *wsDeque) pop() (heap.Addr, bool) {
	if n := len(d.priv); n > 0 {
		x := d.priv[n-1]
		d.priv = d.priv[:n-1]
		return x, true
	}
	if d.sharedN.Load() == 0 {
		return 0, false
	}
	d.mu.Lock()
	d.priv = append(d.priv, d.shared...)
	d.shared = d.shared[:0]
	d.sharedN.Store(0)
	d.mu.Unlock()
	if n := len(d.priv); n > 0 {
		x := d.priv[n-1]
		d.priv = d.priv[:n-1]
		return x, true
	}
	return 0, false
}

// stealFrom moves roughly half of the victim's published work into d's
// private stack. d must be the calling worker's own deque. It returns
// how many objects moved.
func (d *wsDeque) stealFrom(victim *wsDeque) int {
	if victim.sharedN.Load() == 0 {
		return 0
	}
	victim.mu.Lock()
	n := len(victim.shared)
	if n == 0 {
		victim.mu.Unlock()
		return 0
	}
	take := (n + 1) / 2
	d.priv = append(d.priv, victim.shared[:take]...)
	victim.shared = append(victim.shared[:0], victim.shared[take:]...)
	victim.sharedN.Store(int32(len(victim.shared)))
	victim.mu.Unlock()
	return take
}

// traceWorker is one trace worker's deque and work counters. The
// counters are merged into the cycle record after each drain. ring is
// the worker's private trace-event buffer (nil without a TraceSink);
// the trace and sweep phases never overlap, so the sharded sweep
// borrows the same rings.
type traceWorker struct {
	deque   wsDeque
	scanned int
	slots   int
	bytes   int
	steals  int
	ring    *trace.Ring
}

// workerPool lazily builds the per-worker state; it lives for the
// collector's lifetime so per-cycle metrics can be indexed by worker.
func (c *Collector) workerPool() []*traceWorker {
	if c.workers == nil {
		c.workers = make([]*traceWorker, c.cfg.Workers)
		for i := range c.workers {
			c.workers[i] = &traceWorker{}
			if c.tracer != nil {
				c.workers[i].ring = c.tracer.NewRing()
			}
		}
	}
	return c.workers
}

// activeWorkers bounds how many pool goroutines actually run: one more
// than the processors the Go runtime schedules onto, so a runnable
// worker stands ready whenever another blocks or is preempted. Beyond
// that, extra workers on a saturated machine contribute no progress —
// only steal scans, publish traffic and spin — so a Workers setting
// above the machine's parallelism degrades gracefully instead of
// thrashing.
func (c *Collector) activeWorkers() int {
	n := c.cfg.Workers
	if max := runtime.GOMAXPROCS(0) + 1; n > max {
		n = max
	}
	return n
}

// shadeInto performs the clear→gray transition and, on success, makes
// the object visible to the pool: pending is raised before the push so
// that no worker can observe pending == 0 while the object is queued.
func (c *Collector) shadeInto(w *traceWorker, x heap.Addr, from heap.Color) {
	if x == 0 {
		return
	}
	if c.H.Color(x) == from && c.H.CasColor(x, from, heap.Gray) {
		c.tracePending.Add(1)
		w.deque.push(x)
	}
}

// markBlackWorker is markBlack with worker-local counters and deque.
func (c *Collector) markBlackWorker(w *traceWorker, x heap.Addr) {
	if c.H.Color(x) == heap.Black {
		return
	}
	cc := heap.Color(c.clearColor.Load())
	slots := c.H.Slots(x)
	c.H.Pages.TouchHeap(x, heap.HeaderBytes+slots*heap.WordBytes)
	for i := 0; i < slots; i++ {
		c.shadeInto(w, c.H.LoadSlot(x, i), cc)
	}
	c.H.SetColor(x, heap.Black)
	w.scanned++
	w.slots += slots
	w.bytes += c.H.SizeOf(x)
}

// traceWorkerLoop drains deques until the pool-wide pending counter
// proves there is no queued or in-flight object left. Each worker's
// participation in the drain is one "drain" span on its own ring.
func (c *Collector) traceWorkerLoop(id int, ws []*traceWorker) {
	w := ws[id]
	if w.ring != nil {
		start := time.Now()
		before := w.scanned
		defer func() {
			if n := w.scanned - before; n > 0 {
				c.emitWorker(w.ring, "drain", id, start, int64(n))
			}
		}()
	}
	misses := 0
	for {
		x, ok := w.deque.pop()
		if !ok {
			if c.seamArmed() {
				// A Drop rule models a steal scan that finds nothing
				// (contention, unlucky victim order); Fail is coerced
				// the same way — the loop simply retries, so the only
				// observable effect is delayed termination, never a
				// missed object (pending still counts it).
				if drop, fail := c.seamStep(fault.TraceSteal); drop || fail {
					if c.tracePending.Load() == 0 {
						return
					}
					continue
				}
			}
			// Run dry: try to steal before concluding anything.
			stole := false
			for off := 1; off < len(ws); off++ {
				victim := ws[(id+off)%len(ws)]
				if w.deque.stealFrom(&victim.deque) > 0 {
					w.steals++
					stole = true
					break
				}
			}
			if stole {
				misses = 0
				continue
			}
			if c.tracePending.Load() == 0 {
				return
			}
			// Another worker holds in-flight objects whose sons may
			// land in its deque. Spin rather than yield: on a loaded
			// machine a voluntary yield hands the rest of this
			// timeslice to a mutator, and the straggler we are waiting
			// for is preempted onto the CPU soon anyway. Yield only
			// after a long dry stretch so an idle-but-runnable worker
			// cannot starve anyone on a single-processor box.
			misses++
			if misses%(1<<14) == 0 {
				runtime.Gosched()
			}
			continue
		}
		misses = 0
		c.markBlackWorker(w, x)
		c.tracePending.Add(-1)
	}
}

// serialDrainBudget is how many objects drainParallel scans on the
// collector goroutine before waking the pool. Most fixpoint rounds are
// small — a batch of barrier-grayed objects whose subgraphs are already
// black — and finish well inside the budget; dispatching those to the
// pool would stretch each round from microseconds to a full scheduler
// rotation, because the drain cannot end until every seeded worker has
// been scheduled and run dry.
const serialDrainBudget = 4096

// drainParallel drains the collector's seed stack: serially while the
// drain is small, spilling to the worker deques and work stealing once
// it outlives the serial budget — which only a graph-sized trace does.
// It is the parallel counterpart of drainStack: gray objects produced
// concurrently by mutators still accumulate in their own buffers and
// are folded in by the outer fixpoint loop of trace().
func (c *Collector) drainParallel() {
	before := c.cyc.ObjectsScanned
	for budget := serialDrainBudget; len(c.markStack) > 0 && budget > 0; budget-- {
		x := c.markStack[len(c.markStack)-1]
		c.markStack = c.markStack[:len(c.markStack)-1]
		c.markBlack(x)
	}
	// The serial scans were done by the collector goroutine — worker 0.
	c.cyc.WorkerScanned[0] += c.cyc.ObjectsScanned - before
	seeds := c.markStack
	c.markStack = c.markStack[:0]
	if len(seeds) == 0 {
		return
	}
	ws := c.workerPool()[:c.activeWorkers()]
	c.tracePending.Add(int64(len(seeds)))
	for i, x := range seeds {
		ws[i%len(ws)].deque.push(x)
	}
	var wg sync.WaitGroup
	for id := 1; id < len(ws); id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c.traceWorkerLoop(id, ws)
		}(id)
	}
	c.traceWorkerLoop(0, ws) // the collector goroutine is worker 0
	wg.Wait()

	for id, w := range ws {
		c.cyc.ObjectsScanned += w.scanned
		c.cyc.SlotsScanned += w.slots
		c.cyc.TraceBytes += w.bytes
		c.cyc.Steals += w.steals
		c.cyc.WorkerScanned[id] += w.scanned
		w.scanned, w.slots, w.bytes, w.steals = 0, 0, 0, 0
	}
}

// traceParallel is trace() with drainStack replaced by drainParallel.
// The outer protocol is identical: drain, fold in mutator gray buffers,
// and only conclude after an acknowledgement round bounded by a stable
// gray-production counter — the multi-worker drain changes who blackens
// an object, not when the fixpoint holds (see DESIGN.md). The false
// return is the close-abort path propagated from ackRound.
func (c *Collector) traceParallel() bool {
	for {
		c.drainParallel()
		if c.collectBuffers() > 0 {
			continue
		}
		g0 := c.grayProduced.Load()
		if !c.ackRound() {
			return false
		}
		n := c.collectBuffers()
		c.drainParallel()
		g1 := c.grayProduced.Load()
		if n == 0 && g0 == g1 && len(c.markStack) == 0 {
			break
		}
	}
	c.tracing.Store(false)
	return true
}

// initFullParallel shards the full-collection recoloring walk of
// initFullCollection over the worker pool, claiming chunks of blocks
// from an atomic cursor like sweepParallel, with the same serial probe
// deciding whether the walk is long enough to pay the pool's wake-up
// latency. Blocks are disjoint and the hint, color and page structures
// take concurrent writers, so no further coordination is needed; the
// Generational card clear stays with the caller.
func (c *Collector) initFullParallel() {
	ac := heap.Color(c.allocColor.Load())
	nBlocks := c.H.NumBlocks()
	var cursor atomic.Int64
	cursor.Store(1) // block 0 is reserved
	claim := func() bool {
		// Delay-only, as in sweepParallel: the recoloring walk must
		// visit every block.
		c.seamDelay(fault.SweepShard)
		lo := int(cursor.Add(sweepChunkBlocks)) - sweepChunkBlocks
		if lo >= nBlocks {
			return false
		}
		hi := lo + sweepChunkBlocks
		if hi > nBlocks {
			hi = nBlocks
		}
		for b := lo; b < hi; b++ {
			// Recoloring invalidates every all-black hint.
			c.H.SetAllBlackHint(b, false)
			c.H.ForEachObjectInBlock(b, func(addr heap.Addr) {
				c.H.Pages.TouchHeap(addr, 1)
				if col := c.H.Color(addr); col == heap.Black || col == heap.Gray {
					c.H.SetColor(addr, ac)
				}
			})
		}
		return true
	}

	start := time.Now()
	spill := false
	for !spill && claim() {
		if elapsed := time.Since(start); elapsed > sweepSpillLatency/8 {
			done := cursor.Load() - 1
			if done > int64(nBlocks) {
				done = int64(nBlocks)
			}
			projected := time.Duration(float64(elapsed) * float64(nBlocks) / float64(done))
			spill = projected-elapsed > sweepSpillLatency
		}
	}
	if spill {
		var wg sync.WaitGroup
		for i := 1; i < c.activeWorkers(); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for claim() {
				}
			}()
		}
		for claim() {
		}
		wg.Wait()
	}
}

// sweepSpillLatency approximates the scheduler cost of engaging the
// pool mid-phase on a loaded machine: a freshly spawned worker may wait
// a full rotation of the run queue — tens of milliseconds behind
// compute-bound mutators — before claiming its first block, so the pool
// is engaged only when the projected remaining sweep time dwarfs that
// latency.
const sweepSpillLatency = 25 * time.Millisecond

// sweepParallel shards the block walk of sweep() across the worker
// pool. Workers claim chunks of blocks from an atomic cursor and sweep
// them with a private sweepState; batches hit the heap lock only on
// flush, and the counters merge once at the end. The collector
// goroutine sweeps alone first, projecting the whole sweep's duration
// from its progress, and wakes the pool only for a sweep long enough
// to pay for it.
func (c *Collector) sweepParallel(full bool) {
	cc := heap.Color(c.clearColor.Load())
	ac := heap.Color(c.allocColor.Load())
	aging := c.cfg.Mode == GenerationalAging
	oldest := c.oldestAge()
	nBlocks := c.H.NumBlocks()

	var cursor atomic.Int64
	cursor.Store(1) // block 0 is reserved
	states := make([]sweepState, c.cfg.Workers)
	for i := range states {
		states[i].batch = make([]heap.Addr, 0, freeBatchSize)
	}
	claim := func(st *sweepState) bool {
		// Delay-only point: skipping a claimed shard would leak the
		// chunk's dead cells and corrupt the hint/aging bookkeeping,
		// so Drop/Fail rules degrade to their configured delay.
		c.seamDelay(fault.SweepShard)
		lo := int(cursor.Add(sweepChunkBlocks)) - sweepChunkBlocks
		if lo >= nBlocks {
			return false
		}
		hi := lo + sweepChunkBlocks
		if hi > nBlocks {
			hi = nBlocks
		}
		for b := lo; b < hi; b++ {
			c.sweepBlockOne(b, full, aging, cc, ac, oldest, st)
		}
		return true
	}

	start := time.Now()
	spill := false
	for !spill && claim(&states[0]) {
		if elapsed := time.Since(start); elapsed > sweepSpillLatency/8 {
			done := cursor.Load() - 1
			if done > int64(nBlocks) {
				done = int64(nBlocks)
			}
			projected := time.Duration(float64(elapsed) * float64(nBlocks) / float64(done))
			spill = projected-elapsed > sweepSpillLatency
		}
	}
	if spill {
		// Each engaged worker's share of the sweep is one "sweepshard"
		// span on its pool ring (the trace phase is over, so the rings
		// are free).
		var ws []*traceWorker
		if c.tracer != nil {
			ws = c.workerPool()
		}
		shard := func(i int, st *sweepState) {
			shardStart := time.Now()
			before := st.objectsFreed
			for claim(st) {
			}
			if ws != nil {
				c.emitWorker(ws[i].ring, "sweepshard", i, shardStart,
					int64(st.objectsFreed-before))
			}
		}
		var wg sync.WaitGroup
		for i := 1; i < c.activeWorkers(); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				shard(i, &states[i])
			}(i)
		}
		shard(0, &states[0])
		wg.Wait()
	}

	for i := range states {
		st := &states[i]
		st.flush(c)
		st.mergeInto(c)
		c.cyc.WorkerFreed[i] += st.objectsFreed
	}
}
