package gc

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gengc/internal/card"
	"gengc/internal/fault"
	"gengc/internal/heap"
	"gengc/internal/metrics"
	"gengc/internal/telemetry"
	"gengc/internal/trace"
)

// Status is a mutator/collector handshake status. The collection cycle
// advances async → sync1 → sync2 → async (§7: the period between the
// first and second handshake is sync1, between the second and third
// sync2, and the rest async).
type Status uint32

const (
	StatusAsync Status = iota
	StatusSync1
	StatusSync2
)

func (s Status) String() string {
	switch s {
	case StatusAsync:
		return "async"
	case StatusSync1:
		return "sync1"
	case StatusSync2:
		return "sync2"
	}
	return "invalid"
}

// Collector owns the heap, card table and collection machinery. One
// Collector corresponds to one JVM instance of the paper.
type Collector struct {
	H     *heap.Heap
	Cards *card.Table
	cfg   Config
	rec   *metrics.Recorder

	// Color-toggle state (§5). Written by the collector only, read by
	// mutators on every allocation and barrier invocation.
	allocColor atomic.Uint32
	clearColor atomic.Uint32

	// statusC is the collector's handshake status.
	statusC atomic.Uint32

	// tracing is the "Collector is tracing" predicate of the Figure 1
	// barrier: true from the start of a cycle until the trace reaches
	// its fixpoint.
	tracing atomic.Bool

	// ackEpoch drives the trace-termination acknowledgement rounds
	// (see trace.go).
	ackEpoch atomic.Int64

	// grayProduced counts gray transitions performed by mutators; the
	// trace-termination fixpoint check compares it across an
	// acknowledgement round (monotonic, never reset).
	grayProduced atomic.Int64

	// heapBytes/heapObjects are the exact facade-facing allocation
	// totals, charged per allocation (cell size) and per sweep free
	// batch. The heap's own shard counters defer publication in the
	// mutator caches for fast-path speed, so they lag by the open
	// allocation runs; this layer keeps the per-object-exact totals
	// Snapshot and HeapBytes/HeapObjects promise.
	heapBytes   atomic.Int64
	heapObjects atomic.Int64

	// muts is the mutator registry.
	muts struct {
		sync.Mutex
		list   []*Mutator
		nextID int
	}

	// globals is a heap object holding the global root slots; stores
	// to it go through the normal write barrier, so it needs no
	// special treatment beyond being grayed as a root each cycle.
	globals heap.Addr

	// markStack is the collector's gray set working stack. Only the
	// collector goroutine touches it.
	markStack []heap.Addr

	// workers is the trace worker pool (Workers > 1 only), built
	// lazily on the first parallel drain; tracePending counts gray
	// objects queued in or being scanned from the worker deques — the
	// drain-local termination condition (parallel.go).
	workers      []*traceWorker
	tracePending atomic.Int64

	// orphans holds gray objects inherited from detached mutators.
	orphans struct {
		sync.Mutex
		buf []heap.Addr
	}

	// remOrphans holds remembered-set entries from detached mutators.
	remOrphans struct {
		sync.Mutex
		buf []heap.Addr
	}

	// phase and sweepBlock drive the toggle-free create protocol
	// (notoggle.go): the collector's coarse phase and the block the
	// sweep is currently processing.
	phase      atomic.Uint32
	sweepBlock atomic.Int32

	// cyc accumulates the current cycle's counters (collector
	// goroutine only).
	cyc metrics.Cycle

	// pacer owns the collection-scheduling policy: the young-bytes
	// partial trigger, the adaptive full-collection target and the
	// dynamic tenure threshold (pacer.go).
	pacer *Pacer

	// cyclesDone and fullsDone count completed collections; the
	// allocation slow path waits on them.
	cyclesDone atomic.Int64
	fullsDone  atomic.Int64

	// fullWaiters counts mutators blocked in the allocation slow path
	// waiting for a full collection; their requests are never treated
	// as stale.
	fullWaiters atomic.Int64

	// Collection requests. wantFull upgrades a pending request.
	reqCh    chan struct{}
	wantFull atomic.Bool
	pending  atomic.Bool

	// cycleMu serializes collection cycles (background goroutine vs
	// synchronous CollectNow calls from tests and the OOM path).
	cycleMu sync.Mutex

	// tracer and ring are the structured-event layer (nil without a
	// configured TraceSink or armed flight recorder); ring is the
	// collector goroutine's own event buffer, workers and mutators get
	// their own (observe.go).
	tracer *trace.Tracer
	ring   *trace.Ring

	// recorder is the anomaly flight recorder (nil unless
	// Config.FlightRecorderEvents is positive); it receives the event
	// stream as a (tee'd) trace sink and freezes dumps on trigger.
	recorder *telemetry.Recorder

	// sloBreaches counts recorded mutator pauses that exceeded
	// Config.PauseSLO.
	sloBreaches atomic.Int64

	// admission is the armed admission controller (nil unless
	// Config.Admission is set).
	admission *Admission

	// reqHist is the per-request latency histogram fed by
	// ObserveRequest (nil unless request accounting is on: a
	// RequestSLO or an admission controller); reqSLOBreaches counts
	// observations over Config.RequestSLO, and reqSLODump rate-limits
	// their flight-recorder triggers (unixnano — a breach storm must
	// not flush the tracer per request).
	reqHist        *metrics.Histogram
	reqSLOBreaches atomic.Int64
	reqSLODump     atomic.Int64

	// demo accumulates run-cumulative heap demographics, folded in by
	// the collector goroutine at the end of every cycle; readers take
	// the mutex (DemographicStats).
	demo struct {
		sync.Mutex
		metrics.Demographics
	}

	// retired accumulates the pause histograms of detached mutators so
	// fleet-wide pause statistics cover the runtime's whole history.
	retired *metrics.Histogram

	// flt is the armed fault injector (cfg.Fault); nil in production,
	// so every injection point costs one pointer comparison.
	flt *fault.Injector

	// vsched is the armed virtual scheduler (cfg.Scheduler); nil in
	// production. When set, every seam hit parks the caller on the
	// scheduler and the handshake waits divert to Scheduler.Wait
	// (sched.go).
	vsched fault.Scheduler

	// stalls counts handshake watchdog reports; abortedCycles counts
	// cycles abandoned because Stop found the handshake wedged.
	stalls        atomic.Int64
	abortedCycles atomic.Int64

	// Batched-barrier accounting, published by mutator flushes
	// (barrier.go); all stay zero under the eager barrier.
	barrierFlushes atomic.Int64
	barrierStores  atomic.Int64
	barrierDedup   atomic.Int64

	// onStall is the watchdog's observer (set via OnStall).
	onStall struct {
		sync.Mutex
		fn func(Stall)
	}

	// selfCheck retains inter-cycle audit results (Config.SelfCheck).
	selfCheck struct {
		sync.Mutex
		violations int64
		firstErr   error
	}

	stopCh   chan struct{}
	doneCh   chan struct{}
	started  atomic.Bool
	closed   atomic.Bool
	stopOnce sync.Once
}

// Stall describes one watchdog report: a mutator that had not reached a
// safe point within the configured StallTimeout while the collector
// waited on it.
type Stall struct {
	// Mutator is the id of the unresponsive mutator.
	Mutator int

	// Phase is the wait the mutator is stalling: "sync1", "sync2",
	// "sync3" (the three handshake rounds) or "ack" (a
	// trace-termination acknowledgement round).
	Phase string

	// Waited is how long the collector had been waiting when the
	// stall was reported.
	Waited time.Duration
}

// New builds a collector and its heap. Start must be called before any
// allocation can trigger background collections; collections can also be
// run synchronously with CollectNow (used by tests).
func New(cfg Config) (*Collector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h, err := heap.NewSharded(cfg.HeapBytes, cfg.AllocShards)
	if err != nil {
		return nil, err
	}
	ct, err := card.NewTable(h.SizeBytes, cfg.CardBytes)
	if err != nil {
		return nil, err
	}
	c := &Collector{H: h, Cards: ct, cfg: cfg, rec: metrics.NewRecorder(),
		retired: &metrics.Histogram{}, flt: cfg.Fault, vsched: cfg.Scheduler}
	if cfg.FlightRecorderEvents > 0 {
		c.recorder = telemetry.NewRecorder(cfg.FlightRecorderEvents)
	}
	var sink trace.Sink
	switch {
	case cfg.TraceSink != nil && c.recorder != nil:
		sink = trace.TeeSink(cfg.TraceSink, c.recorder)
	case cfg.TraceSink != nil:
		sink = cfg.TraceSink
	case c.recorder != nil:
		sink = c.recorder
	}
	if sink != nil {
		c.tracer = trace.NewWithMeta(sink, runMeta(cfg, h))
		c.tracer.SetInjector(c.flt)
		c.ring = c.tracer.NewRing()
	}
	if cfg.TrackPages || cfg.PageCostSpins > 0 {
		h.Pages = heap.NewPageSet(h.SizeBytes, ct.NumCards())
		h.Pages.CostSpins = cfg.PageCostSpins
	}
	c.allocColor.Store(uint32(heap.White))
	if cfg.DisableColorToggle {
		// No yellow role: white is both the creation default and the
		// clear color; createColor overrides per phase.
		c.clearColor.Store(uint32(heap.White))
	} else {
		c.clearColor.Store(uint32(heap.Yellow))
	}
	c.pacer = newPacer(cfg, h.SizeBytes)
	if cfg.Admission != nil {
		c.admission = newAdmission(c, *cfg.Admission)
	}
	if cfg.RequestSLO > 0 || cfg.Admission != nil {
		c.reqHist = &metrics.Histogram{}
	}
	c.reqCh = make(chan struct{}, 1)
	c.stopCh = make(chan struct{})
	c.doneCh = make(chan struct{})

	// The global-roots object. Allocated with a private cache; its
	// cells' block stays live for the runtime's lifetime.
	var cache heap.Cache
	slots := cfg.GlobalRootSlots
	g, err := h.Alloc(&cache, slots, heap.HeaderBytes+slots*heap.WordBytes, c.AllocColor())
	if err != nil {
		return nil, fmt.Errorf("gc: allocating global roots: %w", err)
	}
	c.globals = g
	h.Flush(&cache)
	c.heapBytes.Store(h.AllocatedBytes())
	c.heapObjects.Store(h.AllocatedObjects())
	return c, nil
}

// runMeta builds the run-metadata string stamped into the trace "start"
// event: the knobs a reader needs to interpret a run's numbers, in a
// fixed "key=value" order.
func runMeta(cfg Config, h *heap.Heap) string {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return fmt.Sprintf("gomaxprocs=%d workers=%d shards=%d barrier=%s mode=%s version=%s",
		runtime.GOMAXPROCS(0), cfg.Workers, h.AllocStats().Shards,
		cfg.Barrier, cfg.Mode, version)
}

// Config returns the collector's effective configuration.
func (c *Collector) Config() Config { return c.cfg }

// RunMeta returns the run-metadata string this collector stamps into
// its trace "start" event.
func (c *Collector) RunMeta() string { return runMeta(c.cfg, c.H) }

// Metrics returns the cycle recorder.
func (c *Collector) Metrics() *metrics.Recorder { return c.rec }

// AllocColor returns the current allocation color.
func (c *Collector) AllocColor() heap.Color { return heap.Color(c.allocColor.Load()) }

// ClearColor returns the current clear color.
func (c *Collector) ClearColor() heap.Color { return heap.Color(c.clearColor.Load()) }

// Globals returns the address of the global-roots object.
func (c *Collector) Globals() heap.Addr { return c.globals }

// CyclesDone returns the number of completed collection cycles.
func (c *Collector) CyclesDone() int64 { return c.cyclesDone.Load() }

// FullsDone returns the number of completed full collections.
func (c *Collector) FullsDone() int64 { return c.fullsDone.Load() }

// Start launches the background collector goroutine.
func (c *Collector) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go c.run()
}

// Stop terminates the collector: it marks the runtime closed (pending
// and future allocations fail with ErrClosed instead of waiting on
// collections that will never run), stops the background goroutine,
// drains any cycle in flight, and performs the final trace flush.
//
// Stop is idempotent and safe to call concurrently — with other Stop
// calls, with allocating mutators, and with a collection mid-handshake.
// A cycle whose handshake is wedged on an unresponsive mutator is
// granted one StallTimeout of grace and then aborted: the collector
// converges the handshake state and skips the sweep, so no object is
// ever freed on the strength of an incomplete trace (the aborted
// cycle's floating garbage is irrelevant at shutdown).
func (c *Collector) Stop() {
	if c.admission != nil {
		// Late arrivals shed with a clean "draining" error instead of
		// queueing against a runtime that is going away.
		c.admission.BeginDrain()
	}
	c.closed.Store(true)
	c.stopOnce.Do(func() { close(c.stopCh) })
	if c.started.Load() {
		<-c.doneCh
	}
	// Drain a synchronous CollectNow that may still hold the cycle
	// lock (tests and the manual-runtime OOM path run cycles on
	// helper goroutines).
	c.cycleMu.Lock()
	c.cycleMu.Unlock()
	if c.tracer != nil {
		c.tracer.Close()
	}
}

// Closed reports whether Stop has been initiated.
func (c *Collector) Closed() bool { return c.closed.Load() }

// Stalls returns how many stalled-mutator reports the handshake
// watchdog has issued.
func (c *Collector) Stalls() int64 { return c.stalls.Load() }

// AbortedCycles returns how many collection cycles were abandoned by a
// close racing a wedged handshake.
func (c *Collector) AbortedCycles() int64 { return c.abortedCycles.Load() }

// TraceDegraded reports whether the trace sink failed and was isolated
// (events since are counted as drops instead of wedging producers).
func (c *Collector) TraceDegraded() bool {
	return c.tracer != nil && c.tracer.Degraded()
}

// TraceDrops returns the total trace events lost so far — ring
// overflows plus events discarded after sink degradation.
func (c *Collector) TraceDrops() int64 {
	if c.tracer == nil {
		return 0
	}
	return c.tracer.Drops()
}

// OnStall registers fn to receive every handshake watchdog report. fn
// runs on the collector goroutine mid-handshake — it must not block and
// must not touch the runtime. A nil fn removes the observer; there is
// at most one.
func (c *Collector) OnStall(fn func(Stall)) {
	c.onStall.Lock()
	c.onStall.fn = fn
	c.onStall.Unlock()
}

// notifyStall fans one watchdog report out to the surfaces: counter,
// trace event, flight recorder, callback.
func (c *Collector) notifyStall(s Stall) {
	c.stalls.Add(1)
	if c.tracer != nil {
		c.ring.Emit(trace.Event{
			Ev:     "stall",
			T:      c.tracer.Rel(time.Now().Add(-s.Waited)),
			D:      s.Waited.Nanoseconds(),
			Cycle:  c.cyclesDone.Load() + 1,
			Worker: s.Mutator,
			K:      s.Phase,
		})
	}
	c.triggerDump("stall")
	c.onStall.Lock()
	fn := c.onStall.fn
	c.onStall.Unlock()
	if fn != nil {
		fn(s)
	}
}

// triggerDump freezes a flight-recorder capture for reason. The rings
// are flushed first so the event that provoked the trigger — emitted
// moments ago into a producer ring — is inside the captured window;
// Tracer.Flush is mutex-guarded, so this is safe from any goroutine
// (the watchdog mid-handshake, a mutator's allocation give-up, a pause
// recording). Nil-safe: without an armed recorder it costs one pointer
// comparison.
func (c *Collector) triggerDump(reason string) {
	if c.recorder == nil {
		return
	}
	if c.tracer != nil {
		c.tracer.Flush()
	}
	c.recorder.Trigger(reason)
}

// FlightRecorder returns the armed anomaly flight recorder, or nil.
func (c *Collector) FlightRecorder() *telemetry.Recorder { return c.recorder }

// SLOBreaches returns how many recorded pauses exceeded the configured
// PauseSLO (always zero without one).
func (c *Collector) SLOBreaches() int64 { return c.sloBreaches.Load() }

// Admission returns the armed admission controller, or nil when
// Config.Admission was not set.
func (c *Collector) Admission() *Admission { return c.admission }

// AdmissionStats snapshots the admission controller's counters (the
// zero value, Enabled false, without one).
func (c *Collector) AdmissionStats() AdmissionStats {
	if c.admission == nil {
		return AdmissionStats{}
	}
	return c.admission.Stats()
}

// ObserveRequest records one end-to-end request latency — queue wait
// plus allocation work plus retries, measured by the embedding server —
// into the request histogram, and enforces the RequestSLO: a breach is
// counted and triggers a (rate-limited) flight-recorder dump. A no-op
// unless request accounting is on (RequestSLO or Admission configured).
func (c *Collector) ObserveRequest(d time.Duration) {
	if c.reqHist == nil {
		return
	}
	c.reqHist.Record(d)
	if slo := c.cfg.RequestSLO; slo > 0 && d > slo {
		c.reqSLOBreaches.Add(1)
		now := time.Now().UnixNano()
		if last := c.reqSLODump.Load(); now-last >= int64(time.Second) &&
			c.reqSLODump.CompareAndSwap(last, now) {
			c.triggerDump("requestslo")
		}
	}
}

// RequestSLOBreaches returns how many observed request latencies
// exceeded the configured RequestSLO.
func (c *Collector) RequestSLOBreaches() int64 { return c.reqSLOBreaches.Load() }

// RequestStats condenses the request-latency histogram (Mutator -1: a
// fleet-wide aggregate). Zero-valued when request accounting is off.
func (c *Collector) RequestStats() metrics.PauseStats {
	if c.reqHist == nil {
		return metrics.PauseStats{Mutator: -1}
	}
	return c.reqHist.Stats(-1)
}

// RequestHistogram returns the request-latency histogram, or nil when
// request accounting is off (metrics exposition reads the buckets).
func (c *Collector) RequestHistogram() *metrics.Histogram { return c.reqHist }

// DemographicStats returns the run-cumulative heap demographics.
func (c *Collector) DemographicStats() metrics.Demographics {
	c.demo.Lock()
	defer c.demo.Unlock()
	return c.demo.Demographics.Clone()
}

// recordSelfCheckViolation retains an inter-cycle audit failure.
func (c *Collector) recordSelfCheckViolation(err error) {
	c.selfCheck.Lock()
	c.selfCheck.violations++
	if c.selfCheck.firstErr == nil {
		c.selfCheck.firstErr = err
	}
	c.selfCheck.Unlock()
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "gc: SELF-CHECK VIOLATION: %v\n", err)
	}
}

// SelfCheckErr returns the first inter-cycle self-check violation and
// how many occurred (both zero when clean or when Config.SelfCheck is
// off).
func (c *Collector) SelfCheckErr() (error, int64) {
	c.selfCheck.Lock()
	defer c.selfCheck.Unlock()
	return c.selfCheck.firstErr, c.selfCheck.violations
}

// run is the collector goroutine: it waits for a trigger and runs one
// cycle per request, coalescing requests that arrive mid-cycle.
func (c *Collector) run() {
	defer close(c.doneCh)
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.reqCh:
		}
		full := c.wantFull.Swap(false)
		c.pending.Store(false)
		if c.cfg.Mode == NonGenerational {
			full = true
		}
		// Drop requests that went stale while a previous cycle ran:
		// allocation during a cycle re-arms the triggers, and a
		// second collection right after the first would find nothing
		// to free. Full requests from mutators blocked on allocation
		// are never stale.
		if !full && !c.pacer.PartialDue() {
			continue
		}
		if full && c.fullWaiters.Load() == 0 &&
			!c.pacer.FullDue(c.H.AllocatedBytes()) {
			continue
		}
		c.Cycle(full)
	}
}

// request asks the collector goroutine for a collection; full upgrades
// any pending request to a full collection.
func (c *Collector) request(full bool) {
	if full {
		c.wantFull.Store(true)
	}
	if c.pending.CompareAndSwap(false, true) {
		select {
		case c.reqCh <- struct{}{}:
			// Let the collector goroutine start right away; without
			// the yield a compute-bound mutator on a single P delays
			// the cycle by a whole scheduling quantum.
			runtime.Gosched()
		default:
			c.pending.Store(false)
		}
	}
}

// noteAlloc charges one successful allocation — size is the requested
// size fed to the pacer, charged the cell size backing the exact heap
// totals — and converts the pacer's verdict into a collection request.
// Called from the allocation path; the pacer works from its own
// counters, so this never touches heap-wide state.
func (c *Collector) noteAlloc(size, charged int) {
	c.heapBytes.Add(int64(charged))
	c.heapObjects.Add(1)
	switch c.pacer.NoteAlloc(size) {
	case TriggerFull:
		c.request(true)
	case TriggerPartial:
		c.request(false)
	}
}

// noteFreed uncharges a sweep free batch from the exact heap totals.
func (c *Collector) noteFreed(objects, bytes int) {
	c.heapBytes.Add(-int64(bytes))
	c.heapObjects.Add(-int64(objects))
}

// HeapBytes returns the exact currently allocated bytes (live plus
// floating garbage, at cell granularity) — unlike the heap's shard
// counters it does not lag behind unpublished cache runs.
func (c *Collector) HeapBytes() int64 { return c.heapBytes.Load() }

// HeapObjects returns the exact currently allocated object count.
func (c *Collector) HeapObjects() int64 { return c.heapObjects.Load() }

// Pacer exposes the collection-scheduling component.
func (c *Collector) Pacer() *Pacer { return c.pacer }

// oldestAge returns the current tenure threshold.
func (c *Collector) oldestAge() uint8 { return uint8(c.pacer.OldAge()) }

// OldestAge exposes the current (possibly dynamic) tenure threshold.
func (c *Collector) OldestAge() int { return c.pacer.OldAge() }

// CollectNow runs one synchronous collection cycle on the calling
// goroutine. The caller must not be a mutator (a mutator would deadlock
// the handshakes; mutators use (*Mutator).Collect instead). On a
// stopped collector it is a no-op.
func (c *Collector) CollectNow(full bool) {
	if c.closed.Load() {
		return
	}
	c.Cycle(full || c.cfg.Mode == NonGenerational)
}
