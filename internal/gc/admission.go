package gc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gengc/internal/trace"
)

// ErrShed is wrapped by admissions the controller rejected: the queue
// was full, the queue wait timed out (or the caller's context expired
// in the queue), the runtime was degraded and the request was
// low-priority, or the runtime was draining. Callers distinguish the
// class with errors.Is and must treat it as backpressure — drop or
// retry elsewhere, never spin.
var ErrShed = errors.New("request shed")

// Priority classifies a request for the admission controller's degraded
// mode: when the pacer reports the heap over the red-line watermark or
// allocation deadlines slipping, PriorityLow requests are shed at the
// door while PriorityHigh requests still queue. With a healthy runtime
// the two are admitted identically.
type Priority int

const (
	PriorityLow Priority = iota
	PriorityHigh
)

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	}
	return "invalid"
}

// AdmissionConfig parameterizes the admission controller (Config.
// Admission; the gengc facade sets it via WithAdmission). The zero
// value of each field selects the default.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrently admitted requests — the
	// controller's token pool. Default 64.
	MaxInFlight int

	// MaxQueue bounds requests waiting for an in-flight token; a
	// request arriving with the queue full is shed immediately
	// (ErrShed) instead of waiting. Default 256.
	MaxQueue int

	// QueueTimeout bounds how long an admitted-queue wait may last
	// before the request is shed. A caller context with an earlier
	// deadline shortens the wait further (deadline-aware shedding: a
	// request that cannot meet its deadline anyway is shed now, while
	// retrying it is still cheap). Default 50ms.
	QueueTimeout time.Duration

	// RedLine is the heap-occupancy watermark, as a fraction of the
	// emergency full-collection bound (FullThreshold·HeapBytes), above
	// which the controller enters degraded mode and sheds PriorityLow
	// requests. 0.9 (the default) means "degrade at 90% of the
	// occupancy that would force an emergency full collection" — shed
	// before OOM, never after.
	RedLine float64

	// SlipWindow is how long after an allocation-deadline slip
	// (AllocCtx expiring in the allocation slow path, or an OOM
	// give-up) the controller stays in degraded mode. Default 250ms.
	SlipWindow time.Duration
}

// withDefaults fills unset admission fields.
func (a AdmissionConfig) withDefaults() AdmissionConfig {
	if a.MaxInFlight == 0 {
		a.MaxInFlight = 64
	}
	if a.MaxQueue == 0 {
		a.MaxQueue = 256
	}
	if a.QueueTimeout == 0 {
		a.QueueTimeout = 50 * time.Millisecond
	}
	if a.RedLine == 0 {
		a.RedLine = 0.9
	}
	if a.SlipWindow == 0 {
		a.SlipWindow = 250 * time.Millisecond
	}
	return a
}

// validate rejects admission configurations the controller cannot run.
func (a AdmissionConfig) validate() error {
	if a.MaxInFlight < 1 || a.MaxInFlight > 1<<20 {
		return fmt.Errorf("gc: %w: admission in-flight bound %d out of [1,%d]", ErrInvalidConfig, a.MaxInFlight, 1<<20)
	}
	if a.MaxQueue < 0 || a.MaxQueue > 1<<20 {
		return fmt.Errorf("gc: %w: admission queue bound %d out of [0,%d]", ErrInvalidConfig, a.MaxQueue, 1<<20)
	}
	if a.QueueTimeout < 0 {
		return fmt.Errorf("gc: %w: negative admission queue timeout %v", ErrInvalidConfig, a.QueueTimeout)
	}
	if a.RedLine <= 0 || a.RedLine > 1 {
		return fmt.Errorf("gc: %w: admission red-line %v out of (0,1]", ErrInvalidConfig, a.RedLine)
	}
	if a.SlipWindow < 0 {
		return fmt.Errorf("gc: %w: negative admission slip window %v", ErrInvalidConfig, a.SlipWindow)
	}
	return nil
}

// AdmissionStats is the controller's cumulative-counter snapshot
// (Snapshot.Admission in the facade).
type AdmissionStats struct {
	// Enabled reports whether an admission controller is armed at all;
	// every other field is zero when it is not.
	Enabled bool

	// Admitted counts requests granted an in-flight token; Shed is the
	// sum of the four shed classes below.
	Admitted int64
	Shed     int64

	// ShedQueueFull counts requests rejected at the door because
	// MaxQueue waiters were already queued; ShedTimeout counts queue
	// waits cut short by QueueTimeout or the caller's context;
	// ShedDegraded counts PriorityLow requests rejected while the
	// runtime was degraded; ShedDraining counts requests rejected
	// after BeginDrain.
	ShedQueueFull int64
	ShedTimeout   int64
	ShedDegraded  int64
	ShedDraining  int64

	// Retries counts transient-failure retries reported by callers
	// (NoteRetry — the server's ErrStalled retry loop).
	Retries int64

	// DegradedEnters counts transitions into degraded mode; Degraded
	// is the current state.
	DegradedEnters int64
	Degraded       bool

	// Queued and InFlight are instantaneous gauges.
	Queued   int64
	InFlight int64
}

// Admission is the runtime's admission controller: a bounded in-flight
// token pool with a bounded, deadline-aware wait queue in front of it,
// plus a degraded mode driven by the pacer's occupancy and deadline-slip
// signals. It exists to convert overload into prompt, cheap rejections
// (ErrShed) instead of unbounded queueing, SLO collapse, or OOM.
//
// The controller is deliberately runtime-level rather than server-level:
// it reads the pacer directly, so any embedder — not just
// internal/server — gets the same shed-before-OOM policy.
type Admission struct {
	c   *Collector
	cfg AdmissionConfig

	// tokens holds MaxInFlight tokens; Admit takes one, Release
	// returns it. A buffered channel rather than a semaphore count so
	// queue waits can select on it against the timeout, the caller's
	// context and drain.
	tokens chan struct{}

	// drainCh is closed by BeginDrain so queued waiters shed promptly
	// instead of waiting out their timers against a draining runtime.
	drainCh   chan struct{}
	draining  atomic.Bool
	drainOnce sync.Once

	degraded atomic.Bool

	queued   atomic.Int64
	inflight atomic.Int64

	admitted       atomic.Int64
	shedQueueFull  atomic.Int64
	shedTimeout    atomic.Int64
	shedDegraded   atomic.Int64
	shedDraining   atomic.Int64
	retries        atomic.Int64
	degradedEnters atomic.Int64

	// lastDump rate-limits flight-recorder triggers from the shed path
	// (unixnano): a storm of sheds is exactly when flushing the tracer
	// per event would hurt.
	lastDump atomic.Int64

	// ring is the controller's trace-event buffer. Rings are SPSC;
	// Admit runs on arbitrary caller goroutines, so emission is
	// serialized by the mutex.
	ring struct {
		sync.Mutex
		r *trace.Ring
	}
}

// newAdmission builds the controller. cfg must already have defaults
// applied and be validated (Config.withDefaults/validate do both).
func newAdmission(c *Collector, cfg AdmissionConfig) *Admission {
	a := &Admission{
		c:       c,
		cfg:     cfg,
		tokens:  make(chan struct{}, cfg.MaxInFlight),
		drainCh: make(chan struct{}),
	}
	for i := 0; i < cfg.MaxInFlight; i++ {
		a.tokens <- struct{}{}
	}
	if c.tracer != nil {
		a.ring.r = c.tracer.NewRing()
	}
	return a
}

// Admit asks for an in-flight token for one request of priority pri.
// It returns nil when the request may proceed (the caller must call
// Release exactly once when done) and an error wrapping ErrShed when
// the request is rejected. The wait is bounded by QueueTimeout, the
// context's deadline, and drain — whichever comes first.
func (a *Admission) Admit(ctx context.Context, pri Priority) error {
	if a.draining.Load() {
		a.shedDraining.Add(1)
		a.noteShed("draining", pri)
		return fmt.Errorf("gc: admission: draining: %w", ErrShed)
	}
	if a.refreshDegraded() && pri == PriorityLow {
		a.shedDegraded.Add(1)
		a.noteShed("degraded", pri)
		return fmt.Errorf("gc: admission: degraded mode: %w", ErrShed)
	}
	// Fast path: a token is free, no queueing.
	select {
	case <-a.tokens:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.queued.Load() >= int64(a.cfg.MaxQueue) {
		a.shedQueueFull.Add(1)
		a.noteShed("queuefull", pri)
		return fmt.Errorf("gc: admission: queue full: %w", ErrShed)
	}
	a.queued.Add(1)
	defer a.queued.Add(-1)

	// Deadline-aware wait bound: never wait past the caller's own
	// deadline — a request that would miss it anyway is cheaper to
	// shed now, while the client can still retry elsewhere.
	wait := a.cfg.QueueTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		a.shedTimeout.Add(1)
		a.noteShed("timeout", pri)
		return fmt.Errorf("gc: admission: deadline exhausted in queue: %w", ErrShed)
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-a.tokens:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return nil
	case <-timer.C:
		a.shedTimeout.Add(1)
		a.noteShed("timeout", pri)
		return fmt.Errorf("gc: admission: queue wait exceeded %v: %w", wait, ErrShed)
	case <-ctx.Done():
		a.shedTimeout.Add(1)
		a.noteShed("timeout", pri)
		return fmt.Errorf("gc: admission: %w: %w", ErrShed, ctx.Err())
	case <-a.drainCh:
		a.shedDraining.Add(1)
		a.noteShed("draining", pri)
		return fmt.Errorf("gc: admission: draining: %w", ErrShed)
	}
}

// Release returns an in-flight token. Exactly one Release per
// successful Admit; the channel has capacity for every token, so this
// never blocks.
func (a *Admission) Release() {
	a.inflight.Add(-1)
	a.tokens <- struct{}{}
}

// NoteRetry records one transient-failure retry performed by a caller
// holding a token (the server's jittered-backoff ErrStalled loop), so
// retry pressure is visible next to shed pressure.
func (a *Admission) NoteRetry() { a.retries.Add(1) }

// BeginDrain stops admission permanently: subsequent Admit calls shed
// with reason "draining" and queued waiters are released to shed
// promptly. In-flight requests are unaffected — the caller flushes
// them (internal/server's Drain) and then stops the runtime.
// Collector.Stop also calls this, so a bare Close sheds instead of
// stranding late arrivals.
func (a *Admission) BeginDrain() {
	if a.draining.CompareAndSwap(false, true) {
		a.drainOnce.Do(func() { close(a.drainCh) })
	}
}

// Draining reports whether BeginDrain has been called.
func (a *Admission) Draining() bool { return a.draining.Load() }

// Degraded reports whether the controller is currently in degraded
// mode (refreshing the state from the pacer first, so pollers see the
// live verdict, not the last Admit's).
func (a *Admission) Degraded() bool { return a.refreshDegraded() }

// refreshDegraded recomputes degraded mode from the pacer's two
// robustness signals — heap occupancy against the red-line watermark
// and recent allocation-deadline slips — and emits the enter/exit
// transition events.
func (a *Admission) refreshDegraded() bool {
	deg := a.c.pacer.OccupancyRatio() >= a.cfg.RedLine ||
		a.c.pacer.SlipWithin(a.cfg.SlipWindow)
	if deg {
		if a.degraded.CompareAndSwap(false, true) {
			a.degradedEnters.Add(1)
			a.emit("degraded", "enter", 0)
			a.dump("degraded")
		}
	} else if a.degraded.CompareAndSwap(true, false) {
		a.emit("degraded", "exit", 0)
	}
	return deg
}

// noteShed emits the trace event and (rate-limited) flight-recorder
// trigger for one shed request.
func (a *Admission) noteShed(reason string, pri Priority) {
	a.emit("shed", reason, int64(pri))
	a.dump("shed")
}

// emit publishes one admission event. Worker -1 marks events not
// attributable to a mutator; N carries the request priority.
func (a *Admission) emit(ev, kind string, n int64) {
	a.ring.Lock()
	defer a.ring.Unlock()
	if a.ring.r == nil {
		return
	}
	a.ring.r.Emit(trace.Event{
		Ev:     ev,
		T:      a.c.tracer.Rel(time.Now()),
		Worker: -1,
		N:      n,
		K:      kind,
	})
}

// dump triggers a flight-recorder capture, rate-limited to one per
// second on the admission side: Collector.triggerDump flushes the whole
// tracer, which must not run per-request during a shed storm.
func (a *Admission) dump(reason string) {
	now := time.Now().UnixNano()
	last := a.lastDump.Load()
	if now-last < int64(time.Second) || !a.lastDump.CompareAndSwap(last, now) {
		return
	}
	a.c.triggerDump(reason)
}

// Stats snapshots the controller's counters.
func (a *Admission) Stats() AdmissionStats {
	sqf, st := a.shedQueueFull.Load(), a.shedTimeout.Load()
	sd, sdr := a.shedDegraded.Load(), a.shedDraining.Load()
	return AdmissionStats{
		Enabled:        true,
		Admitted:       a.admitted.Load(),
		Shed:           sqf + st + sd + sdr,
		ShedQueueFull:  sqf,
		ShedTimeout:    st,
		ShedDegraded:   sd,
		ShedDraining:   sdr,
		Retries:        a.retries.Load(),
		DegradedEnters: a.degradedEnters.Load(),
		Degraded:       a.degraded.Load(),
		Queued:         a.queued.Load(),
		InFlight:       a.inflight.Load(),
	}
}
