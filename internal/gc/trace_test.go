package gc

import (
	"sync"
	"testing"
	"time"

	"gengc/internal/heap"
)

// TestTraceDeepStructure: a deep linked structure is fully traced.
func TestTraceDeepStructure(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	head := mustAlloc(t, m, 1, 0)
	m.PushRoot(head)
	cur := head
	const depth = 5000
	for i := 0; i < depth; i++ {
		n := mustAlloc(t, m, 1, 0)
		m.Update(cur, 0, n)
		cur = n
	}
	collectWhileCooperating(c, false, m)
	// Everything black, nothing freed.
	n := 0
	for x := head; x != 0; x = c.H.LoadSlot(x, 0) {
		if c.H.Color(x) != heap.Black {
			t.Fatalf("node %d not black", n)
		}
		n++
	}
	if n != depth+1 {
		t.Fatalf("chain length %d, want %d", n, depth+1)
	}
}

// TestTraceSharedAndCyclicStructure: diamonds and cycles are traced
// without duplication or hangs, and cyclic garbage is reclaimed.
func TestTraceSharedAndCyclicStructure(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	a := mustAlloc(t, m, 2, 0)
	b := mustAlloc(t, m, 2, 0)
	d := mustAlloc(t, m, 2, 0)
	m.Update(a, 0, b)
	m.Update(a, 1, d)
	m.Update(b, 0, d) // diamond
	m.Update(d, 0, a) // cycle back to the root
	m.PushRoot(a)

	// Cyclic garbage.
	g1 := mustAlloc(t, m, 1, 0)
	g2 := mustAlloc(t, m, 1, 0)
	m.Update(g1, 0, g2)
	m.Update(g2, 0, g1)

	collectWhileCooperating(c, false, m)
	for _, x := range []heap.Addr{a, b, d} {
		if c.H.Color(x) != heap.Black {
			t.Errorf("live node %#x not black", x)
		}
	}
	if c.H.ValidObject(g1) || c.H.ValidObject(g2) {
		t.Error("cyclic garbage survived")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceTermination: the trace fixpoint protocol terminates while a
// mutator keeps producing grays throughout.
func TestTraceTermination(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	x := mustAlloc(t, m, 1, 0)
	m.PushRoot(x)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Cooperate()
				// Churn: overwrite a slot with fresh objects so the
				// deletion barrier keeps firing.
				n, err := m.Alloc(0, 32)
				if err != nil {
					t.Error(err)
					return
				}
				m.Update(x, 0, n)
			}
		}
	}()
	done := make(chan struct{})
	go func() {
		c.CollectNow(false)
		c.CollectNow(true)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("trace did not terminate under churn")
	}
	close(stop)
	wg.Wait()
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDetachedMutatorGraysAdopted: grays left in a detached mutator's
// buffer are still traced.
func TestDetachedMutatorGraysAdopted(t *testing.T) {
	c := newTestCollector(t, Generational)
	keeper := c.NewMutator()
	temp := c.NewMutator()
	x := mustAlloc(t, temp, 0, 32)
	// Publish x via the globals so it stays reachable, then force a
	// gray into temp's buffer and detach before any trace runs.
	keeper.Update(c.Globals(), 0, x)
	c.switchColors() // x now clear-colored
	temp.markGray(x)
	temp.Detach()
	c.switchColors() // restore toggle state for a clean cycle

	collectWhileCooperating(c, false, keeper)
	if !c.H.ValidObject(x) {
		t.Fatal("object grayed by a detached mutator was lost")
	}
}

// TestMarkBlackCounts: trace work counters reflect the traced graph.
func TestMarkBlackCounts(t *testing.T) {
	c := newTestCollector(t, Generational)
	m := c.NewMutator()
	root := mustAlloc(t, m, 3, 0)
	m.PushRoot(root)
	for i := 0; i < 3; i++ {
		m.Update(root, i, mustAlloc(t, m, 0, 32))
	}
	collectWhileCooperating(c, false, m)
	cs := c.Metrics().Cycles()
	last := cs[len(cs)-1]
	// root + 3 children + globals object.
	if last.ObjectsScanned < 4 || last.ObjectsScanned > 6 {
		t.Errorf("ObjectsScanned = %d, want about 5", last.ObjectsScanned)
	}
	if last.SlotsScanned < 3 {
		t.Errorf("SlotsScanned = %d, want >= 3", last.SlotsScanned)
	}
}
