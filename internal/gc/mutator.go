package gc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gengc/internal/fault"
	"gengc/internal/heap"
	"gengc/internal/metrics"
	"gengc/internal/trace"
)

// Mutator is one program thread's view of the runtime: its allocation
// cache, its simulated stack of root slots, its handshake status, and
// its gray buffer. All methods must be called from the single goroutine
// that owns the mutator; the collector reads the atomic fields.
//
// The three mutator routines of Figure 1 map to Update (the write
// barrier), Alloc (create) and Cooperate.
type Mutator struct {
	c  *Collector
	id int

	status atomic.Uint32 // Status, observed by waitHandshake

	cache heap.Cache

	// roots is the simulated thread stack. Only the owning goroutine
	// reads or writes it: per DLG there is no write barrier on stack
	// operations, and the mutator itself marks these roots when it
	// responds to the third handshake.
	roots []heap.Addr

	// gray is the buffer of objects this mutator has shaded gray; the
	// collector drains it during trace.
	gray struct {
		sync.Mutex
		buf []heap.Addr
	}

	// rem is the remembered-set buffer (UseRememberedSet only).
	rem struct {
		sync.Mutex
		buf []heap.Addr
	}

	// bb is the deferred-barrier buffer (Config.Barrier ==
	// BarrierBatched only; nil selects the eager barrier). See
	// barrier.go for the machinery and the safety argument.
	bb *barrierBuf

	// ack mirrors the collector's ackEpoch when the mutator passes a
	// safe point.
	ack atomic.Int64

	// pauses is this mutator's latency histogram of GC-imposed delays
	// (nil when Config.DisablePauseHistograms); ring is its trace
	// event buffer (nil without a TraceSink).
	pauses *metrics.Histogram
	ring   *trace.Ring

	detached atomic.Bool
}

// NewMutator attaches a new mutator thread to the collector.
func (c *Collector) NewMutator() *Mutator {
	m := &Mutator{c: c, roots: make([]heap.Addr, 0, 64)}
	if c.cfg.Barrier == BarrierBatched {
		m.bb = newBarrierBuf()
	}
	if !c.cfg.DisablePauseHistograms {
		m.pauses = &metrics.Histogram{}
	}
	if c.tracer != nil {
		m.ring = c.tracer.NewRing()
	}
	c.muts.Lock()
	m.id = c.muts.nextID
	c.muts.nextID++
	// Adopt the current status: the collector's waitHandshake only
	// completes once every registered mutator matches, and a mutator
	// registered at the current status has nothing to respond to.
	m.status.Store(c.statusC.Load())
	m.ack.Store(c.ackEpoch.Load())
	c.muts.list = append(c.muts.list, m)
	c.muts.Unlock()
	return m
}

// Detach removes the mutator from handshakes. Its allocation cache is
// returned to the heap and its gray buffer is left for the collector to
// drain. The mutator must not be used afterwards.
func (m *Mutator) Detach() {
	if m.detached.Swap(true) {
		return
	}
	// Publish any deferred barrier work before the gray hand-off below:
	// the flush may append to m.gray.buf and mark cards, and after
	// Detach returns nobody would ever drain the buffer.
	m.flushBarrier("detach")
	m.c.H.Flush(&m.cache)
	m.c.muts.Lock()
	list := m.c.muts.list
	for i, x := range list {
		if x == m {
			m.c.muts.list = append(list[:i], list[i+1:]...)
			break
		}
	}
	m.c.muts.Unlock()
	// Leftover gray entries must still reach the collector.
	m.gray.Lock()
	buf := m.gray.buf
	m.gray.buf = nil
	m.gray.Unlock()
	if len(buf) > 0 {
		m.c.adoptOrphans(buf)
	}
	m.rem.Lock()
	rbuf := m.rem.buf
	m.rem.buf = nil
	m.rem.Unlock()
	if len(rbuf) > 0 {
		m.c.remOrphans.Lock()
		m.c.remOrphans.buf = append(m.c.remOrphans.buf, rbuf...)
		m.c.remOrphans.Unlock()
	}
	// Preserve the pause history for fleet-wide statistics.
	if m.pauses != nil {
		m.pauses.MergeInto(m.c.retired)
	}
}

// adoptOrphans hands gray objects from a detached mutator to the
// collector via the orphan buffer of the registry.
func (c *Collector) adoptOrphans(buf []heap.Addr) {
	c.orphans.Lock()
	c.orphans.buf = append(c.orphans.buf, buf...)
	c.orphans.Unlock()
}

// Cooperate is the mutator's safe point (Figure 1): it must be called
// regularly — the paper cites backward branches and invocations; our
// workloads call it once per operation. It responds to handshakes,
// marks the thread's roots when moving from sync2 to async, and
// acknowledges trace-termination epochs.
//
// The fast path (nothing to respond to) is two atomic loads; a response
// is additionally timed as a mutator pause — this is the paper's
// central claim (mutators are delayed for at most a root-scan, Figures
// 16–21), measured from the mutator's own side.
func (m *Mutator) Cooperate() {
	sc := Status(m.c.statusC.Load())
	statusChanged := Status(m.status.Load()) != sc
	ackPending := m.c.ackEpoch.Load() != m.ack.Load()
	if !statusChanged && !ackPending {
		return
	}
	// The combined injection/yield point for the stalled-mutator
	// scenario: a Delay rule holds this thread right when the
	// collector is waiting on it (the watchdog must surface that);
	// Drop/Fail skip this response — the next safe point answers
	// instead. Under a virtual scheduler this is where a pending
	// response becomes one schedulable step (and a Drop decision is
	// the enumerable "missed safe point" branch).
	if drop, fail := m.c.seamStep(fault.Cooperate); drop || fail {
		return
	}
	start := m.pauseStart()
	// Drain the deferred barrier before responding: the status and ack
	// stores below publish the response to the collector, and the
	// sliding-views argument (barrier.go) needs every buffered shade
	// and card mark visible no later than the response itself. The
	// flush also runs under the *old* status, so buffered shades see
	// the same phase they were created under.
	//
	// UnsafeBreakFlushBeforeAck (model checking only) re-introduces
	// the historical ordering bug by moving the flush after the
	// response stores — cmd/gcverify must catch the lost object.
	bugOrder := m.c.cfg.UnsafeBreakFlushBeforeAck
	if !bugOrder {
		m.flushBarrier("handshake")
	}
	cause := "ack"
	if statusChanged {
		if Status(m.status.Load()) == StatusSync2 {
			cause = "roots"
			aging := m.c.cfg.Mode == GenerationalAging
			for _, r := range m.roots {
				if r == 0 {
					continue
				}
				if aging {
					m.markGrayAging(r)
				} else {
					m.markGray(r)
				}
			}
		} else {
			cause = "handshake"
		}
		m.status.Store(uint32(sc))
	}
	if e := m.c.ackEpoch.Load(); e != m.ack.Load() {
		m.ack.Store(e)
	}
	if bugOrder {
		m.flushBarrier("handshake")
	}
	// Hand the processor to the waiting collector: on a single
	// P a compute-bound mutator would otherwise keep running a
	// full preemption quantum, stretching the sync1/sync2 window
	// in which the write barrier promotes freshly created
	// objects (§7.1).
	runtime.Gosched()
	m.recordPause(start, cause)
}

// PendingResponse reports whether this mutator's next Cooperate would
// actually respond to something — a posted handshake status it has not
// adopted or an acknowledgement epoch it has not stored. The virtual
// scheduler's mutator drivers use it as their readiness predicate so an
// idle scripted mutator blocks instead of spinning through no-op safe
// points.
func (m *Mutator) PendingResponse() bool {
	return m.status.Load() != m.c.statusC.Load() ||
		m.ack.Load() != m.c.ackEpoch.Load()
}

// pauseStart samples the clock iff pause accounting or tracing wants
// it; the zero time means "don't record".
func (m *Mutator) pauseStart() time.Time {
	if m.pauses == nil && m.ring == nil {
		return time.Time{}
	}
	return time.Now()
}

// recordPause closes a pause span opened by pauseStart: the delay goes
// into the mutator's histogram and, with a trace sink, out as a "pause"
// event attributed to this mutator. The yield to the collector counts
// as part of the pause — it is time this thread gave up because the
// collector asked, which is exactly what the paper's pause figures
// measure.
func (m *Mutator) recordPause(start time.Time, cause string) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	if m.pauses != nil {
		m.pauses.Record(d)
	}
	if m.ring != nil {
		m.ring.Emit(trace.Event{
			Ev:     "pause",
			T:      m.c.tracer.Rel(start),
			D:      d.Nanoseconds(),
			Worker: m.id,
			K:      cause,
		})
	}
	if slo := m.c.cfg.PauseSLO; slo > 0 && d > slo {
		m.c.sloBreaches.Add(1)
		m.c.triggerDump("pauseslo")
	}
}

// markGray is the MarkGray of Figure 1: shade the object gray if it has
// the clear color, or — during sync1/sync2 — also if it has the
// allocation color (the §7.1 exception that protects yellow objects
// created in the window between the card scan and the color toggle).
func (m *Mutator) markGray(x heap.Addr) {
	if x == 0 {
		return
	}
	col := m.c.H.Color(x)
	cc := heap.Color(m.c.clearColor.Load())
	if col == cc {
		m.shade(x, cc)
		return
	}
	if Status(m.status.Load()) != StatusAsync {
		ac := heap.Color(m.c.allocColor.Load())
		if col == ac {
			m.shade(x, ac)
		}
	}
}

// markGrayAging is the MarkGray of Figure 4: clear color only.
func (m *Mutator) markGrayAging(x heap.Addr) {
	if x == 0 {
		return
	}
	cc := heap.Color(m.c.clearColor.Load())
	if m.c.H.Color(x) == cc {
		m.shade(x, cc)
	}
}

// shade performs the gray transition and publishes the object to the
// collector. The CAS guarantees each object enters a gray buffer at most
// once per transition, which bounds the trace's total work.
func (m *Mutator) shade(x heap.Addr, from heap.Color) {
	if !m.c.H.CasColor(x, from, heap.Gray) {
		return
	}
	m.gray.Lock()
	m.gray.buf = append(m.gray.buf, x)
	m.gray.Unlock()
	m.c.grayProduced.Add(1)
}

// Update is the write barrier (Figures 1 and 4): store pointer y into
// slot i of object x with the bookkeeping the current collector mode and
// phase require.
func (m *Mutator) Update(x heap.Addr, i int, y heap.Addr) {
	if m.bb != nil {
		m.updateBatched(x, i, y)
		return
	}
	c := m.c
	switch c.cfg.Mode {
	case GenerationalAging:
		// Figure 4: gray old (and new while not async); the card is
		// marked unconditionally and — crucially for the §7.2 race —
		// only after the store.
		if Status(m.status.Load()) != StatusAsync {
			m.markGrayAging(c.H.LoadSlot(x, i))
			m.markGrayAging(y)
		} else if c.tracing.Load() {
			m.markGrayAging(c.H.LoadSlot(x, i))
		}
		c.H.StoreSlot(x, i, y)
		c.Cards.Mark(x)
	case Generational:
		// Figure 1: inter-generational recording only during async
		// (card marking, or the remembered-set extension).
		if Status(m.status.Load()) != StatusAsync {
			m.markGray(c.H.LoadSlot(x, i))
			m.markGray(y)
		} else if c.tracing.Load() {
			m.markGray(c.H.LoadSlot(x, i))
			m.recordInterGen(x)
		} else {
			m.recordInterGen(x)
		}
		c.H.StoreSlot(x, i, y)
	default: // NonGenerational
		if Status(m.status.Load()) != StatusAsync {
			m.markGray(c.H.LoadSlot(x, i))
			m.markGray(y)
		} else if c.tracing.Load() {
			m.markGray(c.H.LoadSlot(x, i))
		}
		c.H.StoreSlot(x, i, y)
	}
}

// UpdateBatch stores vals into slots 0..len(vals)-1 of object x — one
// Update per slot, but with the per-object bookkeeping done once: the
// handshake phase is sampled a single time (sound: only this goroutine
// changes m.status, at safe points, and no safe point occurs inside the
// batch), and the card mark / remembered-set record for x is issued
// once instead of len(vals) times (all slots of x share x's card).
//
// Equivalence caveat: the stores must all target the same object and a
// dense slot prefix. Writes that scatter across objects — like the
// random-slot mutation phases of internal/workload — get no benefit
// and must keep using Update.
func (m *Mutator) UpdateBatch(x heap.Addr, vals []heap.Addr) {
	if len(vals) == 0 {
		return
	}
	c := m.c
	aging := c.cfg.Mode == GenerationalAging
	sync := Status(m.status.Load()) != StatusAsync
	tracing := c.tracing.Load()
	shadeOld := sync || tracing
	if b := m.bb; b != nil {
		for j, y := range vals {
			if shadeOld {
				b.bufferShade(c.H.LoadSlot(x, j))
			}
			if sync {
				b.bufferShade(y)
			}
			c.H.StoreSlot(x, j, y)
		}
		if aging || (c.cfg.Mode == Generational && !sync) {
			m.bufferCard(x)
		}
		b.stores += int64(len(vals))
		if len(b.shade)+len(b.cards) >= barrierFlushThreshold {
			m.flushBarrier("full")
		}
		return
	}
	for j, y := range vals {
		if shadeOld {
			if aging {
				m.markGrayAging(c.H.LoadSlot(x, j))
			} else {
				m.markGray(c.H.LoadSlot(x, j))
			}
		}
		if sync {
			if aging {
				m.markGrayAging(y)
			} else {
				m.markGray(y)
			}
		}
		c.H.StoreSlot(x, j, y)
	}
	switch c.cfg.Mode {
	case GenerationalAging:
		c.Cards.Mark(x)
	case Generational:
		if !sync {
			m.recordInterGen(x)
		}
	}
}

// recordInterGen notes that object x may now hold an inter-generational
// pointer, via the configured mechanism.
func (m *Mutator) recordInterGen(x heap.Addr) {
	if m.c.cfg.UseRememberedSet {
		m.remember(x)
	} else {
		m.c.Cards.Mark(x)
	}
}

// Read loads pointer slot i of object x. DLG needs no read barrier.
func (m *Mutator) Read(x heap.Addr, i int) heap.Addr {
	return m.c.H.LoadSlot(x, i)
}

// Alloc is the create routine of Figure 1: pick a free cell and color it
// with the current allocation color. size is the total object size in
// bytes (at least header + slots); slots pointer slots are zeroed.
//
// When the heap is exhausted the mutator requests a full collection and
// waits for it while continuing to cooperate with handshakes (a blocked
// mutator that stopped responding would deadlock the collector). The
// number of collect-and-retry rounds is bounded by Config.AllocRetries;
// past it the error wraps heap.ErrOutOfMemory. On a stopped collector
// the error wraps ErrClosed.
func (m *Mutator) Alloc(slots, size int) (heap.Addr, error) {
	return m.alloc(context.Background(), slots, size)
}

// AllocCtx is Alloc bounded by a context: the OOM wait for a full
// collection observes ctx, so a deadline or cancellation turns an
// indefinite allocation stall into an error. A context that expires
// while waiting yields an error wrapping both ErrStalled and ctx.Err();
// the fast path costs one extra ctx.Err check over Alloc.
func (m *Mutator) AllocCtx(ctx context.Context, slots, size int) (heap.Addr, error) {
	return m.alloc(ctx, slots, size)
}

// alloc is the shared allocation path; Alloc passes
// context.Background() (its Err is always nil, so the uncancellable
// path costs one interface call per attempt and nothing else).
func (m *Mutator) alloc(ctx context.Context, slots, size int) (heap.Addr, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if attempt > 0 {
				// Cancellation landing between OOM retries is still an
				// allocation stall — the AllocCtx contract promises an
				// error wrapping both ErrStalled and ctx.Err(), and the
				// remaining retry budget must not be burned first.
				m.c.pacer.NoteSlip()
				m.c.triggerDump("allocstall")
				return 0, fmt.Errorf("gc: mutator %d: allocation: %w (%w)",
					m.id, ErrStalled, err)
			}
			return 0, fmt.Errorf("gc: mutator %d: allocation: %w", m.id, err)
		}
		if m.c.closed.Load() {
			return 0, fmt.Errorf("gc: mutator %d: allocation: %w", m.id, ErrClosed)
		}
		var addr heap.Addr
		var err error
		if m.c.seamArmed() {
			if drop, fail := m.c.seamStep(fault.Alloc); drop || fail {
				// Injected transient exhaustion: exercise the same
				// collect-and-retry path a real OOM takes.
				err = fmt.Errorf("gc: injected allocation fault: %w", heap.ErrOutOfMemory)
			}
		}
		if err == nil {
			if m.c.cfg.DisableColorToggle {
				addr, err = m.allocToggleFree(slots, size)
			} else {
				addr, err = m.c.H.Alloc(&m.cache, slots, size, m.c.AllocColor())
			}
		}
		if err == nil {
			if size < heap.HeaderBytes+slots*heap.WordBytes {
				size = heap.HeaderBytes + slots*heap.WordBytes
			}
			m.c.noteAlloc(size, m.c.H.SizeOf(addr))
			return addr, nil
		}
		if attempt >= m.c.cfg.AllocRetries {
			m.c.pacer.NoteSlip()
			m.c.triggerDump("oom")
			return 0, fmt.Errorf("gc: mutator %d: %w after %d full collections", m.id, err, attempt)
		}
		if werr := m.waitForFullCollection(ctx, attempt); werr != nil {
			return 0, werr
		}
	}
}

// waitForFullCollection requests a full collection and cooperates until
// one completes. Without a background collector goroutine (tests that
// drive collections manually) the cycle is run on a helper goroutine so
// this mutator can keep responding to its handshakes.
//
// The poll interval backs off with the retry attempt — each failed
// round means the last collection freed too little, so hammering the
// next one helps nobody — but stays far below the stall deadline so
// the waiting mutator keeps answering handshakes promptly. The wait
// ends early (with an error) when the runtime closes (ErrClosed) or
// the caller's context expires (ErrStalled wrapping ctx.Err()).
//
// The whole stall is recorded as one "allocwait" pause — the dominant
// mutator-visible delay a collector can impose. Handshake responses
// made while waiting are recorded as their own (nested, much shorter)
// pauses; OBSERVABILITY.md documents the overlap.
func (m *Mutator) waitForFullCollection(ctx context.Context, attempt int) error {
	pauseAt := m.pauseStart()
	defer m.recordPause(pauseAt, "allocwait")
	// Feed the pacer's slow-path wait EWMA — the admission controller's
	// view of how expensive allocation stalls currently are. pauseAt is
	// zero when neither histograms nor tracing are on; sample the clock
	// ourselves then.
	waitStart := pauseAt
	if waitStart.IsZero() {
		waitStart = time.Now()
	}
	defer func() { m.c.pacer.NoteAllocWait(time.Since(waitStart)) }()
	m.c.fullWaiters.Add(1)
	defer m.c.fullWaiters.Add(-1)
	if m.c.vsched != nil {
		// Under the virtual scheduler there is no background collector
		// and spawning the helper goroutine below would escape the
		// controlled actor set; heap exhaustion in a model-checking
		// scenario is a scenario-sizing bug, so surface it immediately
		// and deterministically.
		return fmt.Errorf("gc: mutator %d: full collection wait under virtual scheduler: %w",
			m.id, heap.ErrOutOfMemory)
	}
	start := m.c.fullsDone.Load()
	if m.c.started.Load() {
		m.c.request(true)
	} else {
		go m.c.CollectNow(true)
	}
	sleep := AllocWaitSleepBase << uint(attempt)
	if sleep > AllocWaitSleepMax {
		sleep = AllocWaitSleepMax
	}
	for m.c.fullsDone.Load() == start {
		if m.c.closed.Load() {
			return fmt.Errorf("gc: mutator %d: full collection wait: %w", m.id, ErrClosed)
		}
		if err := ctx.Err(); err != nil {
			m.c.pacer.NoteSlip()
			m.c.triggerDump("allocstall")
			return fmt.Errorf("gc: mutator %d: full collection wait: %w (%w)",
				m.id, ErrStalled, err)
		}
		m.Cooperate()
		time.Sleep(sleep)
	}
	return nil
}

// Collect runs a collection from a mutator goroutine: the cycle runs on
// a helper goroutine (explicit requests bypass the background trigger's
// staleness filtering) while this mutator cooperates until it completes.
// On a stopped collector it returns immediately.
func (m *Mutator) Collect(full bool) {
	counter := &m.c.cyclesDone
	if full {
		counter = &m.c.fullsDone
	}
	start := counter.Load()
	go m.c.CollectNow(full)
	for counter.Load() == start {
		if m.c.closed.Load() {
			return
		}
		m.Cooperate()
		time.Sleep(CollectPollInterval)
	}
}

// PushRoot appends a root slot and returns its index.
func (m *Mutator) PushRoot(v heap.Addr) int {
	m.roots = append(m.roots, v)
	return len(m.roots) - 1
}

// SetRoot overwrites root slot i. Stack writes have no barrier (§2).
func (m *Mutator) SetRoot(i int, v heap.Addr) { m.roots[i] = v }

// Root returns root slot i.
func (m *Mutator) Root(i int) heap.Addr { return m.roots[i] }

// NumRoots returns the current root count.
func (m *Mutator) NumRoots() int { return len(m.roots) }

// PopRoots drops the top n root slots.
func (m *Mutator) PopRoots(n int) { m.roots = m.roots[:len(m.roots)-n] }

// ID returns the mutator's registry id.
func (m *Mutator) ID() int { return m.id }
