package gc

// selfCheckCycle is the inter-cycle invariant audit (Config.SelfCheck):
// it runs on the collector goroutine at the end of every completed
// cycle, while the cycle lock is still held and the mutators keep
// running. Unlike Verify it therefore only audits state that is stable
// under concurrent mutation — the body lives in invariants.go
// (CheckQuiescentCycle), shared verbatim with the model checker so the
// two auditors cannot drift.
func (c *Collector) selfCheckCycle() error {
	return c.CheckQuiescentCycle()
}
