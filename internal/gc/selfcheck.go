package gc

import (
	"fmt"

	"gengc/internal/heap"
)

// selfCheckCycle is the inter-cycle invariant audit (Config.SelfCheck):
// it runs on the collector goroutine at the end of every completed
// cycle, while the cycle lock is still held and the mutators keep
// running. Unlike Verify it therefore only audits state that is stable
// under concurrent mutation:
//
//   - allocator bookkeeping (heap.CheckIntegrity walks the free lists
//     under the heap lock; colors and links are atomics),
//   - the trace machinery is quiesced: status async, trace predicate
//     off, no queued or in-flight parallel work,
//   - no object is left gray — the trace fixpoint plus the final
//     acknowledgement round blackened every gray before the sweep, and
//     in the async window between cycles the write barrier cannot
//     produce new grays (mutators only gray during sync1/sync2 or
//     while the collector is tracing).
//
// A violation here means the cycle that just finished broke the
// collector's own protocol, independent of whatever the mutators are
// doing — exactly the class of bug rare chaos interleavings surface.
func (c *Collector) selfCheckCycle() error {
	if s := Status(c.statusC.Load()); s != StatusAsync {
		return fmt.Errorf("gc: self-check: post-cycle status %v, want async", s)
	}
	if c.tracing.Load() {
		return fmt.Errorf("gc: self-check: trace predicate still set after cycle")
	}
	if n := c.tracePending.Load(); n != 0 {
		return fmt.Errorf("gc: self-check: %d objects still pending in worker deques", n)
	}
	if n := len(c.markStack); n != 0 {
		return fmt.Errorf("gc: self-check: %d objects left on the mark stack", n)
	}
	if err := c.H.CheckIntegrity(); err != nil {
		return fmt.Errorf("gc: self-check: %w", err)
	}
	var firstGray error
	c.H.ForEachObject(func(addr heap.Addr) {
		if firstGray == nil && c.H.Color(addr) == heap.Gray {
			firstGray = fmt.Errorf("gc: self-check: object %#x left gray after cycle", addr)
		}
	})
	return firstGray
}
