// Package metrics collects the measurements the paper reports in
// Figures 10–15 and 22–23: per-collection-cycle work counters, freed
// object and byte counts, dirty-card statistics, pages touched, and the
// share of wall time the collector is active.
package metrics

import (
	"sync"
	"time"
)

// CycleKind distinguishes the collection types of §3.
type CycleKind int

const (
	// Partial is a collection of the young generation only.
	Partial CycleKind = iota
	// Full is a collection of the entire heap.
	Full
)

func (k CycleKind) String() string {
	if k == Partial {
		return "partial"
	}
	return "full"
}

// Cycle is the record of one collection cycle.
type Cycle struct {
	Kind     CycleKind
	Seq      int           // cycle number, from 1
	Duration time.Duration // clear-to-sweep-end elapsed time

	// HandshakeTime is the span from posting the first handshake to
	// completing the third — the sync1/sync2 window during which the
	// write barrier also shades allocation-colored objects (§7.1).
	HandshakeTime time.Duration

	// Sync1Time, Sync2Time and Sync3Time split HandshakeTime into the
	// three rounds of the §7 protocol (each from posting the status to
	// every mutator responding). Sync2Time includes the card scan and
	// color toggle, which Figure 2/5 run inside the second round.
	Sync1Time time.Duration
	Sync2Time time.Duration
	Sync3Time time.Duration

	// AckRounds counts the trace-termination acknowledgement rounds
	// the cycle needed before the gray fixpoint held (trace.go); each
	// round is one mutator-fleet safe-point pass.
	AckRounds int

	// TraceTime and SweepTime split the concurrent phases of the
	// cycle: the trace-to-fixpoint span (drains plus acknowledgement
	// rounds) and the sweep span (including empty-block reclamation).
	TraceTime time.Duration
	SweepTime time.Duration

	// Trace work.
	ObjectsScanned int // objects blackened by the trace
	SlotsScanned   int // pointer slots examined by the trace

	// Inter-generational pointer maintenance (ClearCards).
	InterGenScanned int // objects examined on dirty cards
	DirtyCards      int // dirty cards found at cycle start
	AllocatedCards  int // cards overlapping allocated blocks (denominator)
	CardsScanned    int // cards examined (the whole table is walked)
	AreaScanned     int // bytes of objects examined on dirty cards

	// Sweep results.
	ObjectsFreed  int
	BytesFreed    int
	Survivors     int // objects subject to this collection that survived it
	SurvivorBytes int // byte volume of the aging sweep's demoted survivors

	// Heap demographics (generational partial collections; zero
	// elsewhere). Promotion is counted exactly once per object, from
	// the trace side: in the simple scheme every young survivor is
	// promoted (traced objects minus the re-grayed old ones and the
	// global roots object); in the aging scheme the demoted survivors
	// the sweep counted are additionally subtracted, leaving the cohort
	// that reached the tenure threshold and stayed black.
	PromotedObjects int
	PromotedBytes   int

	// TraceBytes is the total byte size of the objects the trace
	// blackened; InterGenBytes the byte size of the old objects the
	// card scan (or remembered-set drain) re-grayed. Their difference
	// is the young-survivor byte volume of a simple-mode partial.
	TraceBytes    int
	InterGenBytes int

	// SurvivalByAge is the aging sweep's survival histogram: index a
	// counts the young objects that survived this collection at age a
	// (then aged to a+1); the final populated index is the tenure
	// threshold — objects promoted this cycle. Nil outside
	// GenerationalAging partials.
	SurvivalByAge []int64

	// DeathsByClass counts the objects this cycle's sweep reclaimed,
	// by allocator size class; the last entry aggregates large objects
	// (whole-block allocations). Nil when nothing was freed.
	DeathsByClass []int64

	// Pages touched by the collector during the cycle (Figure 15);
	// zero when page tracking is off.
	PagesTouched int

	// Parallel-collector counters. Workers is the configured worker
	// count (1 = the paper's single collector thread); the per-worker
	// slices and the steal count are populated only when Workers > 1.
	Workers       int
	Steals        int   // work-stealing transfers during the trace
	WorkerScanned []int // objects blackened, by trace worker
	WorkerFreed   []int // objects freed, by sweep worker

	// Tiered-allocator activity during the cycle (mutators keep
	// allocating while the collector runs): cache refills served by
	// the central shards, and lock acquisitions — shard plus page —
	// that found the lock held.
	AllocRefills   int64
	AllocContended int64

	// BarrierFlushes counts batched-barrier buffer drains performed by
	// mutators while the cycle ran; zero under the eager barrier.
	BarrierFlushes int64
}

// Demographics is the run-cumulative heap-demographics aggregate: the
// per-cycle promotion/survival/death accounting summed over a runtime's
// whole history. Promotion, survival and the histograms come from
// generational partial collections only; the card/remset traffic
// counters likewise accumulate from the partials that scan them.
type Demographics struct {
	// Objects and bytes promoted into the old generation.
	PromotedObjects int64 `json:"promoted_objects"`
	PromotedBytes   int64 `json:"promoted_bytes"`

	// SurvivedObjects counts young objects that survived a partial
	// collection (each survival of the same object counts once, so an
	// aging-mode object surviving three collections contributes 3).
	SurvivedObjects int64 `json:"survived_objects"`

	// TraceBytes is the byte volume blackened by all traces.
	TraceBytes int64 `json:"trace_bytes"`

	// Inter-generational pointer traffic: old objects re-scanned for
	// old→young pointers and their byte volume, dirty/scanned card
	// counts, and the bytes examined on dirty cards.
	InterGenScanned int64 `json:"intergen_scanned"`
	InterGenBytes   int64 `json:"intergen_bytes"`
	DirtyCards      int64 `json:"dirty_cards"`
	CardsScanned    int64 `json:"cards_scanned"`
	AreaScanned     int64 `json:"area_scanned"`

	// DeathsByClass counts swept objects by allocator size class (last
	// entry: large objects). SurvivalByAge is the aging survival
	// histogram (index = age at survival; final populated index = the
	// tenure threshold, i.e. promotions). Nil when never populated.
	DeathsByClass []int64 `json:"deaths_by_class,omitempty"`
	SurvivalByAge []int64 `json:"survival_by_age,omitempty"`
}

// AddCycle folds one finished cycle into the aggregate.
func (d *Demographics) AddCycle(c Cycle) {
	if c.Kind == Partial {
		d.PromotedObjects += int64(c.PromotedObjects)
		d.PromotedBytes += int64(c.PromotedBytes)
		d.SurvivedObjects += int64(c.Survivors)
	}
	d.TraceBytes += int64(c.TraceBytes)
	d.InterGenScanned += int64(c.InterGenScanned)
	d.InterGenBytes += int64(c.InterGenBytes)
	d.DirtyCards += int64(c.DirtyCards)
	d.CardsScanned += int64(c.CardsScanned)
	d.AreaScanned += int64(c.AreaScanned)
	d.DeathsByClass = addVec(d.DeathsByClass, c.DeathsByClass)
	d.SurvivalByAge = addVec(d.SurvivalByAge, c.SurvivalByAge)
}

// Clone returns a deep copy (the histograms are slices).
func (d Demographics) Clone() Demographics {
	out := d
	out.DeathsByClass = append([]int64(nil), d.DeathsByClass...)
	out.SurvivalByAge = append([]int64(nil), d.SurvivalByAge...)
	return out
}

// addVec adds src into dst element-wise, growing dst as needed; a nil
// src returns dst unchanged.
func addVec(dst, src []int64) []int64 {
	if len(src) > len(dst) {
		grown := make([]int64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, n := range src {
		dst[i] += n
	}
	return dst
}

// TraceEfficiency reports how evenly the trace work spread over the
// workers: scanned / (workers × busiest worker's scanned), 1.0 being a
// perfect split. Zero when the cycle ran serially or scanned nothing.
func (c Cycle) TraceEfficiency() float64 {
	if c.Workers <= 1 || len(c.WorkerScanned) == 0 {
		return 0
	}
	max := 0
	for _, n := range c.WorkerScanned {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 0
	}
	return float64(c.ObjectsScanned) / float64(c.Workers*max)
}

// Recorder accumulates cycle records and aggregate statistics. The
// collector goroutine is the only writer; readers take the mutex.
type Recorder struct {
	mu       sync.Mutex
	start    time.Time
	cycles   []Cycle
	gcTime   time.Duration
	onRecord func(Cycle)
}

// NewRecorder starts a recorder; the start time anchors the
// "percent time GC active" computation.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Record appends one finished cycle and invokes the OnRecord observer,
// if any, outside the recorder lock.
func (r *Recorder) Record(c Cycle) {
	r.mu.Lock()
	c.Seq = len(r.cycles) + 1
	r.cycles = append(r.cycles, c)
	r.gcTime += c.Duration
	fn := r.onRecord
	r.mu.Unlock()
	if fn != nil {
		fn(c)
	}
}

// OnRecord registers fn to be called with every finished cycle record,
// from the collector goroutine, as it is recorded. A nil fn removes the
// observer. The callback must not block: the collector does not start
// the next cycle until it returns.
func (r *Recorder) OnRecord(fn func(Cycle)) {
	r.mu.Lock()
	r.onRecord = fn
	r.mu.Unlock()
}

// Cycles returns a copy of all recorded cycles.
func (r *Recorder) Cycles() []Cycle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Cycle, len(r.cycles))
	copy(out, r.cycles)
	return out
}

// Summary condenses a run into the aggregates the paper tabulates.
type Summary struct {
	Elapsed        time.Duration
	GCActive       time.Duration
	GCActivePct    float64 // Figure 10, column 1
	NumPartial     int     // Figure 10
	NumFull        int     // Figure 10
	NumCycles      int
	ObjectsFreed   int64
	BytesFreed     int64
	ObjectsScanned int64

	// Per-kind averages (Figures 11–15, 22–23). Zero when the kind
	// never ran.
	AvgInterGenScanned   float64 // old objects scanned for inter-gen ptrs
	AvgScannedPartial    float64
	AvgScannedFull       float64
	AvgFreedObjsPartial  float64
	AvgFreedObjsFull     float64
	AvgFreedBytesPartial float64
	AvgFreedBytesFull    float64
	AvgTimePartial       time.Duration
	AvgTimeFull          time.Duration
	AvgPagesPartial      float64
	AvgPagesFull         float64
	PctObjsFreedPartial  float64 // freed / (freed + survivors) in partials
	PctObjsFreedFull     float64
	PctBytesFreedPartial float64
	AvgDirtyCardPct      float64 // Figure 22 (partials only)
	AvgAreaScanned       float64 // Figure 23 (partials only)

	// Parallel-collector aggregates; zero when every cycle ran with a
	// single worker. Efficiency is the mean per-cycle
	// TraceEfficiency over cycles that scanned anything in parallel.
	AvgSteals          float64
	AvgTraceEfficiency float64
	ParallelCycles     int
}

// Summarize computes the aggregates at the end of a run. elapsed is the
// run's wall time (from the recorder's start when zero).
func (r *Recorder) Summarize(elapsed time.Duration) Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	if elapsed == 0 {
		elapsed = time.Since(r.start)
	}
	s := Summary{Elapsed: elapsed, GCActive: r.gcTime, NumCycles: len(r.cycles)}
	if elapsed > 0 {
		s.GCActivePct = 100 * float64(r.gcTime) / float64(elapsed)
	}
	var (
		igSum, scanP, scanF, freedP, freedF            float64
		freedBP, freedBF, timeP, timeF, pagesP, pagesF float64
		sweptP, sweptF, dirtyPct, area                 float64
		nP, nF                                         int
	)
	var steals, traceEff float64
	var nPar, nParEff int
	for _, c := range r.cycles {
		s.ObjectsFreed += int64(c.ObjectsFreed)
		s.BytesFreed += int64(c.BytesFreed)
		s.ObjectsScanned += int64(c.ObjectsScanned)
		if c.Workers > 1 {
			nPar++
			steals += float64(c.Steals)
			if eff := c.TraceEfficiency(); eff > 0 {
				traceEff += eff
				nParEff++
			}
		}
		switch c.Kind {
		case Partial:
			nP++
			igSum += float64(c.InterGenScanned)
			scanP += float64(c.ObjectsScanned)
			freedP += float64(c.ObjectsFreed)
			freedBP += float64(c.BytesFreed)
			timeP += float64(c.Duration)
			pagesP += float64(c.PagesTouched)
			sweptP += float64(c.Survivors)
			area += float64(c.AreaScanned)
			if c.AllocatedCards > 0 {
				dirtyPct += 100 * float64(c.DirtyCards) / float64(c.AllocatedCards)
			}
		case Full:
			nF++
			scanF += float64(c.ObjectsScanned)
			freedF += float64(c.ObjectsFreed)
			freedBF += float64(c.BytesFreed)
			timeF += float64(c.Duration)
			pagesF += float64(c.PagesTouched)
			sweptF += float64(c.Survivors)
		}
	}
	s.ParallelCycles = nPar
	if nPar > 0 {
		s.AvgSteals = steals / float64(nPar)
	}
	if nParEff > 0 {
		s.AvgTraceEfficiency = traceEff / float64(nParEff)
	}
	s.NumPartial, s.NumFull = nP, nF
	if nP > 0 {
		fp := float64(nP)
		s.AvgInterGenScanned = igSum / fp
		s.AvgScannedPartial = scanP / fp
		s.AvgFreedObjsPartial = freedP / fp
		s.AvgFreedBytesPartial = freedBP / fp
		s.AvgTimePartial = time.Duration(timeP / fp)
		s.AvgPagesPartial = pagesP / fp
		s.AvgDirtyCardPct = dirtyPct / fp
		s.AvgAreaScanned = area / fp
		if freedP+sweptP > 0 {
			// "percent of the objects of the young generation that
			// are collected": freed / (freed + young survivors).
			s.PctObjsFreedPartial = 100 * freedP / (freedP + sweptP)
		}
		if denom := freedBP + bytesSurvivedPartial(r.cycles); denom > 0 {
			s.PctBytesFreedPartial = 100 * freedBP / denom
		}
	}
	if nF > 0 {
		ff := float64(nF)
		s.AvgScannedFull = scanF / ff
		s.AvgFreedObjsFull = freedF / ff
		s.AvgFreedBytesFull = freedBF / ff
		s.AvgTimeFull = time.Duration(timeF / ff)
		s.AvgPagesFull = pagesF / ff
		if freedF+sweptF > 0 {
			s.PctObjsFreedFull = 100 * freedF / (freedF + sweptF)
		}
	}
	return s
}

// bytesSurvivedPartial estimates surviving young bytes across partial
// cycles from the sweep's survivor counts; the per-cycle record carries
// ObjectsSwept, so approximate survivor bytes with the run's average
// object size.
func bytesSurvivedPartial(cycles []Cycle) float64 {
	var freedObjs, freedBytes, swept float64
	for _, c := range cycles {
		if c.Kind == Partial {
			freedObjs += float64(c.ObjectsFreed)
			freedBytes += float64(c.BytesFreed)
			swept += float64(c.Survivors)
		}
	}
	if freedObjs == 0 {
		return 0
	}
	return swept * freedBytes / freedObjs
}
