package metrics

import (
	"testing"
	"time"
)

func TestCycleKindString(t *testing.T) {
	if Partial.String() != "partial" || Full.String() != "full" {
		t.Fatalf("kind strings: %q, %q", Partial.String(), Full.String())
	}
}

func TestRecorderSequencing(t *testing.T) {
	r := NewRecorder()
	r.Record(Cycle{Kind: Partial})
	r.Record(Cycle{Kind: Full})
	cs := r.Cycles()
	if len(cs) != 2 || cs[0].Seq != 1 || cs[1].Seq != 2 {
		t.Fatalf("cycles = %+v", cs)
	}
	// Cycles must return a copy.
	cs[0].ObjectsFreed = 999
	if r.Cycles()[0].ObjectsFreed == 999 {
		t.Error("Cycles returned aliased storage")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := NewRecorder()
	s := r.Summarize(time.Second)
	if s.NumCycles != 0 || s.GCActivePct != 0 || s.NumPartial != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeAggregates(t *testing.T) {
	r := NewRecorder()
	r.Record(Cycle{
		Kind: Partial, Duration: 10 * time.Millisecond,
		ObjectsScanned: 100, InterGenScanned: 10,
		ObjectsFreed: 900, BytesFreed: 9000, Survivors: 100,
		DirtyCards: 50, AllocatedCards: 200,
		AreaScanned: 2048, PagesTouched: 7,
	})
	r.Record(Cycle{
		Kind: Partial, Duration: 30 * time.Millisecond,
		ObjectsScanned: 200, InterGenScanned: 30,
		ObjectsFreed: 700, BytesFreed: 7000, Survivors: 300,
		DirtyCards: 100, AllocatedCards: 200,
		AreaScanned: 4096, PagesTouched: 9,
	})
	r.Record(Cycle{
		Kind: Full, Duration: 60 * time.Millisecond,
		ObjectsScanned: 1000, ObjectsFreed: 400, BytesFreed: 4000,
		Survivors: 600, PagesTouched: 20,
	})
	s := r.Summarize(time.Second)

	if s.NumPartial != 2 || s.NumFull != 1 || s.NumCycles != 3 {
		t.Fatalf("counts = %d/%d/%d", s.NumPartial, s.NumFull, s.NumCycles)
	}
	if s.GCActive != 100*time.Millisecond {
		t.Errorf("GCActive = %v", s.GCActive)
	}
	if s.GCActivePct != 10 {
		t.Errorf("GCActivePct = %v, want 10", s.GCActivePct)
	}
	if s.AvgInterGenScanned != 20 {
		t.Errorf("AvgInterGenScanned = %v, want 20", s.AvgInterGenScanned)
	}
	if s.AvgScannedPartial != 150 {
		t.Errorf("AvgScannedPartial = %v, want 150", s.AvgScannedPartial)
	}
	if s.AvgScannedFull != 1000 {
		t.Errorf("AvgScannedFull = %v", s.AvgScannedFull)
	}
	if s.AvgFreedObjsPartial != 800 {
		t.Errorf("AvgFreedObjsPartial = %v, want 800", s.AvgFreedObjsPartial)
	}
	if s.AvgTimePartial != 20*time.Millisecond {
		t.Errorf("AvgTimePartial = %v", s.AvgTimePartial)
	}
	if s.AvgTimeFull != 60*time.Millisecond {
		t.Errorf("AvgTimeFull = %v", s.AvgTimeFull)
	}
	if s.AvgPagesPartial != 8 || s.AvgPagesFull != 20 {
		t.Errorf("pages = %v/%v", s.AvgPagesPartial, s.AvgPagesFull)
	}
	// Partials: freed 1600 of (1600 freed + 400 survivors) = 80%.
	if s.PctObjsFreedPartial != 80 {
		t.Errorf("PctObjsFreedPartial = %v, want 80", s.PctObjsFreedPartial)
	}
	// Full: freed 400 of (400 + 600) = 40%.
	if s.PctObjsFreedFull != 40 {
		t.Errorf("PctObjsFreedFull = %v, want 40", s.PctObjsFreedFull)
	}
	// Dirty: (25% + 50%) / 2 = 37.5%.
	if s.AvgDirtyCardPct != 37.5 {
		t.Errorf("AvgDirtyCardPct = %v, want 37.5", s.AvgDirtyCardPct)
	}
	if s.AvgAreaScanned != 3072 {
		t.Errorf("AvgAreaScanned = %v, want 3072", s.AvgAreaScanned)
	}
	if s.ObjectsFreed != 2000 || s.BytesFreed != 20000 {
		t.Errorf("totals = %d objs, %d bytes", s.ObjectsFreed, s.BytesFreed)
	}
}

func TestSummarizeDefaultElapsed(t *testing.T) {
	r := NewRecorder()
	r.Record(Cycle{Kind: Full, Duration: time.Millisecond})
	s := r.Summarize(0)
	if s.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want positive wall time", s.Elapsed)
	}
}
