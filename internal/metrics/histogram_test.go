package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistIndexBoundaries checks the bucket function directly: indices
// are monotone in the value, every value fits under its bucket's upper
// edge, and the upper edge is within the advertised ~6% relative error.
func TestHistIndexBoundaries(t *testing.T) {
	// The linear range buckets each value exactly.
	for v := int64(0); v < histSubBuckets; v++ {
		if got := histIndex(v); got != int(v) {
			t.Errorf("histIndex(%d) = %d, want %d", v, got, v)
		}
		if got := histUpper(int(v)); got != v {
			t.Errorf("histUpper(%d) = %d, want %d", v, got, v)
		}
	}
	probe := []int64{
		15, 16, 17, 31, 32, 33, 100, 1000, 4095, 4096, 4097,
		1e6, 1e9, 123456789, math.MaxInt64 / 2, math.MaxInt64,
	}
	for _, v := range probe {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range [0,%d)", v, i, histBuckets)
		}
		upper := histUpper(i)
		if v > upper {
			t.Errorf("value %d above its bucket's upper edge %d", v, upper)
		}
		if i > 0 {
			if below := histUpper(i - 1); v <= below {
				t.Errorf("value %d fits bucket %d (upper %d) but was indexed to %d",
					v, i-1, below, i)
			}
		}
		// Relative error of reporting the upper edge: bounded by the
		// sub-bucket width, 1/16.
		if v >= histSubBuckets {
			if err := float64(upper-v) / float64(v); err > 1.0/histSubBuckets {
				t.Errorf("value %d: upper edge %d has relative error %.3f > 1/%d",
					v, upper, err, histSubBuckets)
			}
		}
	}
	// Index monotonicity over a dense sweep of magnitudes.
	prev := -1
	for k := 0; k < 62; k++ {
		for _, v := range []int64{1 << k, 1<<k + 1<<k/2, 1<<(k+1) - 1} {
			i := histIndex(v)
			if i < prev {
				t.Fatalf("histIndex not monotone at %d: %d < %d", v, i, prev)
			}
			prev = i
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 1..1000µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs within bucket error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if got, want := h.Max(), 1000*time.Microsecond; got != want {
		t.Errorf("max = %v, want exact %v", got, want)
	}
	checkQ := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		if got < want || float64(got) > float64(want)*(1+1.0/histSubBuckets)+1 {
			t.Errorf("Quantile(%v) = %v, want in [%v, %v+6%%]", q, got, want, want)
		}
	}
	checkQ(0.50, 500*time.Microsecond)
	checkQ(0.90, 900*time.Microsecond)
	checkQ(0.99, 990*time.Microsecond)
	if got := h.Quantile(1.0); got != h.Max() {
		t.Errorf("Quantile(1) = %v, want Max() = %v", got, h.Max())
	}
	// Quantiles are monotone in q and never exceed the exact max.
	prev := time.Duration(0)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q = %v", q, v, prev)
		}
		if v > h.Max() {
			t.Fatalf("Quantile(%v) = %v exceeds max %v", q, v, h.Max())
		}
		prev = v
	}
	if mean := h.Mean(); mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Errorf("mean = %v, want ≈ 500µs", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, dst Histogram
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.MergeInto(&dst)
	b.MergeInto(&dst)
	if got := dst.Count(); got != 200 {
		t.Fatalf("merged count = %d, want 200", got)
	}
	if got, want := dst.Max(), b.Max(); got != want {
		t.Errorf("merged max = %v, want %v", got, want)
	}
	if got, want := dst.Total(), a.Total()+b.Total(); got != want {
		t.Errorf("merged total = %v, want %v", got, want)
	}
	// The upper half of the merged distribution is b's milliseconds.
	if p90 := dst.Quantile(0.90); p90 < time.Millisecond {
		t.Errorf("merged p90 = %v, want ≥ 1ms", p90)
	}
}

// TestHistogramRaceConcurrentRecord hammers one histogram from many
// goroutines while a reader takes quantiles; run under -race via the
// Makefile's race target.
func TestHistogramRaceConcurrentRecord(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 5000
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
				_ = h.Stats(-1)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	want := time.Duration((writers-1)*1000+perWriter-1) * time.Nanosecond
	if got := h.Max(); got != want {
		t.Fatalf("max = %v, want %v", got, want)
	}
}
