package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear latency histogram in the HdrHistogram style: values (in
// nanoseconds) are bucketed by power-of-two magnitude, with each
// magnitude split into 16 linear sub-buckets, giving a worst-case
// relative error of 1/16 (~6%) across the full int64 range. Recording
// is a single atomic add on the bucket plus count/sum/max maintenance,
// so mutators can record pauses concurrently with readers taking
// quantiles; a reader sees each counter atomically but the set of
// counters may be mid-update, which shifts a quantile by at most the
// in-flight recordings.
const (
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits // linear sub-buckets per octave

	// Octaves above the linear range run from magnitude histSubBits
	// (values ≥ 16ns) to 62 (the int64 limit), each contributing
	// histSubBuckets buckets, after the histSubBuckets linear buckets
	// for values 0..15ns.
	histBuckets = (62-histSubBits+1)*histSubBuckets + histSubBuckets
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	k := bits.Len64(u) - 1 // magnitude: position of the leading one
	oct := k - histSubBits + 1
	sub := int(u>>uint(k-histSubBits)) & (histSubBuckets - 1)
	return oct*histSubBuckets + sub
}

// histUpper returns the largest value a bucket can hold — the
// conservative (upper-edge) representative used when reporting
// quantiles.
func histUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	oct := i / histSubBuckets
	sub := i % histSubBuckets
	return int64(histSubBuckets+sub+1)<<uint(oct-1) - 1
}

// Histogram is a concurrent log-linear latency histogram. The zero
// value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one observation. Safe for concurrent use from any number
// of goroutines.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Total returns the sum of all recorded observations.
func (h *Histogram) Total() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the value at quantile q in [0,1]: the upper edge of
// the bucket holding the q·Count-th observation, clamped to the exact
// recorded maximum so that Quantile(1) == Max().
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := histUpper(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// MergeInto adds this histogram's observations into dst. Both sides may
// be recorded into concurrently; the merge transfers each bucket
// atomically.
func (h *Histogram) MergeInto(dst *Histogram) {
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			dst.counts[i].Add(c)
		}
	}
	dst.count.Add(h.count.Load())
	dst.sum.Add(h.sum.Load())
	v := h.max.Load()
	for {
		m := dst.max.Load()
		if v <= m || dst.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// CumulativeLE returns, for each upper bound (in nanoseconds, ascending),
// how many recorded observations are ≤ that bound — the cumulative
// bucket counts of a Prometheus histogram exposition. Observations are
// attributed by their bucket's upper edge, so the result is conservative
// in the same ≤ ~6% sense as Quantile. The final element of the result
// is the total count regardless of the last bound (the +Inf bucket).
func (h *Histogram) CumulativeLE(bounds []int64) []int64 {
	out := make([]int64, len(bounds)+1)
	var cum int64
	j := 0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		upper := histUpper(i)
		for j < len(bounds) && upper > bounds[j] {
			out[j] = cum
			j++
		}
		cum += c
	}
	for ; j < len(bounds); j++ {
		out[j] = cum
	}
	out[len(bounds)] = h.count.Load()
	return out
}

// PauseStats condenses one pause histogram into the figures the paper
// reports: the distribution tail of mutator-visible delay (the paper's
// maximum-pause claims, Figures 16–21, are the Max column here).
type PauseStats struct {
	// Mutator is the owning mutator's id, or -1 for a fleet-wide
	// aggregate.
	Mutator int

	// Count is the number of recorded pauses; Total their sum.
	Count int64
	Total time.Duration

	// P50..P999 are bucketed quantiles (upper bucket edge, ≤ ~6%
	// relative error); Max is the exact largest recorded pause.
	P50, P90, P99, P999, Max time.Duration
}

// Stats snapshots the histogram as PauseStats attributed to mutator id.
func (h *Histogram) Stats(id int) PauseStats {
	return PauseStats{
		Mutator: id,
		Count:   h.Count(),
		Total:   h.Total(),
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
		P999:    h.Quantile(0.999),
		Max:     h.Max(),
	}
}
