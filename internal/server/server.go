// Package server is the request/response engine that reframes the
// collector as the memory engine of a long-running daemon: simulated
// requests allocate object graphs under AllocCtx deadlines on a pool of
// worker-owned mutators, an open-loop load generator (loadgen.go)
// drives Poisson arrivals with ramps and bursts, and the runtime's
// admission controller (gengc.WithAdmission) converts overload into
// prompt sheds instead of SLO collapse or OOM. cmd/gcserve sweeps it
// across arrival rates into BENCH_server.json; DESIGN.md §"Server mode
// & admission control" has the control-loop picture.
package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gengc"
)

// Config parameterizes a Server. Zero fields assume the defaults.
type Config struct {
	// Workers is the number of request-worker goroutines; each owns
	// one mutator for its lifetime. Default 4.
	Workers int

	// QueueCap is the request channel's buffer. With an admission
	// controller armed the controller's MaxInFlight+MaxQueue bound is
	// the real limit and this only needs to exceed it; without one
	// (the naive leg of the overload experiment) this is the unbounded
	// queue stand-in — submitters block once it fills, modeling a
	// server that keeps accepting work it cannot finish. Default 65536.
	QueueCap int

	// MaxRetries bounds per-request retries of transient ErrStalled
	// failures (jittered exponential backoff between attempts).
	// Default 2; negative disables retries.
	MaxRetries int

	// RetryBackoff is the base backoff before the first retry; each
	// further retry doubles it, and every sleep is jittered ±50%.
	// Default 2ms.
	RetryBackoff time.Duration

	// SessionObjects is how many completed request graphs each worker
	// keeps rooted (a ring evicting the oldest) — the daemon's
	// session/cache state, which is what gives requests a live set to
	// collect against. Default 32.
	SessionObjects int

	// Seed seeds the workers' backoff-jitter PRNGs.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 1 << 16
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.SessionObjects == 0 {
		c.SessionObjects = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Request is one unit of work: allocate a linked graph of Objects
// objects (Slots pointer slots and Size payload bytes each) under a
// latency budget.
type Request struct {
	// Priority classifies the request for degraded-mode shedding.
	Priority gengc.Priority

	// Objects, Slots and Size shape the allocated graph: a chain of
	// Objects objects, each with Slots pointer slots (slot 0 links the
	// chain) and at least Size payload bytes.
	Objects int
	Slots   int
	Size    int

	// Deadline is the end-to-end latency budget, measured from
	// arrival: the allocation context expires when it runs out, so
	// queue wait spent before the worker picked the request up counts
	// against it. 0 means no deadline (the naive leg).
	Deadline time.Duration

	arrival time.Time
}

// Stats is the server's cumulative counter snapshot.
type Stats struct {
	// Submitted counts Submit calls; Shed the ones rejected by the
	// admission controller (wrapping gengc.ErrShed); Rejected the ones
	// refused because the server was draining.
	Submitted int64
	Shed      int64
	Rejected  int64

	// Completed counts requests whose graph was fully allocated;
	// Retries the transient-failure retry rounds spent on them.
	Completed int64
	Retries   int64

	// FailedStalled counts requests abandoned on an allocation
	// deadline (ErrStalled after the retry budget); FailedOOM on heap
	// exhaustion (ErrOutOfMemory); FailedClosed on runtime shutdown.
	FailedStalled int64
	FailedOOM     int64
	FailedClosed  int64
}

// Server is the request engine: a bounded request channel consumed by
// Workers goroutines, each owning one mutator, fronted by the runtime's
// admission controller when one is armed.
type Server struct {
	rt  *gengc.Runtime
	adm *gengc.Admission
	cfg Config

	reqCh chan Request

	// drainMu guards the draining flag against the Submit path: Submit
	// holds the read side across its send, so Drain can flip the flag
	// and know no new request will enter the channel afterwards.
	drainMu  sync.RWMutex
	draining bool

	// pending tracks accepted-but-unfinished requests (queued or in a
	// worker); Drain waits on it before closing the channel.
	pending sync.WaitGroup
	workers sync.WaitGroup

	submitted atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	retries   atomic.Int64
	fStalled  atomic.Int64
	fOOM      atomic.Int64
	fClosed   atomic.Int64
}

// New builds a server over rt and starts its workers. The caller keeps
// ownership of nothing: Drain flushes in-flight work and closes rt.
func New(rt *gengc.Runtime, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		rt:    rt,
		adm:   rt.Admission(),
		cfg:   cfg,
		reqCh: make(chan Request, cfg.QueueCap),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker(i)
	}
	return s
}

// Runtime returns the runtime the server allocates against.
func (s *Server) Runtime() *gengc.Runtime { return s.rt }

// Submit offers one request. The request's latency clock starts now —
// admission queueing, channel wait and allocation all count against its
// Deadline and its recorded latency. The error wraps gengc.ErrShed when
// the admission controller rejected it and gengc.ErrClosed when the
// server is draining. Submit may block when the request channel is full
// and no admission controller bounds it (the naive overload mode).
func (s *Server) Submit(req Request) error {
	req.arrival = time.Now()
	s.submitted.Add(1)
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.rejected.Add(1)
		return fmt.Errorf("server: draining: %w", gengc.ErrClosed)
	}
	if s.adm != nil {
		ctx := context.Background()
		if req.Deadline > 0 {
			// The admission queue wait is bounded by the request's own
			// budget: a request that cannot make its deadline anyway is
			// shed now, while retrying elsewhere is still cheap.
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, req.arrival.Add(req.Deadline))
			defer cancel()
		}
		if err := s.adm.Admit(ctx, req.Priority); err != nil {
			s.shed.Add(1)
			return fmt.Errorf("server: %w", err)
		}
	}
	s.pending.Add(1)
	s.reqCh <- req
	return nil
}

// worker consumes requests until the channel closes. Each worker owns
// one mutator and a session ring of rooted request graphs — the live
// set that makes collection matter.
func (s *Server) worker(id int) {
	defer s.workers.Done()
	m := s.rt.NewMutator()
	defer m.Detach()
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(id)*7919))

	// The session ring: root slots cycling over the last
	// SessionObjects completed graph heads.
	ring := make([]int, 0, s.cfg.SessionObjects)
	next := 0

	for req := range s.reqCh {
		head, err := s.process(m, rng, req)
		if err == nil {
			s.completed.Add(1)
			s.rt.ObserveRequest(time.Since(req.arrival))
			if len(ring) < cap(ring) {
				ring = append(ring, m.PushRoot(head))
			} else {
				m.SetRoot(ring[next], head)
				next = (next + 1) % len(ring)
			}
		} else {
			switch {
			case errors.Is(err, gengc.ErrStalled):
				s.fStalled.Add(1)
			case errors.Is(err, gengc.ErrOutOfMemory):
				s.fOOM.Add(1)
			case errors.Is(err, gengc.ErrClosed):
				s.fClosed.Add(1)
			}
		}
		if s.adm != nil {
			s.adm.Release()
		}
		s.pending.Done()
		m.Safepoint()
	}
}

// process allocates one request's graph, retrying transient ErrStalled
// failures with jittered exponential backoff while the deadline allows.
// It returns the graph head for the caller to root.
func (s *Server) process(m *gengc.Mutator, rng *rand.Rand, req Request) (gengc.Ref, error) {
	ctx := context.Background()
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, req.arrival.Add(req.Deadline))
		defer cancel()
	}
	var err error
	for attempt := 0; ; attempt++ {
		var head gengc.Ref
		head, err = s.buildGraph(ctx, m, req)
		if err == nil {
			return head, nil
		}
		// Only allocation stalls are transient: the collector may free
		// enough on the next cycle. OOM past the runtime's own retry
		// budget and a closed runtime will not improve.
		if attempt >= s.cfg.MaxRetries || !errors.Is(err, gengc.ErrStalled) {
			return gengc.Nil, err
		}
		if s.adm != nil {
			s.adm.NoteRetry()
		}
		s.retries.Add(1)
		if !s.backoff(ctx, m, rng, attempt) {
			return gengc.Nil, err
		}
	}
}

// backoff sleeps the jittered exponential delay before retry attempt+1,
// cooperating with handshakes so a backing-off worker cannot stall the
// collector it is waiting on. Returns false when ctx expired instead.
func (s *Server) backoff(ctx context.Context, m *gengc.Mutator, rng *rand.Rand, attempt int) bool {
	base := s.cfg.RetryBackoff << uint(attempt)
	// Jitter ±50%: decorrelates the retry storms of workers that
	// failed together.
	d := base/2 + time.Duration(rng.Int63n(int64(base)))
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return false
		}
		m.Safepoint()
		time.Sleep(200 * time.Microsecond)
	}
	return ctx.Err() == nil
}

// buildGraph allocates the request's object chain: head first, each
// further object linked through slot 0 of its predecessor. The head is
// rooted for the duration so a collection mid-build cannot reclaim the
// partial graph.
func (s *Server) buildGraph(ctx context.Context, m *gengc.Mutator, req Request) (gengc.Ref, error) {
	slots := req.Slots
	if slots < 1 {
		slots = 1
	}
	head, err := m.AllocCtx(ctx, slots, req.Size)
	if err != nil {
		return gengc.Nil, err
	}
	m.PushRoot(head)
	defer m.PopRoots(1)
	prev := head
	for i := 1; i < req.Objects; i++ {
		obj, err := m.AllocCtx(ctx, slots, req.Size)
		if err != nil {
			return gengc.Nil, err
		}
		m.Write(prev, 0, obj)
		prev = obj
		if i&15 == 0 {
			m.Safepoint()
		}
	}
	return head, nil
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:     s.submitted.Load(),
		Shed:          s.shed.Load(),
		Rejected:      s.rejected.Load(),
		Completed:     s.completed.Load(),
		Retries:       s.retries.Load(),
		FailedStalled: s.fStalled.Load(),
		FailedOOM:     s.fOOM.Load(),
		FailedClosed:  s.fClosed.Load(),
	}
}

// Drain shuts the server down gracefully: stop admitting (new Submit
// calls fail with gengc.ErrClosed, the admission controller sheds with
// reason "draining"), flush every accepted request through the workers,
// then close the runtime. ctx bounds the flush wait; on expiry the
// channel is closed anyway — workers finish the requests already
// dequeued, late queued ones fail against the closing runtime — so
// Drain always returns with the runtime closed. Idempotent calls after
// the first return immediately.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return nil
	}
	s.draining = true
	s.drainMu.Unlock()
	if s.adm != nil {
		s.adm.BeginDrain()
	}

	flushed := make(chan struct{})
	go func() { s.pending.Wait(); close(flushed) }()
	var err error
	select {
	case <-flushed:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain: %w", ctx.Err())
	}
	close(s.reqCh)
	s.workers.Wait()
	s.rt.Close()
	return err
}
