package server

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"

	"gengc"
)

// Open-loop load generation: arrivals follow a Poisson process whose
// rate can ramp linearly and spike in periodic bursts, and — the open-
// loop property — an arrival is submitted when its time comes whether
// or not earlier requests have finished. A slow server therefore sees
// the queue it earned, not a politely coordinated trickle; this is the
// methodology point the "Distilling the Real Cost of Production
// Garbage Collectors" paper makes against closed-loop harnesses.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// StartRate and EndRate are the offered arrival rates in requests
	// per second at the start and end of the run; the rate ramps
	// linearly between them. EndRate 0 holds StartRate flat.
	StartRate float64
	EndRate   float64

	// Duration is the run length.
	Duration time.Duration

	// BurstEvery, when positive, multiplies the instantaneous rate by
	// BurstFactor for BurstLen at every BurstEvery boundary — periodic
	// arrival spikes on top of the ramp.
	BurstEvery  time.Duration
	BurstLen    time.Duration
	BurstFactor float64

	// LowFraction is the probability an arrival is PriorityLow (shed
	// first in degraded mode). The rest are PriorityHigh.
	LowFraction float64

	// Template shapes every request (Objects/Slots/Size/Deadline);
	// Priority is overridden per arrival.
	Template Request

	// Seed makes the arrival schedule reproducible.
	Seed int64
}

// LoadStats summarizes one load run from the generator's side.
type LoadStats struct {
	// Offered is how many arrivals the schedule produced; Submitted
	// how many reached Submit (all of them — the generator never
	// drops); SubmitErrors how many Submit rejected (shed or
	// draining).
	Offered      int64
	SubmitErrors int64

	// MaxLate is the worst lag between an arrival's scheduled time and
	// its actual submission — scheduler oversleep, not server latency.
	MaxLate time.Duration
}

// RunLoad drives the server with cfg's arrival schedule and blocks
// until the run ends (or ctx cancels it). Each submission runs on its
// own goroutine so a blocking Submit (the naive overload mode) cannot
// close the loop; RunLoad waits for the stragglers before returning.
func RunLoad(ctx context.Context, s *Server, cfg LoadConfig) LoadStats {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		stats   LoadStats
		errs    int64
		errsMu  sync.Mutex
		inMsgWG sync.WaitGroup
	)
	start := time.Now()
	end := start.Add(cfg.Duration)

	// next is the absolute time of the next arrival; exponential
	// inter-arrival gaps at the instantaneous rate realize the Poisson
	// process.
	next := start
	for {
		now := time.Now()
		if !now.Before(end) || ctx.Err() != nil {
			break
		}
		// Submit every arrival already due — after an oversleep the
		// backlog goes out immediately rather than silently stretching
		// the schedule (open loop).
		for !next.After(now) && next.Before(end) {
			stats.Offered++
			if late := now.Sub(next); late > stats.MaxLate {
				stats.MaxLate = late
			}
			req := cfg.Template
			req.Priority = gengc.PriorityHigh
			if rng.Float64() < cfg.LowFraction {
				req.Priority = gengc.PriorityLow
			}
			inMsgWG.Add(1)
			go func(r Request) {
				defer inMsgWG.Done()
				if err := s.Submit(r); err != nil {
					errsMu.Lock()
					errs++
					errsMu.Unlock()
				}
			}(req)
			next = next.Add(interArrival(rng, cfg, next.Sub(start)))
		}
		if sleep := time.Until(next); sleep > 0 {
			if wait := time.Until(end); wait < sleep {
				sleep = wait
			}
			time.Sleep(sleep)
		}
	}
	inMsgWG.Wait()
	errsMu.Lock()
	stats.SubmitErrors = errs
	errsMu.Unlock()
	return stats
}

// interArrival draws the exponential gap to the next arrival at the
// schedule's instantaneous rate at elapsed time t.
func interArrival(rng *rand.Rand, cfg LoadConfig, t time.Duration) time.Duration {
	rate := rateAt(cfg, t)
	if rate <= 0 {
		return cfg.Duration // effectively: no further arrivals
	}
	gap := rng.ExpFloat64() / rate // seconds
	// Clamp pathological draws so one tail sample cannot stall the
	// schedule for the rest of the run.
	if max := 10 / rate; gap > max {
		gap = max
	}
	return time.Duration(gap * float64(time.Second))
}

// rateAt evaluates the offered rate at elapsed time t: linear ramp plus
// burst windows.
func rateAt(cfg LoadConfig, t time.Duration) float64 {
	rate := cfg.StartRate
	if cfg.EndRate > 0 && cfg.Duration > 0 {
		frac := float64(t) / float64(cfg.Duration)
		rate = cfg.StartRate + (cfg.EndRate-cfg.StartRate)*frac
	}
	if cfg.BurstEvery > 0 && cfg.BurstLen > 0 && cfg.BurstFactor > 1 {
		if math.Mod(t.Seconds(), cfg.BurstEvery.Seconds()) < cfg.BurstLen.Seconds() {
			rate *= cfg.BurstFactor
		}
	}
	return rate
}
