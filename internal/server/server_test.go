package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"gengc"
)

func testRuntime(t *testing.T, opts ...gengc.Option) *gengc.Runtime {
	t.Helper()
	rt, err := gengc.New(append([]gengc.Option{
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(16 << 20),
		gengc.WithYoungBytes(1 << 20),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestServerCompletesRequests(t *testing.T) {
	rt := testRuntime(t,
		gengc.WithAdmission(gengc.AdmissionConfig{}),
		gengc.WithRequestSLO(time.Second))
	s := New(rt, Config{Workers: 2})
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Submit(Request{Objects: 32, Slots: 2, Size: 64,
			Deadline: time.Second}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := s.Stats()
	if st.Completed != n || st.FailedOOM != 0 || st.FailedStalled != 0 {
		t.Fatalf("stats: %+v, want %d completed and no failures", st, n)
	}
	snap := rt.Snapshot()
	if snap.RequestLatency.Count != n {
		t.Fatalf("request histogram count = %d, want %d", snap.RequestLatency.Count, n)
	}
	if snap.Admission.Admitted != n {
		t.Fatalf("admitted = %d, want %d", snap.Admission.Admitted, n)
	}
}

func TestServerDrainRejectsLateSubmits(t *testing.T) {
	rt := testRuntime(t, gengc.WithAdmission(gengc.AdmissionConfig{}))
	s := New(rt, Config{Workers: 1})
	if err := s.Submit(Request{Objects: 8, Slots: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	err := s.Submit(Request{Objects: 8, Slots: 1})
	if !errors.Is(err, gengc.ErrClosed) {
		t.Fatalf("submit after drain: err = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if st := s.Stats(); st.Completed != 1 || st.Rejected != 1 {
		t.Fatalf("stats: %+v, want Completed 1 Rejected 1", st)
	}
}

func TestServerRetriesTransientStalls(t *testing.T) {
	// Every allocation faults transiently 3 times total; with the
	// runtime's own retry budget at 1, the first request fails with
	// ErrStalled-like pressure unless the server's retry loop reruns
	// it. Use a fault rule that fails allocation a fixed number of
	// times, then stops.
	in := gengc.NewFaultInjector(11)
	in.Install(gengc.FaultRule{Point: gengc.FaultAlloc, Kind: gengc.FaultFail, Count: 2})
	rt := testRuntime(t, gengc.WithFaultInjector(in),
		gengc.WithAdmission(gengc.AdmissionConfig{}))
	s := New(rt, Config{Workers: 1, MaxRetries: 3, RetryBackoff: time.Millisecond})
	if err := s.Submit(Request{Objects: 4, Slots: 1, Deadline: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := s.Stats()
	if st.Completed != 1 {
		t.Fatalf("stats: %+v, want the faulted request completed", st)
	}
}

func TestServerShedsWhenSaturated(t *testing.T) {
	// One in-flight token, no queue capacity to speak of, and slow
	// requests (every allocation pays an injected delay): a burst must
	// shed, not queue without bound.
	in := gengc.NewFaultInjector(5)
	in.Install(gengc.FaultRule{Point: gengc.FaultAlloc, Kind: gengc.FaultDelay,
		Delay: 50 * time.Microsecond})
	rt := testRuntime(t, gengc.WithFaultInjector(in),
		gengc.WithAdmission(gengc.AdmissionConfig{
			MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Millisecond}))
	s := New(rt, Config{Workers: 1})
	var shed, ok int
	for i := 0; i < 50; i++ {
		err := s.Submit(Request{Objects: 256, Slots: 2, Size: 64})
		switch {
		case err == nil:
			ok++
		case errors.Is(err, gengc.ErrShed):
			shed++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatalf("no submissions shed (ok=%d)", ok)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := s.Stats()
	if st.Shed != int64(shed) || st.Completed != int64(ok) {
		t.Fatalf("stats %+v, want shed %d completed %d", st, shed, ok)
	}
}

func TestLoadgenOpenLoopSchedule(t *testing.T) {
	rt := testRuntime(t, gengc.WithAdmission(gengc.AdmissionConfig{}))
	s := New(rt, Config{Workers: 2})
	stats := RunLoad(context.Background(), s, LoadConfig{
		StartRate: 400,
		Duration:  250 * time.Millisecond,
		Template:  Request{Objects: 16, Slots: 2, Size: 64, Deadline: time.Second},
		Seed:      3,
	})
	// Poisson with mean ~100 arrivals; accept a wide band.
	if stats.Offered < 30 || stats.Offered > 300 {
		t.Fatalf("offered = %d arrivals for a 400/s * 0.25s run", stats.Offered)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := s.Stats()
	if st.Submitted != stats.Offered {
		t.Fatalf("submitted %d != offered %d", st.Submitted, stats.Offered)
	}
	if st.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

func TestLoadgenBurstRaisesRate(t *testing.T) {
	base := rateAt(LoadConfig{StartRate: 100, Duration: time.Second,
		BurstEvery: 100 * time.Millisecond, BurstLen: 20 * time.Millisecond,
		BurstFactor: 5}, 105*time.Millisecond)
	quiet := rateAt(LoadConfig{StartRate: 100, Duration: time.Second,
		BurstEvery: 100 * time.Millisecond, BurstLen: 20 * time.Millisecond,
		BurstFactor: 5}, 50*time.Millisecond)
	if base != 500 || quiet != 100 {
		t.Fatalf("burst rate = %v quiet rate = %v, want 500/100", base, quiet)
	}
	ramp := rateAt(LoadConfig{StartRate: 100, EndRate: 300,
		Duration: time.Second}, 500*time.Millisecond)
	if ramp < 199 || ramp > 201 {
		t.Fatalf("mid-ramp rate = %v, want ~200", ramp)
	}
}

// TestServerStressParallelSubmit rides the race-detector subset: many
// goroutines submitting against a small admitted pool while the
// collector cycles, then a drain racing late submissions.
func TestServerStressParallelSubmit(t *testing.T) {
	rt := testRuntime(t, gengc.WithAdmission(gengc.AdmissionConfig{
		MaxInFlight: 8, MaxQueue: 16, QueueTimeout: 10 * time.Millisecond}))
	s := New(rt, Config{Workers: 4})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = s.Submit(Request{Objects: 64, Slots: 2, Size: 64,
					Deadline: 100 * time.Millisecond})
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(done)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := s.Stats()
	if st.Completed == 0 {
		t.Fatalf("stats %+v: nothing completed", st)
	}
}
