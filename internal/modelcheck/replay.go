package modelcheck

import (
	"encoding/json"
	"fmt"
	"os"
)

// Replay is the serialized counterexample gcverify writes when a
// scenario fails: everything needed to re-execute the minimized
// schedule deterministically on another machine — the scenario name,
// the bounds and bug flag it was found under, and the choice sequence
// with the controlling prefix length. The file is the CI artifact
// OBSERVABILITY.md documents.
type Replay struct {
	Scenario  string   `json:"scenario"`
	Break     string   `json:"break,omitempty"` // "flush-before-ack" when found under the re-introduced bug
	Depth     int      `json:"depth"`
	Preempt   int      `json:"preempt"`
	Violation string   `json:"violation"`
	PrefixLen int      `json:"prefix_len"`
	Schedule  []Choice `json:"schedule"`
}

// NewReplay packages a report's violation for serialization.
func NewReplay(rep *Report, opts Options) *Replay {
	opts = opts.withDefaults()
	r := &Replay{
		Scenario:  rep.Scenario,
		Depth:     opts.Depth,
		Preempt:   opts.Preempt,
		Violation: rep.Violation.Message,
		PrefixLen: rep.Violation.PrefixLen,
		Schedule:  rep.Violation.Schedule,
	}
	if opts.BreakFlushBeforeAck {
		r.Break = "flush-before-ack"
	}
	return r
}

// WriteFile serializes the replay as indented JSON.
func (r *Replay) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReplay reads a replay file.
func LoadReplay(path string) (*Replay, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Replay{}
	if err := json.Unmarshal(b, r); err != nil {
		return nil, fmt.Errorf("replay %s: %w", path, err)
	}
	if r.Scenario == "" {
		return nil, fmt.Errorf("replay %s: no scenario name", path)
	}
	if r.PrefixLen < 0 || r.PrefixLen > len(r.Schedule) {
		return nil, fmt.Errorf("replay %s: prefix_len %d out of range (schedule has %d choices)",
			path, r.PrefixLen, len(r.Schedule))
	}
	return r, nil
}

// Run re-executes the replay's controlling prefix and reports the
// run's outcome. A reproduced violation comes back in
// RunResult.Violation; RunResult.PrefixMismatch flags a stale replay
// (the recorded choices no longer match the enabled sets, i.e. the
// code's step structure changed since the file was written).
func (r *Replay) Run() (*RunResult, error) {
	sc, err := ByName(r.Scenario)
	if err != nil {
		return nil, err
	}
	opts := Options{Depth: r.Depth, Preempt: r.Preempt}
	if r.Break == "flush-before-ack" {
		opts.BreakFlushBeforeAck = true
	} else if r.Break != "" {
		return nil, fmt.Errorf("replay: unknown break mode %q", r.Break)
	}
	return runScenario(sc, r.Schedule[:r.PrefixLen], opts)
}
