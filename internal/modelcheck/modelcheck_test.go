package modelcheck

import (
	"path/filepath"
	"reflect"
	"testing"
)

// testOptions are the in-tree bounds: preemption bound 1 keeps the
// single-mutator scenarios' explorations in the tens-to-hundreds of
// runs, and every needle in the catalog reproduces with a single
// preemption. sync-store-race carries a bystander mutator whose
// response orderings put its preempt-1 space at ~20k runs, so the
// in-tree test explores it at preemption bound 0 (every forced-switch
// ordering, no perturbations) and the full bound runs in the
// verify-protocol make target and CI job via cmd/gcverify.
func testOptions(sc *Scenario) Options {
	o := Options{Depth: 400, Preempt: 1, MaxRuns: 4000}
	if sc.Name == "sync-store-race" {
		o.Preempt = 0
	}
	return o
}

// TestDefaultRun: the unperturbed schedule of every scenario completes
// cleanly — no violation, no deadlock, under the depth bound.
func TestDefaultRun(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := runScenario(sc, nil, testOptions(sc))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Violation != "" {
				t.Fatalf("default schedule violated: %s\nschedule: %v", res.Violation, res.Schedule())
			}
			if res.DepthCapped {
				t.Fatalf("default schedule hit the depth cap at %d steps", res.Steps)
			}
			t.Logf("steps=%d vtime=%v", res.Steps, res.VTime)
		})
	}
}

// TestExploreClean: bounded-exhaustive enumeration of every scenario
// finds no violation on the unbroken collector.
func TestExploreClean(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Explore(sc, testOptions(sc))
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if rep.Violation != nil {
				t.Fatalf("violation after %d runs: %s\nschedule: %v",
					rep.Runs, rep.Violation.Message, rep.Violation.Schedule)
			}
			if rep.Truncated {
				t.Fatalf("exploration truncated at %d runs — bounds too small for the space", rep.Runs)
			}
			if rep.PrefixMismatches != 0 {
				t.Fatalf("%d prefix mismatches — runs are not deterministic", rep.PrefixMismatches)
			}
			if rep.Runs < 2 {
				t.Fatalf("only %d runs — the explorer found no alternatives to try", rep.Runs)
			}
			t.Logf("runs=%d sleepPruned=%d preemptSkipped=%d maxSteps=%d maxVTime=%v",
				rep.Runs, rep.SleepPruned, rep.PreemptSkipped, rep.MaxSteps, rep.MaxVTime)
		})
	}
}

// TestBreakFlushBeforeAck: re-introducing the historical
// flush-after-ack ordering bug must be caught, minimized, and the
// written replay must reproduce the violation.
func TestBreakFlushBeforeAck(t *testing.T) {
	sc, err := ByName("flush-vs-ack")
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(sc)
	opts.BreakFlushBeforeAck = true
	rep, err := Explore(sc, opts)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Violation == nil {
		t.Fatalf("the re-introduced flush-before-ack bug was not caught in %d runs", rep.Runs)
	}
	v := rep.Violation
	t.Logf("caught after %d runs: %s", rep.Runs, v.Message)
	t.Logf("minimized prefix %d of %d choices (%d minimization runs)", v.PrefixLen, len(v.Schedule), v.MinRuns)
	if v.PrefixLen > len(v.Schedule) {
		t.Fatalf("prefix %d longer than schedule %d", v.PrefixLen, len(v.Schedule))
	}

	// Round-trip through the replay file and reproduce.
	path := filepath.Join(t.TempDir(), "replay.json")
	r := NewReplay(rep, opts)
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("write replay: %v", err)
	}
	r2, err := LoadReplay(path)
	if err != nil {
		t.Fatalf("load replay: %v", err)
	}
	if !reflect.DeepEqual(r, r2) {
		t.Fatalf("replay round trip mismatch:\nwrote %+v\nread  %+v", r, r2)
	}
	res, err := r2.Run()
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if res.PrefixMismatch {
		t.Fatalf("replay prefix no longer matches the enabled sets")
	}
	if res.Violation == "" {
		t.Fatalf("replay did not reproduce the violation")
	}
	t.Logf("replay reproduced: %s", res.Violation)
}

// TestDeterminism: two explorations of the same scenario agree run for
// run — the whole harness is a pure function of the choice sequences.
func TestDeterminism(t *testing.T) {
	sc, err := ByName("sync-store-race")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Explore(sc, testOptions(sc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(sc, testOptions(sc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical explorations disagree:\nfirst  %+v\nsecond %+v", a, b)
	}
}

// TestByName covers the registry's error path.
func TestByName(t *testing.T) {
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
	for _, sc := range Scenarios() {
		got, err := ByName(sc.Name)
		if err != nil || got.Name != sc.Name {
			t.Fatalf("ByName(%q) = %v, %v", sc.Name, got, err)
		}
	}
}
