package modelcheck

import (
	"fmt"

	"gengc/internal/gc"
)

// The needle catalog. Each scenario plants an object whose survival
// depends on one delicate leg of the protocol, then enumerates every
// schedule within the bounds and asserts the needle survived all of
// them — plus the per-step invariants of run.go on the way. The
// scenarios correspond to the historical failure modes of on-the-fly
// collectors: a store during the sync windows (Figure 1's two-shade
// barrier), a batched flush racing the final acknowledgement round
// (barrier.go's first safety bullet), a dropped safe point with
// buffered card marks (§7.2), and the remembered-set variant of the
// inter-generational re-scan.

// setupOldChain attaches a temporary mutator, allocates an object with
// slots pointer slots, publishes it in globals slot 0, detaches, and
// runs warm partial collections so the object ends up old (black;
// tenured after two cycles in aging mode). The object is left pristine
// — no stores into it — so its card is clean and nothing masks a
// lost buffered card mark.
func setupOldChain(env *Env, name string, slots, warmCycles int) error {
	t := env.C.NewMutator()
	x, err := t.Alloc(slots, 0)
	if err != nil {
		t.Detach()
		return err
	}
	t.Update(env.C.Globals(), 0, x)
	t.Detach()
	for i := 0; i < warmCycles; i++ {
		env.C.CollectNow(false)
	}
	env.Addrs[name] = x
	return nil
}

// syncStoreRace: the protagonist allocates w, roots it, stores it into
// the old object z during whatever phase the schedule lands on, then
// drops the root — w's survival must follow from the phase-dependent
// write-barrier cases of Figure 1 (§7.1's acceptance window included)
// in every interleaving. A rootless, opless bystander mutator rides
// along: its safe-point responses are provably independent of the
// protagonist's steps, which is what the sleep-set reduction prunes.
func syncStoreRace() *Scenario {
	return &Scenario{
		Name: "sync-store-race",
		Description: "store into an old object racing the sync1/sync2 windows; " +
			"the two-shade barrier must keep the stored object alive in every schedule",
		Config:   func() gc.Config { return microConfig(gc.Generational, gc.BarrierEager) },
		Setup:    func(env *Env) error { return setupOldChain(env, "z", 2, 1) },
		Mutators: []string{"mut", "idle"},
		Actors: []ActorDecl{
			collectorActor(2),
			{Name: "mut", Run: func(env *Env) error {
				return DriveMutator(env, "mut", []Op{
					coopOp(),
					allocRootOp("w", 1),
					coopOp(),
					storeOp("z", 0, "w"),
					coopOp(),
					dropRootOp("w"),
				})
			}},
			{Name: "idle", Run: func(env *Env) error { return DriveMutator(env, "idle", nil) }},
		},
		Indep: func(a, b Choice) bool {
			// The bystander owns no roots, no objects and no barrier
			// buffers; its safe-point responses touch only its own
			// status/ack words, which the protagonist never reads —
			// and vice versa. Drop variants are never declared
			// independent (a drop changes which future choices exist).
			if a.Drop || b.Drop {
				return false
			}
			return (a.Actor == "mut" && b.Actor == "idle") ||
				(a.Actor == "idle" && b.Actor == "mut")
		},
		AtEnd: func(env *Env) error {
			if err := assertAlive(env, "w"); err != nil {
				return err
			}
			if err := assertSlot(env, "z", 0, "w"); err != nil {
				return err
			}
			if err := assertAlive(env, "z"); err != nil {
				return err
			}
			return quiescentAudit(env, true)
		},
	}
}

// flushVsAck: batched barrier. Setup leaves old x with x.0 = o (o
// clear-colored once the test cycle toggles) and x's card dirty. The
// protagonist pre-arms a root slot, lets the handshakes pass, then
// resurrects o into the root and deletes x.0 — the deletion barrier's
// shade of o sits in the batched buffer, and the only thing standing
// between o and the sweep is the flush-before-ack ordering of
// Cooperate. With -break flush-before-ack the historical inversion is
// re-introduced and the checker must produce a schedule where the
// collector's termination round slips between the acknowledgement
// store and the flush, frees o, and trips the reachability invariant.
func flushVsAck() *Scenario {
	return &Scenario{
		Name: "flush-vs-ack",
		Description: "batched-barrier flush racing the trace-termination acknowledgement; " +
			"a buffered SATB shade must be published before the ack that lets the trace finish",
		Config: func() gc.Config { return microConfig(gc.Generational, gc.BarrierBatched) },
		Setup: func(env *Env) error {
			if err := setupOldChain(env, "x", 1, 1); err != nil {
				return err
			}
			// Phase 2: allocate o *after* the warm cycle so the test
			// cycle's color toggle makes it clear-colored (sweepable),
			// and publish x.0 = o; the detach flush dirties x's card.
			t := env.C.NewMutator()
			o, err := t.Alloc(1, 0)
			if err != nil {
				t.Detach()
				return err
			}
			t.Update(env.Addrs["x"], 0, o)
			t.Detach()
			env.Addrs["o"] = o
			return nil
		},
		Mutators: []string{"mut"},
		Actors: []ActorDecl{
			collectorActor(1),
			{Name: "mut", Run: func(env *Env) error {
				return DriveMutator(env, "mut", []Op{
					pushNilRootOp("root-o"),
					coopOp(),
					coopOp(),
					coopOp(),
					setRootOp("root-o", "o"),
					storeOp("x", 0, ""),
					coopOp(),
				})
			}},
		},
		AtEnd: func(env *Env) error {
			if err := assertAlive(env, "o"); err != nil {
				return err
			}
			if err := assertSlot(env, "x", 0, ""); err != nil {
				return err
			}
			if err := assertAlive(env, "x"); err != nil {
				return err
			}
			return quiescentAudit(env, true)
		},
	}
}

// droppedHandshake: aging mode with OldAge 1, batched barrier, and a
// drop budget of one safe-point response. The protagonist stores young
// y into tenured, clean-carded x — the card mark rides the batched
// buffer — and the schedule may make any one Cooperate a missed safe
// point. The protocol's obligation: the buffered card must still be
// published before any card scan that needs it (the next response
// flushes first, and no cycle can pass the handshake without a
// response), so y survives both cycles in every schedule including
// the dropped ones.
func droppedHandshake() *Scenario {
	return &Scenario{
		Name: "dropped-handshake",
		Description: "missed safe point with a buffered card mark; the next response must " +
			"publish the card before any scan that depends on it",
		Config: func() gc.Config {
			cfg := microConfig(gc.GenerationalAging, gc.BarrierBatched)
			cfg.OldAge = 1
			return cfg
		},
		Setup: func(env *Env) error {
			// Two warm cycles: survive once (demoted, age 1), survive
			// again at the threshold — x is tenured with a clean card.
			return setupOldChain(env, "x", 2, 2)
		},
		Mutators: []string{"mut"},
		Actors: []ActorDecl{
			collectorActor(2),
			{Name: "mut", Run: func(env *Env) error {
				return DriveMutator(env, "mut", []Op{
					allocRootOp("y", 1),
					coopOp(),
					storeOp("x", 0, "y"),
					coopOp(),
					dropRootOp("y"),
					coopOp(),
				})
			}},
		},
		DropPoints: map[string]int{"cooperate": 1},
		AtEnd: func(env *Env) error {
			if err := assertAlive(env, "y"); err != nil {
				return err
			}
			if err := assertSlot(env, "x", 0, "y"); err != nil {
				return err
			}
			return quiescentAudit(env, true)
		},
	}
}

// remsetDrain: the remembered-set variant of the inter-generational
// needle — the store into old x records x in the mutator's remembered
// set instead of marking a card, and the collector's drain (the
// fault.RemsetDrain seam) must re-gray x before the trace that decides
// y's fate, in every schedule.
func remsetDrain() *Scenario {
	return &Scenario{
		Name: "remset-drain",
		Description: "remembered-set record racing the partial collection's drain; " +
			"the recorded old object must be re-grayed before the trace that keeps its young target alive",
		Config: func() gc.Config {
			cfg := microConfig(gc.Generational, gc.BarrierEager)
			cfg.UseRememberedSet = true
			return cfg
		},
		Setup:    func(env *Env) error { return setupOldChain(env, "x", 2, 1) },
		Mutators: []string{"mut"},
		Actors: []ActorDecl{
			collectorActor(2),
			{Name: "mut", Run: func(env *Env) error {
				return DriveMutator(env, "mut", []Op{
					allocRootOp("y", 1),
					coopOp(),
					storeOp("x", 0, "y"),
					coopOp(),
					dropRootOp("y"),
					coopOp(),
				})
			}},
		},
		AtEnd: func(env *Env) error {
			if err := assertAlive(env, "y"); err != nil {
				return err
			}
			if err := assertSlot(env, "x", 0, "y"); err != nil {
				return err
			}
			return quiescentAudit(env, false)
		},
	}
}

// Scenarios returns the named scenarios in their canonical order.
func Scenarios() []*Scenario {
	return []*Scenario{syncStoreRace(), flushVsAck(), droppedHandshake(), remsetDrain()}
}

// ByName resolves one scenario.
func ByName(name string) (*Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("modelcheck: unknown scenario %q", name)
}
