// Package modelcheck is the deterministic protocol-verification
// harness: it runs a micro-heap workload under a virtual scheduler
// that implements the collector's fault.Scheduler seam, enumerates
// bounded-exhaustive interleavings of the protocol's schedulable steps
// (handshake posts and acknowledgement rounds, safe-point responses,
// barrier flushes, card and remembered-set scans, trace drains, sweep
// shards), and asserts the collector's shared invariants
// (gc.CheckReachableAllocated and friends) after every step of every
// schedule.
//
// Architecture (DESIGN.md §10 has the full treatment):
//
//   - Each scenario actor — the collector driving Cycle, and scripted
//     mutators — runs on its own goroutine but executes strictly one
//     at a time: an actor parks at every seam hit and the controller
//     resumes exactly one parked actor per step. The Go runtime never
//     gets a scheduling choice that matters, so a run is a pure
//     function of its choice sequence.
//
//   - Exploration is stateless (CHESS-style): each schedule re-executes
//     the scenario from a fresh collector, steered by a choice prefix;
//     beyond the prefix a deterministic default policy (keep running
//     the current actor) finishes the run. DFS over prefixes with a
//     preemption bound and sleep-set reduction enumerates the space.
//
//   - Violations (a per-step invariant failure, an actor error, a
//     deadlock) are minimized to the shortest controlling prefix and
//     serialized as a replay file (cmd/gcverify -replay).
package modelcheck

import (
	"runtime"
	"sync/atomic"

	"gengc/internal/fault"
)

// parkKind is what a parked actor is waiting at.
type parkKind int

const (
	// parkStart: the actor goroutine exists but has not run its body.
	parkStart parkKind = iota

	// parkStep: the actor is at a seam hit (fault point or driver
	// yield) and resumes with a Decision.
	parkStep

	// parkWait: the actor is at a Scheduler.Wait (or a driver's idle
	// wait) and is enabled only while its ready predicate holds.
	parkWait

	// parkDone: the actor's body returned; it never resumes.
	parkDone
)

// resumeMsg is the controller's answer to one park.
type resumeMsg struct {
	dec fault.Decision
	ok  bool
}

// actor is one scheduled goroutine. The park fields (kind, label,
// ready, err) are written by the actor before it announces itself on
// the scheduler's park channel and read by the controller after the
// receive; the channel provides the happens-before edge both ways.
type actor struct {
	name   string
	resume chan resumeMsg

	kind  parkKind
	label string
	ready func() bool
	err   error
}

// VirtualScheduler implements fault.Scheduler for the gc seam and the
// driver-side yield points. One instance runs one schedule; the
// explorer builds a fresh scheduler (and collector) per run.
type VirtualScheduler struct {
	// on gates the seam: during scenario setup (heap construction,
	// warm-up collections) it is off and every Step/Wait passes
	// through, so only the scheduled phase is enumerated.
	on atomic.Bool

	// aborted flips when the controller unwinds a run; pass-through
	// Waits then report abandonment so the collector takes its
	// close-abort path and drivers stop.
	aborted atomic.Bool

	// parkC carries park announcements to the controller. Buffered so
	// the initial parks of all actors can land before the controller
	// starts receiving.
	parkC chan *actor

	// actors in registration order — the canonical choice order.
	actors []*actor

	// current is the actor the controller resumed last; Step and Wait
	// run on that actor's goroutine (execution is serialized), so the
	// seam needs no actor-identity parameter.
	current *actor
}

// NewVirtualScheduler returns a scheduler with the seam off; arm it
// with on.Store(true) after setup and spawning.
func NewVirtualScheduler() *VirtualScheduler {
	return &VirtualScheduler{parkC: make(chan *actor, 64)}
}

// spawn registers an actor and starts its goroutine parked: the body
// does not run until the controller's first resume.
func (vs *VirtualScheduler) spawn(name string, fn func() error) {
	a := &actor{name: name, resume: make(chan resumeMsg)}
	vs.actors = append(vs.actors, a)
	go func() {
		a.kind, a.label = parkStart, "start"
		vs.parkC <- a
		<-a.resume
		err := fn()
		a.err = err
		a.kind, a.label, a.ready = parkDone, "done", nil
		vs.parkC <- a
	}()
}

// park announces the current actor's state and blocks until resumed.
// Must be called from the goroutine of vs.current (which is the only
// goroutine running while the seam is on).
func (vs *VirtualScheduler) park(kind parkKind, label string, ready func() bool) resumeMsg {
	a := vs.current
	a.kind, a.label, a.ready = kind, label, ready
	vs.parkC <- a
	return <-a.resume
}

// Step implements fault.Scheduler: one schedulable step at a fault
// point. Off (setup/unwind) it decides nothing.
func (vs *VirtualScheduler) Step(p fault.Point) fault.Decision {
	if !vs.on.Load() {
		return fault.Decision{}
	}
	return vs.park(parkStep, p.String(), nil).dec
}

// Wait implements fault.Scheduler: the collector parks until the
// controller finds ready() true and elects to resume it, or the run is
// abandoned (false — the caller's close-abort path). Off, it yields to
// the real scheduler so setup-phase waits still make progress.
func (vs *VirtualScheduler) Wait(p fault.Point, ready func() bool) bool {
	if !vs.on.Load() {
		if vs.aborted.Load() {
			return false
		}
		runtime.Gosched()
		return true
	}
	return vs.park(parkWait, p.String(), ready).ok
}

// Yield is the driver-side scheduling point: scripted mutators park
// between ops so every op is one schedulable step. A false return (or
// a Drop decision) tells the driver to stop its script — the run is
// being unwound.
func (vs *VirtualScheduler) Yield(label string) bool {
	if !vs.on.Load() {
		return !vs.aborted.Load()
	}
	msg := vs.park(parkStep, label, nil)
	return msg.ok && !msg.dec.Drop
}

// WaitDriver is the driver-side gated wait: a mutator blocks here with
// a readiness predicate — typically "the run is over or I have a
// handshake to answer" (gc.Mutator.PendingResponse) — instead of
// spinning through no-op safe points, which would bloat every schedule
// with stutter steps. Gating the scripted safe-point responses this
// way also paces a script across the handshake windows through free
// forced switches, so the explorer's preemption budget is spent on
// genuine perturbations rather than on basic alternation.
func (vs *VirtualScheduler) WaitDriver(label string, ready func() bool) bool {
	if !vs.on.Load() {
		if vs.aborted.Load() {
			return false
		}
		runtime.Gosched()
		return true
	}
	return vs.park(parkWait, label, ready).ok
}

// Aborted reports whether the controller is unwinding this run.
func (vs *VirtualScheduler) Aborted() bool { return vs.aborted.Load() }
