package modelcheck

import (
	"fmt"
	"time"

	"gengc/internal/gc"
)

// Choice identifies one scheduling decision: which actor to resume at
// a level, and whether to hand it a Drop decision (the enumerable
// "missed safe point" branch at points with a drop budget). Label is
// the park label the actor was resumed from — a fault-point name like
// "cooperate" or a driver op label — recorded so replays are readable
// and so drop budgets can be keyed by point.
type Choice struct {
	Actor string `json:"actor"`
	Label string `json:"label"`
	Drop  bool   `json:"drop,omitempty"`
}

func (c Choice) String() string {
	if c.Drop {
		return c.Actor + "@" + c.Label + "!drop"
	}
	return c.Actor + "@" + c.Label
}

// Options bound one exploration (and one run).
type Options struct {
	// Depth caps the steps of a single run; past it the run is
	// unwound and counted, not failed. The backstop against scenarios
	// that diverge — bounded-exhaustive means exhaustive within Depth
	// and Preempt.
	Depth int

	// Preempt is the preemption budget (CHESS-style): resuming an
	// actor other than the one that just ran, while that one is still
	// enabled, costs one preemption; forced switches (the running
	// actor blocked or finished) are free. Empirically almost all
	// protocol bugs need very few preemptions; the budget is what
	// makes enumeration tractable.
	Preempt int

	// MaxRuns is the exploration's run-count safety cap.
	MaxRuns int

	// BreakFlushBeforeAck re-introduces the historical
	// flush-after-ack ordering bug (gc.Config.UnsafeBreakFlushBeforeAck)
	// so the harness can demonstrate a catch.
	BreakFlushBeforeAck bool
}

// withDefaults fills the standard bounds.
func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = 400
	}
	if o.Preempt < 0 {
		o.Preempt = 0
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 5000
	}
	return o
}

// levelInfo records one scheduling level of a completed run: the
// enabled choices (canonical order), the one taken, and who was
// running before — what the explorer needs to enumerate alternatives
// and price preemptions without re-running.
type levelInfo struct {
	Choices     []Choice
	Taken       Choice
	Prev        string // actor resumed at the previous level ("" at level 0)
	PrevEnabled bool   // that actor is among Choices (so switching away costs a preemption)
}

// RunResult is one schedule's outcome.
type RunResult struct {
	Levels      []levelInfo
	Violation   string // "" = clean
	ViolationAt int    // level index of the violation (len(Levels)-1)
	Deadlock    bool
	DepthCapped bool
	Steps       int
	Preemptions int

	// VTime is the schedule's virtual elapsed time: steps charged at
	// gc.HandshakeSleepMin, blocked-wait resumes at
	// gc.HandshakeSleepMax — the two ends of the real scheduler's
	// backoff (gc/sched.go), so the estimate brackets what the wall
	// clock would do.
	VTime time.Duration

	// PrefixMismatch notes a replayed prefix choice that was not
	// enabled (a stale replay file against changed code); the run
	// fell back to the default policy at that level.
	PrefixMismatch bool
}

// Schedule returns the taken choices, one per level.
func (r *RunResult) Schedule() []Choice {
	s := make([]Choice, len(r.Levels))
	for i := range r.Levels {
		s[i] = r.Levels[i].Taken
	}
	return s
}

// runScenario executes one schedule: fresh collector, scenario setup
// with the seam off, then the controller loop steered by prefix and
// finished by the default policy.
func runScenario(sc *Scenario, prefix []Choice, opts Options) (*RunResult, error) {
	opts = opts.withDefaults()
	vs := NewVirtualScheduler()
	cfg := sc.Config()
	cfg.Scheduler = vs
	cfg.Fault = nil
	cfg.Workers = 1
	if opts.BreakFlushBeforeAck {
		cfg.UnsafeBreakFlushBeforeAck = true
	}
	c, err := gc.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("modelcheck: %s: config: %w", sc.Name, err)
	}
	env := newEnv(c, vs)
	if err := sc.Setup(env); err != nil {
		return nil, fmt.Errorf("modelcheck: %s: setup: %w", sc.Name, err)
	}
	for _, name := range sc.Mutators {
		env.Muts[name] = c.NewMutator()
	}
	for _, ad := range sc.Actors {
		run := ad.Run
		vs.spawn(ad.Name, func() error { return run(env) })
	}
	vs.on.Store(true)
	res := runController(vs, sc, env, prefix, opts)
	return res, nil
}

// runController is the scheduling loop: at each level it computes the
// enabled choice set, picks (prefix, then default policy), resumes the
// chosen actor, receives its next park, and runs the per-step
// invariants. It returns after a clean completion or an unwind.
func runController(vs *VirtualScheduler, sc *Scenario, env *Env, prefix []Choice, opts Options) *RunResult {
	res := &RunResult{}
	// Collect the initial parks: every spawned actor announces itself
	// before the first level.
	for i := 0; i < len(vs.actors); i++ {
		<-vs.parkC
	}
	var prev *actor
	dropBudget := make(map[string]int, len(sc.DropPoints))
	for k, v := range sc.DropPoints {
		dropBudget[k] = v
	}
	unwound := false
	for {
		// Enabled choices in canonical order: actors in registration
		// order, the non-drop choice before the drop variant.
		var choices []Choice
		enabled := make(map[string]*actor)
		allDone := true
		for _, a := range vs.actors {
			if a.kind == parkDone {
				continue
			}
			allDone = false
			if a.kind == parkWait && !a.ready() {
				continue
			}
			enabled[a.name] = a
			choices = append(choices, Choice{Actor: a.name, Label: a.label})
			if a.kind != parkWait && dropBudget[a.label] > 0 {
				choices = append(choices, Choice{Actor: a.name, Label: a.label, Drop: true})
			}
		}
		if allDone {
			break
		}
		if len(choices) == 0 {
			res.Violation = "deadlock: no actor enabled (" + parkSummary(vs) + ")"
			res.ViolationAt = len(res.Levels)
			res.Deadlock = true
			unwind(vs)
			unwound = true
			break
		}
		if res.Steps >= opts.Depth {
			res.DepthCapped = true
			unwind(vs)
			unwound = true
			break
		}

		lv := levelInfo{Choices: choices}
		if prev != nil {
			lv.Prev = prev.name
			_, lv.PrevEnabled = enabled[prev.name]
		}
		pick, ok := Choice{}, false
		if len(res.Levels) < len(prefix) {
			want := prefix[len(res.Levels)]
			for _, ch := range choices {
				if ch == want {
					pick, ok = ch, true
					break
				}
			}
			if !ok {
				res.PrefixMismatch = true
			}
		}
		if !ok {
			// Default policy: keep running the current actor (its
			// non-drop choice) — zero preemptions by construction —
			// else the first enabled choice (a forced switch).
			if prev != nil {
				if a, on := enabled[prev.name]; on {
					pick, ok = Choice{Actor: a.name, Label: a.label}, true
				}
			}
			if !ok {
				pick = choices[0]
			}
		}
		lv.Taken = pick
		res.Levels = append(res.Levels, lv)
		if lv.PrevEnabled && pick.Actor != lv.Prev {
			res.Preemptions++
		}
		if pick.Drop {
			dropBudget[pick.Label]--
		}

		a := enabled[pick.Actor]
		wasWait := a.kind == parkWait
		vs.current = a
		res.Steps++
		if wasWait {
			res.VTime += gc.HandshakeSleepMax
		} else {
			res.VTime += gc.HandshakeSleepMin
		}
		msg := resumeMsg{ok: true}
		if pick.Drop {
			msg.dec.Drop = true
		}
		a.resume <- msg
		<-vs.parkC // the resumed actor's next park (or its done announce)
		prev = a

		if err := stepInvariants(sc, env, pick); err != nil {
			res.Violation = err.Error()
			res.ViolationAt = len(res.Levels) - 1
			unwind(vs)
			unwound = true
			break
		}
	}
	if !unwound {
		// Clean completion: actor errors and the scenario's end-state
		// assertions (needles, full Verify) are violations too.
		vs.on.Store(false)
		for _, a := range vs.actors {
			if a.err != nil {
				res.Violation = "actor " + a.name + ": " + a.err.Error()
				res.ViolationAt = len(res.Levels)
				return res
			}
		}
		if sc.AtEnd != nil {
			if err := sc.AtEnd(env); err != nil {
				res.Violation = "at end: " + err.Error()
				res.ViolationAt = len(res.Levels)
			}
		}
	}
	return res
}

// stepInvariants runs the shared invariants after every step: the
// lost-object check and the barrier-buffer check always (both are
// valid at any step), the no-reachable-clear check at sweep-shard
// steps (valid only between trace fixpoint and end of sweep), plus the
// scenario's own AfterStep.
func stepInvariants(sc *Scenario, env *Env, step Choice) error {
	if step.Drop {
		// A dropped operation changes no state worth re-auditing.
		return nil
	}
	if err := env.C.CheckReachableAllocated(); err != nil {
		return fmt.Errorf("after %v: %w", step, err)
	}
	if err := env.C.CheckBarrierBuffers(); err != nil {
		return fmt.Errorf("after %v: %w", step, err)
	}
	if step.Label == "sweep-shard" {
		if err := env.C.CheckNoReachableClear(); err != nil {
			return fmt.Errorf("after %v: %w", step, err)
		}
	}
	if sc.AfterStep != nil {
		if err := sc.AfterStep(env, step); err != nil {
			return fmt.Errorf("after %v: %w", step, err)
		}
	}
	return nil
}

// unwind abandons the run: every parked actor is resumed with the
// abandonment verdict (Waits return false, steps a zero decision) and
// the seam is turned off, so the actors run concurrently-for-real to
// completion — the collector aborts its cycle through the close-abort
// path, drivers stop their scripts and detach. The run's outcome is
// already decided; the unwind only reclaims the goroutines.
func unwind(vs *VirtualScheduler) {
	vs.aborted.Store(true)
	vs.on.Store(false)
	done := 0
	for _, a := range vs.actors {
		if a.kind == parkDone {
			done++
			continue
		}
		a.resume <- resumeMsg{ok: false}
	}
	for done < len(vs.actors) {
		a := <-vs.parkC
		if a.kind == parkDone {
			done++
			continue
		}
		// An actor that raced a park announcement against the seam
		// going off; release it.
		a.resume <- resumeMsg{ok: false}
	}
}

// parkSummary describes every live actor's park for deadlock reports.
func parkSummary(vs *VirtualScheduler) string {
	s := ""
	for _, a := range vs.actors {
		if a.kind == parkDone {
			continue
		}
		if s != "" {
			s += ", "
		}
		kind := "step"
		if a.kind == parkWait {
			kind = "wait"
		}
		s += fmt.Sprintf("%s %s@%s", a.name, kind, a.label)
	}
	return s
}
