package modelcheck

import (
	"time"
)

// Stateless DFS over schedules. Each completed run reports, per level,
// the enabled choice set and the choice taken; the explorer backtracks
// deepest-first, re-executing the scenario with a prefix that diverges
// at one level and letting the default policy finish the run. Three
// things keep the space tractable, and each is reported honestly:
//
//   - Preemption bounding (CHESS): a choice that switches away from a
//     still-enabled running actor costs one preemption from a small
//     budget; forced switches are free. Exhaustive therefore means
//     "all schedules with at most Preempt preemptions, up to Depth
//     steps" — which is where protocol bugs live: every needle in the
//     catalog reproduces with a single preemption.
//
//   - Sleep sets: when a scenario declares an independence relation,
//     alternatives whose exploration is provably redundant with an
//     already-explored sibling are pruned (SleepPruned counts them).
//
//   - Depth and run-count caps as backstops (DepthCapped, Truncated).
type Report struct {
	Scenario string

	// Runs is every schedule actually executed, including the
	// minimization re-runs after a violation.
	Runs int

	// SleepPruned and PreemptSkipped count alternatives not explored,
	// and why. PrefixMismatches counts replayed prefixes that stopped
	// matching the enabled sets — zero unless determinism is broken.
	SleepPruned      int
	PreemptSkipped   int
	PrefixMismatches int

	// DepthCapped counts runs cut off at Options.Depth; Deadlocks
	// counts runs that ended with no enabled actor.
	DepthCapped int
	Deadlocks   int

	// MaxSteps and MaxVTime are the longest schedule seen and its
	// virtual-time estimate under the gc/sched.go time model.
	MaxSteps int
	MaxVTime time.Duration

	// Truncated reports that Options.MaxRuns stopped the exploration
	// before the bounded space was exhausted.
	Truncated bool

	// Violation is the first violation found, minimized; nil means
	// every explored schedule was clean.
	Violation *Violation
}

// Violation is a minimized counterexample: replaying Schedule[:PrefixLen]
// and letting the default policy finish reproduces Message.
type Violation struct {
	Message   string
	Schedule  []Choice
	PrefixLen int

	// MinRuns is how many re-runs the prefix minimization used.
	MinRuns int
}

// expLevel is one level of the DFS stack.
type expLevel struct {
	choices     []Choice
	taken       Choice
	prev        string
	prevEnabled bool

	// preBefore is the preemption cost of the takens above this level;
	// an alternative here may spend preBefore + its own cost ≤ Preempt.
	preBefore int

	// sleep holds choices whose subtrees are covered by siblings
	// explored from an earlier state (never explored, counted as
	// pruned). done holds choices actually explored from this level —
	// they seed the sleep sets of later siblings' subtrees. skip holds
	// choices dismissed without exploration (sleep-pruned or over the
	// preemption budget); they never seed a sleep set.
	sleep map[Choice]bool
	done  map[Choice]bool
	skip  map[Choice]bool
}

// nextAlt returns the next unexplored alternative at this level, or
// false when the level is exhausted.
func (lv *expLevel) nextAlt(opts Options, rep *Report) (Choice, bool) {
	for _, ch := range lv.choices {
		if ch == lv.taken || lv.done[ch] || lv.skip[ch] {
			continue
		}
		if lv.sleep[ch] {
			lv.skip[ch] = true
			rep.SleepPruned++
			continue
		}
		cost := 0
		if lv.prevEnabled && ch.Actor != lv.prev {
			cost = 1
		}
		if lv.preBefore+cost > opts.Preempt {
			lv.skip[ch] = true
			rep.PreemptSkipped++
			continue
		}
		return ch, true
	}
	return Choice{}, false
}

// Explore enumerates the scenario's schedules within opts and returns
// the report; the first violation stops the search and is minimized.
func Explore(sc *Scenario, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	indep := sc.Indep
	if indep == nil {
		indep = func(a, b Choice) bool { return false }
	}
	rep := &Report{Scenario: sc.Name}

	res, err := runScenario(sc, nil, opts)
	if err != nil {
		return nil, err
	}
	rep.Runs++
	rep.observe(res)
	if res.Violation != "" {
		rep.minimize(sc, res, opts)
		return rep, nil
	}
	stack := appendFresh(nil, res, 0, nil, indep)

	for len(stack) > 0 {
		if rep.Runs >= opts.MaxRuns {
			rep.Truncated = true
			break
		}
		L := len(stack) - 1
		lv := stack[L]
		alt, ok := lv.nextAlt(opts, rep)
		if !ok {
			stack = stack[:L]
			continue
		}

		// The child's sleep set: everything slept or already explored
		// here that is independent of the divergence — computed before
		// alt joins done, so alt never sleeps in its own subtree.
		childSleep := map[Choice]bool{}
		for s := range lv.sleep {
			if indep(s, alt) {
				childSleep[s] = true
			}
		}
		for s := range lv.done {
			if indep(s, alt) {
				childSleep[s] = true
			}
		}
		lv.done[alt] = true

		prefix := make([]Choice, 0, L+1)
		for _, p := range stack[:L] {
			prefix = append(prefix, p.taken)
		}
		prefix = append(prefix, alt)

		res, err := runScenario(sc, prefix, opts)
		if err != nil {
			return nil, err
		}
		rep.Runs++
		rep.observe(res)
		if res.PrefixMismatch {
			rep.PrefixMismatches++
			continue
		}
		if res.Violation != "" {
			rep.minimize(sc, res, opts)
			return rep, nil
		}

		// Commit the divergence and grow the stack from the new run's
		// deeper levels.
		lv.taken = alt
		stack = appendFresh(stack[:L+1], res, L+1, childSleep, indep)
	}
	return rep, nil
}

// appendFresh extends the DFS stack with the run's levels from start
// on. firstSleep is the sleep set of level start; deeper fresh levels
// inherit the part of it independent of each taken choice in turn.
func appendFresh(stack []*expLevel, res *RunResult, start int, firstSleep map[Choice]bool, indep func(a, b Choice) bool) []*expLevel {
	pre := 0
	for i := 0; i < start; i++ {
		li := res.Levels[i]
		if li.PrevEnabled && li.Taken.Actor != li.Prev {
			pre++
		}
	}
	sleep := firstSleep
	if sleep == nil {
		sleep = map[Choice]bool{}
	}
	for j := start; j < len(res.Levels); j++ {
		li := res.Levels[j]
		stack = append(stack, &expLevel{
			choices:     li.Choices,
			taken:       li.Taken,
			prev:        li.Prev,
			prevEnabled: li.PrevEnabled,
			preBefore:   pre,
			sleep:       sleep,
			done:        map[Choice]bool{li.Taken: true},
			skip:        map[Choice]bool{},
		})
		if li.PrevEnabled && li.Taken.Actor != li.Prev {
			pre++
		}
		next := map[Choice]bool{}
		for s := range sleep {
			if indep(s, li.Taken) {
				next[s] = true
			}
		}
		sleep = next
	}
	return stack
}

// observe folds one run's outcome into the report counters.
func (rep *Report) observe(r *RunResult) {
	if r.Steps > rep.MaxSteps {
		rep.MaxSteps = r.Steps
	}
	if r.VTime > rep.MaxVTime {
		rep.MaxVTime = r.VTime
	}
	if r.DepthCapped {
		rep.DepthCapped++
	}
	if r.Deadlock {
		rep.Deadlocks++
	}
}

// minimize greedily shortens the failing schedule: the shortest prefix
// whose default continuation still reproduces a violation is the
// counterexample that ships in the replay file. (Any violation counts —
// a shorter schedule tripping a different invariant is still a bug,
// and usually the same one seen earlier.)
func (rep *Report) minimize(sc *Scenario, res *RunResult, opts Options) {
	sched := res.Schedule()
	v := &Violation{Message: res.Violation, Schedule: sched, PrefixLen: len(sched)}
	rep.Violation = v
	for cut := 0; cut <= len(sched); cut++ {
		r2, err := runScenario(sc, sched[:cut], opts)
		if err != nil {
			return
		}
		rep.Runs++
		v.MinRuns++
		rep.observe(r2)
		if r2.Violation != "" {
			v.Message = r2.Violation
			v.Schedule = r2.Schedule()
			v.PrefixLen = cut
			return
		}
	}
}
