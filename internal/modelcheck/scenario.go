package modelcheck

import (
	"fmt"
	"sync/atomic"

	"gengc/internal/gc"
	"gengc/internal/heap"
)

// Env is the per-run world shared between setup, actors and checks:
// the fresh collector, the virtual scheduler, and named values (object
// addresses, root indices) that setup hands to the actors and the
// end-state assertions. Access is serialized by construction — setup
// runs before the actors are spawned, and actors execute one at a
// time under the controller — so the maps need no lock.
type Env struct {
	C  *gc.Collector
	VS *VirtualScheduler

	// Done is set by the scenario's collector actor when its cycles
	// are finished; the mutator drivers' idle predicate reads it.
	Done atomic.Bool

	// Addrs and Ints carry named setup/actor results ("x", "y",
	// "root-y") to the end-state assertions.
	Addrs map[string]heap.Addr
	Ints  map[string]int

	// Muts are the scenario's scheduled mutators, attached by the
	// runner (per Scenario.Mutators) after Setup and before the actors
	// spawn — so the collector's handshakes block on the scripted
	// actors from the first level, and their interleavings come from
	// free forced switches rather than costed preemptions.
	Muts map[string]*gc.Mutator
}

func newEnv(c *gc.Collector, vs *VirtualScheduler) *Env {
	return &Env{C: c, VS: vs, Addrs: map[string]heap.Addr{}, Ints: map[string]int{},
		Muts: map[string]*gc.Mutator{}}
}

// ActorDecl declares one scheduled actor. Declaration order is the
// canonical choice order at every level (put the collector first).
type ActorDecl struct {
	Name string
	Run  func(*Env) error
}

// Scenario is one named verification workload: a micro-heap built in
// Setup (seam off), a handful of actors whose interleavings are
// enumerated, optional drop budgets and an independence relation, and
// the assertions.
type Scenario struct {
	Name        string
	Description string

	// Config returns the scenario's collector configuration; the
	// runner installs the virtual scheduler (and the -break flag)
	// itself.
	Config func() gc.Config

	// Setup builds the initial heap state with the seam off. It may
	// attach temporary mutators and run warm-up collections; it must
	// detach every mutator it creates before returning (an attached
	// mutator that answers no handshakes would stall the warm-ups).
	Setup func(*Env) error

	// Mutators names the scheduled mutators; the runner attaches one
	// per name (into Env.Muts) after Setup, so they exist before the
	// scheduled phase starts.
	Mutators []string

	Actors []ActorDecl

	// DropPoints maps a park label (a fault-point name, e.g.
	// "cooperate") to a per-run budget of enumerable Drop decisions —
	// the "missed safe point" branches.
	DropPoints map[string]int

	// Indep, when non-nil, declares two choices independent for
	// sleep-set reduction: they must commute (executing them in
	// either order reaches the same state) and neither may enable or
	// disable the other. Nil disables the reduction — always sound.
	Indep func(a, b Choice) bool

	// AfterStep runs extra per-step invariants (the defaults in
	// stepInvariants always run).
	AfterStep func(*Env, Choice) error

	// AtEnd runs after a clean completion — every actor finished and
	// detached — and asserts the scenario's needle survived plus the
	// full quiescent audits.
	AtEnd func(*Env) error
}

// microConfig is the scenarios' shared heap shape: small enough that a
// schedule is a few hundred steps (256 blocks → 16 sweep-shard steps
// per cycle), large enough that allocation never hits the OOM path.
func microConfig(mode gc.Mode, barrier gc.BarrierMode) gc.Config {
	return gc.Config{
		Mode:                   mode,
		Barrier:                barrier,
		HeapBytes:              1 << 20,
		YoungBytes:             256 << 10,
		CardBytes:              64,
		InitialTargetBytes:     64 << 10,
		HeadroomBytes:          64 << 10,
		GlobalRootSlots:        8,
		Workers:                1,
		StallTimeout:           -1, // waits divert to the scheduler; no watchdog clock churn
		DisablePauseHistograms: true,
	}
}

// Op is one scripted mutator operation; the driver parks before each
// op, making every op one schedulable step. An ungated op parks at an
// always-enabled yield; a gated op parks at a wait that is enabled
// only while its predicate holds, which lets safe-point ops pace
// themselves to the collector's handshakes without costing the
// explorer preemptions.
type Op struct {
	Label string
	Gate  func(*Env, *gc.Mutator) func() bool
	Do    func(*Env, *gc.Mutator) error
}

// DriveMutator is the standard mutator actor body: run the script on
// the pre-attached mutator with a yield before every op, then idle —
// answering handshakes as they arrive — until the collector actor
// declares the run over, and detach. The idle wait blocks on
// PendingResponse so an idle mutator contributes no stutter steps, and
// the loop guarantees the liveness the handshake protocol assumes
// (every mutator keeps passing safe points).
func DriveMutator(env *Env, name string, ops []Op) error {
	m := env.Muts[name]
	if m == nil {
		return fmt.Errorf("mutator %q was not declared in Scenario.Mutators", name)
	}
	defer m.Detach()
	for _, op := range ops {
		if op.Gate != nil {
			if !env.VS.WaitDriver(op.Label, op.Gate(env, m)) {
				return nil // unwound
			}
		} else if !env.VS.Yield(op.Label) {
			return nil // unwound
		}
		if err := op.Do(env, m); err != nil {
			return fmt.Errorf("op %q: %w", op.Label, err)
		}
	}
	for {
		if !env.VS.WaitDriver("idle", func() bool { return env.Done.Load() || m.PendingResponse() }) {
			return nil // unwound
		}
		if env.Done.Load() && !m.PendingResponse() {
			return nil
		}
		m.Cooperate()
	}
}

// coopOp is the scripted safe point, gated on a pending handshake (or
// the end of the run, so an extra coop cannot deadlock a schedule): it
// becomes enabled exactly when the collector posts, which paces the
// surrounding ops to the handshake windows. The Cooperate itself is a
// further schedulable step (the "cooperate" fault point) where a drop
// budget can turn the response into a missed safe point.
func coopOp() Op {
	return Op{
		Label: "coop",
		Gate: func(env *Env, m *gc.Mutator) func() bool {
			return func() bool { return env.Done.Load() || m.PendingResponse() }
		},
		Do: func(_ *Env, m *gc.Mutator) error {
			m.Cooperate()
			return nil
		},
	}
}

// allocRootOp allocates a slots-sized object, pushes it on the root
// stack, and records its address and root index under name.
func allocRootOp(name string, slots int) Op {
	return Op{Label: "alloc-" + name, Do: func(env *Env, m *gc.Mutator) error {
		a, err := m.Alloc(slots, 0)
		if err != nil {
			return err
		}
		env.Addrs[name] = a
		env.Ints["root-"+name] = m.PushRoot(a)
		return nil
	}}
}

// storeOp stores Addrs[val] (or nil for "") into Addrs[obj].slot[i].
func storeOp(obj string, i int, val string) Op {
	label := fmt.Sprintf("store-%s.%d=%s", obj, i, valName(val))
	return Op{Label: label, Do: func(env *Env, m *gc.Mutator) error {
		var v heap.Addr
		if val != "" {
			v = env.Addrs[val]
		}
		m.Update(env.Addrs[obj], i, v)
		return nil
	}}
}

func valName(v string) string {
	if v == "" {
		return "nil"
	}
	return v
}

// dropRootOp clears the root slot recorded for name, so the object
// stays reachable only through the heap.
func dropRootOp(name string) Op {
	return Op{Label: "droproot-" + name, Do: func(env *Env, m *gc.Mutator) error {
		m.SetRoot(env.Ints["root-"+name], 0)
		return nil
	}}
}

// setRootOp stores Addrs[name] into the root slot recorded under
// idxName — loading a reference into a stack slot with no barrier,
// the root-resurrection half of the SATB needles.
func setRootOp(idxName, name string) Op {
	return Op{Label: "setroot-" + name, Do: func(env *Env, m *gc.Mutator) error {
		m.SetRoot(env.Ints[idxName], env.Addrs[name])
		return nil
	}}
}

// pushNilRootOp pre-arms an empty root slot (so a later setRootOp is
// a plain store, not a push) and records its index under idxName.
func pushNilRootOp(idxName string) Op {
	return Op{Label: "pushroot-nil", Do: func(env *Env, m *gc.Mutator) error {
		env.Ints[idxName] = m.PushRoot(0)
		return nil
	}}
}

// collectorActor returns the standard collector actor: run cycles
// partial collections, then declare the run over.
func collectorActor(cycles int) ActorDecl {
	return ActorDecl{Name: "collector", Run: func(env *Env) error {
		for i := 0; i < cycles; i++ {
			if env.VS.Aborted() {
				break
			}
			env.C.CollectNow(false)
		}
		env.Done.Store(true)
		return nil
	}}
}

// assertAlive fails unless Addrs[name] is a live, non-blue object.
func assertAlive(env *Env, name string) error {
	a, ok := env.Addrs[name]
	if !ok || a == 0 {
		return fmt.Errorf("needle %q was never recorded", name)
	}
	if !env.C.H.ValidObject(a) {
		return fmt.Errorf("needle %q (%#x) is no longer a live object — lost", name, a)
	}
	if env.C.H.Color(a) == heap.Blue {
		return fmt.Errorf("needle %q (%#x) is blue (freed) — lost", name, a)
	}
	return nil
}

// assertSlot fails unless Addrs[obj].slot[i] == Addrs[val] (0 for "").
func assertSlot(env *Env, obj string, i int, val string) error {
	var want heap.Addr
	if val != "" {
		want = env.Addrs[val]
	}
	got := env.C.H.LoadSlot(env.Addrs[obj], i)
	if got != want {
		return fmt.Errorf("%s.%d = %#x, want %s (%#x)", obj, i, got, valName(val), want)
	}
	return nil
}

// quiescentAudit is the shared end-of-run audit: the full reachability
// verifier, the card invariant where cards are in use, and the
// inter-cycle self-check.
func quiescentAudit(env *Env, cards bool) error {
	if err := env.C.Verify(); err != nil {
		return err
	}
	if cards {
		if err := env.C.VerifyCardInvariant(); err != nil {
			return err
		}
	}
	return env.C.CheckQuiescentCycle()
}
