package fault

import (
	"sync"
	"testing"
	"time"
)

// TestSameSeedSameSchedule: the per-point decision stream is a pure
// function of (seed, rules, hit index) — the reproducibility guarantee
// the chaos campaigns rest on.
func TestSameSeedSameSchedule(t *testing.T) {
	build := func() *Injector {
		in := New(42)
		in.Install(Rule{Point: Cooperate, Kind: Delay, P: 0.3, Delay: time.Millisecond})
		in.Install(Rule{Point: Cooperate, Kind: Drop, P: 0.1})
		in.Install(Rule{Point: Alloc, Kind: Fail, P: 0.5})
		return in
	}
	a, b := build(), build()
	for i := 0; i < 10000; i++ {
		if da, db := a.At(Cooperate), b.At(Cooperate); da != db {
			t.Fatalf("hit %d at cooperate diverged: %+v vs %+v", i, da, db)
		}
		if da, db := a.At(Alloc), b.At(Alloc); da != db {
			t.Fatalf("hit %d at alloc diverged: %+v vs %+v", i, da, db)
		}
	}
}

// TestStreamsIndependent: hitting one point does not perturb another
// point's schedule.
func TestStreamsIndependent(t *testing.T) {
	build := func() *Injector {
		in := New(7)
		in.Install(Rule{Point: Alloc, Kind: Fail, P: 0.5})
		return in
	}
	a, b := build(), build()
	// a takes extra hits at an unrelated point between alloc hits.
	for i := 0; i < 1000; i++ {
		a.At(SweepShard)
		if da, db := a.At(Alloc), b.At(Alloc); da != db {
			t.Fatalf("alloc hit %d diverged after cross-point traffic", i)
		}
	}
}

// TestDifferentSeedsDiverge: distinct seeds produce distinct schedules
// (probabilistically certain over 1000 p=0.5 draws).
func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	r := Rule{Point: Alloc, Kind: Fail, P: 0.5}
	a.Install(r)
	b.Install(r)
	for i := 0; i < 1000; i++ {
		if a.At(Alloc) != b.At(Alloc) {
			return
		}
	}
	t.Fatal("seeds 1 and 2 produced identical 1000-hit schedules")
}

// TestCountDisarms: a Count-bounded rule fires exactly Count times —
// the "drop-once" form.
func TestCountDisarms(t *testing.T) {
	in := New(3)
	in.Install(Rule{Point: Alloc, Kind: Fail, Count: 2}) // P 0 = always
	fails := 0
	for i := 0; i < 100; i++ {
		if d := in.At(Alloc); d.Fail {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("count-2 rule fired %d times, want 2", fails)
	}
	if got := in.Fired(Alloc); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

// TestDecisionsMerge: multiple rules firing on one hit merge into one
// decision (delays add, drop/fail OR together).
func TestDecisionsMerge(t *testing.T) {
	in := New(4)
	in.Install(Rule{Point: SinkWrite, Kind: Delay, Delay: time.Millisecond})
	in.Install(Rule{Point: SinkWrite, Kind: Delay, Delay: 2 * time.Millisecond})
	in.Install(Rule{Point: SinkWrite, Kind: Fail})
	d := in.At(SinkWrite)
	if d.Delay != 3*time.Millisecond || !d.Fail || d.Drop {
		t.Fatalf("merged decision = %+v", d)
	}
}

// TestNilInjectorSafe: the disabled state decides nothing, everywhere.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if d := in.At(Cooperate); d != (Decision{}) {
		t.Fatalf("nil At = %+v", d)
	}
	if drop, fail := in.Inject(Alloc); drop || fail {
		t.Fatal("nil Inject decided something")
	}
	in.Install(Rule{Point: Alloc, Kind: Fail})
	if in.Stats() != nil || in.Fired(Alloc) != 0 || in.Seed() != 0 {
		t.Fatal("nil accessors not zero")
	}
}

// TestStats: hits and fires are accounted per point.
func TestStats(t *testing.T) {
	in := New(5)
	in.Install(Rule{Point: Alloc, Kind: Fail})
	for i := 0; i < 10; i++ {
		in.At(Alloc)
	}
	in.At(Cooperate) // no rules: hit but never fires
	var alloc, coop *PointStats
	stats := in.Stats()
	for i := range stats {
		switch stats[i].Point {
		case Alloc:
			alloc = &stats[i]
		case Cooperate:
			coop = &stats[i]
		}
	}
	if alloc == nil || alloc.Hits != 10 || alloc.Fired != 10 {
		t.Fatalf("alloc stats = %+v", alloc)
	}
	if coop == nil || coop.Hits != 1 || coop.Fired != 0 {
		t.Fatalf("cooperate stats = %+v", coop)
	}
}

// TestConcurrentHitsRace: concurrent hits at the same and different
// points are safe (run under -race by make race).
func TestConcurrentHitsRace(t *testing.T) {
	in := New(6)
	in.Install(Rule{Point: Cooperate, Kind: Drop, P: 0.5})
	in.Install(Rule{Point: Alloc, Kind: Fail, P: 0.5, Count: 100})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				in.At(Cooperate)
				in.Inject(Alloc)
			}
		}()
	}
	wg.Wait()
	if fired := in.Fired(Alloc); fired != 100 {
		t.Fatalf("count-100 rule fired %d times under concurrency", fired)
	}
}

// TestPointAndKindStrings: names stay stable for logs and reports.
func TestPointAndKindStrings(t *testing.T) {
	want := map[Point]string{
		HandshakePost: "handshake-post",
		HandshakeAck:  "handshake-ack",
		Cooperate:     "cooperate",
		TraceSteal:    "trace-steal",
		SweepShard:    "sweep-shard",
		Alloc:         "alloc",
		SinkWrite:     "sink-write",
		BarrierFlush:  "barrier-flush",
		CardScan:      "card-scan",
		TraceDrain:    "trace-drain",
		RemsetDrain:   "remset-drain",
		HandshakeWait: "handshake-wait",
		AckWait:       "ack-wait",
	}
	if len(want) != int(NumPoints) {
		t.Fatalf("test covers %d points, NumPoints = %d", len(want), NumPoints)
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	for k, s := range map[Kind]string{Delay: "delay", Drop: "drop", Fail: "fail"} {
		if k.String() != s {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), s)
		}
	}
}
