// Package fault names the runtime's coordination seams and provides
// two consumers for them.
//
// The first is the deterministic, seeded fault-injection layer for the
// collector's chaos testing: named injection points are threaded
// through the runtime's coordination seams (handshake posting and
// acknowledgement, safe-point cooperation, trace-worker stealing, sweep
// shards, allocation, trace-sink writes, batched-barrier buffer
// flushes, card and remembered-set scans); an armed Injector decides at
// each hit whether to delay the caller, drop the operation once, or
// fail it, with a configured probability drawn from a reproducible
// per-point PRNG stream.
//
// The second is the Scheduler interface: the same points double as the
// schedulable steps of a deterministic virtual scheduler
// (internal/modelcheck), which parks the calling goroutine at every
// point and replays systematically enumerated interleavings. Each call
// site in the collector is one combined injection/yield point — the
// production build holds a nil Injector and a nil Scheduler and pays
// two pointer comparisons per site.
//
// Determinism: every injection point owns its own PRNG stream, derived
// from the campaign seed and the point's identity. The k-th hit at a
// point therefore always receives the same decision for the same seed
// and rule set, regardless of how the scheduler interleaves the other
// points — re-running a campaign with the same seed reproduces the
// identical per-point fault schedule.
//
// Cost when disabled: the collector holds a nil *Injector and every
// call site guards with a single pointer comparison, so an unarmed
// build pays nothing on its hot paths. All Injector methods are also
// nil-receiver safe and return zero decisions.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Point names one injection point in the runtime.
type Point int

const (
	// HandshakePost fires in the collector before it publishes a new
	// handshake status (delay only: the status store itself must
	// happen, so Drop/Fail rules are coerced to their Delay).
	HandshakePost Point = iota

	// HandshakeAck fires in the collector at the start of every
	// trace-termination acknowledgement round (delay only).
	HandshakeAck

	// Cooperate fires in a mutator's safe point when it has a pending
	// handshake or acknowledgement to respond to: Delay stalls the
	// mutator before it responds (the stalled-mutator scenario the
	// watchdog must surface); Drop and Fail skip this response — the
	// mutator answers at its next safe point instead.
	Cooperate

	// TraceSteal fires when a dry trace worker is about to scan its
	// victims: Delay simulates a slow worker, Drop/Fail skip one
	// steal scan.
	TraceSteal

	// SweepShard fires once per claimed sweep chunk (delay only:
	// skipping a shard would leave dead cells unreclaimed and stale
	// block hints behind).
	SweepShard

	// Alloc fires in the allocation path: Drop/Fail simulate a
	// transient out-of-memory, driving the mutator into the
	// full-collection retry path; Delay stalls the allocation.
	Alloc

	// SinkWrite fires when the tracer drains its rings into the
	// configured sink: Drop/Fail simulate a sink write failure (the
	// drained events are counted as dropped and the degradation
	// counter advances), Delay a slow sink.
	SinkWrite

	// BarrierFlush fires when a batched-barrier mutator drains its
	// deferred shade/card buffers — at a safe-point response, on a
	// full buffer, or at detach (delay only: a dropped flush followed
	// by an acknowledgement would un-publish gray objects the trace
	// termination check depends on, so Drop/Fail rules are coerced to
	// their Delay).
	BarrierFlush

	// CardScan fires once per dirty card inside the §7.2 window: the
	// card's mark has been cleared (step 1) but its objects are not yet
	// scanned (step 2). Delay-only; armed only when a scheduler or
	// injector is installed, so the production scan loop stays branch-
	// free per card.
	CardScan

	// TraceDrain fires once per object the serial trace pops from the
	// collector's mark stack (delay only). Like CardScan it is guarded
	// by an armed-seam check hoisted out of the drain loop.
	TraceDrain

	// RemsetDrain fires once per remembered-set buffer the collector
	// drains at the start of a remembered-set partial collection
	// (delay only) — the inter-generational re-scan ordering seam.
	RemsetDrain

	// HandshakeWait and AckWait are scheduler wait points, not
	// injection points: the collector parks on them while waiting for
	// every mutator to respond to a posted status or acknowledgement
	// epoch. The chaos injector never evaluates them (the real
	// scheduler's spin loop has its own watchdog and backoff); the
	// virtual scheduler blocks the collector actor on them until its
	// readiness predicate holds.
	HandshakeWait
	AckWait

	// NumPoints is the number of injection points.
	NumPoints
)

func (p Point) String() string {
	switch p {
	case HandshakePost:
		return "handshake-post"
	case HandshakeAck:
		return "handshake-ack"
	case Cooperate:
		return "cooperate"
	case TraceSteal:
		return "trace-steal"
	case SweepShard:
		return "sweep-shard"
	case Alloc:
		return "alloc"
	case SinkWrite:
		return "sink-write"
	case BarrierFlush:
		return "barrier-flush"
	case CardScan:
		return "card-scan"
	case TraceDrain:
		return "trace-drain"
	case RemsetDrain:
		return "remset-drain"
	case HandshakeWait:
		return "handshake-wait"
	case AckWait:
		return "ack-wait"
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// Scheduler is the deterministic-scheduler seam. When the collector is
// configured with one (gc.Config.Scheduler), every injection point
// becomes a schedulable step: the calling actor announces the point it
// reached and blocks until the scheduler resumes it with a Decision,
// and the collector's wait loops block on Wait instead of spinning.
//
// The contract assumed by the collector:
//
//   - Step may block the calling goroutine arbitrarily long; the
//     returned Decision is interpreted exactly like an Injector
//     decision at the same point (Drop/Fail are honored only where the
//     injector honors them).
//   - Wait blocks until ready() holds or the run is being abandoned; a
//     false return tells the caller to give up the wait, which the
//     collector maps onto its existing close-abort path (abortCycle).
//     ready must be safe to call from the scheduler's goroutine.
//
// Implementations serialize execution — at most one actor runs between
// parks — so neither method needs an actor identity parameter: the
// scheduler knows whom it resumed.
type Scheduler interface {
	Step(p Point) Decision
	Wait(p Point, ready func() bool) bool
}

// Kind is what a rule does to the operation when it fires.
type Kind int

const (
	// Delay pauses the caller for Rule.Delay before the operation
	// proceeds.
	Delay Kind = iota

	// Drop suppresses the operation this time; the caller skips it
	// and retries through its normal path (a missed safe-point
	// response, a skipped steal scan).
	Drop

	// Fail makes the operation report failure to its caller (a
	// transient allocation failure, a sink write error).
	Fail
)

func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Fail:
		return "fail"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule arms one behavior at one injection point.
type Rule struct {
	// Point is the injection point the rule applies to.
	Point Point

	// Kind is the injected behavior.
	Kind Kind

	// P is the per-hit firing probability in (0, 1]; 0 is treated as
	// "always" (1.0) so the zero value of a partially filled rule
	// still does something.
	P float64

	// Delay is the injected pause for Delay rules (and the fallback
	// behavior at points that coerce Drop/Fail to a delay).
	Delay time.Duration

	// Count bounds how many times the rule fires before it disarms;
	// 0 means unlimited. Count == 1 is the "drop-once" /
	// "fail-once" form.
	Count int
}

// Decision is the merged outcome of all rules that fired at one hit.
type Decision struct {
	// Delay is the total injected pause the caller should apply (the
	// Inject convenience sleeps it for you).
	Delay time.Duration

	// Drop tells the caller to skip the operation this time.
	Drop bool

	// Fail tells the caller to fail the operation.
	Fail bool
}

// PointStats is one injection point's campaign accounting.
type PointStats struct {
	Point Point
	Hits  int64 // times the point was evaluated
	Fired int64 // times at least one rule fired
}

// pointState is one point's rules and PRNG stream. Each point has its
// own lock so concurrent hits at different points never contend, and
// its own rand stream so decisions depend only on (seed, point, hit
// index within the point), never on cross-point interleaving.
type pointState struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	hits  int64
	fired int64
}

// Injector holds the armed rules for one chaos campaign. The zero
// value is not usable; construct with New. A nil *Injector is the
// disabled state: every method is nil-safe and decides nothing.
type Injector struct {
	seed   int64
	points [NumPoints]pointState
}

// New returns an injector whose per-point streams derive from seed.
// No rules are armed yet; Install them.
func New(seed int64) *Injector {
	in := &Injector{seed: seed}
	for p := range in.points {
		// splitmix-style per-point seed derivation: points must not
		// share a stream, or the schedule at one point would depend
		// on how often another point is hit.
		s := uint64(seed) + uint64(p+1)*0x9e3779b97f4a7c15
		s ^= s >> 30
		s *= 0xbf58476d1ce4e5b9
		s ^= s >> 27
		in.points[p].rng = rand.New(rand.NewSource(int64(s)))
	}
	return in
}

// Seed returns the campaign seed the injector was built from.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Install arms one rule. Rules at the same point are evaluated in
// installation order on every hit.
func (in *Injector) Install(r Rule) {
	if in == nil {
		return
	}
	if r.Point < 0 || r.Point >= NumPoints {
		panic(fmt.Sprintf("fault: rule for unknown point %d", int(r.Point)))
	}
	if r.P == 0 {
		r.P = 1
	}
	st := &in.points[r.Point]
	st.mu.Lock()
	st.rules = append(st.rules, r)
	st.mu.Unlock()
}

// At evaluates point p for one hit and returns the merged decision of
// every rule that fired. Nil-safe: a nil injector decides nothing.
func (in *Injector) At(p Point) Decision {
	var d Decision
	if in == nil {
		return d
	}
	st := &in.points[p]
	st.mu.Lock()
	st.hits++
	fired := false
	kept := st.rules[:0]
	for _, r := range st.rules {
		hit := r.P >= 1 || st.rng.Float64() < r.P
		if hit {
			fired = true
			switch r.Kind {
			case Delay:
				d.Delay += r.Delay
			case Drop:
				d.Drop = true
			case Fail:
				d.Fail = true
			}
			if r.Count > 0 {
				r.Count--
				if r.Count == 0 {
					continue // exhausted: disarm
				}
			}
		}
		kept = append(kept, r)
	}
	st.rules = kept
	if fired {
		st.fired++
	}
	st.mu.Unlock()
	return d
}

// Inject is the call-site convenience: it evaluates point p, sleeps
// any injected delay, and reports whether the operation should be
// dropped or failed. Nil-safe.
func (in *Injector) Inject(p Point) (drop, fail bool) {
	if in == nil {
		return false, false
	}
	d := in.At(p)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	return d.Drop, d.Fail
}

// Stats returns per-point hit/fire counts for every point that was
// evaluated or armed at least once.
func (in *Injector) Stats() []PointStats {
	if in == nil {
		return nil
	}
	var out []PointStats
	for p := range in.points {
		st := &in.points[p]
		st.mu.Lock()
		if st.hits > 0 || len(st.rules) > 0 || st.fired > 0 {
			out = append(out, PointStats{Point: Point(p), Hits: st.hits, Fired: st.fired})
		}
		st.mu.Unlock()
	}
	return out
}

// Fired returns how many hits at p fired at least one rule.
func (in *Injector) Fired(p Point) int64 {
	if in == nil {
		return 0
	}
	st := &in.points[p]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fired
}
