package heap

// Stats is a point-in-time census of the heap's block and object
// population, for diagnostics (cmd/gctrace) and fragmentation analysis.
// Taking a census walks every block; objects allocated or freed
// concurrently may be counted or missed, so treat the numbers as a
// snapshot, exact only at quiescent points.
type Stats struct {
	// Blocks by disposition.
	FreeBlocks  int
	ClassBlocks int
	LargeBlocks int

	// Object census.
	Objects      int
	ObjectBytes  int
	FreeCells    int // blue cells inside assigned blocks
	FreeCellByte int

	// PerClass[i] describes size class i.
	PerClass [NumClasses]ClassStats

	// ColorCounts indexes by Color (Blue..Black); Blue counts free
	// cells in assigned blocks.
	ColorCounts [5]int

	// Alloc is the tiered allocator's counter snapshot (shard
	// contention, refills, flushes, per-shard free/cached cells),
	// taken at the same census. The shard freeCells/cached counters
	// are the allocator's own accounting; the census FreeCells above
	// is an independent color walk — at quiescence the walk equals
	// Alloc.FreeCells + Alloc.CachedCells (cached cells are blue too).
	Alloc AllocStats
}

// ClassStats is the census of one size class.
type ClassStats struct {
	CellSize  int
	Blocks    int
	Live      int
	FreeCells int
}

// Utilization reports live bytes as a fraction of bytes in assigned
// blocks (1 = no internal fragmentation or free cells at all).
func (s Stats) Utilization() float64 {
	assigned := (s.ClassBlocks + s.LargeBlocks) * BlockSize
	if assigned == 0 {
		return 0
	}
	return float64(s.ObjectBytes) / float64(assigned)
}

// Census walks the heap and returns its population snapshot.
func (h *Heap) Census() Stats {
	var s Stats
	s.Alloc = h.AllocStats()
	for c := 0; c < NumClasses; c++ {
		s.PerClass[c].CellSize = classSizes[c]
	}
	for b := 1; b < h.nBlocks; b++ {
		class := h.blocks[b].class.Load()
		switch class {
		case blockFree:
			s.FreeBlocks++
		case blockLargeCont:
			s.LargeBlocks++
		case blockLargeHead:
			s.LargeBlocks++
			addr := Addr(b) * BlockSize
			if col := h.Color(addr); col != Blue {
				size := h.SizeOf(addr)
				s.Objects++
				s.ObjectBytes += size
				s.ColorCounts[col]++
			}
		default:
			s.ClassBlocks++
			cs := &s.PerClass[class]
			cs.Blocks++
			cell := classSizes[class]
			base := Addr(b) * BlockSize
			for off := 0; off+cell <= BlockSize; off += cell {
				col := h.Color(base + Addr(off))
				s.ColorCounts[col]++
				if col == Blue {
					cs.FreeCells++
					s.FreeCells++
					s.FreeCellByte += cell
				} else {
					cs.Live++
					s.Objects++
					s.ObjectBytes += cell
				}
			}
		}
	}
	return s
}
