package heap

import "testing"

func TestCensusEmptyHeap(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	s := h.Census()
	if s.Objects != 0 || s.ClassBlocks != 0 || s.LargeBlocks != 0 {
		t.Errorf("empty census = %+v", s)
	}
	if s.FreeBlocks != h.NumBlocks()-1 {
		t.Errorf("free blocks = %d, want %d", s.FreeBlocks, h.NumBlocks()-1)
	}
	if s.Utilization() != 0 {
		t.Errorf("utilization of empty heap = %v", s.Utilization())
	}
}

func TestCensusCountsObjects(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	for i := 0; i < 10; i++ {
		if _, err := h.Alloc(&c, 0, 48, White); err != nil {
			t.Fatal(err)
		}
	}
	big, err := h.Alloc(&c, 0, 2*BlockSize, Black)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Census()
	if s.Objects != 11 {
		t.Errorf("objects = %d, want 11", s.Objects)
	}
	if s.ObjectBytes != 10*48+2*BlockSize {
		t.Errorf("object bytes = %d", s.ObjectBytes)
	}
	if s.ColorCounts[White] != 10 || s.ColorCounts[Black] != 1 {
		t.Errorf("colors = %v", s.ColorCounts)
	}
	if s.LargeBlocks != 2 || s.ClassBlocks != 1 {
		t.Errorf("blocks = %d large, %d class", s.LargeBlocks, s.ClassBlocks)
	}
	cls, _ := ClassFor(48)
	if s.PerClass[cls].Live != 10 {
		t.Errorf("class live = %d", s.PerClass[cls].Live)
	}
	if s.PerClass[cls].FreeCells != CellsPerBlock(cls)-10 {
		t.Errorf("class free cells = %d", s.PerClass[cls].FreeCells)
	}
	if u := s.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	_ = big
}

func TestCensusAfterFree(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 0, 48, Yellow)
	b, _ := h.Alloc(&c, 0, 48, Yellow)
	h.FreeCell(a)
	s := h.Census()
	if s.Objects != 1 {
		t.Errorf("objects after free = %d, want 1", s.Objects)
	}
	if s.FreeCells == 0 {
		t.Error("no free cells counted")
	}
	_ = b
}
