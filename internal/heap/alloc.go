package heap

import "sync/atomic"

// Cache is a per-mutator allocation cache: one free-cell list per size
// class, threaded through the first word of each (blue) cell. It is the
// stand-in for the DLG thread-local allocation mechanism the paper
// mentions in §7: the common allocation path takes no lock — and no
// atomic read-modify-write either: the accounting for popped cells is
// deferred in pendBlock/pendN and published in batches (see
// publishAllocRun), so the steady-state cost per allocation is plain
// loads and stores plus the object-initialization barrier.
type Cache struct {
	head  [NumClasses]Addr
	count [NumClasses]int
	// The pending allocation run: pendN[c] cells of class c were popped
	// from block pendBlock[c] and not yet folded into the shard and
	// block counters. Publication happens when the pop stream crosses a
	// block boundary, at refill, at Flush, and on demand via
	// PublishAllocs. Block 0 never holds cells, so the zero value means
	// "no run open".
	pendBlock [NumClasses]uint32
	pendN     [NumClasses]int32
}

// refillBatch bounds how many free cells one refill moves from a block's
// free list into a mutator cache.
const refillBatch = 64

// Alloc allocates an object with the given number of pointer slots and a
// total payload of at least size bytes (the header is added on top), and
// colors it with allocColor — the "create" routine of Figure 1. The
// pointer slots are zeroed. It returns ErrOutOfMemory when the heap
// cannot satisfy the request even from a fresh block; the caller is
// expected to force a collection and retry.
func (h *Heap) Alloc(c *Cache, slots int, size int, allocColor Color) (Addr, error) {
	addr, err := h.AllocBlue(c, slots, size)
	if err != nil {
		return 0, err
	}
	h.SetColor(addr, allocColor)
	return addr, nil
}

// AllocBlue allocates and initializes a cell but leaves it blue; the
// caller assigns the final color. Used by the toggle-free create
// protocol, whose color depends on the sweep position: a blue cell is
// invisible to a concurrently running sweep, so the window between
// allocation and coloring is safe.
func (h *Heap) AllocBlue(c *Cache, slots int, size int) (Addr, error) {
	need := HeaderBytes + slots*WordBytes
	if size < need {
		size = need
	}
	class, cell := ClassFor(size)
	if class < 0 {
		return h.allocLarge(slots, cell)
	}
	if c.count[class] == 0 {
		if err := h.refill(c, class); err != nil {
			return 0, err
		}
	}
	addr := c.head[class]
	c.head[class] = atomic.LoadUint32(&h.mem[addr/WordBytes])
	c.count[class]--
	if b := addr / BlockSize; b != c.pendBlock[class] {
		h.publishAllocRun(c, class, b)
	}
	c.pendN[class]++
	h.initObject(addr, slots)
	return addr, nil
}

// publishAllocRun folds the cache's pending allocation run for class —
// pendN cells popped from block pendBlock since the last publication —
// into the shared counters, then restarts the run at newBlock. The
// block and shard counters move by the same amount in one publication,
// so the cached-vs-blocks reconcile holds at every publication
// boundary; the allocation totals simply lag the true values by the
// open runs (at most one block's worth of cells per class per cache)
// until the next refill, Flush or PublishAllocs.
func (h *Heap) publishAllocRun(c *Cache, class int, newBlock uint32) {
	if n := c.pendN[class]; n != 0 {
		h.blocks[c.pendBlock[class]].cached.Add(-n)
		s := h.shardFor(class)
		s.cached.Add(-int64(n))
		s.allocatedBytes.Add(int64(n) * int64(classSizes[class]))
		s.allocatedObjects.Add(int64(n))
		c.pendN[class] = 0
	}
	c.pendBlock[class] = newBlock
}

// PublishAllocs folds all of the cache's pending allocation accounting
// into the shard and block counters without returning any cells. Refill
// and Flush publish implicitly; callers that need the global counters
// exact while keeping the cache warm — the verifier, tests asserting on
// AllocatedBytes — call this. The cache's owner must not be allocating
// concurrently.
func (h *Heap) PublishAllocs(c *Cache) {
	for class := 0; class < NumClasses; class++ {
		h.publishAllocRun(c, class, 0)
	}
}

// initObject prepares a blue cell as a new object, leaving it blue.
// Order matters: the metadata and zeroed slots must be published before
// the caller's color store takes the cell out of blue, because the
// collector reads the color first (acquire) and only then the metadata
// and slots. Accounting is the caller's job (the counter depends on the
// tier the cell came from).
func (h *Heap) initObject(addr Addr, slots int) {
	g := addr / Granule
	atomic.StoreUint32(&h.slotsOf[g], uint32(slots))
	h.ages[g] = 0
	base := slotIndex(addr, 0)
	for i := 0; i < slots; i++ {
		atomic.StoreUint32(&h.mem[base+i], 0)
	}
}

// refill moves up to refillBatch free cells of the class into the cache,
// formatting a fresh block if no partially free block exists. Only the
// class's shard lock is held for list surgery; the page lock is taken
// briefly inside takeFreeBlock when a new block is needed.
func (h *Heap) refill(c *Cache, class int) error {
	s := h.shardFor(class)
	h.publishAllocRun(c, class, 0)
	s.lock()
	defer s.unlock()
	s.refills.Add(1)
	for {
		// Prefer a block that already has free cells.
		list := h.partial[class]
		if n := len(list); n > 0 {
			b := list[n-1]
			bm := &h.blocks[b]
			taken := h.takeCells(c, class, s, bm)
			if bm.freeCells == 0 {
				h.partial[class] = list[:n-1]
				bm.inPartial = false
			}
			if taken > 0 {
				return nil
			}
			continue
		}
		// Otherwise format a fresh block for this class.
		b, ok := h.takeFreeBlock(class)
		if !ok {
			return ErrOutOfMemory
		}
		h.formatBlock(b, class, s)
		h.partial[class] = append(h.partial[class], b)
		h.blocks[b].inPartial = true
	}
}

// takeCells moves up to refillBatch cells from the block's free list into
// the cache. Caller holds the class shard lock s.
func (h *Heap) takeCells(c *Cache, class int, s *centralShard, bm *blockMeta) int {
	taken := 0
	for bm.freeCells > 0 && taken < refillBatch {
		addr := bm.freeHead
		bm.freeHead = atomic.LoadUint32(&h.mem[addr/WordBytes])
		bm.freeCells--
		atomic.StoreUint32(&h.mem[addr/WordBytes], c.head[class])
		c.head[class] = addr
		taken++
	}
	c.count[class] += taken
	bm.cached.Add(int32(taken))
	s.cached.Add(int64(taken))
	s.freeCells.Add(-int64(taken))
	return taken
}

// takeFreeBlock pops one unassigned block from the page pool and stamps
// it with its destination class while still under the page lock: the
// large-object scan (findRun, also under the page lock) must never see
// a block that is neither in the free pool nor assigned, or it could
// hand the same block to two owners. Caller holds the class shard lock
// (shard → page is the lock order).
func (h *Heap) takeFreeBlock(class int) (uint32, bool) {
	p := &h.pages
	p.lock()
	defer p.unlock()
	n := len(p.freeBlocks)
	if n == 0 {
		return 0, false
	}
	b := p.freeBlocks[n-1]
	p.freeBlocks = p.freeBlocks[:n-1]
	h.blocks[b].class.Store(int32(class))
	return b, true
}

// formatBlock carves a block already stamped with the class into blue
// cells linked into the block's free list. Caller holds the class shard
// lock s; the block is not yet on any partial list, so nothing else can
// touch its cells.
func (h *Heap) formatBlock(b uint32, class int, s *centralShard) {
	bm := &h.blocks[b]
	bm.freeHead = 0
	bm.freeCells = 0
	cell := classSizes[class]
	base := b * BlockSize
	for i := BlockSize/cell - 1; i >= 0; i-- {
		addr := base + uint32(i*cell)
		h.SetColor(addr, Blue)
		atomic.StoreUint32(&h.mem[addr/WordBytes], bm.freeHead)
		bm.freeHead = addr
		bm.freeCells++
	}
	s.freeCells.Add(int64(bm.freeCells))
}

// allocLarge allocates an object spanning whole blocks, leaving it
// blue. size is already rounded to a granule multiple.
func (h *Heap) allocLarge(slots, size int) (Addr, error) {
	n := (size + BlockSize - 1) / BlockSize
	p := &h.pages
	p.lock()
	start := h.findRun(n)
	if start < 0 {
		p.unlock()
		return 0, ErrOutOfMemory
	}
	h.blocks[start].class.Store(blockLargeHead)
	h.blocks[start].nBlocks = uint32(n)
	for i := 1; i < n; i++ {
		h.blocks[start+i].class.Store(blockLargeCont)
	}
	h.removeFreeBlocks(start, n)
	p.unlock()

	addr := Addr(start) * BlockSize
	atomic.StoreUint32(&h.largeSize[addr/Granule], uint32(n*BlockSize))
	h.initObject(addr, slots)
	p.largeBytes.Add(int64(n * BlockSize))
	p.largeObjects.Add(1)
	return addr, nil
}

// findRun locates n contiguous free blocks, returning the first index or
// -1. Caller holds the page lock. Linear scan: the heap has at most a
// few thousand blocks and large allocations are rare.
func (h *Heap) findRun(n int) int {
	run := 0
	for b := 1; b < h.nBlocks; b++ {
		if h.blocks[b].class.Load() == blockFree {
			run++
			if run == n {
				return b - n + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// removeFreeBlocks deletes blocks [start, start+n) from the free stack.
// Caller holds the page lock.
func (h *Heap) removeFreeBlocks(start, n int) {
	out := h.pages.freeBlocks[:0]
	for _, b := range h.pages.freeBlocks {
		if int(b) < start || int(b) >= start+n {
			out = append(out, b)
		}
	}
	h.pages.freeBlocks = out
}

// blockChain is one block's worth of cache cells being returned by a
// flush: a pre-threaded sublist that splices into the block's free list
// with two stores.
type blockChain struct {
	block uint32
	head  Addr
	tail  Addr
	n     int32
}

// Flush returns all cells held in the cache to their blocks' free lists.
// Called when a mutator detaches so its cached cells can be reused and
// their blocks eventually reclaimed. Per class, the cells are bucketed
// into per-block chains without any lock — the cells are private to the
// cache, so rethreading their link words races with nothing — and then
// spliced under one shard lock acquisition: O(blocks) lock work instead
// of O(cells).
func (h *Heap) Flush(c *Cache) {
	for class := 0; class < NumClasses; class++ {
		h.publishAllocRun(c, class, 0)
		if c.count[class] > 0 {
			h.flushClass(c, class)
		}
	}
}

func (h *Heap) flushClass(c *Cache, class int) {
	var chains []blockChain
	for c.count[class] > 0 {
		addr := c.head[class]
		c.head[class] = atomic.LoadUint32(&h.mem[addr/WordBytes])
		c.count[class]--
		b := addr / BlockSize
		var ch *blockChain
		for i := range chains {
			if chains[i].block == b {
				ch = &chains[i]
				break
			}
		}
		if ch == nil {
			chains = append(chains, blockChain{block: b, head: addr, tail: addr, n: 1})
			continue
		}
		atomic.StoreUint32(&h.mem[addr/WordBytes], ch.head)
		ch.head = addr
		ch.n++
	}
	total := int64(0)
	s := h.shardFor(class)
	s.lock()
	s.flushes.Add(1)
	for i := range chains {
		ch := &chains[i]
		bm := &h.blocks[ch.block]
		atomic.StoreUint32(&h.mem[ch.tail/WordBytes], bm.freeHead)
		bm.freeHead = ch.head
		bm.freeCells += ch.n
		bm.cached.Add(-ch.n)
		if !bm.inPartial {
			h.partial[class] = append(h.partial[class], ch.block)
			bm.inPartial = true
		}
		total += int64(ch.n)
	}
	s.freeCells.Add(total)
	s.cached.Add(-total)
	s.unlock()
}

// FreeCell releases one dead cell during sweep: the object is recolored
// blue and threaded back onto its block's free list. Only the collector
// calls it, for cells whose color was the clear color, so it can never
// race with an allocation of the same cell.
//
// The returned bytes are the cell size (what the paper's "space freed"
// numbers count).
func (h *Heap) FreeCell(addr Addr) int {
	b := addr / BlockSize
	bm := &h.blocks[b]
	class := int(bm.class.Load())
	if class == int(blockLargeHead) {
		return h.freeLarge(addr)
	}
	size := classSizes[class]
	h.SetColor(addr, Blue)
	s := h.shardFor(class)
	s.lock()
	atomic.StoreUint32(&h.mem[addr/WordBytes], bm.freeHead)
	bm.freeHead = addr
	bm.freeCells++
	if !bm.inPartial {
		h.partial[class] = append(h.partial[class], b)
		bm.inPartial = true
	}
	s.freeCells.Add(1)
	s.unlock()
	s.allocatedBytes.Add(-int64(size))
	s.allocatedObjects.Add(-1)
	return size
}

// FreeBatch frees a batch of dead cells with one shard lock acquisition
// per size class present in the batch. Large objects in the batch are
// freed individually. It returns the total bytes freed.
func (h *Heap) FreeBatch(addrs []Addr) int {
	total := 0
	var larges []Addr
	var byClass [NumClasses][]Addr
	for _, addr := range addrs {
		class := h.blocks[addr/BlockSize].class.Load()
		if class == blockLargeHead {
			larges = append(larges, addr)
			continue
		}
		byClass[class] = append(byClass[class], addr)
	}
	for class, list := range byClass {
		if len(list) > 0 {
			total += h.freeClassBatch(class, list)
		}
	}
	for _, addr := range larges {
		total += h.freeLarge(addr)
	}
	return total
}

// freeClassBatch threads a batch of dead cells of one class back onto
// their blocks' free lists under a single shard lock acquisition.
func (h *Heap) freeClassBatch(class int, list []Addr) int {
	size := classSizes[class]
	s := h.shardFor(class)
	s.lock()
	for _, addr := range list {
		b := addr / BlockSize
		bm := &h.blocks[b]
		h.SetColor(addr, Blue)
		atomic.StoreUint32(&h.mem[addr/WordBytes], bm.freeHead)
		bm.freeHead = addr
		bm.freeCells++
		if !bm.inPartial {
			h.partial[class] = append(h.partial[class], b)
			bm.inPartial = true
		}
	}
	s.freeCells.Add(int64(len(list)))
	s.unlock()
	s.allocatedBytes.Add(-int64(size * len(list)))
	s.allocatedObjects.Add(-int64(len(list)))
	return size * len(list)
}

// freeLarge returns a large object's blocks to the free pool.
func (h *Heap) freeLarge(addr Addr) int {
	h.SetColor(addr, Blue)
	b := int(addr / BlockSize)
	p := &h.pages
	p.lock()
	n := int(h.blocks[b].nBlocks)
	size := n * BlockSize
	for i := 0; i < n; i++ {
		h.blocks[b+i].class.Store(blockFree)
		h.blocks[b+i].nBlocks = 0
		p.freeBlocks = append(p.freeBlocks, uint32(b+i))
	}
	p.unlock()
	p.largeBytes.Add(-int64(size))
	p.largeObjects.Add(-1)
	return size
}

// ReclaimEmptyBlocks returns fully free small-object blocks (no live
// cells, none cached) to the free pool so another size class can reuse
// them. The collector calls it at the end of sweep.
//
// Retirement is two-phase to respect the invariant that class
// transitions happen only under the page lock: under each shard lock
// the block is stripped from its partial list and its free list reset
// (it then looks like a fully allocated block with no free cells —
// harmless, nothing can allocate from or free into it); the blockFree
// stamp and free-pool push happen under the page lock afterwards.
func (h *Heap) ReclaimEmptyBlocks() int {
	var freed []uint32
	for class := 0; class < NumClasses; class++ {
		s := h.shardFor(class)
		s.lock()
		cells := int32(CellsPerBlock(class))
		out := h.partial[class][:0]
		removed := int64(0)
		for _, b := range h.partial[class] {
			bm := &h.blocks[b]
			if bm.freeCells == cells && bm.cached.Load() == 0 {
				bm.freeHead = 0
				bm.freeCells = 0
				bm.inPartial = false
				freed = append(freed, b)
				removed += int64(cells)
			} else {
				out = append(out, b)
			}
		}
		h.partial[class] = out
		s.freeCells.Add(-removed)
		s.unlock()
	}
	if len(freed) > 0 {
		p := &h.pages
		p.lock()
		for _, b := range freed {
			h.blocks[b].class.Store(blockFree)
			p.freeBlocks = append(p.freeBlocks, b)
		}
		p.unlock()
	}
	return len(freed)
}

// FreeBlockCount reports how many unassigned blocks remain.
func (h *Heap) FreeBlockCount() int {
	h.pages.lock()
	defer h.pages.unlock()
	return len(h.pages.freeBlocks)
}
