package heap

import "sync/atomic"

// Cache is a per-mutator allocation cache: one free-cell list per size
// class, threaded through the first word of each (blue) cell. It is the
// stand-in for the DLG thread-local allocation mechanism the paper
// mentions in §7: the common allocation path takes no lock.
type Cache struct {
	head  [NumClasses]Addr
	count [NumClasses]int
}

// refillBatch bounds how many free cells one refill moves from a block's
// free list into a mutator cache.
const refillBatch = 64

// Alloc allocates an object with the given number of pointer slots and a
// total payload of at least size bytes (the header is added on top), and
// colors it with allocColor — the "create" routine of Figure 1. The
// pointer slots are zeroed. It returns ErrOutOfMemory when the heap
// cannot satisfy the request even from a fresh block; the caller is
// expected to force a collection and retry.
func (h *Heap) Alloc(c *Cache, slots int, size int, allocColor Color) (Addr, error) {
	addr, err := h.AllocBlue(c, slots, size)
	if err != nil {
		return 0, err
	}
	h.SetColor(addr, allocColor)
	return addr, nil
}

// AllocBlue allocates and initializes a cell but leaves it blue; the
// caller assigns the final color. Used by the toggle-free create
// protocol, whose color depends on the sweep position: a blue cell is
// invisible to a concurrently running sweep, so the window between
// allocation and coloring is safe.
func (h *Heap) AllocBlue(c *Cache, slots int, size int) (Addr, error) {
	need := HeaderBytes + slots*WordBytes
	if size < need {
		size = need
	}
	class, cell := ClassFor(size)
	if class < 0 {
		return h.allocLarge(slots, cell)
	}
	if c.count[class] == 0 {
		if err := h.refill(c, class); err != nil {
			return 0, err
		}
	}
	addr := c.head[class]
	c.head[class] = atomic.LoadUint32(&h.mem[addr/WordBytes])
	c.count[class]--
	h.blocks[addr/BlockSize].cached.Add(-1)
	h.initObject(addr, slots, cell)
	return addr, nil
}

// initObject prepares a blue cell as a new object, leaving it blue.
// Order matters: the metadata and zeroed slots must be published before
// the caller's color store takes the cell out of blue, because the
// collector reads the color first (acquire) and only then the metadata
// and slots.
func (h *Heap) initObject(addr Addr, slots, size int) {
	g := addr / Granule
	atomic.StoreUint32(&h.slotsOf[g], uint32(slots))
	h.ages[g] = 0
	base := slotIndex(addr, 0)
	for i := 0; i < slots; i++ {
		atomic.StoreUint32(&h.mem[base+i], 0)
	}
	h.allocatedBytes.Add(int64(size))
	h.allocatedObjects.Add(1)
}

// refill moves up to refillBatch free cells of the class into the cache,
// formatting a fresh block if no partially free block exists.
func (h *Heap) refill(c *Cache, class int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		// Prefer a block that already has free cells.
		list := h.partial[class]
		if n := len(list); n > 0 {
			b := list[n-1]
			bm := &h.blocks[b]
			taken := h.takeCells(c, class, bm)
			if bm.freeCells == 0 {
				h.partial[class] = list[:n-1]
				bm.inPartial = false
			}
			if taken > 0 {
				return nil
			}
			continue
		}
		// Otherwise format a fresh block for this class.
		if len(h.freeBlocks) == 0 {
			return ErrOutOfMemory
		}
		b := h.freeBlocks[len(h.freeBlocks)-1]
		h.freeBlocks = h.freeBlocks[:len(h.freeBlocks)-1]
		h.formatBlock(b, class)
		h.partial[class] = append(h.partial[class], b)
		h.blocks[b].inPartial = true
	}
}

// takeCells moves up to refillBatch cells from the block's free list into
// the cache. Caller holds h.mu.
func (h *Heap) takeCells(c *Cache, class int, bm *blockMeta) int {
	taken := 0
	for bm.freeCells > 0 && taken < refillBatch {
		addr := bm.freeHead
		bm.freeHead = atomic.LoadUint32(&h.mem[addr/WordBytes])
		bm.freeCells--
		atomic.StoreUint32(&h.mem[addr/WordBytes], c.head[class])
		c.head[class] = addr
		taken++
	}
	c.count[class] += taken
	bm.cached.Add(int32(taken))
	return taken
}

// formatBlock carves a free block into blue cells of the class, linked
// into the block's free list. Caller holds h.mu.
func (h *Heap) formatBlock(b uint32, class int) {
	bm := &h.blocks[b]
	bm.class.Store(int32(class))
	bm.freeHead = 0
	bm.freeCells = 0
	cell := classSizes[class]
	base := b * BlockSize
	for i := BlockSize/cell - 1; i >= 0; i-- {
		addr := base + uint32(i*cell)
		h.SetColor(addr, Blue)
		atomic.StoreUint32(&h.mem[addr/WordBytes], bm.freeHead)
		bm.freeHead = addr
		bm.freeCells++
	}
}

// allocLarge allocates an object spanning whole blocks, leaving it
// blue. size is already rounded to a granule multiple.
func (h *Heap) allocLarge(slots, size int) (Addr, error) {
	n := (size + BlockSize - 1) / BlockSize
	h.mu.Lock()
	start := h.findRun(n)
	if start < 0 {
		h.mu.Unlock()
		return 0, ErrOutOfMemory
	}
	h.blocks[start].class.Store(blockLargeHead)
	h.blocks[start].nBlocks = uint32(n)
	for i := 1; i < n; i++ {
		h.blocks[start+i].class.Store(blockLargeCont)
	}
	h.removeFreeBlocks(start, n)
	h.mu.Unlock()

	addr := Addr(start) * BlockSize
	atomic.StoreUint32(&h.largeSize[addr/Granule], uint32(n*BlockSize))
	h.initObject(addr, slots, n*BlockSize)
	return addr, nil
}

// findRun locates n contiguous free blocks, returning the first index or
// -1. Caller holds h.mu. Linear scan: the heap has at most a few
// thousand blocks and large allocations are rare.
func (h *Heap) findRun(n int) int {
	run := 0
	for b := 1; b < h.nBlocks; b++ {
		if h.blocks[b].class.Load() == blockFree {
			run++
			if run == n {
				return b - n + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// removeFreeBlocks deletes blocks [start, start+n) from the free stack.
// Caller holds h.mu.
func (h *Heap) removeFreeBlocks(start, n int) {
	out := h.freeBlocks[:0]
	for _, b := range h.freeBlocks {
		if int(b) < start || int(b) >= start+n {
			out = append(out, b)
		}
	}
	h.freeBlocks = out
}

// Flush returns all cells held in the cache to their blocks' free lists.
// Called when a mutator detaches so its cached cells can be reused and
// their blocks eventually reclaimed.
func (h *Heap) Flush(c *Cache) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for class := 0; class < NumClasses; class++ {
		for c.count[class] > 0 {
			addr := c.head[class]
			c.head[class] = atomic.LoadUint32(&h.mem[addr/WordBytes])
			c.count[class]--
			b := addr / BlockSize
			bm := &h.blocks[b]
			atomic.StoreUint32(&h.mem[addr/WordBytes], bm.freeHead)
			bm.freeHead = addr
			bm.freeCells++
			bm.cached.Add(-1)
			if !bm.inPartial {
				h.partial[class] = append(h.partial[class], b)
				bm.inPartial = true
			}
		}
	}
}

// FreeCell releases one dead cell during sweep: the object is recolored
// blue and threaded back onto its block's free list. Only the collector
// calls it, for cells whose color was the clear color, so it can never
// race with an allocation of the same cell.
//
// The returned bytes are the cell size (what the paper's "space freed"
// numbers count).
func (h *Heap) FreeCell(addr Addr) int {
	b := addr / BlockSize
	bm := &h.blocks[b]
	class := bm.class.Load()
	if class == blockLargeHead {
		return h.freeLarge(addr)
	}
	size := classSizes[class]
	h.SetColor(addr, Blue)
	h.mu.Lock()
	atomic.StoreUint32(&h.mem[addr/WordBytes], bm.freeHead)
	bm.freeHead = addr
	bm.freeCells++
	if !bm.inPartial {
		h.partial[class] = append(h.partial[class], b)
		bm.inPartial = true
	}
	h.mu.Unlock()
	h.allocatedBytes.Add(-int64(size))
	h.allocatedObjects.Add(-1)
	return size
}

// freeLarge returns a large object's blocks to the free pool.
func (h *Heap) freeLarge(addr Addr) int {
	h.SetColor(addr, Blue)
	b := int(addr / BlockSize)
	h.mu.Lock()
	n := int(h.blocks[b].nBlocks)
	size := n * BlockSize
	for i := 0; i < n; i++ {
		h.blocks[b+i].class.Store(blockFree)
		h.blocks[b+i].nBlocks = 0
		h.freeBlocks = append(h.freeBlocks, uint32(b+i))
	}
	h.mu.Unlock()
	h.allocatedBytes.Add(-int64(size))
	h.allocatedObjects.Add(-1)
	return size
}

// ReclaimEmptyBlocks returns fully free small-object blocks (no live
// cells, none cached) to the free pool so another size class can reuse
// them. The collector calls it at the end of sweep.
func (h *Heap) ReclaimEmptyBlocks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	reclaimed := 0
	for class := 0; class < NumClasses; class++ {
		cells := int32(CellsPerBlock(class))
		out := h.partial[class][:0]
		for _, b := range h.partial[class] {
			bm := &h.blocks[b]
			if bm.freeCells == cells && bm.cached.Load() == 0 {
				bm.class.Store(blockFree)
				bm.freeHead = 0
				bm.freeCells = 0
				bm.inPartial = false
				h.freeBlocks = append(h.freeBlocks, b)
				reclaimed++
			} else {
				out = append(out, b)
			}
		}
		h.partial[class] = out
	}
	return reclaimed
}

// FreeBlockCount reports how many unassigned blocks remain.
func (h *Heap) FreeBlockCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.freeBlocks)
}
