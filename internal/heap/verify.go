package heap

import (
	"fmt"
	"sync/atomic"
)

// lockAll acquires every shard lock in index order, then the page lock —
// the canonical lock order — giving the caller a globally consistent
// view of all central free-list and block-pool state.
func (h *Heap) lockAll() {
	for i := range h.shards {
		h.shards[i].lock()
	}
	h.pages.lock()
}

func (h *Heap) unlockAll() {
	h.pages.unlock()
	for i := len(h.shards) - 1; i >= 0; i-- {
		h.shards[i].unlock()
	}
}

// CheckIntegrity audits the allocator's bookkeeping: block metadata,
// free-list structure, the blue-color discipline, and the per-shard
// freeCells counters (which must equal the sum of the block free lists
// they cover — the lists and counters only move under the shard locks,
// all of which are held). Cached-cell counters are only checked for
// non-negativity here: the allocation fast path defers its accounting
// in the mutator cache (cached counts read high, allocation totals read
// low — and transiently even negative when frees outrun an unpublished
// run — by the open runs), so they are exact only once every cache has
// published (see ReconcileCounters).
func (h *Heap) CheckIntegrity() error {
	h.lockAll()
	defer h.unlockAll()
	seenFree := make(map[uint32]bool, len(h.pages.freeBlocks))
	for _, b := range h.pages.freeBlocks {
		if int(b) <= 0 || int(b) >= h.nBlocks {
			return fmt.Errorf("heap: free block index %d out of range", b)
		}
		if seenFree[b] {
			return fmt.Errorf("heap: block %d appears twice in the free pool", b)
		}
		seenFree[b] = true
		if h.blocks[b].class.Load() != blockFree {
			return fmt.Errorf("heap: block %d in free pool but has class %d", b, h.blocks[b].class.Load())
		}
	}
	freeByShard := make([]int64, len(h.shards))
	for b := 1; b < h.nBlocks; b++ {
		bm := &h.blocks[b]
		switch class := bm.class.Load(); class {
		case blockFree:
			if !seenFree[uint32(b)] {
				return fmt.Errorf("heap: block %d marked free but not in free pool", b)
			}
		case blockLargeHead:
			n := int(bm.nBlocks)
			if n < 1 || b+n > h.nBlocks {
				return fmt.Errorf("heap: large object at block %d spans %d blocks out of range", b, n)
			}
			for i := 1; i < n; i++ {
				if h.blocks[b+i].class.Load() != blockLargeCont {
					return fmt.Errorf("heap: block %d should continue large object at %d", b+i, b)
				}
			}
		case blockLargeCont:
			// validated via its head
		default:
			if class < 0 || int(class) >= NumClasses {
				return fmt.Errorf("heap: block %d has invalid class %d", b, class)
			}
			if err := h.checkBlockFreeList(b, bm); err != nil {
				return err
			}
			freeByShard[int(class)%len(h.shards)] += int64(bm.freeCells)
		}
	}
	for i := range h.shards {
		s := &h.shards[i]
		if got := s.freeCells.Load(); got != freeByShard[i] {
			return fmt.Errorf("heap: shard %d freeCells counter %d, block lists hold %d", i, got, freeByShard[i])
		}
		if s.cached.Load() < 0 {
			return fmt.Errorf("heap: shard %d negative cached count %d", i, s.cached.Load())
		}
	}
	if h.pages.largeBytes.Load() < 0 || h.pages.largeObjects.Load() < 0 {
		return fmt.Errorf("heap: negative large-object accounting: %d bytes, %d objects",
			h.pages.largeBytes.Load(), h.pages.largeObjects.Load())
	}
	return nil
}

// ReconcileCounters cross-checks the shard cached counters against the
// per-block cached counts, and the shard allocation totals against a
// color census. It is exact only at quiescence (no mutators allocating,
// no sweep freeing) AND once every live cache has published its pending
// allocation runs — Flush and refill publish implicitly, PublishAllocs
// on demand. Tests and the collector's Verify (which publishes every
// registered mutator's cache first) call it at such points.
func (h *Heap) ReconcileCounters() error {
	cachedByShard := make([]int64, len(h.shards))
	for b := 1; b < h.nBlocks; b++ {
		bm := &h.blocks[b]
		if class := bm.class.Load(); class >= 0 {
			cachedByShard[int(class)%len(h.shards)] += int64(bm.cached.Load())
		}
	}
	for i := range h.shards {
		if got := h.shards[i].cached.Load(); got != cachedByShard[i] {
			return fmt.Errorf("heap: shard %d cached counter %d, blocks hold %d", i, got, cachedByShard[i])
		}
	}
	s := h.Census()
	if int64(s.ObjectBytes) != h.AllocatedBytes() {
		return fmt.Errorf("heap: allocated-bytes counters say %d, census says %d",
			h.AllocatedBytes(), s.ObjectBytes)
	}
	if int64(s.Objects) != h.AllocatedObjects() {
		return fmt.Errorf("heap: allocated-objects counters say %d, census says %d",
			h.AllocatedObjects(), s.Objects)
	}
	return nil
}

// checkBlockFreeList walks one block's free list. Caller holds the
// block's class shard lock.
func (h *Heap) checkBlockFreeList(b int, bm *blockMeta) error {
	class := int(bm.class.Load())
	cell := classSizes[class]
	count := int32(0)
	limit := int32(CellsPerBlock(class))
	for addr := bm.freeHead; addr != 0; {
		if int(addr)/BlockSize != b {
			return fmt.Errorf("heap: block %d free list escapes to address %#x", b, addr)
		}
		if int(addr)%BlockSize%cell != 0 {
			return fmt.Errorf("heap: block %d free list has misaligned cell %#x", b, addr)
		}
		if h.Color(addr) != Blue {
			return fmt.Errorf("heap: free cell %#x has color %v, want blue", addr, h.Color(addr))
		}
		count++
		if count > limit {
			return fmt.Errorf("heap: block %d free list longer than %d cells (cycle?)", b, limit)
		}
		addr = atomic.LoadUint32(&h.mem[addr/WordBytes])
	}
	if count != bm.freeCells {
		return fmt.Errorf("heap: block %d free count %d, list length %d", b, bm.freeCells, count)
	}
	if bm.cached.Load() < 0 {
		return fmt.Errorf("heap: block %d negative cached count %d", b, bm.cached.Load())
	}
	return nil
}

// CountColor returns how many allocated objects currently have color c;
// test helper.
func (h *Heap) CountColor(c Color) int {
	n := 0
	h.ForEachObject(func(addr Addr) {
		if h.Color(addr) == c {
			n++
		}
	})
	return n
}
