package heap

import (
	"fmt"
	"sync/atomic"
)

// CheckIntegrity audits the allocator's bookkeeping: block metadata,
// free-list structure and the blue-color discipline. It is meant for
// tests and the stress tool, with no mutators running concurrently.
func (h *Heap) CheckIntegrity() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	seenFree := make(map[uint32]bool, len(h.freeBlocks))
	for _, b := range h.freeBlocks {
		if int(b) <= 0 || int(b) >= h.nBlocks {
			return fmt.Errorf("heap: free block index %d out of range", b)
		}
		if seenFree[b] {
			return fmt.Errorf("heap: block %d appears twice in the free pool", b)
		}
		seenFree[b] = true
		if h.blocks[b].class.Load() != blockFree {
			return fmt.Errorf("heap: block %d in free pool but has class %d", b, h.blocks[b].class.Load())
		}
	}
	for b := 1; b < h.nBlocks; b++ {
		bm := &h.blocks[b]
		switch bm.class.Load() {
		case blockFree:
			if !seenFree[uint32(b)] {
				return fmt.Errorf("heap: block %d marked free but not in free pool", b)
			}
		case blockLargeHead:
			n := int(bm.nBlocks)
			if n < 1 || b+n > h.nBlocks {
				return fmt.Errorf("heap: large object at block %d spans %d blocks out of range", b, n)
			}
			for i := 1; i < n; i++ {
				if h.blocks[b+i].class.Load() != blockLargeCont {
					return fmt.Errorf("heap: block %d should continue large object at %d", b+i, b)
				}
			}
		case blockLargeCont:
			// validated via its head
		default:
			if bm.class.Load() < 0 || int(bm.class.Load()) >= NumClasses {
				return fmt.Errorf("heap: block %d has invalid class %d", b, bm.class.Load())
			}
			if err := h.checkBlockFreeList(b, bm); err != nil {
				return err
			}
		}
	}
	if h.allocatedBytes.Load() < 0 || h.allocatedObjects.Load() < 0 {
		return fmt.Errorf("heap: negative accounting: %d bytes, %d objects",
			h.allocatedBytes.Load(), h.allocatedObjects.Load())
	}
	return nil
}

// checkBlockFreeList walks one block's free list. Caller holds h.mu.
func (h *Heap) checkBlockFreeList(b int, bm *blockMeta) error {
	class := int(bm.class.Load())
	cell := classSizes[class]
	count := int32(0)
	limit := int32(CellsPerBlock(class))
	for addr := bm.freeHead; addr != 0; {
		if int(addr)/BlockSize != b {
			return fmt.Errorf("heap: block %d free list escapes to address %#x", b, addr)
		}
		if int(addr)%BlockSize%cell != 0 {
			return fmt.Errorf("heap: block %d free list has misaligned cell %#x", b, addr)
		}
		if h.Color(addr) != Blue {
			return fmt.Errorf("heap: free cell %#x has color %v, want blue", addr, h.Color(addr))
		}
		count++
		if count > limit {
			return fmt.Errorf("heap: block %d free list longer than %d cells (cycle?)", b, limit)
		}
		addr = atomic.LoadUint32(&h.mem[addr/WordBytes])
	}
	if count != bm.freeCells {
		return fmt.Errorf("heap: block %d free count %d, list length %d", b, bm.freeCells, count)
	}
	if bm.cached.Load() < 0 {
		return fmt.Errorf("heap: block %d negative cached count %d", b, bm.cached.Load())
	}
	return nil
}

// CountColor returns how many allocated objects currently have color c;
// test helper.
func (h *Heap) CountColor(c Color) int {
	n := 0
	h.ForEachObject(func(addr Addr) {
		if h.Color(addr) == c {
			n++
		}
	})
	return n
}
