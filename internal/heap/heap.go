// Package heap implements the non-moving, block-structured heap that the
// on-the-fly collector of Domani, Kolodner and Petrank (PLDI 2000) runs
// against. It is the stand-in for the prototype JVM heap of the paper:
// a byte-addressed space carved into 4 KB blocks, each block dedicated to
// one size class, with per-object colors and ages in side tables and a
// free-cell discipline based on the blue color.
//
// Addresses are plain byte offsets (Addr). Address 0 is never allocated
// and serves as the nil reference. Objects never move; promotion between
// generations is purely logical (a color), exactly as in the paper.
package heap

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Addr is a heap address: a byte offset from the heap base. 0 is nil.
type Addr = uint32

const (
	// Granule is the allocation granularity and minimum cell size in
	// bytes. With 16-byte cards ("object marking") every card covers
	// exactly one granule.
	Granule = 16

	// BlockSize is the unit the heap hands to size classes, and the
	// "block marking" card size of §8.5.1.
	BlockSize = 4096

	// HeaderBytes is the simulated object header: the first two words
	// of every cell, corresponding to the class pointer and hash/lock
	// word of the paper's JVM objects. Pointer slots follow it.
	HeaderBytes = 8

	// WordBytes is the size of one pointer slot.
	WordBytes = 4
)

// MaxSlots returns the number of pointer slots that fit in a cell of
// size bytes.
func MaxSlots(size int) int { return (size - HeaderBytes) / WordBytes }

// Block classes in blockMeta.class beyond the small size classes.
const (
	blockFree      int32 = -1 // not assigned to any class
	blockLargeHead int32 = -2 // first block of a large object
	blockLargeCont int32 = -3 // continuation block of a large object
)

type blockMeta struct {
	// class is the size-class index, or one of the block* sentinels.
	// Transitions to and from blockFree happen only under the page
	// lock; read without any lock by the collector's iteration paths,
	// hence atomic.
	class atomic.Int32

	// nBlocks is the number of blocks of a large object (head only).
	nBlocks uint32

	// freeHead is the address of the first free cell of this block;
	// free cells are threaded through their first word. Guarded by the
	// block's class shard lock.
	freeHead Addr

	// freeCells is the length of the freeHead list. Guarded by the
	// class shard lock.
	freeCells int32

	// inPartial records whether the block is on its class's partial
	// list. Guarded by the class shard lock.
	inPartial bool

	// cached counts cells of this block currently sitting in some
	// mutator's allocation cache.
	cached atomic.Int32

	// allBlack hints that every cell of the block is an allocated
	// black (old) object and the block has no free or cached cells.
	// Such a block cannot produce clear-colored cells before the next
	// full collection, so partial sweeps skip it — the reason the
	// paper's partial collections touch only young-generation pages
	// (Figure 15). Written by the collector only.
	allBlack atomic.Bool
}

// Heap is the shared address space. All mutator-visible operations
// (reading and writing pointer slots, colors) use atomic accesses: the
// paper relies on the hardware's per-byte store atomicity, which Go does
// not expose, so the side tables use 32-bit atomics instead — a strictly
// stronger substitute (see DESIGN.md).
//
// Central free-list state is sharded per size class (see central.go):
// there is no heap-wide mutex. partial[class] is guarded by
// shardFor(class); the free-block pool by the page allocator's lock.
type Heap struct {
	// SizeBytes is the total heap size.
	SizeBytes int

	nBlocks int
	nGran   int

	// mem holds the object bodies: header words and pointer slots.
	mem []uint32

	// colors is the color side table, one entry per granule (only the
	// entry of an object's first granule is meaningful).
	colors []uint32

	// slotsOf records the number of pointer slots of the object whose
	// cell starts at the granule; written at allocation before the
	// color is published.
	slotsOf []uint32

	// ages is the age side table of §6, one byte per granule.
	ages []uint8

	// sizeOf records the allocation size class is not enough for:
	// large objects store their byte size here (head granule).
	largeSize []uint32

	blocks []blockMeta

	// shards are the per-class central free lists; partial[class] is
	// guarded by shardFor(class).mu. pages owns the free-block pool.
	shards  []centralShard
	partial [NumClasses][]uint32 // blocks of a class with free cells
	pages   pageAllocator

	// Touch instrumentation for the Figure 15 experiment; nil unless
	// page tracking is enabled.
	Pages *PageSet
}

// ErrOutOfMemory is returned when no block can satisfy an allocation.
// Callers (the runtime's allocation slow path) react by requesting a
// full collection and retrying.
var ErrOutOfMemory = errors.New("heap: out of memory")

// New creates a heap of the given size with the default shard count
// (one central shard per size class). Size is rounded up to a whole
// number of blocks; block 0 is reserved so that address 0 means nil.
func New(sizeBytes int) (*Heap, error) { return NewSharded(sizeBytes, 0) }

// NewSharded creates a heap with an explicit number of central free-list
// shards. shards <= 0 selects the default (NumClasses, the maximum —
// every class its own lock); shards == 1 degenerates to a single central
// lock, the pre-sharding behavior. Values above NumClasses are clamped:
// the shard is the unit classes are mapped onto, so extra shards would
// sit idle.
func NewSharded(sizeBytes, shards int) (*Heap, error) {
	if sizeBytes < 2*BlockSize {
		return nil, fmt.Errorf("heap: size %d too small (min %d)", sizeBytes, 2*BlockSize)
	}
	if shards <= 0 || shards > NumClasses {
		shards = NumClasses
	}
	nBlocks := (sizeBytes + BlockSize - 1) / BlockSize
	sizeBytes = nBlocks * BlockSize
	h := &Heap{
		SizeBytes: sizeBytes,
		nBlocks:   nBlocks,
		nGran:     sizeBytes / Granule,
		mem:       make([]uint32, sizeBytes/WordBytes),
		colors:    make([]uint32, sizeBytes/Granule),
		slotsOf:   make([]uint32, sizeBytes/Granule),
		ages:      make([]uint8, sizeBytes/Granule),
		largeSize: make([]uint32, sizeBytes/Granule),
		blocks:    make([]blockMeta, nBlocks),
		shards:    make([]centralShard, shards),
	}
	for i := range h.blocks {
		h.blocks[i].class.Store(blockFree)
	}
	// Block 0 reserved: nil must never be a valid object address.
	for i := nBlocks - 1; i >= 1; i-- {
		h.pages.freeBlocks = append(h.pages.freeBlocks, uint32(i))
	}
	return h, nil
}

// NumBlocks returns the number of blocks in the heap (including the
// reserved block 0).
func (h *Heap) NumBlocks() int { return h.nBlocks }

// NumGranules returns the number of granules in the heap.
func (h *Heap) NumGranules() int { return h.nGran }

// AllocatedBytes returns the bytes currently allocated (live plus not yet
// collected garbage), summed over the class shards and the large-object
// pool; it drives the full-collection trigger. While mutators run the
// value lags the truth by their caches' unpublished allocation runs —
// bounded by one block's worth of cells per class per cache — and is
// exact once every cache has published (refill, Flush, PublishAllocs).
func (h *Heap) AllocatedBytes() int64 {
	total := h.pages.largeBytes.Load()
	for i := range h.shards {
		total += h.shards[i].allocatedBytes.Load()
	}
	return total
}

// AllocatedObjects returns the number of currently allocated objects.
func (h *Heap) AllocatedObjects() int64 {
	total := h.pages.largeObjects.Load()
	for i := range h.shards {
		total += h.shards[i].allocatedObjects.Load()
	}
	return total
}

// Slots returns the number of pointer slots of the object at addr.
func (h *Heap) Slots(addr Addr) int {
	return int(atomic.LoadUint32(&h.slotsOf[addr/Granule]))
}

// SizeOf returns the cell size in bytes of the object at addr.
func (h *Heap) SizeOf(addr Addr) int {
	b := addr / BlockSize
	switch c := h.blocks[b].class.Load(); c {
	case blockLargeHead:
		return int(atomic.LoadUint32(&h.largeSize[addr/Granule]))
	case blockFree, blockLargeCont:
		return 0
	default:
		return classSizes[c]
	}
}

// slotIndex returns the index in mem of pointer slot i of the object at
// addr. It does no bounds checking against the object's slot count; the
// public accessors do.
func slotIndex(addr Addr, i int) int {
	return int(addr)/WordBytes + HeaderBytes/WordBytes + i
}

// LoadSlot reads pointer slot i of the object at addr.
func (h *Heap) LoadSlot(addr Addr, i int) Addr {
	return atomic.LoadUint32(&h.mem[slotIndex(addr, i)])
}

// StoreSlot writes pointer slot i of the object at addr. The write
// barrier lives above this in the gc package; StoreSlot is the raw
// "heap[x,i] <- y" of Figure 1.
func (h *Heap) StoreSlot(addr Addr, i int, v Addr) {
	atomic.StoreUint32(&h.mem[slotIndex(addr, i)], v)
}

// AllBlackHint reports whether block b was found to be entirely old
// (black, fully allocated) by a previous sweep.
func (h *Heap) AllBlackHint(b int) bool { return h.blocks[b].allBlack.Load() }

// SetAllBlackHint records or clears the all-black hint for block b.
func (h *Heap) SetAllBlackHint(b int, v bool) { h.blocks[b].allBlack.Store(v) }

// BlockQuiet reports whether block b currently has neither free cells
// nor cells parked in allocation caches — together with an all-black
// scan this certifies the block cannot change before the next full
// collection.
func (h *Heap) BlockQuiet(b int) bool {
	bm := &h.blocks[b]
	class := bm.class.Load()
	if class < 0 {
		return false
	}
	s := h.shardFor(int(class))
	s.lock()
	defer s.unlock()
	// Re-check under the lock: the block may have been retired and
	// re-assigned to another class while we were acquiring.
	if bm.class.Load() != class {
		return false
	}
	return bm.freeCells == 0 && bm.cached.Load() == 0
}

// BlockClass reports the size-class of the block containing addr:
// class index for small-object blocks, -1 for free blocks, -2/-3 for
// large-object blocks.
func (h *Heap) BlockClass(b int) int { return int(h.blocks[b].class.Load()) }

// ValidObject reports whether addr is the start of a currently allocated
// (non-blue) object. Used by the verifier and tests only.
func (h *Heap) ValidObject(addr Addr) bool {
	if addr == 0 || int(addr) >= h.SizeBytes || addr%Granule != 0 {
		return false
	}
	b := int(addr / BlockSize)
	switch c := h.blocks[b].class.Load(); c {
	case blockFree, blockLargeCont:
		return false
	case blockLargeHead:
		return addr%BlockSize == 0 && h.Color(addr) != Blue
	default:
		off := int(addr % BlockSize)
		if off%classSizes[c] != 0 {
			return false
		}
		return h.Color(addr) != Blue
	}
}
