package heap

import "sync/atomic"

// PageBytes is the virtual-memory page size used for the Figure 15
// "pages touched by the collector" measurements.
const PageBytes = 4096

// PageSet records which pages the collector touches during one
// collection cycle. It covers the heap itself plus the side tables the
// collector reads and writes (color table, age table, card table),
// mirroring the paper's note that the measurement includes "all the
// tables the collector uses (such as the card table)".
//
// With a single collector thread only that thread writes the set; the
// parallel trace and sweep touch it from several workers at once, so
// the touched bits and the counter are atomic — the first toucher of a
// page wins the CAS and pays the simulated memory cost, exactly one
// charge per page per cycle. The regions are laid out as consecutive
// page ranges:
//
//	[0, heapPages)                         heap data
//	[heapPages, +colorPages)               color table (2 bits per granule,
//	                                       the paper's packed layout; our
//	                                       in-memory table is wider, but the
//	                                       page model charges the layout the
//	                                       paper's collector would touch)
//	[.., +agePages)                        age table (1 B per granule)
//	[.., +cardPages)                       card table (1 B per card)
type PageSet struct {
	heapPages  int
	colorPages int
	agePages   int
	cardPages  int
	touched    []atomic.Bool
	count      atomic.Int64

	// CostSpins, when positive, charges the collector a busy-spin of
	// this many iterations for every page first touched in a cycle.
	// It models the memory-hierarchy cost (faults, TLB and cache
	// misses over a cold page) that dominated collection time on the
	// paper's 1999 hardware — the paper's Figure 15 shows pages
	// touched, and its timing figures scale with them. Without this
	// cost a modern simulator's side tables are too cache-friendly
	// for the locality benefit of generations to be visible.
	CostSpins int
	sink      atomic.Uint64
}

// NewPageSet builds a page tracker for a heap of heapBytes with a card
// table of nCards one-byte entries.
func NewPageSet(heapBytes, nCards int) *PageSet {
	p := &PageSet{
		heapPages:  pages(heapBytes),
		colorPages: pages(heapBytes / Granule / 4),
		agePages:   pages(heapBytes / Granule),
		cardPages:  pages(nCards),
	}
	p.touched = make([]atomic.Bool, p.heapPages+p.colorPages+p.agePages+p.cardPages)
	return p
}

func pages(bytes int) int { return (bytes + PageBytes - 1) / PageBytes }

func (p *PageSet) mark(page int) {
	if p.touched[page].Load() {
		return
	}
	if !p.touched[page].CompareAndSwap(false, true) {
		return // another worker touched it first and pays the cost
	}
	p.count.Add(1)
	if p.CostSpins > 0 {
		s := p.sink.Load()
		for i := 0; i < p.CostSpins; i++ {
			s = s*6364136223846793005 + 1442695040888963407
		}
		p.sink.Store(s)
	}
}

// TouchHeap records that the collector touched heap bytes [addr,
// addr+size).
func (p *PageSet) TouchHeap(addr Addr, size int) {
	if p == nil {
		return
	}
	first := int(addr) / PageBytes
	last := (int(addr) + size - 1) / PageBytes
	for pg := first; pg <= last; pg++ {
		p.mark(pg)
	}
}

// TouchColor records an access to the color-table entry of addr.
func (p *PageSet) TouchColor(addr Addr) {
	if p == nil {
		return
	}
	p.mark(p.heapPages + int(addr/Granule/4)/PageBytes)
}

// TouchAge records an access to the age-table entry of addr.
func (p *PageSet) TouchAge(addr Addr) {
	if p == nil {
		return
	}
	p.mark(p.heapPages + p.colorPages + int(addr/Granule)/PageBytes)
}

// TouchCardByte records an access to card index ci of the card table.
func (p *PageSet) TouchCardByte(ci int) {
	if p == nil {
		return
	}
	p.mark(p.heapPages + p.colorPages + p.agePages + ci/PageBytes)
}

// Count returns the number of distinct pages touched since the last
// Reset.
func (p *PageSet) Count() int {
	if p == nil {
		return 0
	}
	return int(p.count.Load())
}

// Reset clears the set for the next collection cycle.
func (p *PageSet) Reset() {
	if p == nil {
		return
	}
	for i := range p.touched {
		p.touched[i].Store(false)
	}
	p.count.Store(0)
}
