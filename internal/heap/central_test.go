package heap

import (
	"sync"
	"testing"
)

// TestShardedAllocReconciles churns allocations over every shard count
// from the degenerate single lock to one-lock-per-class and checks that
// the shard counters reconcile exactly against the block lists and a
// color census once the mutators quiesce.
func TestShardedAllocReconciles(t *testing.T) {
	for _, shards := range []int{1, 2, 4, NumClasses} {
		h, err := NewSharded(1<<20, shards)
		if err != nil {
			t.Fatal(err)
		}
		if h.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", h.NumShards(), shards)
		}
		var wg sync.WaitGroup
		for id := 0; id < 4; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if err := h.AllocChurn(id, 20000); err != nil {
					t.Error(err)
				}
			}(id)
		}
		wg.Wait()
		if err := h.CheckIntegrity(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := h.ReconcileCounters(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if n := h.AllocatedObjects(); n != 0 {
			t.Fatalf("shards=%d: %d objects leaked after churn", shards, n)
		}
	}
}

// TestNewShardedClamps checks the shard-count normalization: zero and
// negative select the default, values beyond NumClasses are clamped.
func TestNewShardedClamps(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, NumClasses}, {-3, NumClasses}, {1, 1}, {5, 5},
		{NumClasses, NumClasses}, {NumClasses + 7, NumClasses},
	} {
		h, err := NewSharded(1<<20, tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if h.NumShards() != tc.want {
			t.Errorf("NewSharded(_, %d): NumShards = %d, want %d", tc.in, h.NumShards(), tc.want)
		}
	}
}

// TestAllocStatsCounters checks that the contention/throughput counters
// move and aggregate: refills and flushes happen, per-shard rows sum to
// the totals, and freeCells+cached matches the census's blue-cell count
// at quiescence.
func TestAllocStatsCounters(t *testing.T) {
	h, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var c Cache
	addrs := make([]Addr, 0, 500)
	for i := 0; i < 500; i++ {
		a, err := h.Alloc(&c, 2, 48, White)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	h.FreeBatch(addrs[:250])
	h.Flush(&c)
	st := h.Census()
	a := st.Alloc
	if a.Refills == 0 {
		t.Error("no refills recorded")
	}
	if a.Flushes == 0 {
		t.Error("no flushes recorded")
	}
	var locks, refills, free, cached int64
	for _, ss := range a.PerShard {
		locks += ss.Locks
		refills += ss.Refills
		free += ss.FreeCells
		cached += ss.CachedCells
	}
	if locks != a.ShardLocks || refills != a.Refills ||
		free != a.FreeCells || cached != a.CachedCells {
		t.Errorf("per-shard rows do not sum to totals: %+v", a)
	}
	if cached != 0 {
		t.Errorf("cached = %d after flush, want 0", cached)
	}
	if int(free) != st.FreeCells {
		t.Errorf("shard freeCells %d, census blue cells %d", free, st.FreeCells)
	}
}
