package heap

import (
	"testing"
	"testing/quick"
)

func TestClassForBasics(t *testing.T) {
	cases := []struct {
		size      int
		wantClass int
		wantCell  int
	}{
		{0, 0, 16},
		{1, 0, 16},
		{16, 0, 16},
		{17, 1, 32},
		{32, 1, 32},
		{33, 2, 48},
		{48, 2, 48},
		{64, 3, 64},
		{65, 4, 96},
		{100, 5, 128},
		{2048, NumClasses - 1, 2048},
	}
	for _, c := range cases {
		class, cell := ClassFor(c.size)
		if class != c.wantClass || cell != c.wantCell {
			t.Errorf("ClassFor(%d) = (%d, %d), want (%d, %d)",
				c.size, class, cell, c.wantClass, c.wantCell)
		}
	}
}

func TestClassForLarge(t *testing.T) {
	for _, size := range []int{2049, 4096, 5000, 100000} {
		class, cell := ClassFor(size)
		if class != -1 {
			t.Errorf("ClassFor(%d) class = %d, want -1 (large)", size, class)
		}
		if cell < size || cell%Granule != 0 {
			t.Errorf("ClassFor(%d) rounded = %d, want granule multiple >= size", size, cell)
		}
	}
}

// TestClassForProperties checks the size-class invariants over random
// request sizes: the returned cell fits the request, is one of the
// declared class sizes, and no smaller class would fit.
func TestClassForProperties(t *testing.T) {
	prop := func(raw uint16) bool {
		size := int(raw)%MaxSmall + 1
		class, cell := ClassFor(size)
		if class < 0 || class >= NumClasses {
			return false
		}
		if cell != classSizes[class] || cell < size {
			return false
		}
		// Tightness: the previous class (if any) must be too small.
		if class > 0 && classSizes[class-1] >= size {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClassSizesAreGranuleMultiples(t *testing.T) {
	prev := 0
	for c, size := range classSizes {
		if size%Granule != 0 {
			t.Errorf("class %d size %d not a granule multiple", c, size)
		}
		if size <= prev {
			t.Errorf("class sizes not strictly increasing at %d", c)
		}
		if CellsPerBlock(c) < 1 {
			t.Errorf("class %d does not fit in a block", c)
		}
		if ClassSize(c) != size {
			t.Errorf("ClassSize(%d) = %d, want %d", c, ClassSize(c), size)
		}
		prev = size
	}
	if classSizes[NumClasses-1] != MaxSmall {
		t.Errorf("largest class %d != MaxSmall %d", classSizes[NumClasses-1], MaxSmall)
	}
}

func TestMaxSlots(t *testing.T) {
	if got := MaxSlots(16); got != 2 {
		t.Errorf("MaxSlots(16) = %d, want 2", got)
	}
	if got := MaxSlots(48); got != 10 {
		t.Errorf("MaxSlots(48) = %d, want 10", got)
	}
}
