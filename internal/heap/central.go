package heap

import (
	"sync"
	"sync/atomic"
)

// The allocator is tiered: per-mutator Cache (lock-free) → per-class
// central shard (one small lock each) → page allocator (one narrow lock
// for whole-block acquisition and retirement). Size classes are mapped
// onto shards round-robin (class % nShards); with the default shard
// count of NumClasses the mapping is the identity and two mutators
// refilling different classes never touch the same lock.
//
// Lock ordering: shard → page. A thread holding a shard lock may take
// the page lock (refill formatting a fresh block, reclaim retiring an
// empty one); the reverse order never happens. CheckIntegrity, which
// needs a globally consistent view, takes every shard lock in index
// order and then the page lock — compatible with the same ordering.
//
// Block class transitions (free ↔ assigned, free ↔ large) happen only
// under the page lock, so the large-object scan (findRun), which runs
// under the page lock, always sees each block either in the free pool
// or already stamped with its destination.

// centralShard is one lock's worth of central free lists: the partial
// lists of the classes mapped to it, plus the allocation counters of
// those classes. Counters are atomics so the hot path (cache pop) and
// Stats() never need the lock.
type centralShard struct {
	mu sync.Mutex

	// Contention census. locks counts acquisitions, contended the
	// subset that found the lock held (TryLock failed first).
	locks     atomic.Int64
	contended atomic.Int64

	// refills counts cache refills served, flushes cache flushes
	// received (per class with cells, not per detach).
	refills atomic.Int64
	flushes atomic.Int64

	// freeCells is the number of blue cells on the free lists of this
	// shard's blocks (sum of blockMeta.freeCells); mutated only under
	// mu. cached is the number of this shard's cells parked in mutator
	// caches; the allocation fast path decrements it without the lock.
	freeCells atomic.Int64
	cached    atomic.Int64

	// Bytes/objects currently allocated from this shard's classes.
	allocatedBytes   atomic.Int64
	allocatedObjects atomic.Int64

	// Pad to a multiple of the cache-line size so adjacent shards in
	// the shards slice do not false-share.
	_ [40]byte
}

// lock acquires the shard lock, recording whether the acquisition
// contended. TryLock-then-Lock keeps the uncontended path one CAS.
func (s *centralShard) lock() {
	s.locks.Add(1)
	if s.mu.TryLock() {
		return
	}
	s.contended.Add(1)
	s.mu.Lock()
}

func (s *centralShard) unlock() { s.mu.Unlock() }

// pageAllocator owns whole-block state: the pool of unassigned blocks
// and the contiguous-run scan for large objects. Its lock is the bottom
// of the lock order and is held only for block-granularity operations —
// never while formatting or walking cell free lists.
type pageAllocator struct {
	mu         sync.Mutex
	locks      atomic.Int64
	contended  atomic.Int64
	freeBlocks []uint32 // indices of unassigned blocks

	// Bytes/objects currently allocated as large (multi-block) objects.
	largeBytes   atomic.Int64
	largeObjects atomic.Int64
}

func (p *pageAllocator) lock() {
	p.locks.Add(1)
	if p.mu.TryLock() {
		return
	}
	p.contended.Add(1)
	p.mu.Lock()
}

func (p *pageAllocator) unlock() { p.mu.Unlock() }

// shardFor returns the central shard that owns size class `class`.
func (h *Heap) shardFor(class int) *centralShard {
	return &h.shards[class%len(h.shards)]
}

// NumShards reports how many central shards the heap was built with.
func (h *Heap) NumShards() int { return len(h.shards) }

// ShardStats is the counter snapshot of one central shard.
type ShardStats struct {
	Locks, Contended int64
	Refills, Flushes int64
	FreeCells        int64
	CachedCells      int64
	AllocatedBytes   int64
	AllocatedObjects int64
}

// AllocStats aggregates the allocator's contention and throughput
// counters across tiers. CachedCells is approximate while mutators run
// (the cache pop decrements it without a lock); everything else is
// exact at the instant each atomic was read.
type AllocStats struct {
	Shards                     int
	ShardLocks, ShardContended int64
	PageLocks, PageContended   int64
	Refills, Flushes           int64
	FreeCells, CachedCells     int64
	PerShard                   []ShardStats
}

// Contended is the total count of contended lock acquisitions across
// tiers — the scalar the contention matrix (cmd/gcsweep) records per
// cell as alloc_contended.
func (a AllocStats) Contended() int64 {
	return a.ShardContended + a.PageContended
}

// AllocStats snapshots the tiered allocator's counters.
func (h *Heap) AllocStats() AllocStats {
	a := AllocStats{
		Shards:        len(h.shards),
		PageLocks:     h.pages.locks.Load(),
		PageContended: h.pages.contended.Load(),
		PerShard:      make([]ShardStats, len(h.shards)),
	}
	for i := range h.shards {
		s := &h.shards[i]
		ss := ShardStats{
			Locks:            s.locks.Load(),
			Contended:        s.contended.Load(),
			Refills:          s.refills.Load(),
			Flushes:          s.flushes.Load(),
			FreeCells:        s.freeCells.Load(),
			CachedCells:      s.cached.Load(),
			AllocatedBytes:   s.allocatedBytes.Load(),
			AllocatedObjects: s.allocatedObjects.Load(),
		}
		a.PerShard[i] = ss
		a.ShardLocks += ss.Locks
		a.ShardContended += ss.Contended
		a.Refills += ss.Refills
		a.Flushes += ss.Flushes
		a.FreeCells += ss.FreeCells
		a.CachedCells += ss.CachedCells
	}
	return a
}
