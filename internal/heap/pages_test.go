package heap

import "testing"

func TestPageSetBasics(t *testing.T) {
	p := NewPageSet(1<<20, 1<<16)
	if p.Count() != 0 {
		t.Fatalf("fresh count = %d", p.Count())
	}
	p.TouchHeap(0, 1)
	p.TouchHeap(1, 1) // same page
	if p.Count() != 1 {
		t.Errorf("count after same-page touches = %d, want 1", p.Count())
	}
	p.TouchHeap(PageBytes-1, 2) // straddles two pages, one already touched
	if p.Count() != 2 {
		t.Errorf("count after straddle = %d, want 2", p.Count())
	}
	p.TouchHeap(0, 3*PageBytes) // pages 0,1,2: adds page 2
	if p.Count() != 3 {
		t.Errorf("count after span = %d, want 3", p.Count())
	}
}

func TestPageSetRegionsDisjoint(t *testing.T) {
	p := NewPageSet(1<<20, 1<<16)
	p.TouchHeap(0, 1)
	p.TouchColor(0)
	p.TouchAge(0)
	p.TouchCardByte(0)
	if p.Count() != 4 {
		t.Errorf("four distinct-region touches counted %d pages", p.Count())
	}
}

func TestPageSetReset(t *testing.T) {
	p := NewPageSet(1<<20, 1<<16)
	p.TouchHeap(12345, 100)
	p.Reset()
	if p.Count() != 0 {
		t.Errorf("count after reset = %d", p.Count())
	}
	p.TouchHeap(12345, 100)
	if p.Count() == 0 {
		t.Error("touches after reset not counted")
	}
}

func TestPageSetNilSafe(t *testing.T) {
	var p *PageSet
	p.TouchHeap(0, 16)
	p.TouchColor(0)
	p.TouchAge(0)
	p.TouchCardByte(0)
	p.Reset()
	if p.Count() != 0 {
		t.Error("nil PageSet count != 0")
	}
}

func TestPageSetCost(t *testing.T) {
	p := NewPageSet(1<<20, 1<<16)
	p.CostSpins = 10
	// Just exercise the cost path: repeated touches of the same page
	// must not re-pay.
	for i := 0; i < 100; i++ {
		p.TouchHeap(0, 1)
	}
	if p.Count() != 1 {
		t.Errorf("count = %d, want 1", p.Count())
	}
}

func TestPageSetLastPages(t *testing.T) {
	heapBytes := 1 << 20
	p := NewPageSet(heapBytes, 999) // odd card count
	// Touch the very last byte of each region; must not panic.
	p.TouchHeap(Addr(heapBytes-1), 1)
	p.TouchColor(Addr(heapBytes - 1))
	p.TouchAge(Addr(heapBytes - 1))
	p.TouchCardByte(998)
}
