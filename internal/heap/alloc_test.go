package heap

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func newTestHeap(t *testing.T, size int) *Heap {
	t.Helper()
	h, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewRejectsTinyHeap(t *testing.T) {
	if _, err := New(BlockSize); err == nil {
		t.Fatal("New accepted a one-block heap")
	}
}

func TestAllocBasics(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	addr, err := h.Alloc(&c, 3, 0, White)
	if err != nil {
		t.Fatal(err)
	}
	if addr == 0 || addr%Granule != 0 {
		t.Fatalf("bad address %#x", addr)
	}
	if got := h.Color(addr); got != White {
		t.Errorf("new object color = %v, want white", got)
	}
	if got := h.Slots(addr); got != 3 {
		t.Errorf("slots = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if v := h.LoadSlot(addr, i); v != 0 {
			t.Errorf("slot %d = %#x, want nil", i, v)
		}
	}
	// Header + 3 slots = 20 bytes -> 32-byte class.
	if got := h.SizeOf(addr); got != 32 {
		t.Errorf("SizeOf = %d, want 32", got)
	}
	if !h.ValidObject(addr) {
		t.Error("ValidObject is false for a fresh object")
	}
	h.PublishAllocs(&c)
	if h.AllocatedObjects() != 1 || h.AllocatedBytes() != 32 {
		t.Errorf("accounting = (%d objects, %d bytes), want (1, 32)",
			h.AllocatedObjects(), h.AllocatedBytes())
	}
}

func TestAllocSlotStores(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 2, 0, White)
	b, _ := h.Alloc(&c, 0, 64, White)
	h.StoreSlot(a, 0, b)
	if got := h.LoadSlot(a, 0); got != b {
		t.Errorf("slot round trip = %#x, want %#x", got, b)
	}
	if got := h.LoadSlot(a, 1); got != 0 {
		t.Errorf("untouched slot = %#x, want 0", got)
	}
}

func TestAllocZeroesRecycledSlots(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 2, 0, White)
	h.StoreSlot(a, 0, a)
	h.StoreSlot(a, 1, a)
	h.SetColor(a, Yellow) // pretend it's clear-colored garbage
	h.FreeCell(a)
	// The recycled cell must come back with zeroed slots.
	b, _ := h.Alloc(&c, 2, 0, White)
	if b != a {
		// Cache order may differ; allocate until we get the cell back.
		for i := 0; i < 1000 && b != a; i++ {
			b, _ = h.Alloc(&c, 2, 0, White)
		}
	}
	if b != a {
		t.Skip("cell was not recycled in order; nothing to check")
	}
	if h.LoadSlot(b, 0) != 0 || h.LoadSlot(b, 1) != 0 {
		t.Error("recycled cell has stale pointer slots")
	}
}

func TestFreeCellAccounting(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	addr, _ := h.Alloc(&c, 0, 48, White)
	if got := h.FreeCell(addr); got != 48 {
		t.Errorf("FreeCell returned %d bytes, want 48", got)
	}
	if h.Color(addr) != Blue {
		t.Errorf("freed cell color = %v, want blue", h.Color(addr))
	}
	h.PublishAllocs(&c)
	if h.AllocatedObjects() != 0 || h.AllocatedBytes() != 0 {
		t.Errorf("accounting after free = (%d, %d), want zeros",
			h.AllocatedObjects(), h.AllocatedBytes())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestFreeBatch(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	var addrs []Addr
	total := 0
	for i := 0; i < 100; i++ {
		a, err := h.Alloc(&c, 1, 32+i%64, White)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
		total += h.SizeOf(a)
	}
	if got := h.FreeBatch(addrs); got != total {
		t.Errorf("FreeBatch freed %d bytes, want %d", got, total)
	}
	h.PublishAllocs(&c)
	if h.AllocatedObjects() != 0 {
		t.Errorf("objects after batch free = %d, want 0", h.AllocatedObjects())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestLargeObjects(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, err := h.Alloc(&c, 4, 3*BlockSize, White)
	if err != nil {
		t.Fatal(err)
	}
	if a%BlockSize != 0 {
		t.Errorf("large object not block aligned: %#x", a)
	}
	if got := h.SizeOf(a); got != 3*BlockSize {
		t.Errorf("large SizeOf = %d, want %d", got, 3*BlockSize)
	}
	if !h.ValidObject(a) {
		t.Error("large object not valid")
	}
	h.StoreSlot(a, 3, a)
	if h.LoadSlot(a, 3) != a {
		t.Error("large object slot store failed")
	}
	free := h.FreeBlockCount()
	if got := h.FreeCell(a); got != 3*BlockSize {
		t.Errorf("freeing large returned %d, want %d", got, 3*BlockSize)
	}
	if h.FreeBlockCount() != free+3 {
		t.Errorf("blocks not returned: %d -> %d", free, h.FreeBlockCount())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestLargeObjectOOM(t *testing.T) {
	h := newTestHeap(t, 16*BlockSize)
	var c Cache
	if _, err := h.Alloc(&c, 0, 64*BlockSize, White); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized large alloc error = %v, want ErrOutOfMemory", err)
	}
}

func TestSmallObjectOOMAndRecovery(t *testing.T) {
	h := newTestHeap(t, 16*BlockSize)
	var c Cache
	var addrs []Addr
	for {
		a, err := h.Alloc(&c, 0, 2048, White)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		t.Fatal("no allocations succeeded")
	}
	// Free everything; allocation must work again.
	for _, a := range addrs {
		h.FreeCell(a)
	}
	if _, err := h.Alloc(&c, 0, 2048, White); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestFlushReturnsCachedCells(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 0, 16, White) // triggers a refill batch
	h.FreeCell(a)
	h.Flush(&c)
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
	h.ReclaimEmptyBlocks()
	// After flush + reclaim the heap must be completely free again.
	if got := h.FreeBlockCount(); got != h.NumBlocks()-1 {
		t.Errorf("free blocks = %d, want %d", got, h.NumBlocks()-1)
	}
}

func TestReclaimEmptyBlocksKeepsLiveBlocks(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	live, _ := h.Alloc(&c, 0, 64, Black)
	var dead []Addr
	for i := 0; i < 200; i++ {
		a, _ := h.Alloc(&c, 0, 64, Yellow)
		dead = append(dead, a)
	}
	h.FreeBatch(dead)
	h.Flush(&c)
	h.ReclaimEmptyBlocks()
	if !h.ValidObject(live) || h.Color(live) != Black {
		t.Error("live object lost after reclaim")
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestForEachObjectInRange(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	var addrs []Addr
	for i := 0; i < 50; i++ {
		a, _ := h.Alloc(&c, 0, 48, White)
		addrs = append(addrs, a)
	}
	// Every object must be found exactly once when covering the heap.
	found := map[Addr]int{}
	h.ForEachObjectInRange(0, Addr(h.SizeBytes), func(a Addr) { found[a]++ })
	for _, a := range addrs {
		if found[a] != 1 {
			t.Errorf("object %#x found %d times", a, found[a])
		}
	}
	// A window covering exactly one object's start finds only objects
	// starting in it.
	target := addrs[20]
	h.ForEachObjectInRange(target, target+16, func(a Addr) {
		if a != target {
			t.Errorf("range [%#x,%#x) returned %#x", target, target+16, a)
		}
	})
	// An empty window (free block) finds nothing.
	h.ForEachObjectInRange(Addr(h.SizeBytes-BlockSize), Addr(h.SizeBytes), func(a Addr) {
		t.Errorf("free region returned object %#x", a)
	})
}

func TestAllocatedRegions(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	if _, err := h.Alloc(&c, 0, 64, White); err != nil {
		t.Fatal(err)
	}
	var total int
	h.AllocatedRegions(func(start, end Addr) {
		if start >= end || start%BlockSize != 0 || end%BlockSize != 0 {
			t.Errorf("bad region [%#x, %#x)", start, end)
		}
		total += int(end - start)
	})
	if total != BlockSize {
		t.Errorf("allocated region bytes = %d, want one block", total)
	}
}

func TestValidObjectRejectsJunk(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 0, 48, White)
	cases := []Addr{0, 1, a + 1, a + Granule, Addr(h.SizeBytes), Addr(h.SizeBytes + 64)}
	for _, addr := range cases {
		if h.ValidObject(addr) {
			t.Errorf("ValidObject(%#x) = true, want false", addr)
		}
	}
}

func TestAllBlackHints(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	b := 1
	if h.AllBlackHint(b) {
		t.Error("fresh block hinted all-black")
	}
	h.SetAllBlackHint(b, true)
	if !h.AllBlackHint(b) {
		t.Error("hint not set")
	}
	h.SetAllBlackHint(b, false)
	if h.AllBlackHint(b) {
		t.Error("hint not cleared")
	}
}

func TestBlockQuiet(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 0, 16, White)
	b := int(a / BlockSize)
	if h.BlockQuiet(b) {
		t.Error("block with cached cells reported quiet")
	}
	// Exhaust the cache so every cell of the block is live; quietness
	// shows once the cache publishes its pending allocation run.
	for i := 0; i < CellsPerBlock(0)-1; i++ {
		if _, err := h.Alloc(&c, 0, 16, White); err != nil {
			t.Fatal(err)
		}
	}
	h.PublishAllocs(&c)
	if !h.BlockQuiet(b) {
		t.Error("fully allocated block not quiet")
	}
}

func TestAgeTable(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 0, 32, White)
	if h.Age(a) != 0 {
		t.Errorf("fresh age = %d, want 0", h.Age(a))
	}
	h.SetAge(a, 7)
	if h.Age(a) != 7 {
		t.Errorf("age = %d, want 7", h.Age(a))
	}
	// Reallocation resets the age.
	h.FreeCell(a)
	b, _ := h.Alloc(&c, 0, 32, White)
	for i := 0; b != a && i < 100; i++ {
		b, _ = h.Alloc(&c, 0, 32, White)
	}
	if b == a && h.Age(a) != 0 {
		t.Errorf("recycled age = %d, want 0", h.Age(a))
	}
}

func TestColorTransitions(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, _ := h.Alloc(&c, 0, 32, White)
	if !h.CasColor(a, White, Gray) {
		t.Fatal("CAS white->gray failed")
	}
	if h.CasColor(a, White, Black) {
		t.Fatal("CAS from stale color succeeded")
	}
	h.SetColor(a, Black)
	if h.Color(a) != Black {
		t.Fatal("SetColor lost")
	}
}

// TestConcurrentAllocFree hammers the allocator from several goroutines
// while another frees, then audits the heap.
func TestConcurrentAllocFree(t *testing.T) {
	h := newTestHeap(t, 4<<20)
	var wg sync.WaitGroup
	freeCh := make(chan Addr, 1024)
	done := make(chan struct{})
	// Dedicated freer simulates the collector (the only freer).
	go func() {
		for a := range freeCh {
			h.SetColor(a, Yellow)
			h.FreeCell(a)
		}
		close(done)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var c Cache
			defer h.Flush(&c)
			for i := 0; i < 5000; i++ {
				a, err := h.Alloc(&c, rng.Intn(3), 16+rng.Intn(200), White)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				freeCh <- a
			}
		}(int64(w))
	}
	wg.Wait()
	close(freeCh)
	<-done
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
	if h.AllocatedObjects() != 0 {
		t.Errorf("leaked %d objects", h.AllocatedObjects())
	}
}

// TestAllocStressAllClasses allocates randomly across every size class
// including large, frees half, and audits.
func TestAllocStressAllClasses(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	var c Cache
	rng := rand.New(rand.NewSource(7))
	var addrs []Addr
	for i := 0; i < 3000; i++ {
		size := 16 + rng.Intn(3000)
		if rng.Intn(50) == 0 {
			size = BlockSize * (1 + rng.Intn(3))
		}
		a, err := h.Alloc(&c, rng.Intn(4), size, White)
		if err != nil {
			t.Fatalf("alloc %d bytes: %v", size, err)
		}
		addrs = append(addrs, a)
	}
	for i, a := range addrs {
		if i%2 == 0 {
			h.SetColor(a, Yellow)
			h.FreeCell(a)
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Error(err)
	}
	h.PublishAllocs(&c)
	if got := int(h.AllocatedObjects()); got != len(addrs)/2 {
		t.Errorf("allocated objects = %d, want %d", got, len(addrs)/2)
	}
	// The surviving half must still be valid.
	for i, a := range addrs {
		if i%2 == 1 && !h.ValidObject(a) {
			t.Errorf("survivor %#x invalid", a)
		}
	}
}

func TestCountColor(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	for i := 0; i < 5; i++ {
		if _, err := h.Alloc(&c, 0, 32, Black); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := h.Alloc(&c, 0, 32, White); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.CountColor(Black); got != 5 {
		t.Errorf("CountColor(black) = %d, want 5", got)
	}
	if got := h.CountColor(White); got != 3 {
		t.Errorf("CountColor(white) = %d, want 3", got)
	}
}

// TestRangePartitionProperty: splitting the address space into disjoint
// windows must enumerate exactly the same objects as one full pass, for
// random window sizes (the card-scan correctness property).
func TestRangePartitionProperty(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		if _, err := h.Alloc(&c, rng.Intn(3), 16+rng.Intn(400), White); err != nil {
			t.Fatal(err)
		}
	}
	whole := map[Addr]bool{}
	h.ForEachObjectInRange(0, Addr(h.SizeBytes), func(a Addr) { whole[a] = true })

	for _, window := range []int{16, 48, 100, 4096, 10000} {
		seen := map[Addr]bool{}
		for start := 0; start < h.SizeBytes; start += window {
			end := start + window
			if end > h.SizeBytes {
				end = h.SizeBytes
			}
			h.ForEachObjectInRange(Addr(start), Addr(end), func(a Addr) {
				if seen[a] {
					t.Fatalf("window %d: object %#x enumerated twice", window, a)
				}
				seen[a] = true
			})
		}
		if len(seen) != len(whole) {
			t.Fatalf("window %d: %d objects, whole pass found %d", window, len(seen), len(whole))
		}
	}
}

// TestAllocBlueLeavesBlue: AllocBlue publishes metadata but not a color.
func TestAllocBlueLeavesBlue(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	var c Cache
	a, err := h.AllocBlue(&c, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Color(a) != Blue {
		t.Fatalf("AllocBlue color = %v", h.Color(a))
	}
	if h.Slots(a) != 2 {
		t.Fatalf("slots = %d", h.Slots(a))
	}
	h.PublishAllocs(&c)
	if h.AllocatedObjects() != 1 {
		t.Fatalf("accounting = %d", h.AllocatedObjects())
	}
	h.SetColor(a, White)
	if !h.ValidObject(a) {
		t.Fatal("colored cell not valid")
	}
}
