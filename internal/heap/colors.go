package heap

import "sync/atomic"

// Color is the marking color of an object, kept in a side table indexed
// by the granule of the object's start address.
//
// The collector uses the standard DLG colors plus the yellow color of §4:
//
//	blue   – the cell is free (on a free list or in an allocation cache)
//	white  – not yet traced (one of the two toggled colors)
//	yellow – allocated during the current cycle (the other toggled color)
//	gray   – traced, children not yet scanned
//	black  – traced, children scanned; doubles as "old generation"
//
// White and yellow are not fixed roles: the color-toggle mechanism of §5
// exchanges which of the two is the allocation color and which is the
// clear color at the start of every cycle. Blue is the zero value so that
// a freshly mapped color table reads as all-free.
type Color uint32

const (
	Blue Color = iota
	White
	Yellow
	Gray
	Black
)

// String returns the color name for diagnostics.
func (c Color) String() string {
	switch c {
	case Blue:
		return "blue"
	case White:
		return "white"
	case Yellow:
		return "yellow"
	case Gray:
		return "gray"
	case Black:
		return "black"
	}
	return "invalid"
}

// Color returns the current color of the object at addr.
func (h *Heap) Color(addr Addr) Color {
	return Color(atomic.LoadUint32(&h.colors[addr/Granule]))
}

// SetColor unconditionally recolors the object at addr.
func (h *Heap) SetColor(addr Addr, c Color) {
	atomic.StoreUint32(&h.colors[addr/Granule], uint32(c))
}

// CasColor recolors the object at addr from old to new atomically and
// reports whether the swap happened. It is the primitive under MarkGray:
// at most one of several racing mutators/collector wins, so each object
// enters the gray set at most once per transition.
func (h *Heap) CasColor(addr Addr, old, new Color) bool {
	return atomic.CompareAndSwapUint32(&h.colors[addr/Granule], uint32(old), uint32(new))
}

// Age returns the object's age (number of collections survived, §6).
// Ages are written only by the owning mutator at creation and by the
// collector during sweep, never concurrently for the same object.
func (h *Heap) Age(addr Addr) uint8 { return h.ages[addr/Granule] }

// SetAge records the object's age.
func (h *Heap) SetAge(addr Addr, a uint8) { h.ages[addr/Granule] = a }
