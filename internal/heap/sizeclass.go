package heap

// Size classes for the segregated-fit, non-moving allocator. Every cell
// size is a multiple of the granule so that object starts are granule
// aligned and the color table can be indexed by granule. Objects larger
// than the biggest class are carved from whole blocks ("large" objects).
//
// The class list trades internal fragmentation (at most ~33%) against the
// number of per-mutator allocation caches.
var classSizes = [...]int{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048}

// NumClasses is the number of small-object size classes.
const NumClasses = len(classSizes)

// MaxSmall is the largest cell size handled by the size classes. Requests
// above it become large objects occupying whole blocks.
const MaxSmall = 2048

// classIndex maps a rounded-up request size in granules to a class index.
// Indexed by size/Granule for sizes up to MaxSmall.
var classIndex [MaxSmall/Granule + 1]int8

func init() {
	c := 0
	for g := 1; g <= MaxSmall/Granule; g++ {
		size := g * Granule
		for classSizes[c] < size {
			c++
		}
		classIndex[g] = int8(c)
	}
}

// ClassFor returns the size-class index and cell size for a request of
// size bytes, or (-1, rounded) when the request must be a large object.
// Requests smaller than one granule are rounded up to one granule.
func ClassFor(size int) (class int, cellSize int) {
	if size <= 0 {
		size = 1
	}
	g := (size + Granule - 1) / Granule
	if g*Granule > MaxSmall {
		return -1, g * Granule
	}
	c := int(classIndex[g])
	return c, classSizes[c]
}

// ClassSize returns the cell size in bytes of class c.
func ClassSize(c int) int { return classSizes[c] }

// CellsPerBlock returns how many cells of class c fit in one block.
func CellsPerBlock(c int) int { return BlockSize / classSizes[c] }
