package heap

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkAllocParallel measures the tiered allocation path under 1, 2,
// 4 and 8 concurrent mutators cycling through mixed size classes, each
// with its own cache, batch-freeing in sweep-sized batches (AllocChurn).
// `make bench-json` runs the same loop via cmd/gcbench and records the
// sweep in BENCH_alloc.json so successive PRs leave a perf trajectory.
func BenchmarkAllocParallel(b *testing.B) {
	for _, muts := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("muts=%d", muts), func(b *testing.B) {
			h, err := New(64 << 20)
			if err != nil {
				b.Fatal(err)
			}
			per := b.N/muts + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, muts)
			for id := 0; id < muts; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					if err := h.AllocChurn(id, per); err != nil {
						errs <- err
					}
				}(id)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		})
	}
}
