package heap

// ForEachObject calls fn for every currently allocated (non-blue) object
// start address, in address order. The collector's sweep is built on it.
// Objects allocated concurrently may or may not be visited; objects
// freed by fn itself are not revisited.
func (h *Heap) ForEachObject(fn func(addr Addr)) {
	for b := 1; b < h.nBlocks; b++ {
		h.ForEachObjectInBlock(b, fn)
	}
}

// ForEachObjectInBlock calls fn for every allocated object whose cell
// starts in block b.
func (h *Heap) ForEachObjectInBlock(b int, fn func(addr Addr)) {
	bm := &h.blocks[b]
	class := bm.class.Load()
	switch class {
	case blockFree, blockLargeCont:
		return
	case blockLargeHead:
		addr := Addr(b) * BlockSize
		if h.Color(addr) != Blue {
			fn(addr)
		}
	default:
		cell := classSizes[class]
		base := Addr(b) * BlockSize
		for off := 0; off+cell <= BlockSize; off += cell {
			addr := base + Addr(off)
			if h.Color(addr) != Blue {
				fn(addr)
			}
		}
	}
}

// ForEachObjectInRange calls fn for every allocated object whose cell
// starts in [start, end). This is the card-scanning primitive: a card's
// byte range is mapped to the objects that begin on it.
func (h *Heap) ForEachObjectInRange(start, end Addr, fn func(addr Addr)) {
	if end > Addr(h.SizeBytes) {
		end = Addr(h.SizeBytes)
	}
	b := int(start / BlockSize)
	for b < h.nBlocks && Addr(b)*BlockSize < end {
		bm := &h.blocks[b]
		class := bm.class.Load()
		blockBase := Addr(b) * BlockSize
		switch class {
		case blockFree, blockLargeCont:
			// nothing on this block
		case blockLargeHead:
			if blockBase >= start && blockBase < end && h.Color(blockBase) != Blue {
				fn(blockBase)
			}
		default:
			cell := Addr(classSizes[class])
			first := Addr(0)
			if start > blockBase {
				first = ((start - blockBase) + cell - 1) / cell * cell
			}
			for off := first; off+cell <= BlockSize && blockBase+off < end; off += cell {
				addr := blockBase + off
				if h.Color(addr) != Blue {
					fn(addr)
				}
			}
		}
		b++
	}
}

// AllocatedRegions calls fn(start, end) for every maximal run of blocks
// currently assigned to some class (small or large). Used to compute the
// "allocated cards" denominator of the Figure 22 dirty-card percentages.
func (h *Heap) AllocatedRegions(fn func(start, end Addr)) {
	runStart := -1
	for b := 1; b <= h.nBlocks; b++ {
		assigned := b < h.nBlocks && h.blocks[b].class.Load() != blockFree
		if assigned && runStart < 0 {
			runStart = b
		}
		if !assigned && runStart >= 0 {
			fn(Addr(runStart)*BlockSize, Addr(b)*BlockSize)
			runStart = -1
		}
	}
}
