package heap

// Allocation-churn workload shared by BenchmarkAllocParallel and the
// cmd/gcbench mutator-count sweep. It lives in a non-test file so the
// command can drive exactly the loop the benchmark measures.

// AllocChurnSizes is the mixed request-size schedule of the allocation
// benchmark: one representative request per frequently used size class,
// so concurrent mutators starting at different offsets exercise
// different classes most of the time — the access pattern the per-class
// central lists are sharded for.
var AllocChurnSizes = [...]int{16, 40, 96, 224, 480, 992}

// allocChurnWindow is how many live cells each churner keeps before
// batch-freeing them, mimicking the collector's sweep cadence
// (freeBatchSize in the gc package is 256 as well).
const allocChurnWindow = 256

// AllocChurn runs iters allocation operations as one benchmark mutator:
// it owns a private Cache, cycles through AllocChurnSizes offset by id,
// keeps a window of allocChurnWindow live cells, and batch-frees the
// window the way the sweep does (FreeBatch), so blocks recycle and the
// loop runs indefinitely inside a bounded heap. The cache is flushed on
// return, as a detaching mutator would.
func (h *Heap) AllocChurn(id, iters int) error {
	var c Cache
	defer h.Flush(&c)
	window := make([]Addr, 0, allocChurnWindow)
	for i := 0; i < iters; i++ {
		size := AllocChurnSizes[(i+id)%len(AllocChurnSizes)]
		a, err := h.Alloc(&c, 2, size, White)
		if err != nil {
			return err
		}
		window = append(window, a)
		if len(window) == cap(window) {
			h.FreeBatch(window)
			window = window[:0]
		}
	}
	h.FreeBatch(window)
	return nil
}
