// Package trace is the collector's structured event layer: timestamped
// spans for everything the cycle does — the whole cycle, the three
// handshake rounds, trace-termination acknowledgement rounds, trace
// drains, sweep shards, card scans — plus per-mutator pause events, all
// delivered to a pluggable Sink.
//
// Producers (the collector goroutine, each trace/sweep worker, each
// mutator) write into private single-producer ring buffers, so emitting
// an event on a hot path costs one index check and one array store — no
// lock, no allocation. The collector drains every ring into the sink at
// the end of each cycle and on shutdown; events therefore reach the sink
// grouped by producer, not globally time-ordered, and consumers sort by
// the T field when order matters (cmd/gcreport does).
//
// The JSONL sink writes one JSON object per event, the interchange
// format consumed by cmd/gcreport to render the paper-style pause and
// phase figures (see OBSERVABILITY.md for the event ↔ figure map).
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gengc/internal/fault"
)

// Event is one timestamped span or point event. The fixed field set
// keeps the ring buffers copy-cheap and the JSONL lines uniform.
//
// Event kinds emitted by the collector (the Ev field):
//
//	start     runtime created; marks a run boundary in concatenated
//	          traces (T is 0 at the runtime's epoch). K carries the
//	          run metadata string when the tracer was built with
//	          NewWithMeta ("gomaxprocs=8 workers=4 shards=13
//	          barrier=eager mode=generational version=(devel)"), so
//	          multi-run concatenations stay labeled
//	cycle     one whole collection cycle; K = "partial"|"full",
//	          N = objects scanned, M = objects freed
//	sync      one handshake round; K = "sync1"|"sync2"|"sync3"
//	ack       one trace-termination acknowledgement round; N = epoch
//	initfull  the InitFullCollection recoloring walk (full cycles)
//	cardscan  the dirty-card scan; N = dirty cards, M = allocated cards
//	trace     the whole trace-to-fixpoint phase; N = objects scanned
//	drain     one trace drain; W = worker, N = objects blackened
//	sweep     the whole sweep phase; N = objects freed
//	sweepshard one worker's share of a parallel sweep; W = worker,
//	          N = objects freed by that worker
//	pause     one mutator-visible delay; W = mutator id,
//	          K = "roots"|"handshake"|"ack"|"allocwait"
//	stall     the handshake watchdog caught a mutator past the stall
//	          deadline; W = mutator id, K = the wait's phase
//	          ("sync1"|"sync2"|"sync3"|"ack"), D = how long the
//	          collector had been waiting when the report fired
//	cycleabort a cycle abandoned at close (wedged handshake past the
//	          grace period); K = the phase it was wedged in
//	allocstats the tiered allocator's activity over one cycle (point
//	          event at cycle end); N = central-shard cache refills,
//	          M = contended lock acquisitions (shard + page)
//	demographics one generational partial's promotion/survival record
//	          (point event at cycle end); N = objects promoted,
//	          M = bytes promoted, K = the aging survival histogram as
//	          "age:count,..." pairs (empty in the simple scheme, whose
//	          every survivor is promoted)
//	barrierflush one batched-barrier buffer drain; W = mutator id,
//	          N = deferred shades drained, M = deferred card entries
//	          drained, K = "handshake"|"full"|"detach" (what forced it)
//	drops     events lost to ring overflow (emitted at Close); N = count
type Event struct {
	// Ev is the event kind (see the table above).
	Ev string `json:"ev"`

	// T is the span's start time in nanoseconds since the runtime's
	// epoch (its creation).
	T int64 `json:"t"`

	// D is the span's duration in nanoseconds (0 for point events).
	D int64 `json:"d"`

	// Cycle is the collection cycle the event belongs to (1-based,
	// matching metrics.Cycle.Seq); 0 when the event is not tied to a
	// cycle (mutator pauses, run boundaries).
	Cycle int64 `json:"cyc,omitempty"`

	// Worker is the collector worker or mutator id that produced the
	// event (0 is the collector goroutine / first worker).
	Worker int `json:"w"`

	// N and M are kind-specific counts (see the table above).
	N int64 `json:"n,omitempty"`
	M int64 `json:"m,omitempty"`

	// K is a kind-specific detail string (cycle kind, handshake round,
	// pause cause).
	K string `json:"k,omitempty"`
}

// Sink receives the event stream. The Tracer serializes all calls, so
// implementations need no locking of their own unless they are shared
// between tracers.
type Sink interface {
	// Emit delivers one event.
	Emit(Event)
	// Flush pushes buffered output downstream (called at the end of
	// every collection cycle and at Close).
	Flush() error
}

// ringSize is the per-producer buffer capacity. Rings are drained at
// least once per collection cycle, which emits a few dozen events per
// producer, so overflow indicates a stalled drain rather than a
// too-small buffer; overflowing events are dropped and counted.
const ringSize = 2048

// Ring is a single-producer, single-consumer event buffer. The producer
// (one goroutine at a time) calls Emit; the consumer (the Tracer, under
// its lock) drains. head is written only by the producer and tail only
// by the consumer, so both sides synchronize on one atomic load each —
// the producer's store of head publishes the event written before it.
type Ring struct {
	buf     [ringSize]Event
	head    atomic.Int64 // next slot to write (producer)
	tail    atomic.Int64 // next slot to read (consumer)
	dropped atomic.Int64
}

// Emit appends one event, dropping it (and counting the drop) when the
// ring is full. Producer side only.
func (r *Ring) Emit(e Event) {
	h := r.head.Load()
	if h-r.tail.Load() >= ringSize {
		r.dropped.Add(1)
		return
	}
	r.buf[h&(ringSize-1)] = e
	r.head.Store(h + 1)
}

// Dropped reports how many events overflowed the ring so far.
func (r *Ring) Dropped() int64 { return r.dropped.Load() }

// drain hands every buffered event to fn. Consumer side only.
func (r *Ring) drain(fn func(Event)) {
	t := r.tail.Load()
	h := r.head.Load()
	for ; t < h; t++ {
		fn(r.buf[t&(ringSize-1)])
	}
	r.tail.Store(t)
}

// sinkFailureLimit is how many consecutive sink failures (a panic out
// of Emit/Flush, a Flush error, or an injected fault) the tracer
// tolerates before degrading. Degradation is one-way: the sink is never
// called again and every subsequent event is counted as a drop, so a
// broken sink costs the collector one atomic load per flush instead of
// a panic on its goroutine.
const sinkFailureLimit = 3

// Tracer owns the rings and the sink for one runtime. All methods are
// safe for concurrent use; Emit paths go through per-producer rings and
// never block on the sink.
//
// Sink failures are isolated: calls into the sink run under a recover,
// and after sinkFailureLimit consecutive failures the tracer degrades —
// tracing turns itself off (events become counted drops) rather than
// taking the collector down with the sink.
type Tracer struct {
	sink  Sink
	epoch time.Time

	flt       *fault.Injector // SinkWrite injection; nil = disabled
	degraded  atomic.Bool
	sinkDrops atomic.Int64

	mu       sync.Mutex
	rings    []*Ring
	closed   bool
	failures int // consecutive sink failures, under mu
}

// New starts a tracer over sink and emits the run-boundary "start"
// event. The epoch for all event timestamps is the moment of creation.
func New(sink Sink) *Tracer {
	return NewWithMeta(sink, "")
}

// NewWithMeta is New with a run-metadata string stamped into the
// "start" event's K field, labeling this run in concatenated traces.
func NewWithMeta(sink Sink, meta string) *Tracer {
	t := &Tracer{sink: sink, epoch: time.Now()}
	t.mu.Lock()
	t.safeEmit(Event{Ev: "start", K: meta})
	t.mu.Unlock()
	return t
}

// SetInjector installs the fault injector consulted before every sink
// call (the SinkWrite point). A Fail decision is treated exactly like a
// sink error; nil uninstalls.
func (t *Tracer) SetInjector(in *fault.Injector) {
	t.mu.Lock()
	t.flt = in
	t.mu.Unlock()
}

// Degraded reports whether the sink has been cut off after repeated
// failures.
func (t *Tracer) Degraded() bool { return t.degraded.Load() }

// SinkDrops reports how many events were dropped because the sink had
// degraded.
func (t *Tracer) SinkDrops() int64 { return t.sinkDrops.Load() }

// Drops reports every event lost so far: ring overflow plus events
// discarded after sink degradation.
func (t *Tracer) Drops() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.sinkDrops.Load()
	for _, r := range t.rings {
		n += r.Dropped()
	}
	return n
}

// noteFailure records one sink failure and degrades the tracer once the
// consecutive-failure budget is spent. Caller holds mu.
func (t *Tracer) noteFailure() {
	t.failures++
	if t.failures >= sinkFailureLimit {
		t.degraded.Store(true)
	}
}

// safeEmit delivers one event to the sink, absorbing panics and
// injected faults. A lost event counts as a drop. Caller holds mu.
func (t *Tracer) safeEmit(e Event) {
	if t.degraded.Load() {
		t.sinkDrops.Add(1)
		return
	}
	if t.flt != nil {
		if _, fail := t.flt.Inject(fault.SinkWrite); fail {
			t.sinkDrops.Add(1)
			t.noteFailure()
			return
		}
	}
	defer func() {
		if recover() != nil {
			t.sinkDrops.Add(1)
			t.noteFailure()
		}
	}()
	t.sink.Emit(e)
}

// safeFlush pushes the sink's buffer downstream, absorbing panics and
// counting errors against the failure budget. Caller holds mu.
func (t *Tracer) safeFlush() {
	if t.degraded.Load() {
		return
	}
	defer func() {
		if recover() != nil {
			t.noteFailure()
		}
	}()
	if err := t.sink.Flush(); err != nil {
		t.noteFailure()
		return
	}
	// Only a successful Flush resets the consecutive-failure budget:
	// Emit cannot report errors (a broken JSONLSink's Emit is a silent
	// no-op), so treating it as a success would mask a dead sink.
	t.failures = 0
}

// Epoch returns the tracer's time origin.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// Rel converts an absolute time to nanoseconds since the epoch.
func (t *Tracer) Rel(at time.Time) int64 { return at.Sub(t.epoch).Nanoseconds() }

// NewRing registers and returns a ring for one producer goroutine.
func (t *Tracer) NewRing() *Ring {
	r := &Ring{}
	t.mu.Lock()
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// Flush drains every ring into the sink and flushes it. Called by the
// collector at the end of each cycle; concurrent producers keep
// emitting into the undrained tail unharmed.
func (t *Tracer) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	for _, r := range t.rings {
		r.drain(t.safeEmit)
	}
	t.safeFlush()
}

// Close performs the final drain, reports ring overflow if any occurred,
// and flushes the sink. Further Flush/Close calls are no-ops; events
// emitted after Close are silently lost.
func (t *Tracer) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	var drops int64
	for _, r := range t.rings {
		r.drain(t.safeEmit)
		drops += r.dropped.Load()
	}
	drops += t.sinkDrops.Load()
	if drops > 0 {
		t.safeEmit(Event{Ev: "drops", T: t.Rel(time.Now()), N: drops})
	}
	t.safeFlush()
}

// JSONLSink writes one JSON object per event — the format cmd/gcreport
// ingests. It buffers internally; the first write error is retained and
// reported by Err (and by the final Flush).
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w in a buffered JSONL event writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event as a JSON line.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Flush drains the internal buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first error encountered while writing, if any.
func (s *JSONLSink) Err() error { return s.err }

// teeSink fans the event stream out to several sinks. A panic in one
// sink propagates to the Tracer's recover like any single-sink panic;
// the first Flush error wins.
type teeSink struct{ sinks []Sink }

// TeeSink returns a sink that duplicates every event (and flush) to
// each of sinks, in order. Used to feed the flight recorder alongside a
// configured trace sink.
func TeeSink(sinks ...Sink) Sink { return &teeSink{sinks: sinks} }

// Emit delivers the event to every sink.
func (t *teeSink) Emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Flush flushes every sink, returning the first error.
func (t *teeSink) Flush() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MemorySink collects events in memory; intended for tests and for
// embedders that post-process a run's events without serializing them.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Flush is a no-op.
func (s *MemorySink) Flush() error { return nil }

// Events returns a copy of everything emitted so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}
