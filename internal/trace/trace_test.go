package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingOverflowDrops(t *testing.T) {
	var r Ring
	for i := 0; i < ringSize+100; i++ {
		r.Emit(Event{Ev: "pause", N: int64(i)})
	}
	if got := r.Dropped(); got != 100 {
		t.Fatalf("dropped = %d, want 100", got)
	}
	var got []Event
	r.drain(func(e Event) { got = append(got, e) })
	if len(got) != ringSize {
		t.Fatalf("drained %d events, want %d", len(got), ringSize)
	}
	// FIFO order, and the dropped events are the newest, not the oldest.
	for i, e := range got {
		if e.N != int64(i) {
			t.Fatalf("event %d has N=%d, want %d", i, e.N, i)
		}
	}
	// After a drain the ring has room again.
	r.Emit(Event{Ev: "pause", N: -1})
	if got := r.Dropped(); got != 100 {
		t.Fatalf("dropped after drain = %d, want still 100", got)
	}
}

func TestTracerFlushAndClose(t *testing.T) {
	sink := &MemorySink{}
	tr := New(sink)
	ring := tr.NewRing()
	ring.Emit(Event{Ev: "cycle", T: tr.Rel(tr.Epoch().Add(time.Millisecond))})
	tr.Flush()
	evs := sink.Events()
	if len(evs) != 2 || evs[0].Ev != "start" || evs[1].Ev != "cycle" {
		t.Fatalf("after flush: %+v, want [start cycle]", evs)
	}
	if evs[1].T != time.Millisecond.Nanoseconds() {
		t.Fatalf("Rel timestamp = %d, want %d", evs[1].T, time.Millisecond.Nanoseconds())
	}
	ring.Emit(Event{Ev: "sweep"})
	tr.Close()
	tr.Close() // idempotent
	if evs := sink.Events(); len(evs) != 3 || evs[2].Ev != "sweep" {
		t.Fatalf("after close: %+v, want final sweep drained", evs)
	}
	ring.Emit(Event{Ev: "lost"})
	tr.Flush()
	if evs := sink.Events(); len(evs) != 3 {
		t.Fatalf("events after Close leaked into sink: %+v", evs)
	}
}

func TestTracerReportsDropsOnClose(t *testing.T) {
	sink := &MemorySink{}
	tr := New(sink)
	ring := tr.NewRing()
	for i := 0; i < ringSize+7; i++ {
		ring.Emit(Event{Ev: "pause"})
	}
	tr.Close()
	evs := sink.Events()
	last := evs[len(evs)-1]
	if last.Ev != "drops" || last.N != 7 {
		t.Fatalf("last event = %+v, want drops with N=7", last)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	want := []Event{
		{Ev: "start"},
		{Ev: "cycle", T: 123, D: 456, Cycle: 1, K: "partial", N: 10, M: 5},
		{Ev: "pause", T: 789, D: 42, Worker: 3, K: "handshake"},
	}
	for _, e := range want {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("line %d round-tripped to %+v, want %+v", i, got, want[i])
		}
	}
	// Zero-valued optional fields are omitted from the wire format.
	if strings.Contains(lines[0], "cyc") || strings.Contains(lines[0], `"n"`) {
		t.Fatalf("start line carries omitempty fields: %s", lines[0])
	}
}

// TestTracerRaceConcurrentProducers runs one producer goroutine per ring
// emitting while the tracer flushes concurrently — the SPSC contract
// (one producer per ring, consumer under the tracer lock) under -race.
func TestTracerRaceConcurrentProducers(t *testing.T) {
	sink := &MemorySink{}
	tr := New(sink)
	const producers, events = 4, 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		ring := tr.NewRing()
		wg.Add(1)
		go func(ring *Ring, p int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				ring.Emit(Event{Ev: "pause", Worker: p, N: int64(i)})
				if i%64 == 0 {
					tr.Flush()
				}
			}
		}(ring, p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			tr.Close()
			next := map[int]int64{}
			var total, drops int64
			for _, e := range sink.Events() {
				switch e.Ev {
				case "pause":
					// Per producer, events arrive in emit order even
					// though flushes interleave with emits (drops may
					// punch holes, never reorder).
					if e.N < next[e.Worker] {
						t.Fatalf("worker %d: event N=%d out of order, want ≥ %d",
							e.Worker, e.N, next[e.Worker])
					}
					next[e.Worker] = e.N + 1
					total++
				case "drops":
					drops = e.N
				}
			}
			if total+drops != producers*events {
				t.Fatalf("delivered %d + dropped %d, want %d",
					total, drops, producers*events)
			}
			return
		default:
			tr.Flush()
		}
	}
}
