package trace

import (
	"errors"
	"testing"

	"gengc/internal/fault"
)

// panicSink panics on every Emit after the first allowed batch.
type panicSink struct {
	okLeft int
	emits  int
}

func (s *panicSink) Emit(Event) {
	s.emits++
	if s.okLeft > 0 {
		s.okLeft--
		return
	}
	panic("sink exploded")
}

func (s *panicSink) Flush() error { return nil }

// errSink fails every Flush.
type errSink struct {
	emits   int
	flushes int
}

func (s *errSink) Emit(Event) { s.emits++ }
func (s *errSink) Flush() error {
	s.flushes++
	return errors.New("disk full")
}

func TestDegradeOnPanickingSink(t *testing.T) {
	s := &panicSink{okLeft: 1} // let the "start" event through
	tr := New(s)
	r := tr.NewRing()
	for i := 0; i < 10; i++ {
		r.Emit(Event{Ev: "cycle"})
	}
	tr.Flush() // 10 panicking emits: must not escape, must degrade
	if !tr.Degraded() {
		t.Fatalf("tracer not degraded after %d sink panics", s.emits-1)
	}
	r.Emit(Event{Ev: "cycle"})
	before := s.emits
	tr.Flush()
	if s.emits != before {
		t.Fatalf("degraded tracer still called the sink")
	}
	if tr.SinkDrops() == 0 {
		t.Fatalf("no drops counted after degradation")
	}
	if tr.Drops() < tr.SinkDrops() {
		t.Fatalf("Drops() = %d < SinkDrops() = %d", tr.Drops(), tr.SinkDrops())
	}
	tr.Close() // must not panic either
}

func TestDegradeOnFlushErrors(t *testing.T) {
	s := &errSink{}
	tr := New(s)
	r := tr.NewRing()
	for i := 0; i < sinkFailureLimit; i++ {
		r.Emit(Event{Ev: "cycle"})
		tr.Flush()
	}
	if !tr.Degraded() {
		t.Fatalf("tracer not degraded after %d flush errors", s.flushes)
	}
}

// flakySink fails every other Flush; the successes in between must
// keep resetting the consecutive-failure budget.
type flakySink struct{ flushes int }

func (s *flakySink) Emit(Event) {}
func (s *flakySink) Flush() error {
	s.flushes++
	if s.flushes%2 == 1 {
		return errors.New("transient")
	}
	return nil
}

func TestSuccessResetsFailureBudget(t *testing.T) {
	s := &flakySink{}
	tr := New(s)
	r := tr.NewRing()
	for i := 0; i < 4*sinkFailureLimit; i++ {
		r.Emit(Event{Ev: "cycle"})
		tr.Flush()
	}
	if tr.Degraded() {
		t.Fatalf("degraded although failures never ran %d consecutive", sinkFailureLimit)
	}
}

func TestSinkWriteInjectionDegrades(t *testing.T) {
	in := fault.New(42)
	in.Install(fault.Rule{Point: fault.SinkWrite, Kind: fault.Fail})
	s := &MemorySink{}
	tr := New(s)
	tr.SetInjector(in)
	r := tr.NewRing()
	for i := 0; i < sinkFailureLimit+2; i++ {
		r.Emit(Event{Ev: "cycle"})
	}
	tr.Flush()
	if !tr.Degraded() {
		t.Fatalf("tracer not degraded under SinkWrite Fail P=1")
	}
	// Only the pre-injector "start" event reached the sink.
	if n := len(s.Events()); n != 1 {
		t.Fatalf("sink got %d events, want 1 (start)", n)
	}
	if tr.SinkDrops() == 0 {
		t.Fatalf("injected sink failures not counted as drops")
	}
}
