package gengc

import "gengc/internal/fault"

// Deterministic fault injection (chaos testing). A FaultInjector armed
// with rules and passed to WithFaultInjector makes the runtime's
// coordination seams misbehave on purpose — delayed handshakes, stalled
// safe points, transient allocation failures, failing trace sinks —
// with a schedule that is a pure function of the campaign seed, so a
// failing campaign reruns identically. cmd/gcchaos drives whole
// campaigns; this file only re-exports the vocabulary so embedders can
// run their own.

// FaultInjector decides, at each named injection point, whether to
// delay, drop or fail the operation. Construct with NewFaultInjector,
// arm with Install, and pass to WithFaultInjector. A nil injector (the
// default) disables injection at zero cost.
type FaultInjector = fault.Injector

// FaultRule arms one behavior (FaultKind) at one FaultPoint with a
// firing probability and optional count bound.
type FaultRule = fault.Rule

// FaultPoint names one injection point in the runtime.
type FaultPoint = fault.Point

// FaultKind is what a rule does when it fires: delay, drop or fail.
type FaultKind = fault.Kind

// The injection points. See the fault package for each point's exact
// semantics; points whose operation must not be skipped (handshake
// posting, sweep shards) coerce Drop/Fail rules to their Delay.
const (
	FaultHandshakePost = fault.HandshakePost
	FaultHandshakeAck  = fault.HandshakeAck
	FaultCooperate     = fault.Cooperate
	FaultTraceSteal    = fault.TraceSteal
	FaultSweepShard    = fault.SweepShard
	FaultAlloc         = fault.Alloc
	FaultSinkWrite     = fault.SinkWrite
	FaultBarrierFlush  = fault.BarrierFlush
)

// The rule kinds.
const (
	FaultDelay = fault.Delay
	FaultDrop  = fault.Drop
	FaultFail  = fault.Fail
)

// NewFaultInjector returns an injector whose per-point decision streams
// derive deterministically from seed: the same seed and rule set
// reproduce the identical fault schedule at every point, regardless of
// scheduler interleaving.
func NewFaultInjector(seed int64) *FaultInjector { return fault.New(seed) }
