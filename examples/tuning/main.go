// Tuning: sweep the card size and the young-generation size on one
// workload — the §8.5 parameter study in miniature — and print the
// elapsed times plus the collector's own characterization of each
// configuration (dirty-card percentage, inter-generational scanning).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gengc"
	"gengc/internal/workload"
)

func main() {
	profile := flag.String("profile", "_202_jess", "workload profile to tune")
	scale := flag.Float64("scale", 0.25, "run-length multiplier")
	flag.Parse()

	p, ok := workload.ByName(*profile)
	if !ok {
		log.Fatalf("unknown profile %q (try _202_jess, _213_javac, Anagram, ...)", *profile)
	}
	p = p.Scale(*scale)

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "card size\telapsed\tpartials\tdirty cards\tintergen/partial\tarea KB\n")
	for _, card := range []int{16, 64, 256, 1024, 4096} {
		res, err := workload.Run(p, gengc.Config{
			Mode:      gengc.Generational,
			CardBytes: card,
		}, 42)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Fprintf(w, "%d\t%v\t%d\t%.1f%%\t%.0f\t%.0f\n",
			card, res.Elapsed.Round(1e6), s.NumPartial,
			s.AvgDirtyCardPct, s.AvgInterGenScanned, s.AvgAreaScanned/1024)
	}
	w.Flush()

	fmt.Println()
	fmt.Fprintf(w, "young size\telapsed\tpartials\tfulls\tfreed/partial\n")
	for _, young := range []int{1 << 20, 2 << 20, 4 << 20, 8 << 20} {
		res, err := workload.Run(p, gengc.Config{
			Mode:       gengc.Generational,
			YoungBytes: young,
		}, 42)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Fprintf(w, "%dm\t%v\t%d\t%d\t%.0f\n",
			young>>20, res.Elapsed.Round(1e6), s.NumPartial, s.NumFull,
			s.AvgFreedObjsPartial)
	}
	w.Flush()
	fmt.Println("\nThe paper settles on 16-byte cards and a 4 MB young generation (§8.3).")
}
