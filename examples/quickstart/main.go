// Quickstart: build a small object graph against the generational
// on-the-fly collector, drop part of it, and watch collections reclaim
// the garbage while the program keeps running.
package main

import (
	"fmt"
	"log"

	"gengc"
)

func main() {
	// The defaults are the paper's chosen parameters: 32 MB heap,
	// 4 MB young generation, 16-byte cards, simple promotion.
	rt, err := gengc.New(gengc.WithMode(gengc.Generational))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	m := rt.NewMutator() // one handle per goroutine
	defer m.Detach()

	// A linked list of 10k nodes, each with a payload object.
	head := m.MustAlloc(2, 0) // two pointer slots: next, payload
	root := m.PushRoot(head)  // roots model the thread stack
	cur := head
	for i := 0; i < 10_000; i++ {
		next := m.MustAlloc(2, 0)
		payload := m.MustAlloc(0, 64) // 64-byte leaf
		m.Write(next, 1, payload)     // barriered pointer stores
		m.Write(cur, 0, next)
		cur = next
		m.Safepoint() // cooperate with the collector regularly
	}
	fmt.Printf("built list: %d objects, %d KB on the simulated heap\n",
		rt.HeapObjects(), rt.HeapBytes()/1024)

	// Truncate the list: everything past node 100 becomes garbage.
	x := m.Root(root)
	for i := 0; i < 100; i++ {
		x = m.Read(x, 0)
	}
	m.Write(x, 0, gengc.Nil)

	// Collections normally trigger themselves; force one for the demo.
	m.Collect(false) // partial: collects the young generation
	m.Collect(true)  // full: collects everything, including promoted objects
	fmt.Printf("after collections: %d objects, %d KB\n",
		rt.HeapObjects(), rt.HeapBytes()/1024)

	st := rt.Stats()
	fmt.Printf("cycles: %d partial, %d full; freed %d objects (%d KB)\n",
		st.NumPartial, st.NumFull, st.ObjectsFreed, st.BytesFreed/1024)

	if err := rt.Verify(); err != nil {
		log.Fatalf("heap verification failed: %v", err)
	}
	fmt.Println("heap verified: no live object was reclaimed")
}
