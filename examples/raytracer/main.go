// Raytracer-style workload: several rendering threads share a scene
// (long-lived objects) and churn through per-ray scratch objects — the
// paper's multithreaded Ray Tracer (§8.2, Figure 7) against the public
// API. Each thread builds its slice of the scene BVH, then traces rays
// that allocate short-lived intersection records.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"gengc"
)

func buildScene(m *gengc.Mutator, objects int) gengc.Ref {
	// A simple binary tree of scene nodes (the BVH).
	var build func(n int) gengc.Ref
	build = func(n int) gengc.Ref {
		if n == 0 {
			return gengc.Nil
		}
		node := m.MustAlloc(2, 64) // left, right + bounding-box payload
		m.Safepoint()
		m.Write(node, 0, build((n-1)/2))
		m.Write(node, 1, build(n-1-(n-1)/2))
		return node
	}
	return build(objects)
}

func render(m *gengc.Mutator, scene gengc.Ref, rays int, rng *rand.Rand) int {
	hits := 0
	scratch := m.PushRoot(gengc.Nil)
	defer m.PopRoots(1)
	for r := 0; r < rays; r++ {
		m.Safepoint()
		// Walk the BVH; each visited node produces an intersection
		// record that lives only for this ray.
		node := scene
		for node != gengc.Nil {
			rec := m.MustAlloc(1, 48)
			m.Write(rec, 0, m.Root(scratch)) // chain this ray's records
			m.SetRoot(scratch, rec)
			if rng.Intn(2) == 0 {
				node = m.Read(node, 0)
			} else {
				node = m.Read(node, 1)
			}
		}
		hits++
		m.SetRoot(scratch, gengc.Nil) // the ray's records die young
	}
	return hits
}

func run(mode gengc.Mode, threads, raysPerThread int) time.Duration {
	rt, err := gengc.New(gengc.WithMode(mode))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			m := rt.NewMutator()
			defer m.Detach()
			scene := buildScene(m, 4000)
			m.PushRoot(scene)
			render(m, scene, raysPerThread, rand.New(rand.NewSource(int64(t))))
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := rt.Stats()
	fmt.Printf("%-18v threads=%d %v  (%d partial, %d full collections)\n",
		mode, threads, elapsed.Round(time.Millisecond), st.NumPartial, st.NumFull)
	return elapsed
}

func main() {
	threads := flag.Int("threads", 4, "rendering threads (the paper sweeps 2..10)")
	rays := flag.Int("rays", 30000, "rays per thread")
	flag.Parse()

	genT := run(gengc.Generational, *threads, *rays)
	nonT := run(gengc.NonGenerational, *threads, *rays)
	fmt.Printf("\ngenerational improvement at %d threads: %.1f%%\n",
		*threads, 100*float64(nonT-genT)/float64(nonT))
	fmt.Println("(Figure 7 reports +1.3% at 2 threads rising to +16.0% at 8)")
}
