// Anagram-style workload: the paper's most collection-intensive
// benchmark (§8.2) reimplemented directly against the public API — a
// recursive permutation generator that allocates a short-lived "string"
// object per permutation step, keeping almost nothing alive. It then
// compares the generational and non-generational collectors on the same
// work, the paper's Figure 8 comparison in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"gengc"
)

// permute allocates one scratch object per permutation prefix — the
// die-young string churn that dominates the anagram generator — and
// keeps the current candidate reachable from a root while it recurses.
func permute(m *gengc.Mutator, letters []byte, depth int, scratch int, count *int) {
	if depth == len(letters) {
		*count++
		return
	}
	for i := depth; i < len(letters); i++ {
		letters[depth], letters[i] = letters[i], letters[depth]
		// A fresh "string" for this prefix; rooting it in the
		// scratch slot drops the previous one, which dies young.
		s := m.MustAlloc(0, 8+len(letters))
		m.SetRoot(scratch, s)
		m.Safepoint()
		permute(m, letters, depth+1, scratch, count)
		letters[depth], letters[i] = letters[i], letters[depth]
	}
}

func run(mode gengc.Mode, rounds int) time.Duration {
	rt, err := gengc.New(gengc.WithMode(mode),
		gengc.WithHeapBytes(16<<20), gengc.WithYoungBytes(2<<20))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()
	scratch := m.PushRoot(gengc.Nil)

	start := time.Now()
	count := 0
	for r := 0; r < rounds; r++ {
		word := []byte("anagrams")
		permute(m, word, 0, scratch, &count)
	}
	elapsed := time.Since(start)
	fmt.Printf("%-18v %d permutations in %v\n", mode, count, elapsed.Round(time.Millisecond))
	st := rt.Stats()
	fmt.Printf("  %d partial + %d full collections, %.1f%% of time collecting, %d objects freed\n",
		st.NumPartial, st.NumFull, st.GCActivePct, st.ObjectsFreed)
	return elapsed
}

func main() {
	const rounds = 10
	genT := run(gengc.Generational, rounds)
	nonT := run(gengc.NonGenerational, rounds)
	imp := 100 * float64(nonT-genT) / float64(nonT)
	fmt.Printf("\ngenerational improvement: %.1f%% (the paper's Figure 8 reports +25.0%% MP / +32.7%% UP)\n", imp)
}
