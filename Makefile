GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy subset under the race detector: the parallel
# (Workers>1) trace/sweep tests plus the mutator-vs-collector stress
# and race interleaving tests.
race:
	$(GO) test -race -run 'Race|Stress|Parallel' ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

check: vet build test race
