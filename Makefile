GO ?= go

.PHONY: all vet lint build test race bench bench-json trace-verify chaos check

all: check

vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt prints nothing when clean) and
# runs go vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy subset under the race detector: the parallel
# (Workers>1) trace/sweep tests, the mutator-vs-collector stress and
# race interleaving tests, and the sharded-allocator stress test that
# churns allocations while minor and full cycles run.
race:
	$(GO) test -race -run 'Race|Stress|Parallel' ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# bench-json sweeps the allocation path over mutator counts (1/2/4/8)
# and shard counts (single lock vs per-class) and writes the
# machine-readable result to BENCH_alloc.json, which also embeds the
# pre-sharding global-lock baseline for before/after comparison.
bench-json:
	$(GO) run ./cmd/gcbench -experiment alloc -benchjson BENCH_alloc.json

# chaos runs a short fixed-seed fault-injection campaign under the race
# detector: every schedule (stalls, slow workers, transient OOM, the
# allocstorm campaigns against the tiered allocation path, failing sink,
# close race) must finish with zero Verify/self-check violations. The
# fixed seed keeps the fault schedule reproducible run to run.
chaos:
	$(GO) run -race ./cmd/gcchaos -seed 1

# trace-verify round-trips the observability pipeline end to end: run a
# small traced workload, then require gcreport to parse the JSONL and
# render the pause CDF and phase breakdown from it.
trace-verify:
	@tmp=$$(mktemp -d) && rc=0; \
	{ $(GO) run ./cmd/gctrace -profile Anagram -scale 0.05 -trace $$tmp/trace.jsonl >/dev/null 2>&1 \
	  && $(GO) run ./cmd/gcreport $$tmp/trace.jsonl > $$tmp/report.txt \
	  && grep -q 'Pause-time CDF' $$tmp/report.txt \
	  && grep -q 'Cycle phase breakdown' $$tmp/report.txt \
	  && echo "trace-verify: OK ($$(wc -l < $$tmp/trace.jsonl | tr -d ' ') events)"; } \
	|| { rc=$$?; echo "trace-verify: FAILED"; cat $$tmp/report.txt 2>/dev/null; }; \
	rm -rf $$tmp; exit $$rc

check: lint build test race chaos trace-verify
