GO ?= go

.PHONY: all vet lint build test race bench bench-json bench-matrix bench-matrix-smoke bench-server bench-server-smoke trace-verify chaos verify-protocol check

all: check

vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt prints nothing when clean) and
# runs go vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy subset under the race detector: the parallel
# (Workers>1) trace/sweep tests, the mutator-vs-collector stress and
# race interleaving tests, and the sharded-allocator stress test that
# churns allocations while minor and full cycles run.
race:
	$(GO) test -race -run 'Race|Stress|Parallel' ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# bench-json sweeps the allocation path over mutator counts (1/2/4/8)
# and shard counts (single lock vs per-class) into BENCH_alloc.json,
# then the write barrier over mutator counts × barrier modes × write
# APIs into BENCH_barrier.json, then the telemetry surface (tracer +
# flight recorder + pause SLO, on vs off, plus the scrape-vs-snapshot
# agreement check) into BENCH_telemetry.json. The files embed their
# baselines for before/after comparison and flag regressions.
bench-json:
	$(GO) run ./cmd/gcbench -experiment alloc -benchjson BENCH_alloc.json
	$(GO) run ./cmd/gcbench -experiment barrier -barrierjson BENCH_barrier.json
	$(GO) run ./cmd/gcbench -experiment telemetry -telemetryjson BENCH_telemetry.json

# bench-matrix runs the full contention matrix (cmd/gcsweep): mutators
# × collector workers × alloc shards × barrier mode × workload
# contention (churn, Zipf-skewed, auction) into BENCH_matrix.json, with
# interleaved passes, host-fingerprinted baseline comparison and
# structural sanity checks (exit 2 on regressions — see BENCHMARKS.md
# and EXPERIMENTS.md §4). The smoke variant is the seconds-long CI
# subset of the same sweep.
bench-matrix:
	$(GO) run ./cmd/gcsweep -o BENCH_matrix.json

bench-matrix-smoke:
	$(GO) run ./cmd/gcsweep -smoke -o BENCH_matrix.json

# bench-server runs the server-mode overload experiment (cmd/gcserve):
# the request engine under an open-loop Poisson arrival sweep at
# multiples of a capacity calibrated on this host, admission controller
# on vs naive, into BENCH_server.json. The host-independent gate (exit
# 2) requires the admitted legs to shed with bounded p99.9 and zero OOM
# while the naive top-rate leg measurably breaches the SLO or OOMs —
# see BENCHMARKS.md and EXPERIMENTS.md §5. The smoke variant is the
# seconds-long CI subset (one underload + one overload pair).
bench-server:
	$(GO) run ./cmd/gcserve -o BENCH_server.json

bench-server-smoke:
	$(GO) run ./cmd/gcserve -smoke -o BENCH_server.json

# verify-protocol runs the deterministic protocol-verification harness
# (cmd/gcverify, internal/modelcheck). Positive leg: every named
# scenario's interleavings are enumerated bounded-exhaustively
# (preemption bound 1, depth 400) under the virtual scheduler and must
# be violation-free. Negative leg: re-introducing the historical
# flush-before-ack ordering bug must be caught with a minimized
# schedule, and the written replay must reproduce the violation when
# re-executed — the harness has to be able to find the bug class it
# exists for, or a green positive leg means nothing.
verify-protocol:
	$(GO) run ./cmd/gcverify -scenario all
	@tmp=$$(mktemp -d); rc=0; \
	if $(GO) run ./cmd/gcverify -scenario flush-vs-ack -break flush-before-ack -out $$tmp/replay.json >$$tmp/neg.txt 2>&1; then \
		echo "verify-protocol: FAILED — re-introduced flush-before-ack bug was not caught"; cat $$tmp/neg.txt; rc=1; \
	elif $(GO) run ./cmd/gcverify -replay $$tmp/replay.json >$$tmp/rep.txt 2>&1; then \
		echo "verify-protocol: FAILED — replay did not reproduce the violation"; cat $$tmp/rep.txt; rc=1; \
	else \
		echo "verify-protocol: OK (bug caught, minimized, and replay reproduced)"; \
	fi; \
	rm -rf $$tmp; exit $$rc

# chaos runs a short fixed-seed fault-injection campaign under the race
# detector: every schedule (stalls, slow workers, transient OOM, the
# allocstorm campaigns against the tiered allocation path, failing sink,
# close race) must finish with zero Verify/self-check violations. The
# fixed seed keeps the fault schedule reproducible run to run.
chaos:
	$(GO) run -race ./cmd/gcchaos -seed 1

# trace-verify round-trips the observability pipeline end to end: run a
# small traced workload under each barrier mode, then require gcreport
# to parse the JSONL and render the pause CDF and phase breakdown from
# it. The batched leg additionally requires "barrierflush" events in
# the trace — the deferred barrier must be observable, not just fast.
trace-verify:
	@tmp=$$(mktemp -d) && rc=0; \
	{ $(GO) run ./cmd/gctrace -profile Anagram -scale 0.05 -trace $$tmp/trace.jsonl >/dev/null 2>&1 \
	  && $(GO) run ./cmd/gcreport $$tmp/trace.jsonl > $$tmp/report.txt \
	  && grep -q 'Pause-time CDF' $$tmp/report.txt \
	  && grep -q 'Cycle phase breakdown' $$tmp/report.txt \
	  && $(GO) run ./cmd/gctrace -profile Anagram -scale 0.05 -barrier batched -trace $$tmp/batched.jsonl >/dev/null 2>&1 \
	  && grep -q '"barrierflush"' $$tmp/batched.jsonl \
	  && $(GO) run ./cmd/gcreport $$tmp/batched.jsonl > $$tmp/batched.txt \
	  && grep -q 'Pause-time CDF' $$tmp/batched.txt \
	  && echo "trace-verify: OK ($$(wc -l < $$tmp/trace.jsonl | tr -d ' ') eager + $$(wc -l < $$tmp/batched.jsonl | tr -d ' ') batched events)"; } \
	|| { rc=$$?; echo "trace-verify: FAILED"; cat $$tmp/report.txt $$tmp/batched.txt 2>/dev/null; }; \
	rm -rf $$tmp; exit $$rc

check: lint build test race chaos trace-verify verify-protocol
