package gengc

import (
	"strings"
	"testing"
)

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{CardBytes: 24}); err == nil {
		t.Fatal("New accepted an invalid card size")
	}
	if _, err := NewManual(Config{FullThreshold: 2}); err == nil {
		t.Fatal("NewManual accepted an invalid threshold")
	}
}

func TestHeapAccounting(t *testing.T) {
	rt, err := NewManual(Config{Mode: Generational, HeapBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	objs0, bytes0 := rt.HeapObjects(), rt.HeapBytes()
	a := m.MustAlloc(0, 64)
	if rt.HeapObjects() != objs0+1 {
		t.Errorf("objects = %d, want %d", rt.HeapObjects(), objs0+1)
	}
	if rt.HeapBytes() != bytes0+64 {
		t.Errorf("bytes = %d, want %d", rt.HeapBytes(), bytes0+64)
	}
	_ = a
}

func TestGlobals(t *testing.T) {
	rt, err := NewManual(Config{Mode: Generational, HeapBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	a := m.MustAlloc(0, 32)
	rt.SetGlobal(m, 3, a)
	if rt.Global(3) != a {
		t.Fatal("global round trip failed")
	}
	if rt.Global(4) != Nil {
		t.Fatal("untouched global not nil")
	}
}

func TestMustAllocPanicsOnHopelessOOM(t *testing.T) {
	rt, err := NewManual(Config{
		Mode: Generational, HeapBytes: 256 << 10,
		YoungBytes: 128 << 10, InitialTargetBytes: 128 << 10,
		HeadroomBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustAlloc did not panic on exhausted heap")
		}
		if !strings.Contains(strings.ToLower(strings.TrimSpace(
			func() string { e, _ := r.(error); return e.Error() }())), "out of memory") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	for i := 0; i < 100000; i++ {
		m.PushRoot(m.MustAlloc(0, 1024)) // all live: must eventually panic
		m.Safepoint()
	}
}

func TestStatsAndCycles(t *testing.T) {
	rt, err := NewManual(Config{Mode: Generational, HeapBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	for i := 0; i < 100; i++ {
		m.MustAlloc(0, 64)
	}
	m.Collect(false)
	m.Collect(true)
	st := rt.Stats()
	if st.NumPartial != 1 || st.NumFull != 1 {
		t.Fatalf("cycles = %d partial / %d full", st.NumPartial, st.NumFull)
	}
	if st.ObjectsFreed < 100 {
		t.Errorf("freed = %d, want >= 100", st.ObjectsFreed)
	}
	cs := rt.Cycles()
	if len(cs) != 2 {
		t.Fatalf("Cycles() returned %d records", len(cs))
	}
}

func TestSlotsAccessor(t *testing.T) {
	rt, err := NewManual(Config{Mode: Generational, HeapBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	a := m.MustAlloc(5, 0)
	if got := m.Slots(a); got != 5 {
		t.Fatalf("Slots = %d, want 5", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	rt, err := New(Config{Mode: Generational, HeapBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close()
}

func TestExtensionsThroughFacade(t *testing.T) {
	rt, err := NewManual(Config{Mode: Generational, HeapBytes: 4 << 20, UseRememberedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	a := m.MustAlloc(1, 0)
	m.PushRoot(a)
	m.Collect(false)
	y := m.MustAlloc(0, 32)
	m.Write(a, 0, y)
	m.Collect(false)
	if rt.Collector().H.LoadSlot(a, 0) != y {
		t.Fatal("remembered-set variant lost an inter-generational target")
	}
	m.Detach()

	if _, err := NewManual(Config{Mode: GenerationalAging, DynamicTenure: true}); err != nil {
		t.Fatalf("dynamic tenure through facade: %v", err)
	}
}
