package gengc

import (
	"errors"
	"testing"
)

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(WithCardBytes(24)); err == nil {
		t.Fatal("New accepted an invalid card size")
	}
	if _, err := NewManual(WithFullThreshold(2)); err == nil {
		t.Fatal("NewManual accepted an invalid threshold")
	}
}

func TestConfigErrorsAreSentinels(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"card size", []Option{WithCardBytes(24)}},
		{"threshold", []Option{WithFullThreshold(2)}},
		{"workers", []Option{WithWorkers(-3)}},
		{"mode mismatch", []Option{WithMode(NonGenerational), WithRememberedSet(true)}},
		{"via WithConfig", []Option{WithConfig(Config{OldAge: 1000})}},
	}
	for _, tc := range cases {
		_, err := NewManual(tc.opts...)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
}

func TestWithConfigMatchesOptions(t *testing.T) {
	a, err := NewManual(WithMode(GenerationalAging), WithHeapBytes(8<<20),
		WithYoungBytes(1<<20), WithCardBytes(64), WithWorkers(2), WithOldAge(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewManual(WithConfig(Config{
		Mode: GenerationalAging, HeapBytes: 8 << 20, YoungBytes: 1 << 20,
		CardBytes: 64, Workers: 2, OldAge: 5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if a.Collector().Config() != b.Collector().Config() {
		t.Fatalf("option-built config %+v != WithConfig-built %+v",
			a.Collector().Config(), b.Collector().Config())
	}
}

func TestHeapAccounting(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	objs0, bytes0 := rt.HeapObjects(), rt.HeapBytes()
	a := m.MustAlloc(0, 64)
	if rt.HeapObjects() != objs0+1 {
		t.Errorf("objects = %d, want %d", rt.HeapObjects(), objs0+1)
	}
	if rt.HeapBytes() != bytes0+64 {
		t.Errorf("bytes = %d, want %d", rt.HeapBytes(), bytes0+64)
	}
	_ = a
}

func TestGlobals(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	a := m.MustAlloc(0, 32)
	rt.SetGlobal(m, 3, a)
	if rt.Global(3) != a {
		t.Fatal("global round trip failed")
	}
	if rt.Global(4) != Nil {
		t.Fatal("untouched global not nil")
	}
}

func TestMustAllocPanicsOnHopelessOOM(t *testing.T) {
	rt, err := NewManual(
		WithMode(Generational), WithHeapBytes(256<<10),
		WithYoungBytes(128<<10), WithInitialTargetBytes(128<<10),
		WithHeadroomBytes(64<<10),
	)
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustAlloc did not panic on exhausted heap")
		}
		e, ok := r.(error)
		if !ok || !errors.Is(e, ErrOutOfMemory) {
			t.Fatalf("panic value %v does not wrap ErrOutOfMemory", r)
		}
	}()
	for i := 0; i < 100000; i++ {
		m.PushRoot(m.MustAlloc(0, 1024)) // all live: must eventually panic
		m.Safepoint()
	}
}

func TestStatsAndCycles(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	for i := 0; i < 100; i++ {
		m.MustAlloc(0, 64)
	}
	m.Collect(false)
	m.Collect(true)
	st := rt.Stats()
	if st.NumPartial != 1 || st.NumFull != 1 {
		t.Fatalf("cycles = %d partial / %d full", st.NumPartial, st.NumFull)
	}
	if st.ObjectsFreed < 100 {
		t.Errorf("freed = %d, want >= 100", st.ObjectsFreed)
	}
	cs := rt.Cycles()
	if len(cs) != 2 {
		t.Fatalf("Cycles() returned %d records", len(cs))
	}
}

func TestOnCycleStreamsRecords(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	var got []CycleRecord
	rt.OnCycle(func(c CycleRecord) { got = append(got, c) })
	m := rt.NewMutator()
	defer m.Detach()
	for i := 0; i < 50; i++ {
		m.MustAlloc(0, 64)
	}
	m.Collect(false)
	m.Collect(true)
	if len(got) != 2 {
		t.Fatalf("observer saw %d records, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("observer records out of order: %+v", got)
	}
	if got[1].Kind.String() != "full" {
		t.Fatalf("second record kind = %v, want full", got[1].Kind)
	}
	// Must match the polled view.
	cs := rt.Cycles()
	if len(cs) != 2 || cs[0].ObjectsFreed != got[0].ObjectsFreed {
		t.Fatal("streamed records disagree with Cycles()")
	}
	rt.OnCycle(nil) // removable
	m.Collect(false)
	if len(got) != 2 {
		t.Fatal("observer fired after removal")
	}
}

func TestSlotsAccessor(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	defer m.Detach()
	a := m.MustAlloc(5, 0)
	if got := m.Slots(a); got != 5 {
		t.Fatalf("Slots = %d, want 5", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	rt, err := New(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close()
}

func TestExtensionsThroughFacade(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20), WithRememberedSet(true))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	a := m.MustAlloc(1, 0)
	m.PushRoot(a)
	m.Collect(false)
	y := m.MustAlloc(0, 32)
	m.Write(a, 0, y)
	m.Collect(false)
	if rt.Collector().H.LoadSlot(a, 0) != y {
		t.Fatal("remembered-set variant lost an inter-generational target")
	}
	m.Detach()

	if _, err := NewManual(WithMode(GenerationalAging), WithDynamicTenure(true)); err != nil {
		t.Fatalf("dynamic tenure through facade: %v", err)
	}
}
