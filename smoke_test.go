package gengc

import (
	"testing"
)

// TestSmokeAllModes allocates a linked structure, drops parts of it, and
// runs collections under each collector mode, verifying that live data
// survives and garbage is reclaimed.
func TestSmokeAllModes(t *testing.T) {
	for _, mode := range []Mode{NonGenerational, Generational, GenerationalAging} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rt, err := NewManual(WithMode(mode), WithHeapBytes(4<<20))
			if err != nil {
				t.Fatal(err)
			}
			m := rt.NewMutator()

			// Build a list of 1000 nodes, each with a payload.
			head := m.MustAlloc(2, 0)
			root := m.PushRoot(head)
			cur := head
			for i := 0; i < 999; i++ {
				n := m.MustAlloc(2, 0)
				p := m.MustAlloc(0, 48)
				m.Write(n, 1, p)
				m.Write(cur, 0, n)
				cur = n
			}
			before := rt.HeapObjects()
			if before < 1999 {
				t.Fatalf("allocated %d objects, want >= 1999", before)
			}

			// Collect with everything live: nothing may disappear.
			done := make(chan struct{})
			go func() { rt.Collect(true); close(done) }()
			for {
				select {
				case <-done:
				default:
					m.Safepoint()
					continue
				}
				break
			}
			if got := rt.HeapObjects(); got < before {
				t.Fatalf("full collection freed live objects: %d -> %d", before, got)
			}
			if err := rt.Verify(); err != nil {
				t.Fatal(err)
			}

			// Walk the list to make sure the contents are intact.
			n := 1
			for x := m.Root(root); ; {
				next := m.Read(x, 0)
				if next == Nil {
					break
				}
				n++
				x = next
			}
			if n != 1000 {
				t.Fatalf("list has %d nodes after collection, want 1000", n)
			}

			// Drop the tail half and collect twice: with the color
			// toggle, garbage from before cycle N is clear-colored in
			// cycle N+1 at the latest.
			x := m.Root(root)
			for i := 0; i < 499; i++ {
				x = m.Read(x, 0)
			}
			m.Write(x, 0, Nil)
			m.Collect(true)
			m.Collect(true)
			after := rt.HeapObjects()
			if after >= before {
				t.Fatalf("no garbage reclaimed: %d -> %d objects", before, after)
			}
			if err := rt.Verify(); err != nil {
				t.Fatal(err)
			}

			// The surviving prefix must still be intact.
			n = 1
			for x := m.Root(root); ; {
				next := m.Read(x, 0)
				if next == Nil {
					break
				}
				n++
				x = next
			}
			if n != 500 {
				t.Fatalf("list has %d nodes after reclaim, want 500", n)
			}
			m.Detach()
		})
	}
}

// TestPartialCollectionPromotes checks §3: after a partial collection
// survivors are promoted (black) and a subsequent partial does not
// reclaim young garbage created before the previous cycle's trace...
// but does reclaim garbage made young again by the toggle.
func TestPartialCollectionPromotes(t *testing.T) {
	rt, err := NewManual(WithMode(Generational), WithHeapBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutator()
	keep := m.MustAlloc(1, 0)
	m.PushRoot(keep)
	for i := 0; i < 100; i++ {
		m.MustAlloc(0, 32) // garbage
	}
	m.Collect(false)
	freedFirst := rt.Stats().ObjectsFreed
	if freedFirst < 100 {
		t.Fatalf("first partial freed %d objects, want >= 100", freedFirst)
	}
	// keep survived and is promoted; new garbage dies in the next
	// partial as well.
	for i := 0; i < 50; i++ {
		m.MustAlloc(0, 32)
	}
	m.Collect(false)
	if got := rt.Stats().ObjectsFreed; got < freedFirst+50 {
		t.Fatalf("second partial freed %d objects total, want >= %d", got, freedFirst+50)
	}
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := rt.VerifyCardInvariant(); err != nil {
		t.Fatal(err)
	}
	m.Detach()
}
