package gengc

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// Hardened HTTP serving for the observability endpoints. The default
// net/http server has no read/header/write timeouts and accepts
// connections without bound — a slowloris client or a connection flood
// against /metrics could starve the very process the endpoint is meant
// to watch. cmd/gcmon and cmd/gcserve serve through these helpers; the
// limits are deliberately conservative because the handlers are small
// and local (a scrape, a snapshot, a flight-recorder dump).

// HardenedServer returns an *http.Server for h with bounded
// read-header, read, write and idle timeouts, suitable for the
// runtime's observability endpoints. The caller may adjust the fields
// before serving.
func HardenedServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// LimitListener caps the number of simultaneously accepted connections
// at n: Accept blocks while n connections are open, releasing a slot
// when a connection closes. (A hand-rolled x/net/netutil.LimitListener —
// the module takes no external dependencies.)
func LimitListener(l net.Listener, n int) net.Listener {
	return &limitListener{Listener: l, sem: make(chan struct{}, n)}
}

type limitListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: c, release: func() { <-l.sem }}, nil
}

type limitConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}

// ListenAndServeHardened serves h on addr through HardenedServer with
// at most maxConns simultaneous connections (0 selects 64). It blocks
// like http.ListenAndServe; unlike it, a stalled or flooding client
// cannot hold connections open forever.
func ListenAndServeHardened(addr string, h http.Handler, maxConns int) error {
	if maxConns <= 0 {
		maxConns = 64
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := HardenedServer(addr, h)
	return srv.Serve(LimitListener(ln, maxConns))
}
