package gengc_test

// Exact-accounting tests for the heap demographics surface: workloads
// with known lifetimes drive manual collections and the promotion,
// survival, and death counters in Snapshot().Demographics must come out
// to the planted values — at Workers=1 (serial sweep) and Workers=4
// (sharded sweep, exercised under -race via the Parallel test names).

import (
	"testing"

	"gengc"
	"gengc/internal/heap"
)

// testDemographicsSimple plants live objects of one size class next to
// dead ones and checks the simple generational scheme's trace-side
// promotion arithmetic: every traced young object except the globals
// root is promoted, everything untraced dies into its size class.
func testDemographicsSimple(t *testing.T, workers int) {
	rt, err := gengc.NewManual(
		gengc.WithMode(gengc.Generational),
		gengc.WithHeapBytes(4<<20),
		gengc.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()

	const size = 64
	const live, dead = 10, 90
	class, cell := heap.ClassFor(size)
	for i := 0; i < live; i++ {
		m.PushRoot(m.MustAlloc(1, size))
	}
	for i := 0; i < dead; i++ {
		m.MustAlloc(1, size)
	}
	m.Collect(false)

	d := rt.Snapshot().Demographics
	if d.PromotedObjects != live {
		t.Fatalf("promoted objects = %d, want %d", d.PromotedObjects, live)
	}
	if d.PromotedBytes != int64(live*cell) {
		t.Fatalf("promoted bytes = %d, want %d", d.PromotedBytes, live*cell)
	}
	// The trace also survives the globals root (excluded from the
	// promotion counts but not from the survivor arithmetic).
	if d.SurvivedObjects != live+1 {
		t.Fatalf("survived objects = %d, want %d", d.SurvivedObjects, live+1)
	}
	if len(d.DeathsByClass) <= class || d.DeathsByClass[class] != dead {
		t.Fatalf("deaths in class %d = %v, want %d", class, d.DeathsByClass, dead)
	}

	// A second batch of garbage accumulates into the same counters and
	// leaves the promoted cohort alone: the ten live objects are old now
	// and never re-traced by a clean partial.
	for i := 0; i < dead; i++ {
		m.MustAlloc(1, size)
	}
	m.Collect(false)
	d = rt.Snapshot().Demographics
	if d.PromotedObjects != live {
		t.Fatalf("promoted after 2nd partial = %d, want %d", d.PromotedObjects, live)
	}
	if d.DeathsByClass[class] != 2*dead {
		t.Fatalf("deaths after 2nd partial = %d, want %d", d.DeathsByClass[class], 2*dead)
	}
}

func TestDemographicsSimpleExact(t *testing.T)         { testDemographicsSimple(t, 1) }
func TestDemographicsSimpleExactParallel(t *testing.T) { testDemographicsSimple(t, 4) }

// testDemographicsAging walks a rooted cohort through the aging
// pipeline with OldAge=2: two partial collections demote it with ages
// 0 and 1, the third tenures it, and the fourth no longer sees it.
func testDemographicsAging(t *testing.T, workers int) {
	const oldAge = 2
	rt, err := gengc.NewManual(
		gengc.WithMode(gengc.GenerationalAging),
		gengc.WithOldAge(oldAge),
		gengc.WithHeapBytes(4<<20),
		gengc.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m := rt.NewMutator()
	defer m.Detach()

	const size = 64
	const cohort = 8
	class, cell := heap.ClassFor(size)
	for i := 0; i < cohort; i++ {
		m.PushRoot(m.MustAlloc(1, size))
	}

	// Ages 0 and 1: demoted each time, nothing tenured yet.
	for cycle, wantAge := range []int{0, 1} {
		m.Collect(false)
		d := rt.Snapshot().Demographics
		if d.PromotedObjects != 0 {
			t.Fatalf("partial %d promoted %d objects, want 0", cycle+1, d.PromotedObjects)
		}
		if d.SurvivedObjects != int64((cycle+1)*cohort) {
			t.Fatalf("partial %d survived = %d, want %d",
				cycle+1, d.SurvivedObjects, (cycle+1)*cohort)
		}
		if len(d.SurvivalByAge) <= wantAge || d.SurvivalByAge[wantAge] != cohort {
			t.Fatalf("partial %d survival histogram = %v, want %d at age %d",
				cycle+1, d.SurvivalByAge, cohort, wantAge)
		}
	}

	// Third partial: the cohort sits at the threshold and tenures.
	m.Collect(false)
	d := rt.Snapshot().Demographics
	if d.PromotedObjects != cohort {
		t.Fatalf("promoted after tenure partial = %d, want %d", d.PromotedObjects, cohort)
	}
	if d.PromotedBytes != int64(cohort*cell) {
		t.Fatalf("promoted bytes = %d, want %d", d.PromotedBytes, cohort*cell)
	}
	if d.SurvivedObjects != 2*cohort {
		t.Fatalf("survived after tenure partial = %d, want %d", d.SurvivedObjects, 2*cohort)
	}
	want := []int64{cohort, cohort, cohort} // ages 0, 1, and the tenure bucket
	if len(d.SurvivalByAge) != len(want) {
		t.Fatalf("survival histogram = %v, want %v", d.SurvivalByAge, want)
	}
	for age, n := range want {
		if d.SurvivalByAge[age] != n {
			t.Fatalf("survival histogram = %v, want %v", d.SurvivalByAge, want)
		}
	}

	// Fourth partial: the tenured cohort is invisible — no promotion, no
	// survival, no deaths.
	m.Collect(false)
	d = rt.Snapshot().Demographics
	if d.PromotedObjects != cohort || d.SurvivedObjects != 2*cohort {
		t.Fatalf("post-tenure partial moved the counters: promoted=%d survived=%d",
			d.PromotedObjects, d.SurvivedObjects)
	}

	// Dropping the roots and running a full collection reclaims the
	// tenured cohort into its size class; the full cycle adds nothing to
	// the partial-only promotion counters.
	m.PopRoots(cohort)
	m.Collect(true)
	d = rt.Snapshot().Demographics
	if d.PromotedObjects != cohort {
		t.Fatalf("full collection changed promoted to %d", d.PromotedObjects)
	}
	if len(d.DeathsByClass) <= class || d.DeathsByClass[class] < cohort {
		t.Fatalf("deaths in class %d = %v, want >= %d", class, d.DeathsByClass, cohort)
	}
}

func TestDemographicsAgingCohort(t *testing.T)         { testDemographicsAging(t, 1) }
func TestDemographicsAgingCohortParallel(t *testing.T) { testDemographicsAging(t, 4) }
